// Simplified SlashBurn ordering (Lim, Kang, Faloutsos, TKDE 2014), in the
// variant the replication §2.3 describes: each iteration moves one
// highest-degree hub to the front of the arrangement and every node that
// becomes isolated to the back, until no node remains.

#include <vector>

#include "order/ordering.h"
#include "order/unit_heap.h"
#include "util/logging.h"

namespace gorder::order {

std::vector<NodeId> SlashBurnOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;

  // UnitHeap keyed by remaining undirected degree: hub selection is
  // ExtractMax and degree updates on removal are unit decrements.
  UnitHeap heap(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId d = graph.UndirectedDegree(v); d > 0; --d) heap.Increment(v);
  }

  NodeId front_rank = 0;  // part A grows from the front
  NodeId back_rank = n;   // part C grows from the back
  auto assign_back = [&](NodeId v) { perm[v] = --back_rank; };

  // Removes v from the residual graph: decrement each still-alive
  // neighbour once per incident edge occurrence; neighbours that reach
  // degree 0 become isolated and are burned to the back.
  auto remove_node = [&](NodeId v) {
    auto peel = [&](std::span<const NodeId> nbrs) {
      for (NodeId u : nbrs) {
        if (!heap.Contains(u)) continue;
        heap.Decrement(u);
        if (heap.KeyOf(u) == 0) {
          heap.Remove(u);
          assign_back(u);
        }
      }
    };
    peel(graph.OutNeighbors(v));
    peel(graph.InNeighbors(v));
  };

  while (!heap.empty()) {
    NodeId hub = heap.ExtractMax();
    if (heap.KeyOf(hub) == 0) {
      // No edges remain anywhere: the rest are isolated -> back part.
      assign_back(hub);
      continue;
    }
    perm[hub] = front_rank++;
    remove_node(hub);
  }
  GORDER_CHECK(front_rank == back_rank);
  return perm;
}

}  // namespace gorder::order
