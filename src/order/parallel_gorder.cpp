#include "order/parallel_gorder.h"

#include <numeric>
#include <utility>

#include "obs/trace.h"
#include "order/gorder.h"
#include "order/metis_like.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gorder::order {

namespace {

// SplitMix64 finaliser over (seed, tree position). The root block is 1
// and block b's children are 2b and 2b+1, so every block's random
// stream is a pure function of where it sits in the bisection tree —
// never of which thread happened to bisect it.
std::uint64_t BlockSeed(std::uint64_t seed, std::uint64_t block_id) {
  std::uint64_t z = seed + block_id * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<NodeId> ParallelGorderOrder(const Graph& graph,
                                        const OrderingParams& params,
                                        int num_parts, int num_threads) {
  const NodeId n = graph.NumNodes();
  GORDER_CHECK(num_parts >= 1);
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;
  if (num_parts == 1 || n < static_cast<NodeId>(num_parts) * 4) {
    return GorderOrder(graph, params);
  }
  if (num_threads <= 0) num_threads = NumThreads();

  // 1. Front-end: level-parallel recursive bisection. The per-part
  // greedy only needs part *membership*, not a full arrangement, so
  // instead of the serial partitioner's deep recursion (depth
  // log(n/leaf_size), all on one thread) we stop after ceil(log2
  // num_parts) levels and bisect every block of a level concurrently.
  // A num_parts that is not a power of two rounds up one level.
  struct Block {
    std::vector<NodeId> nodes;
    std::uint64_t id = 0;  // position in the bisection tree, root = 1
  };
  std::vector<Block> frontier(1);
  frontier[0].nodes.resize(n);
  std::iota(frontier[0].nodes.begin(), frontier[0].nodes.end(), 0);
  frontier[0].id = 1;
  MetisLikeParams mp;  // seed field unused: blocks derive their own
  {
    GORDER_OBS_SPAN(bisect_span, "pargorder:bisect");
    while (frontier.size() < static_cast<std::size_t>(num_parts)) {
      std::vector<Block> next(2 * frontier.size());
      ParallelFor(
          0, frontier.size(), 1,
          [&](std::size_t lo, std::size_t hi) {
            std::vector<NodeId> scratch(n, kInvalidNode);
            for (std::size_t i = lo; i < hi; ++i) {
              Block& blk = frontier[i];
              Block& left = next[2 * i];
              Block& right = next[2 * i + 1];
              left.id = 2 * blk.id;
              right.id = 2 * blk.id + 1;
              if (blk.nodes.size() < 2) {
                left.nodes = std::move(blk.nodes);
                continue;
              }
              Rng rng(BlockSeed(params.seed, blk.id));
              std::vector<int> side =
                  BisectNodes(graph, blk.nodes, mp, rng, scratch);
              for (std::size_t j = 0; j < blk.nodes.size(); ++j) {
                (side[j] == 0 ? left : right).nodes.push_back(blk.nodes[j]);
              }
              if (left.nodes.empty() || right.nodes.empty()) {
                // Degenerate split: halve arbitrarily to keep the parts
                // balanced (the serial partitioner's fallback).
                std::vector<NodeId> all = std::move(
                    left.nodes.empty() ? right.nodes : left.nodes);
                auto mid =
                    all.begin() + static_cast<std::ptrdiff_t>(all.size() / 2);
                left.nodes.assign(all.begin(), mid);
                right.nodes.assign(mid, all.end());
              }
            }
          },
          num_threads);
      frontier = std::move(next);
    }
  }
  std::vector<std::vector<NodeId>> parts;
  parts.reserve(frontier.size());
  for (Block& blk : frontier) {
    if (!blk.nodes.empty()) parts.push_back(std::move(blk.nodes));
  }
  std::vector<NodeId> rank_begin(parts.size() + 1, 0);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    rank_begin[p + 1] =
        rank_begin[p] + static_cast<NodeId>(parts[p].size());
  }

  // 2. Per-part sequential Gorder on the induced subgraph, on the shared
  // thread pool. Grain 1 lets skewed parts load-balance dynamically.
  GORDER_OBS_SPAN(greedy_span, "pargorder:greedy");
  ParallelFor(
      0, parts.size(), 1,
      [&](std::size_t part_begin, std::size_t part_end) {
        std::vector<NodeId> global_to_local(n, kInvalidNode);
        for (std::size_t p = part_begin; p < part_end; ++p) {
          const std::vector<NodeId>& members = parts[p];
          const NodeId k = static_cast<NodeId>(members.size());
          for (NodeId i = 0; i < k; ++i) global_to_local[members[i]] = i;
          std::vector<Edge> edges;
          for (NodeId i = 0; i < k; ++i) {
            for (NodeId w : graph.OutNeighbors(members[i])) {
              NodeId j = global_to_local[w];
              if (j != kInvalidNode) edges.push_back({i, j});
            }
          }
          Graph sub = Graph::FromEdges(k, std::move(edges),
                                       /*keep_self_loops=*/true,
                                       /*keep_duplicates=*/true);
          std::vector<NodeId> local = GorderOrder(sub, params);
          for (NodeId i = 0; i < k; ++i) {
            // Writes are disjoint across parts: no synchronisation needed.
            perm[members[i]] = rank_begin[p] + local[i];
            global_to_local[members[i]] = kInvalidNode;
          }
        }
      },
      num_threads);
  return perm;
}

}  // namespace gorder::order
