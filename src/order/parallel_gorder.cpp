#include "order/parallel_gorder.h"

#include "order/gorder.h"
#include "order/metis_like.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gorder::order {

std::vector<NodeId> ParallelGorderOrder(const Graph& graph,
                                        const OrderingParams& params,
                                        int num_parts, int num_threads) {
  const NodeId n = graph.NumNodes();
  GORDER_CHECK(num_parts >= 1);
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;
  if (num_parts == 1 || n < static_cast<NodeId>(num_parts) * 4) {
    return GorderOrder(graph, params);
  }
  if (num_threads <= 0) num_threads = NumThreads();

  // 1. Region layout: the Metis-like recursive bisection already numbers
  // nodes region-contiguously; cutting its arrangement into num_parts
  // equal rank ranges yields the parts.
  MetisLikeParams mp;
  mp.seed = params.seed;
  mp.leaf_size = std::max<NodeId>(16, n / (4 * num_parts));
  std::vector<NodeId> region_perm = MetisLikeOrder(graph, mp);
  std::vector<NodeId> region_order = InvertPermutation(region_perm);

  struct Part {
    NodeId rank_begin = 0;
    NodeId rank_end = 0;  // exclusive
  };
  std::vector<Part> parts(num_parts);
  for (int p = 0; p < num_parts; ++p) {
    parts[p].rank_begin = static_cast<NodeId>(
        static_cast<std::uint64_t>(n) * p / num_parts);
    parts[p].rank_end = static_cast<NodeId>(
        static_cast<std::uint64_t>(n) * (p + 1) / num_parts);
  }

  // 2. Per-part sequential Gorder on the induced subgraph, on the shared
  // thread pool. Grain 1 lets skewed parts load-balance dynamically.
  ParallelFor(
      0, static_cast<std::size_t>(num_parts), 1,
      [&](std::size_t part_begin, std::size_t part_end) {
        std::vector<NodeId> global_to_local(n, kInvalidNode);
        for (std::size_t p = part_begin; p < part_end; ++p) {
          const Part& part = parts[p];
          const NodeId k = part.rank_end - part.rank_begin;
          if (k == 0) continue;
          std::vector<NodeId> members(k);
          for (NodeId i = 0; i < k; ++i) {
            members[i] = region_order[part.rank_begin + i];
            global_to_local[members[i]] = i;
          }
          std::vector<Edge> edges;
          for (NodeId i = 0; i < k; ++i) {
            for (NodeId w : graph.OutNeighbors(members[i])) {
              NodeId j = global_to_local[w];
              if (j != kInvalidNode) edges.push_back({i, j});
            }
          }
          Graph sub = Graph::FromEdges(k, std::move(edges),
                                       /*keep_self_loops=*/true,
                                       /*keep_duplicates=*/true);
          std::vector<NodeId> local = GorderOrder(sub, params);
          for (NodeId i = 0; i < k; ++i) {
            // Writes are disjoint across parts: no synchronisation needed.
            perm[members[i]] = part.rank_begin + local[i];
            global_to_local[members[i]] = kInvalidNode;
          }
        }
      },
      num_threads);
  return perm;
}

}  // namespace gorder::order
