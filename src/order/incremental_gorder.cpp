#include "order/incremental_gorder.h"

#include <algorithm>

#include "order/gorder.h"
#include "util/logging.h"

namespace gorder::order {

IncrementalGorder::IncrementalGorder(const Graph& base,
                                     const OrderingParams& params)
    : graph_(base), params_(params) {
  next_.assign(base.NumNodes(), kInvalidNode);
  prev_.assign(base.NumNodes(), kInvalidNode);
  if (base.NumNodes() > 0) {
    RebuildLinksFromPermutation(GorderOrder(base, params_));
  }
  edges_at_build_ = std::max<EdgeId>(1, base.NumEdges());
}

void IncrementalGorder::RebuildLinksFromPermutation(
    const std::vector<NodeId>& perm) {
  const NodeId n = static_cast<NodeId>(perm.size());
  std::vector<NodeId> order = InvertPermutation(perm);
  next_.assign(n, kInvalidNode);
  prev_.assign(n, kInvalidNode);
  head_ = n > 0 ? order.front() : kInvalidNode;
  tail_ = n > 0 ? order.back() : kInvalidNode;
  for (NodeId r = 0; r + 1 < n; ++r) {
    next_[order[r]] = order[r + 1];
    prev_[order[r + 1]] = order[r];
  }
}

void IncrementalGorder::Unlink(NodeId v) {
  if (prev_[v] != kInvalidNode) next_[prev_[v]] = next_[v];
  if (next_[v] != kInvalidNode) prev_[next_[v]] = prev_[v];
  if (head_ == v) head_ = next_[v];
  if (tail_ == v) tail_ = prev_[v];
  prev_[v] = next_[v] = kInvalidNode;
}

void IncrementalGorder::SpliceAfter(NodeId v, NodeId anchor) {
  GORDER_DCHECK(anchor != v);
  NodeId after = next_[anchor];
  next_[anchor] = v;
  prev_[v] = anchor;
  next_[v] = after;
  if (after != kInvalidNode) {
    prev_[after] = v;
  } else {
    tail_ = v;
  }
}

void IncrementalGorder::AppendTail(NodeId v) {
  if (tail_ == kInvalidNode) {
    head_ = tail_ = v;
    return;
  }
  next_[tail_] = v;
  prev_[v] = tail_;
  tail_ = v;
}

NodeId IncrementalGorder::AddNode() {
  NodeId v = graph_.AddNode();
  next_.push_back(kInvalidNode);
  prev_.push_back(kInvalidNode);
  AppendTail(v);
  return v;
}

NodeId IncrementalGorder::PickAnchor(NodeId v) const {
  // Direct relations only (the Sn part of the score): count occurrences
  // of each neighbour; the densest relation wins.
  NodeId best = kInvalidNode;
  std::size_t best_count = 0;
  auto consider = [&](NodeId u) {
    if (u == v) return;
    // Count u's multiplicity across v's two incidence lists (<= 2).
    std::size_t count = 1;
    if (graph_.HasEdge(v, u) && graph_.HasEdge(u, v)) count = 2;
    // Prefer stronger ties, then higher-degree anchors (hubs are placed
    // near the front, keeping new leaves close to their hub cluster).
    if (count > best_count ||
        (count == best_count && best != kInvalidNode &&
         graph_.OutDegree(u) + graph_.InDegree(u) >
             graph_.OutDegree(best) + graph_.InDegree(best))) {
      best_count = count;
      best = u;
    }
  };
  for (NodeId u : graph_.OutNeighbors(v)) consider(u);
  for (NodeId u : graph_.InNeighbors(v)) consider(u);
  return best;
}

bool IncrementalGorder::AddEdge(NodeId src, NodeId dst) {
  if (!graph_.AddEdge(src, dst)) return false;
  ++edges_since_build_;
  // Local repair: re-splice the endpoint with the smaller degree next to
  // the other one if this is (nearly) its first relation — i.e. attach
  // fresh nodes to their cluster; well-connected nodes stay put.
  NodeId mover = graph_.OutDegree(src) + graph_.InDegree(src) <=
                         graph_.OutDegree(dst) + graph_.InDegree(dst)
                     ? src
                     : dst;
  NodeId other = mover == src ? dst : src;
  // Re-splice while the mover is still lightly connected (a handful of
  // relations): fresh arrivals keep improving their position as their
  // first edges land; established nodes stay put.
  if (graph_.OutDegree(mover) + graph_.InDegree(mover) <= 4) {
    NodeId anchor = PickAnchor(mover);
    if (anchor == kInvalidNode) anchor = other;
    Unlink(mover);
    SpliceAfter(mover, anchor);
  }
  return true;
}

std::vector<NodeId> IncrementalGorder::CurrentPermutation() const {
  std::vector<NodeId> perm(graph_.NumNodes(), kInvalidNode);
  NodeId rank = 0;
  for (NodeId v = head_; v != kInvalidNode; v = next_[v]) {
    perm[v] = rank++;
  }
  GORDER_CHECK(rank == graph_.NumNodes());
  return perm;
}

double IncrementalGorder::StalenessRatio() const {
  return static_cast<double>(edges_since_build_) /
         static_cast<double>(edges_at_build_);
}

void IncrementalGorder::FullRebuild() {
  Graph snapshot = graph_.ToCsr();
  RebuildLinksFromPermutation(GorderOrder(snapshot, params_));
  edges_at_build_ = std::max<EdgeId>(1, snapshot.NumEdges());
  edges_since_build_ = 0;
}

}  // namespace gorder::order
