#include "order/annealing.h"

#include <cmath>

#include "graph/stats.h"
#include "util/logging.h"

namespace gorder::order {

namespace {

double GapCost(ArrangementEnergy energy, NodeId a, NodeId b) {
  double gap = a > b ? a - b : b - a;
  GORDER_DCHECK(gap > 0);
  return energy == ArrangementEnergy::kLinear ? gap : std::log2(gap);
}

}  // namespace

double ArrangementEnergyOf(const Graph& graph, ArrangementEnergy energy) {
  return energy == ArrangementEnergy::kLinear ? LinearArrangementCost(graph)
                                              : LogArrangementCost(graph);
}

AnnealingResult AnnealArrangement(const Graph& graph,
                                  ArrangementEnergy energy,
                                  std::uint64_t steps, double standard_energy,
                                  Rng& rng) {
  const NodeId n = graph.NumNodes();
  AnnealingResult result;
  result.perm = IdentityPermutation(n);
  result.steps = steps;
  if (n < 2) return result;
  auto& pos = result.perm;

  double current_energy = ArrangementEnergyOf(graph, energy);

  // Energy delta of swapping the positions of nodes a and b: only edges
  // incident to a or b change cost. The edge (a,b)/(b,a), if present,
  // keeps its gap, but it is simplest (and correct) to evaluate it on
  // both sides of the swap like any other edge; we just must not count it
  // twice, hence the skip in b's lists.
  auto delta_for = [&](NodeId node, NodeId other, NodeId new_pos_node,
                       NodeId new_pos_other, bool skip_other) {
    double delta = 0.0;
    auto scan = [&](std::span<const NodeId> nbrs) {
      for (NodeId w : nbrs) {
        if (w == node) continue;  // self-loops never stored, defensive
        if (skip_other && w == other) continue;
        NodeId pw = pos[w];
        NodeId old_pw = pw;
        NodeId new_pw = pw;
        if (w == other) {
          // The other endpoint moves too.
          new_pw = new_pos_other;
        }
        delta += GapCost(energy, new_pos_node, new_pw) -
                 GapCost(energy, pos[node], old_pw);
      }
    };
    scan(graph.OutNeighbors(node));
    scan(graph.InNeighbors(node));
    return delta;
  };

  for (std::uint64_t s = 0; s < steps; ++s) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    NodeId pa = pos[a];
    NodeId pb = pos[b];
    double e = delta_for(a, b, pb, pa, /*skip_other=*/false) +
               delta_for(b, a, pa, pb, /*skip_other=*/true);
    bool accept = e < 0.0;
    if (!accept && standard_energy > 0.0) {
      double temperature = 1.0 - static_cast<double>(s) / steps;
      if (temperature > 0.0) {
        double p = std::exp(-e / (standard_energy * temperature));
        accept = rng.UniformDouble() < p;
      }
    }
    if (accept) {
      pos[a] = pb;
      pos[b] = pa;
      current_energy += e;
      ++result.accepted_swaps;
    }
  }
  result.final_energy = current_energy;
  return result;
}

}  // namespace gorder::order
