#ifndef GORDER_ORDER_BOBA_H_
#define GORDER_ORDER_BOBA_H_

#include <vector>

#include "graph/graph.h"

namespace gorder::order {

/// BOBA (Order Beyond Bandwidth: graph reordering on GPUs, arXiv
/// 2306.10410): first-appearance ordering over the edge stream. Nodes
/// are ranked by the first position at which they occur when the CSR
/// out-edge list is read as a flat stream of (source, destination)
/// pairs; nodes that never occur (isolated) follow in ascending id.
///
/// The point of the method is that this recovers most of the locality of
/// a traversal ordering at streaming speed and with no sequential
/// dependence: every occurrence position is a pure function of the CSR
/// layout (a source's position is twice the offset of its first
/// out-edge, the destination of edge e sits at 2e+1), so threads
/// min-reduce first-occurrence positions over disjoint edge ranges with
/// no communication, and the result is bit-identical at any thread
/// count — the same permutation a serial scan of the edge stream
/// produces.
std::vector<NodeId> BobaOrder(const Graph& graph);

}  // namespace gorder::order

#endif  // GORDER_ORDER_BOBA_H_
