#ifndef GORDER_ORDER_INCREMENTAL_GORDER_H_
#define GORDER_ORDER_INCREMENTAL_GORDER_H_

#include <vector>

#include "graph/dynamic_graph.h"
#include "order/ordering.h"

namespace gorder::order {

/// Incremental ordering maintenance for evolving graphs — the adaptation
/// the paper's discussion calls for ("Gorder needs to be adapted to
/// integrate the modifications without running the whole process
/// again").
///
/// Strategy: the arrangement is kept as a doubly-linked sequence of
/// nodes. The base graph gets a full Gorder; afterwards,
///   - a new node is spliced into the sequence right after the placed
///     neighbour it shares the most edges/siblings with (its best
///     insertion point under the S score restricted to direct
///     relations), or at the tail if it has no placed neighbour yet;
///   - a new edge between existing nodes may re-splice the lower-degree
///     endpoint next to the other if they are currently far apart (a
///     cheap local repair).
/// `StalenessRatio()` tracks how much the graph has drifted since the
/// last full rebuild so callers can schedule `FullRebuild()` — the
/// trade-off bench/ext_dynamic quantifies.
class IncrementalGorder {
 public:
  IncrementalGorder(const Graph& base, const OrderingParams& params = {});

  /// Mutators mirror DynamicGraph and keep the arrangement in sync.
  NodeId AddNode();
  bool AddEdge(NodeId src, NodeId dst);

  /// Current arrangement as `perm[node] = rank` (O(n) renumber).
  std::vector<NodeId> CurrentPermutation() const;

  /// Edges inserted since the last full (re)build, relative to the
  /// edge count at that build.
  double StalenessRatio() const;

  /// Recomputes Gorder from scratch on the current graph.
  void FullRebuild();

  const DynamicGraph& graph() const { return graph_; }

 private:
  void SpliceAfter(NodeId v, NodeId anchor);
  void Unlink(NodeId v);
  void AppendTail(NodeId v);
  /// Best placed anchor for v: the neighbour with the largest direct
  /// relation count to v (ties: higher degree).
  NodeId PickAnchor(NodeId v) const;
  void RebuildLinksFromPermutation(const std::vector<NodeId>& perm);

  DynamicGraph graph_;
  OrderingParams params_;
  std::vector<NodeId> next_, prev_;
  NodeId head_ = kInvalidNode;
  NodeId tail_ = kInvalidNode;
  EdgeId edges_at_build_ = 0;
  EdgeId edges_since_build_ = 0;
};

}  // namespace gorder::order

#endif  // GORDER_ORDER_INCREMENTAL_GORDER_H_
