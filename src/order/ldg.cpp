// Linear Deterministic Greedy streaming partitioner (Stanton & Kliot,
// KDD 2012) used as an ordering: nodes stream in original id order into
// ceil(n/k) bins of capacity k; each node joins the bin maximising
//     (1 + |N(u) & B|) * (1 - |B| / k),
// and the final arrangement concatenates the bins. The paper picks
// k = 64 so one bin of per-node state spans about one cache line.

#include <vector>

#include "order/ordering.h"
#include "util/logging.h"

namespace gorder::order {

std::vector<NodeId> LdgOrder(const Graph& graph, NodeId bin_capacity) {
  const NodeId n = graph.NumNodes();
  const NodeId k = bin_capacity;
  GORDER_CHECK(k >= 1);
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;
  const NodeId num_bins = (n + k - 1) / k;

  std::vector<NodeId> bin_of(n, kInvalidNode);
  std::vector<NodeId> load(num_bins, 0);

  // Bins indexed by load, so the best bin with no placed neighbours (the
  // least-loaded one) is found in O(1). Loads only grow.
  std::vector<std::vector<NodeId>> bins_by_load(k + 1);
  std::vector<NodeId> level_pos(num_bins);  // index of bin in its level
  bins_by_load[0].reserve(num_bins);
  for (NodeId b = num_bins; b > 0; --b) {
    level_pos[b - 1] = static_cast<NodeId>(bins_by_load[0].size());
    bins_by_load[0].push_back(b - 1);
  }
  NodeId min_load = 0;

  // Scratch: neighbour-count per candidate bin for the current node.
  std::vector<NodeId> count(num_bins, 0);
  std::vector<NodeId> touched;

  for (NodeId u = 0; u < n; ++u) {
    touched.clear();
    auto tally = [&](NodeId v) {
      NodeId b = bin_of[v];
      if (b == kInvalidNode) return;
      if (count[b] == 0) touched.push_back(b);
      ++count[b];
    };
    for (NodeId v : graph.OutNeighbors(u)) tally(v);
    for (NodeId v : graph.InNeighbors(u)) tally(v);

    // Candidate 1: best bin containing placed neighbours.
    double best_score = -1.0;
    NodeId best_bin = kInvalidNode;
    for (NodeId b : touched) {
      double score = (1.0 + count[b]) *
                     (1.0 - static_cast<double>(load[b]) / k);
      if (score > best_score ||
          (score == best_score && b < best_bin)) {
        best_score = score;
        best_bin = b;
      }
    }
    // Candidate 2: the least-loaded bin (score (1+0)*(1-load/k)).
    while (bins_by_load[min_load].empty()) {
      ++min_load;
      GORDER_CHECK(min_load <= k);
    }
    NodeId spill_bin = bins_by_load[min_load].back();
    double spill_score = 1.0 - static_cast<double>(min_load) / k;
    if (spill_score > best_score) {
      best_bin = spill_bin;
      best_score = spill_score;
    }
    GORDER_CHECK(best_bin != kInvalidNode && load[best_bin] < k);

    bin_of[u] = best_bin;
    // Re-file the chosen bin under its new load (O(1) swap-remove).
    auto& level = bins_by_load[load[best_bin]];
    NodeId pos = level_pos[best_bin];
    level[pos] = level.back();
    level_pos[level[pos]] = pos;
    level.pop_back();
    ++load[best_bin];
    level_pos[best_bin] = static_cast<NodeId>(
        bins_by_load[load[best_bin]].size());
    bins_by_load[load[best_bin]].push_back(best_bin);

    for (NodeId b : touched) count[b] = 0;
  }

  // Concatenate bins: rank nodes bin-major, preserving stream order
  // within a bin.
  std::vector<NodeId> bin_rank_start(num_bins + 1, 0);
  for (NodeId b = 0; b < num_bins; ++b) {
    bin_rank_start[b + 1] = bin_rank_start[b] + load[b];
  }
  std::vector<NodeId> cursor(bin_rank_start.begin(), bin_rank_start.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    perm[u] = cursor[bin_of[u]]++;
  }
  return perm;
}

}  // namespace gorder::order
