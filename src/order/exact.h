#ifndef GORDER_ORDER_EXACT_H_
#define GORDER_ORDER_EXACT_H_

#include <cstdint>

#include "graph/graph.h"

namespace gorder::order {

/// Exact maximum of the Gorder objective F(pi) for window w = 1, by
/// Held-Karp-style dynamic programming over node subsets: with w = 1 the
/// objective decomposes over consecutive pairs, so it is exactly a
/// maximum-weight Hamiltonian path on pair scores S(u, v) — the
/// connection the paper's NP-hardness proof uses (reduction from maximum
/// TSP). O(2^n * n^2) time and O(2^n * n) memory: n <= 20 enforced.
///
/// Used by tests to validate the paper's approximation guarantee
/// empirically: the greedy's F at w=1 must be >= 1/2 of this optimum
/// (Theorem: the window greedy is a 1/(2w)-approximation).
std::uint64_t ExactWindowOneOptimum(const Graph& graph);

/// The pair score S(u, v) = Sn + Ss used by the objective (exposed so
/// tests can cross-check the DP's score table).
std::uint64_t PairScore(const Graph& graph, NodeId u, NodeId v);

}  // namespace gorder::order

#endif  // GORDER_ORDER_EXACT_H_
