#ifndef GORDER_ORDER_DEGREE_GROUPING_H_
#define GORDER_ORDER_DEGREE_GROUPING_H_

#include <vector>

#include "graph/graph.h"

namespace gorder::order {

/// Degree-driven orderings from the reordering literature the paper
/// spawned (Balaji & Lucia, "When is Graph Reordering an Optimization?",
/// IISWC 2018; Faldu et al. DBG). All of them chase the same effect the
/// paper attributes to InDegSort: packing the hot, high-degree nodes'
/// state into few cache lines — but unlike a full sort they try not to
/// destroy whatever locality the original numbering already had.
///
/// Hotness here is out-degree: in the pull direction (PageRank's gather
/// of contrib[u]) a node's state is read once per out-edge, so
/// out-degree is the access frequency of its cache line.

/// Descending out-degree, stable (the out-degree dual of the paper's
/// InDegSort).
std::vector<NodeId> OutDegSortOrder(const Graph& graph);

/// HubSort: nodes with out-degree > average are "hubs"; hubs are placed
/// first in descending-degree order, all other nodes keep their original
/// relative order afterwards.
std::vector<NodeId> HubSortOrder(const Graph& graph);

/// HubCluster: like HubSort but hubs keep their *original* relative
/// order too — a pure partition, preserving maximal baseline locality.
std::vector<NodeId> HubClusterOrder(const Graph& graph);

/// DBG (degree-based grouping): nodes are binned into `num_groups`
/// power-of-two degree classes (highest class first); the original order
/// is preserved within every class. Coarser than a sort, cheaper to
/// compute, and keeps intra-class locality.
std::vector<NodeId> DbgOrder(const Graph& graph, int num_groups = 8);

}  // namespace gorder::order

#endif  // GORDER_ORDER_DEGREE_GROUPING_H_
