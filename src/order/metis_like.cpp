#include "order/metis_like.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/logging.h"

namespace gorder::order {

namespace {

/// Internal weighted undirected graph used across coarsening levels.
/// Every edge appears in both endpoints' lists with its weight.
struct WGraph {
  std::vector<EdgeId> off;
  std::vector<NodeId> adj;
  std::vector<std::uint32_t> wgt;        // edge weights, parallel to adj
  std::vector<std::uint32_t> node_wgt;   // collapsed original node count

  NodeId n() const { return static_cast<NodeId>(node_wgt.size()); }
  std::uint64_t total_node_weight() const {
    std::uint64_t t = 0;
    for (auto w : node_wgt) t += w;
    return t;
  }
};

/// Builds the weighted undirected view of the directed input restricted
/// to `nodes` (ids are re-indexed 0..|nodes|-1).
WGraph InducedUndirected(const Graph& graph,
                         const std::vector<NodeId>& nodes,
                         std::vector<NodeId>& global_to_local) {
  const NodeId k = static_cast<NodeId>(nodes.size());
  for (NodeId i = 0; i < k; ++i) global_to_local[nodes[i]] = i;
  WGraph wg;
  wg.node_wgt.assign(k, 1);
  wg.off.assign(k + 1, 0);
  // Two passes: count then fill, merging parallel/reciprocal edges by
  // accumulating weights with a per-node scratch map.
  std::vector<std::pair<NodeId, std::uint32_t>> row;
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> rows(k);
  std::vector<std::uint32_t> weight_of(k, 0);
  std::vector<NodeId> touched;
  for (NodeId i = 0; i < k; ++i) {
    NodeId v = nodes[i];
    touched.clear();
    auto consider = [&](NodeId w) {
      NodeId j = global_to_local[w];
      if (j == kInvalidNode || j == i) return;
      if (weight_of[j] == 0) touched.push_back(j);
      ++weight_of[j];
    };
    for (NodeId w : graph.OutNeighbors(v)) consider(w);
    for (NodeId w : graph.InNeighbors(v)) consider(w);
    rows[i].reserve(touched.size());
    for (NodeId j : touched) {
      rows[i].push_back({j, weight_of[j]});
      weight_of[j] = 0;
    }
  }
  for (NodeId i = 0; i < k; ++i) wg.off[i + 1] = wg.off[i] + rows[i].size();
  wg.adj.resize(wg.off[k]);
  wg.wgt.resize(wg.off[k]);
  for (NodeId i = 0; i < k; ++i) {
    EdgeId e = wg.off[i];
    for (auto [j, w] : rows[i]) {
      wg.adj[e] = j;
      wg.wgt[e] = w;
      ++e;
    }
  }
  for (NodeId i = 0; i < k; ++i) global_to_local[nodes[i]] = kInvalidNode;
  return wg;
}

/// Heavy-edge matching. Returns coarse-node count and the map
/// fine -> coarse.
NodeId HeavyEdgeMatch(const WGraph& g, Rng& rng, std::vector<NodeId>& match) {
  const NodeId n = g.n();
  match.assign(n, kInvalidNode);
  std::vector<NodeId> visit(n);
  std::iota(visit.begin(), visit.end(), 0);
  rng.Shuffle(visit);
  NodeId coarse = 0;
  for (NodeId v : visit) {
    if (match[v] != kInvalidNode) continue;
    NodeId best = kInvalidNode;
    std::uint32_t best_w = 0;
    for (EdgeId e = g.off[v]; e < g.off[v + 1]; ++e) {
      NodeId u = g.adj[e];
      if (match[u] != kInvalidNode) continue;
      if (g.wgt[e] > best_w) {
        best_w = g.wgt[e];
        best = u;
      }
    }
    NodeId id = coarse++;
    match[v] = id;
    if (best != kInvalidNode) match[best] = id;
  }
  // match currently holds coarse ids directly.
  return coarse;
}

/// Contracts g along `fine_to_coarse` into a graph with `coarse_n` nodes.
WGraph Contract(const WGraph& g, const std::vector<NodeId>& fine_to_coarse,
                NodeId coarse_n) {
  WGraph cg;
  cg.node_wgt.assign(coarse_n, 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    cg.node_wgt[fine_to_coarse[v]] += g.node_wgt[v];
  }
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> rows(coarse_n);
  std::vector<std::uint32_t> weight_of(coarse_n, 0);
  std::vector<NodeId> touched;
  // Accumulate coarse adjacency per coarse node.
  std::vector<std::vector<NodeId>> members(coarse_n);
  for (NodeId v = 0; v < g.n(); ++v) {
    members[fine_to_coarse[v]].push_back(v);
  }
  for (NodeId c = 0; c < coarse_n; ++c) {
    touched.clear();
    for (NodeId v : members[c]) {
      for (EdgeId e = g.off[v]; e < g.off[v + 1]; ++e) {
        NodeId cu = fine_to_coarse[g.adj[e]];
        if (cu == c) continue;
        if (weight_of[cu] == 0) touched.push_back(cu);
        weight_of[cu] += g.wgt[e];
      }
    }
    rows[c].reserve(touched.size());
    for (NodeId cu : touched) {
      rows[c].push_back({cu, weight_of[cu]});
      weight_of[cu] = 0;
    }
  }
  cg.off.assign(coarse_n + 1, 0);
  for (NodeId c = 0; c < coarse_n; ++c) {
    cg.off[c + 1] = cg.off[c] + rows[c].size();
  }
  cg.adj.resize(cg.off[coarse_n]);
  cg.wgt.resize(cg.off[coarse_n]);
  for (NodeId c = 0; c < coarse_n; ++c) {
    EdgeId e = cg.off[c];
    for (auto [cu, w] : rows[c]) {
      cg.adj[e] = cu;
      cg.wgt[e] = w;
      ++e;
    }
  }
  return cg;
}

/// Greedy BFS region-growing bisection of the (coarsest) graph: grow
/// side 0 from a random seed until it holds ~half the node weight.
std::vector<int> GrowBisection(const WGraph& g, Rng& rng) {
  const NodeId n = g.n();
  std::vector<int> side(n, 1);
  if (n == 0) return side;
  const std::uint64_t half = g.total_node_weight() / 2;
  std::uint64_t grown = 0;
  std::vector<NodeId> queue;
  std::vector<bool> seen(n, false);
  NodeId scan = 0;
  std::size_t head = 0;
  NodeId seed = static_cast<NodeId>(rng.Uniform(n));
  queue.push_back(seed);
  seen[seed] = true;
  while (grown < half) {
    if (head == queue.size()) {
      // Disconnected: restart from any unseen node.
      while (scan < n && seen[scan]) ++scan;
      if (scan == n) break;
      seen[scan] = true;
      queue.push_back(scan);
    }
    NodeId v = queue[head++];
    side[v] = 0;
    grown += g.node_wgt[v];
    for (EdgeId e = g.off[v]; e < g.off[v + 1]; ++e) {
      NodeId u = g.adj[e];
      if (!seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    }
  }
  return side;
}

/// One boundary-refinement sweep (greedy positive-gain moves under a
/// balance constraint). Returns true if anything moved.
bool RefineOnce(const WGraph& g, std::vector<int>& side, double balance) {
  const NodeId n = g.n();
  const std::uint64_t total = g.total_node_weight();
  std::uint64_t weight0 = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (side[v] == 0) weight0 += g.node_wgt[v];
  }
  const auto lo = static_cast<std::uint64_t>(total * (0.5 - balance));
  const auto hi = static_cast<std::uint64_t>(total * (0.5 + balance));
  bool moved = false;
  for (NodeId v = 0; v < n; ++v) {
    // gain = (cut edges) - (internal edges) incident to v.
    std::int64_t gain = 0;
    for (EdgeId e = g.off[v]; e < g.off[v + 1]; ++e) {
      gain += side[g.adj[e]] != side[v]
                  ? static_cast<std::int64_t>(g.wgt[e])
                  : -static_cast<std::int64_t>(g.wgt[e]);
    }
    if (gain <= 0) continue;
    std::uint64_t new_weight0 =
        side[v] == 0 ? weight0 - g.node_wgt[v] : weight0 + g.node_wgt[v];
    if (new_weight0 < lo || new_weight0 > hi) continue;
    side[v] ^= 1;
    weight0 = new_weight0;
    moved = true;
  }
  return moved;
}

/// Multilevel bisection of a weighted graph.
std::vector<int> MultilevelBisect(const WGraph& g,
                                  const MetisLikeParams& params, Rng& rng) {
  if (g.n() <= params.coarsen_target) {
    auto side = GrowBisection(g, rng);
    for (int i = 0; i < 4 && RefineOnce(g, side, params.balance); ++i) {
    }
    return side;
  }
  std::vector<NodeId> match;
  NodeId coarse_n = HeavyEdgeMatch(g, rng, match);
  if (coarse_n >= g.n() * 95 / 100) {
    // Matching stalled (e.g. star graphs): fall back to direct bisection.
    auto side = GrowBisection(g, rng);
    for (int i = 0; i < 4 && RefineOnce(g, side, params.balance); ++i) {
    }
    return side;
  }
  WGraph coarse = Contract(g, match, coarse_n);
  std::vector<int> coarse_side = MultilevelBisect(coarse, params, rng);
  std::vector<int> side(g.n());
  for (NodeId v = 0; v < g.n(); ++v) side[v] = coarse_side[match[v]];
  for (int i = 0; i < 4 && RefineOnce(g, side, params.balance); ++i) {
  }
  return side;
}

/// Recursive-bisection ordering over a node subset.
void OrderRecursive(const Graph& graph, std::vector<NodeId> nodes,
                    const MetisLikeParams& params, Rng& rng,
                    std::vector<NodeId>& global_to_local, NodeId& next_rank,
                    std::vector<NodeId>& perm) {
  if (nodes.size() <= params.leaf_size) {
    // Number leaves in their current (locality-bearing) order.
    for (NodeId v : nodes) perm[v] = next_rank++;
    return;
  }
  WGraph wg = InducedUndirected(graph, nodes, global_to_local);
  std::vector<int> side = MultilevelBisect(wg, params, rng);
  std::vector<NodeId> left, right;
  left.reserve(nodes.size() / 2 + 1);
  right.reserve(nodes.size() / 2 + 1);
  for (NodeId i = 0; i < nodes.size(); ++i) {
    (side[i] == 0 ? left : right).push_back(nodes[i]);
  }
  if (left.empty() || right.empty()) {
    // Degenerate split (tiny or pathological graphs): halve arbitrarily
    // to guarantee progress.
    left.assign(nodes.begin(), nodes.begin() + nodes.size() / 2);
    right.assign(nodes.begin() + nodes.size() / 2, nodes.end());
  }
  OrderRecursive(graph, std::move(left), params, rng, global_to_local,
                 next_rank, perm);
  OrderRecursive(graph, std::move(right), params, rng, global_to_local,
                 next_rank, perm);
}

}  // namespace

std::uint64_t EdgeCut(const Graph& graph, const std::vector<int>& side) {
  GORDER_CHECK(side.size() == graph.NumNodes());
  std::uint64_t cut = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      cut += side[v] != side[w];
    }
  }
  return cut;
}

std::vector<int> BisectNodes(const Graph& graph,
                             const std::vector<NodeId>& nodes,
                             const MetisLikeParams& params, Rng& rng,
                             std::vector<NodeId>& global_to_local) {
  WGraph wg = InducedUndirected(graph, nodes, global_to_local);
  return MultilevelBisect(wg, params, rng);
}

std::vector<NodeId> MetisLikeOrder(const Graph& graph,
                                   const MetisLikeParams& params) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;
  Rng rng(params.seed);
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  std::vector<NodeId> global_to_local(n, kInvalidNode);
  NodeId next_rank = 0;
  OrderRecursive(graph, std::move(nodes), params, rng, global_to_local,
                 next_rank, perm);
  GORDER_CHECK(next_rank == n);
  return perm;
}

}  // namespace gorder::order
