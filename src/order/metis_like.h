#ifndef GORDER_ORDER_METIS_LIKE_H_
#define GORDER_ORDER_METIS_LIKE_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gorder::order {

/// A from-scratch multilevel graph partitioner in the Metis mould
/// (Karypis & Kumar). The original paper used Metis as one of its
/// baseline orderings but could only run it on the three smallest
/// datasets; the replication dropped it entirely for memory reasons.
/// This implementation restores the baseline with the standard
/// multilevel recipe, engineered to stay O(m) in memory:
///
///   1. COARSEN:   repeated heavy-edge matching over the undirected
///                 view until the graph is below `coarsen_target` nodes
///                 or shrinkage stalls;
///   2. PARTITION: greedy BFS-region growing bisection on the coarsest
///                 graph;
///   3. UNCOARSEN: project the bisection back up, refining at every
///                 level with a boundary Kernighan-Lin/FM pass
///                 (single sweep, positive-gain moves with balance
///                 constraint).
///
/// The ordering is obtained by recursive bisection: each side is
/// numbered contiguously, recursing until parts fall below
/// `leaf_size`, so highly-connected regions share id ranges — the same
/// mechanism by which Metis orderings improve cache locality.
struct MetisLikeParams {
  NodeId leaf_size = 64;        // stop recursing below this many nodes
  NodeId coarsen_target = 256;  // coarsest graph size per bisection
  double balance = 0.1;         // allowed deviation from a perfect split
  std::uint64_t seed = 42;
};

std::vector<NodeId> MetisLikeOrder(const Graph& graph,
                                   const MetisLikeParams& params = {});

/// One multilevel bisection of the subgraph induced by `nodes`:
/// side[i] gives the side (0 or 1) of nodes[i]. `global_to_local` is
/// caller-owned scratch with NumNodes() entries, all kInvalidNode on
/// entry and restored on return, so callers running many bisections
/// (the partition-parallel Gorder front-end) avoid an O(n) allocation
/// per call. Deterministic in (graph, nodes, params, rng state); a
/// degenerate all-one-side result is possible on pathological inputs
/// and is the caller's to handle.
std::vector<int> BisectNodes(const Graph& graph,
                             const std::vector<NodeId>& nodes,
                             const MetisLikeParams& params, Rng& rng,
                             std::vector<NodeId>& global_to_local);

/// Edge-cut of a 2-way partition over the undirected multiset view
/// (exposed for tests and the partitioner's own refinement).
std::uint64_t EdgeCut(const Graph& graph, const std::vector<int>& side);

}  // namespace gorder::order

#endif  // GORDER_ORDER_METIS_LIKE_H_
