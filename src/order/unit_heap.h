#ifndef GORDER_ORDER_UNIT_HEAP_H_
#define GORDER_ORDER_UNIT_HEAP_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace gorder::order {

/// Priority queue specialised for Gorder's access pattern: every key
/// change is +-1 ("unit"), so elements live in intrusive doubly-linked
/// bucket lists indexed by key and all operations are O(1) (ExtractMax is
/// amortised O(1): the max-key cursor only descends by as much as the
/// increments raised it).
///
/// This replaces the general-purpose heap the naive greedy would need and
/// is the data structure the paper calls the "unit heap" (replication
/// §2.3 "a complex structure called unit heap, made of a linked list and
/// pointers to different positions").
class UnitHeap {
 public:
  /// All n elements start present with key 0.
  explicit UnitHeap(NodeId n);

  NodeId size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool Contains(NodeId v) const { return in_heap_[v]; }
  std::int32_t KeyOf(NodeId v) const { return key_[v]; }

  /// key[v] += 1. v must be present.
  void Increment(NodeId v);
  /// key[v] -= 1. v must be present with key > 0.
  void Decrement(NodeId v);

  /// Removes and returns an element of maximum key (ties: the most
  /// recently filed, which biases toward recently-touched nodes exactly
  /// like the reference implementation). Returns kInvalidNode if empty.
  NodeId ExtractMax();

  /// Removes v without returning it (used when the caller seeds the
  /// ordering with a chosen node). v must be present.
  void Remove(NodeId v);

  /// Re-inserts a previously removed element at the given key (used by
  /// the lazy-decrement Gorder variant to re-file a popped node whose
  /// key was stale). v must be absent; key must be >= 0.
  void Insert(NodeId v, std::int32_t key);

 private:
  void Unlink(NodeId v);
  void PushFront(NodeId v, std::int32_t key);

  std::vector<std::int32_t> key_;
  std::vector<NodeId> prev_;
  std::vector<NodeId> next_;
  std::vector<NodeId> bucket_head_;  // indexed by key
  std::vector<bool> in_heap_;
  NodeId size_ = 0;
  std::int32_t max_key_ = 0;
};

}  // namespace gorder::order

#endif  // GORDER_ORDER_UNIT_HEAP_H_
