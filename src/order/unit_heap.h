#ifndef GORDER_ORDER_UNIT_HEAP_H_
#define GORDER_ORDER_UNIT_HEAP_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/types.h"

namespace gorder::order {

/// Priority queue specialised for Gorder's access pattern: every key
/// change is +-1 ("unit"), so elements live in intrusive doubly-linked
/// bucket lists indexed by key and all operations are O(1) (ExtractMax
/// locates the top bucket through a two-level occupancy bitmap, so even
/// the degenerate star-graph pattern — one key towering over a flat
/// remainder — costs a handful of word scans, not a walk over every
/// empty bucket).
///
/// This replaces the general-purpose heap the naive greedy would need and
/// is the data structure the paper calls the "unit heap" (replication
/// §2.3 "a complex structure called unit heap, made of a linked list and
/// pointers to different positions").
///
/// Hot-state layout (DESIGN.md "Hot per-vertex state"): key, both list
/// links, the presence bit and the lazy-decrement debt of a vertex are
/// packed into one 16-byte slot, four slots per cache line, so the
/// Gorder inner loop touches one line per scored vertex where the
/// previous four parallel arrays touched four. Each bucket's list is
/// circular through a sentinel slot (stored past the vertex slots, at
/// index n + bucket), so Unlink and PushFront are straight-line code:
/// no head/tail/null special cases, which on the small L2-resident
/// heaps of the replication datasets matters more than cache misses —
/// the greedy's cost is mispredicted branches and dependent link
/// updates. Methods are defined inline so the Gorder kernel compiles
/// them into its loop.
///
/// Per-op observability tallies are plain member counters, flushed to
/// the `unit_heap.*` obs counters on destruction (or FlushObsCounters):
/// the hot path pays one register increment instead of an atomic add.
class UnitHeap {
 public:
  /// All n elements start present with key 0 and zero debt.
  explicit UnitHeap(NodeId n);
  ~UnitHeap();
  UnitHeap(const UnitHeap&) = delete;
  UnitHeap& operator=(const UnitHeap&) = delete;

  NodeId size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool Contains(NodeId v) const { return (slots_[v].bits & 1u) != 0; }
  /// Keys persist after extraction/removal (SlashBurn reads the key of a
  /// node it just extracted).
  std::int32_t KeyOf(NodeId v) const { return slots_[v].key; }

  /// key[v] += 1. v must be present.
  void Increment(NodeId v) {
    GORDER_DCHECK(Contains(v));
    ++n_increments_;
    Relink(v, slots_[v].key + 1);
  }

  /// key[v] -= 1. v must be present with key > 0.
  void Decrement(NodeId v) {
    GORDER_DCHECK(Contains(v));
    GORDER_DCHECK(slots_[v].key > 0);
    ++n_decrements_;
    Relink(v, slots_[v].key - 1);
  }

  /// Removes and returns an element of maximum key (ties: the most
  /// recently filed, which biases toward recently-touched nodes exactly
  /// like the reference implementation). Returns kInvalidNode if empty.
  NodeId ExtractMax() {
    if (size_ == 0) return kInvalidNode;
    ++n_extracts_;
    std::uint32_t b = HighestOccupied(static_cast<std::uint32_t>(max_key_));
    // Occupancy bits are cleared lazily, here: Unlink leaves the bit of
    // a bucket it empties set, keeping the relink hot path free of
    // occupancy bookkeeping. Every stale bit costs one extra bitmap
    // probe exactly once.
    while (slots_[n_ + b].next == n_ + b) {
      ClearOcc(b);
      b = HighestOccupied(b);
    }
    max_key_ = static_cast<std::int32_t>(b);
    NodeId v = slots_[n_ + b].next;
    Unlink(v);
    slots_[v].bits &= ~1u;
    --size_;
    return v;
  }

  /// Removes v without returning it (used when the caller seeds the
  /// ordering with a chosen node). v must be present.
  void Remove(NodeId v) {
    GORDER_DCHECK(Contains(v));
    ++n_removes_;
    Unlink(v);
    slots_[v].bits &= ~1u;
    --size_;
  }

  /// Re-inserts a previously removed element at the given key (used by
  /// the lazy-decrement Gorder variant to re-file a popped node whose
  /// key was stale). v must be absent; key must be >= 0.
  void Insert(NodeId v, std::int32_t key) {
    GORDER_DCHECK(!Contains(v));
    GORDER_DCHECK(key >= 0);
    ++n_inserts_;
    slots_[v].bits |= 1u;
    ++size_;
    PushFront(v, key);
  }

  // ---- Fused hot-path operations (the Gorder kernel) ----
  // Each folds the Contains() filter into the op, so a scored vertex
  // costs exactly one slot load plus one relink.

  /// key[v] += delta if present (delta may be negative, the result must
  /// stay >= 0); returns whether v was present. Equivalent to |delta|
  /// unit steps: the op tallies count unit steps, and the final bucket
  /// position matches applying the steps back-to-back.
  bool BumpBy(NodeId v, std::int32_t delta) {
    Slot& s = slots_[v];
    if ((s.bits & 1u) == 0) return false;
    if (delta > 0) {
      n_increments_ += static_cast<std::uint64_t>(delta);
    } else {
      n_decrements_ += static_cast<std::uint64_t>(-delta);
    }
    GORDER_DCHECK(s.key + delta >= 0);
    Relink(v, s.key + delta);
    return true;
  }

  /// Lazy-decrement debt += delta if present (no relink — this is what
  /// makes the paper's lazy mode cheap); returns whether v was present.
  bool AddDebtBy(NodeId v, std::uint32_t delta) {
    Slot& s = slots_[v];
    if ((s.bits & 1u) == 0) return false;
    s.bits += delta << 1;
    return true;
  }

  /// Pending lazy-decrement debt of v (0 unless AddDebtBy was used).
  std::int32_t DebtOf(NodeId v) const {
    return static_cast<std::int32_t>(slots_[v].bits >> 1);
  }
  void ClearDebt(NodeId v) { slots_[v].bits &= 1u; }

  /// Software prefetch of v's slot, for adjacency scans that will bump v
  /// a few iterations from now.
  void PrefetchSlot(NodeId v) const {
    __builtin_prefetch(&slots_[v], 1, 3);
  }

  /// Adds the batched op tallies to the `unit_heap.*` obs counters and
  /// zeroes them. Called by the destructor; call explicitly to observe
  /// counters while the heap is alive.
  void FlushObsCounters();

 private:
  // One cache-line quarter of hot state per vertex: key, intrusive list
  // links, presence bit (bit 0) and lazy debt (bits 1..31).
  struct Slot {
    std::int32_t key;
    NodeId prev;
    NodeId next;
    std::uint32_t bits;
  };
  static_assert(sizeof(Slot) == 16, "4 slots per 64-byte cache line");

  // Circular-list splice-out: two unconditional stores, no branches.
  // If this empties the bucket, its occupancy bit goes stale;
  // ExtractMax cleans it up.
  void Unlink(NodeId v) {
    Slot& s = slots_[v];
    NodeId p = s.prev;
    NodeId nx = s.next;
    slots_[p].next = nx;
    slots_[nx].prev = p;
  }

  // Splice-in right after the sentinel (the bucket front). The
  // occupancy bit only needs setting when the bucket was empty AND its
  // stale bit was already reclaimed — a rarely-taken branch.
  void PushFront(NodeId v, std::int32_t key) {
    std::uint32_t b = static_cast<std::uint32_t>(key);
    NodeId t = n_ + b;
    if (t >= slots_.size()) GrowBuckets(b);
    NodeId head = slots_[t].next;
    Slot& s = slots_[v];
    s.prev = t;
    s.next = head;
    slots_[head].prev = v;
    slots_[t].next = v;
    if (head == t) SetOcc(b);
    s.key = key;
    if (key > max_key_) max_key_ = key;
  }

  // Unlink + PushFront fused for +-1 key moves (the dominant op).
  void Relink(NodeId v, std::int32_t new_key) {
    Unlink(v);
    PushFront(v, new_key);
  }

  void SetOcc(std::uint32_t b) {
    occ_[b >> 6] |= 1ull << (b & 63);
    occ_sum_[b >> 12] |= 1ull << ((b >> 6) & 63);
  }
  void ClearOcc(std::uint32_t b) {
    std::uint64_t w = (occ_[b >> 6] &= ~(1ull << (b & 63)));
    if (w == 0) occ_sum_[b >> 12] &= ~(1ull << ((b >> 6) & 63));
  }

  /// Index of the highest occupied bucket <= hint. At least one bucket
  /// must be occupied. Cost: one occ word, then summary words (each
  /// covering 4096 buckets) until a hit — the `unit_heap.scan_words`
  /// counter records how many, and the star-graph regression test pins
  /// the bound.
  std::uint32_t HighestOccupied(std::uint32_t hint) {
    std::uint32_t wi = hint >> 6;
    ++n_scan_words_;
    std::uint64_t w = occ_[wi] & (~0ull >> (63 - (hint & 63)));
    if (w != 0) return (wi << 6) + 63 - __builtin_clzll(w);
    // Highest occupied occ word strictly below wi, via the summary.
    std::uint32_t si = wi >> 6;
    std::uint64_t s =
        (wi & 63) == 0 ? 0 : occ_sum_[si] & ((1ull << (wi & 63)) - 1);
    while (true) {
      ++n_scan_words_;
      if (s != 0) {
        std::uint32_t wj = (si << 6) + 63 - __builtin_clzll(s);
        return (wj << 6) + 63 - __builtin_clzll(occ_[wj]);
      }
      GORDER_DCHECK(si > 0);
      s = occ_sum_[--si];
    }
  }

  void GrowBuckets(std::uint32_t key);

  // Vertex slots [0, n), then one sentinel slot per bucket at n + b
  // (the links live in a single id space, so list splices never branch
  // on "is this the head").
  std::vector<Slot> slots_;
  NodeId n_ = 0;
  std::vector<std::uint64_t> occ_;   // bit per bucket: non-empty
  std::vector<std::uint64_t> occ_sum_;  // bit per occ_ word: non-zero
  NodeId size_ = 0;
  std::int32_t max_key_ = 0;  // upper bound; exact after ExtractMax

  // Batched observability tallies (see FlushObsCounters).
  std::uint64_t n_increments_ = 0;
  std::uint64_t n_decrements_ = 0;
  std::uint64_t n_extracts_ = 0;
  std::uint64_t n_inserts_ = 0;
  std::uint64_t n_removes_ = 0;
  std::uint64_t n_scan_words_ = 0;
};

}  // namespace gorder::order

#endif  // GORDER_ORDER_UNIT_HEAP_H_
