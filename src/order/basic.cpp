// Original, Random, InDegSort and ChDFS orderings (replication §2.3).

#include <algorithm>
#include <numeric>
#include <vector>

#include "order/ordering.h"
#include "util/logging.h"

namespace gorder::order {

std::vector<NodeId> OriginalOrder(const Graph& graph) {
  return IdentityPermutation(graph.NumNodes());
}

std::vector<NodeId> RandomOrder(const Graph& graph, Rng& rng) {
  std::vector<NodeId> perm = IdentityPermutation(graph.NumNodes());
  rng.Shuffle(perm);
  return perm;
}

std::vector<NodeId> InDegSortOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  // `order[rank] = node`: stable sort by descending in-degree, so equal
  // degrees keep their original relative position (deterministic).
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return graph.InDegree(a) > graph.InDegree(b);
  });
  return InvertPermutation(order);
}

std::vector<NodeId> ChDfsOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  const auto& off = graph.out_offsets();
  const auto& nbr = graph.out_neighbors();
  std::vector<NodeId> perm(n, kInvalidNode);
  NodeId clock = 0;
  struct Frame {
    NodeId node;
    EdgeId cursor;
  };
  std::vector<Frame> stack;
  // Children-DFS: a plain depth-first traversal where children follow
  // the original index order; the resulting discovery order is the
  // permutation. Roots are taken in ascending id order per component.
  for (NodeId root = 0; root < n; ++root) {
    if (perm[root] != kInvalidNode) continue;
    perm[root] = clock++;
    stack.push_back({root, off[root]});
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.cursor == off[top.node + 1]) {
        stack.pop_back();
        continue;
      }
      NodeId v = nbr[top.cursor++];
      if (perm[v] == kInvalidNode) {
        perm[v] = clock++;
        stack.push_back({v, off[v]});
      }
    }
  }
  return perm;
}

}  // namespace gorder::order
