// Reverse Cuthill-McKee ordering (Cuthill & McKee 1969; replication §2.3).

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "order/ordering.h"
#include "util/logging.h"

namespace gorder::order {

namespace {

GORDER_OBS_COUNTER(c_components, "rcm.components");
GORDER_OBS_COUNTER(c_nodes_placed, "rcm.nodes_placed");

}  // namespace

std::vector<NodeId> RcmOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> cm_order;  // cm_order[rank] = node
  cm_order.reserve(n);
  std::vector<bool> visited(n, false);

  // Component seeds: lowest undirected degree first (the classical
  // pseudo-peripheral heuristic), ties by id. Precompute a degree-sorted
  // node list and scan it for unvisited seeds.
  std::vector<NodeId> by_degree(n);
  for (NodeId v = 0; v < n; ++v) by_degree[v] = v;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return graph.UndirectedDegree(a) <
                            graph.UndirectedDegree(b);
                   });
  std::size_t seed_scan = 0;

  std::vector<NodeId> nbrs;  // scratch: sorted-by-degree frontier batch
  while (cm_order.size() < n) {
    while (visited[by_degree[seed_scan]]) ++seed_scan;
    NodeId seed = by_degree[seed_scan];
    GORDER_OBS_INC(c_components);
    visited[seed] = true;
    cm_order.push_back(seed);
    // BFS over the undirected view; each node's unvisited neighbours are
    // appended in ascending-degree order.
    for (std::size_t head = cm_order.size() - 1; head < cm_order.size();
         ++head) {
      NodeId u = cm_order[head];
      nbrs.clear();
      auto consider = [&](NodeId v) {
        if (!visited[v]) {
          visited[v] = true;
          nbrs.push_back(v);
        }
      };
      for (NodeId v : graph.OutNeighbors(u)) consider(v);
      for (NodeId v : graph.InNeighbors(u)) consider(v);
      std::sort(nbrs.begin(), nbrs.end(), [&](NodeId a, NodeId b) {
        NodeId da = graph.UndirectedDegree(a);
        NodeId db = graph.UndirectedDegree(b);
        return da != db ? da < db : a < b;
      });
      for (NodeId v : nbrs) cm_order.push_back(v);
    }
  }

  GORDER_OBS_ADD(c_nodes_placed, cm_order.size());

  // Reverse the Cuthill-McKee order.
  std::vector<NodeId> perm(n);
  for (NodeId rank = 0; rank < n; ++rank) {
    perm[cm_order[rank]] = n - 1 - rank;
  }
  return perm;
}

}  // namespace gorder::order
