#ifndef GORDER_ORDER_PARALLEL_GORDER_H_
#define GORDER_ORDER_PARALLEL_GORDER_H_

#include <vector>

#include "graph/graph.h"
#include "order/ordering.h"

namespace gorder::order {

/// Partition-parallel Gorder — the parallelisation the paper's
/// discussion proposes ("A parallel version of Gorder could reduce this
/// problem", i.e. its construction cost).
///
/// Recipe:
///   1. split the node set into `num_parts` connected-ish regions with
///      the multilevel bisection partitioner (log2(num_parts) levels of
///      recursive bisection);
///   2. run the sequential Gorder greedy *within* each part on the
///      induced subgraph, in parallel worker threads;
///   3. concatenate the per-part arrangements (parts are laid out in
///      bisection order, so adjacent parts are topologically close too).
///
/// Cross-part edges are invisible to the per-part greedy, so the
/// achieved F is slightly below the sequential algorithm's — the
/// ablation bench quantifies the gap — while construction scales with
/// cores and, even single-threaded, benefits from smaller working sets.
///
/// Deterministic in (graph, params, num_parts) regardless of thread
/// scheduling: each part's sub-ordering is independent.
///
/// Runs on the shared pool from util/parallel.h; `num_threads = 0` uses
/// the global budget (`SetNumThreads` / GORDER_THREADS).
std::vector<NodeId> ParallelGorderOrder(const Graph& graph,
                                        const OrderingParams& params = {},
                                        int num_parts = 4,
                                        int num_threads = 0 /* = global */);

}  // namespace gorder::order

#endif  // GORDER_ORDER_PARALLEL_GORDER_H_
