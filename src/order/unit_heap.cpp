#include "order/unit_heap.h"

#include <algorithm>

#include "obs/metrics.h"

namespace gorder::order {

namespace {

// Gorder's inner-loop operation counts (DESIGN.md "Observability"). The
// hot path batches them into plain member tallies; FlushObsCounters
// settles the totals here, so a full ordering pays a handful of atomic
// adds instead of one per heap op. `unit_heap.scan_words` counts bitmap
// words examined by ExtractMax's top-bucket search — the regression
// guard for the old O(max_key) empty-bucket walk.
GORDER_OBS_COUNTER(c_increments, "unit_heap.increments");
GORDER_OBS_COUNTER(c_decrements, "unit_heap.decrements");
GORDER_OBS_COUNTER(c_extracts, "unit_heap.extracts");
GORDER_OBS_COUNTER(c_inserts, "unit_heap.inserts");
GORDER_OBS_COUNTER(c_removes, "unit_heap.removes");
GORDER_OBS_COUNTER(c_scan_words, "unit_heap.scan_words");

}  // namespace

UnitHeap::UnitHeap(NodeId n)
    : slots_(n + 1, Slot{0, kInvalidNode, kInvalidNode, 1u}),
      n_(n),
      occ_(1, 0),
      occ_sum_(1, 0),
      size_(n) {
  // Build the key-0 bucket as a circle through its sentinel (slot n),
  // ids ascending from the front (node 0 first): deterministic
  // tie-breaking for the initial extraction, identical to pushing every
  // id in reverse.
  slots_[n].bits = 0;
  if (n == 0) {
    slots_[n].prev = slots_[n].next = n;
    return;
  }
  slots_[n].next = 0;
  slots_[n].prev = n - 1;
  for (NodeId v = 0; v < n; ++v) {
    slots_[v].prev = v == 0 ? n : v - 1;
    slots_[v].next = v + 1;
  }
  SetOcc(0);
}

UnitHeap::~UnitHeap() { FlushObsCounters(); }

void UnitHeap::GrowBuckets(std::uint32_t key) {
  const std::size_t old_buckets = slots_.size() - n_;
  const std::size_t need = n_ + static_cast<std::size_t>(key) + 1;
  if (need > slots_.capacity()) {
    slots_.reserve(std::max(need, 2 * slots_.capacity()));
  }
  slots_.resize(need, Slot{0, kInvalidNode, kInvalidNode, 0});
  for (std::size_t b = old_buckets; b <= key; ++b) {
    NodeId t = n_ + static_cast<NodeId>(b);
    slots_[t].prev = slots_[t].next = t;  // empty circle
  }
  occ_.resize((key + 64) / 64, 0);
  occ_sum_.resize((occ_.size() + 63) / 64, 0);
}

void UnitHeap::FlushObsCounters() {
  GORDER_OBS_ADD(c_increments, n_increments_);
  GORDER_OBS_ADD(c_decrements, n_decrements_);
  GORDER_OBS_ADD(c_extracts, n_extracts_);
  GORDER_OBS_ADD(c_inserts, n_inserts_);
  GORDER_OBS_ADD(c_removes, n_removes_);
  GORDER_OBS_ADD(c_scan_words, n_scan_words_);
  n_increments_ = n_decrements_ = n_extracts_ = 0;
  n_inserts_ = n_removes_ = n_scan_words_ = 0;
}

}  // namespace gorder::order
