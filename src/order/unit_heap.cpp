#include "order/unit_heap.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace gorder::order {

namespace {

// Gorder's inner-loop operation counts (DESIGN.md "Observability"): one
// uncontended sharded add per op when observability is on, a predicted
// branch when GORDER_OBS=off, nothing at all when compiled out.
GORDER_OBS_COUNTER(c_increments, "unit_heap.increments");
GORDER_OBS_COUNTER(c_decrements, "unit_heap.decrements");
GORDER_OBS_COUNTER(c_extracts, "unit_heap.extracts");
GORDER_OBS_COUNTER(c_inserts, "unit_heap.inserts");
GORDER_OBS_COUNTER(c_removes, "unit_heap.removes");

}  // namespace

UnitHeap::UnitHeap(NodeId n)
    : key_(n, 0),
      prev_(n, kInvalidNode),
      next_(n, kInvalidNode),
      bucket_head_(1, kInvalidNode),
      in_heap_(n, true),
      size_(n) {
  // Build the key-0 bucket by pushing ids in reverse so the list front is
  // node 0 (deterministic tie-breaking for the initial extraction).
  for (NodeId v = n; v > 0; --v) PushFront(v - 1, 0);
}

void UnitHeap::Unlink(NodeId v) {
  NodeId p = prev_[v];
  NodeId nx = next_[v];
  if (p != kInvalidNode) {
    next_[p] = nx;
  } else {
    bucket_head_[key_[v]] = nx;
  }
  if (nx != kInvalidNode) prev_[nx] = p;
  prev_[v] = next_[v] = kInvalidNode;
}

void UnitHeap::PushFront(NodeId v, std::int32_t key) {
  if (static_cast<std::size_t>(key) >= bucket_head_.size()) {
    bucket_head_.resize(key + 1, kInvalidNode);
  }
  NodeId head = bucket_head_[key];
  prev_[v] = kInvalidNode;
  next_[v] = head;
  if (head != kInvalidNode) prev_[head] = v;
  bucket_head_[key] = v;
  key_[v] = key;
  if (key > max_key_) max_key_ = key;
}

void UnitHeap::Increment(NodeId v) {
  GORDER_DCHECK(in_heap_[v]);
  GORDER_OBS_INC(c_increments);
  std::int32_t k = key_[v];
  Unlink(v);
  PushFront(v, k + 1);
}

void UnitHeap::Decrement(NodeId v) {
  GORDER_DCHECK(in_heap_[v]);
  GORDER_OBS_INC(c_decrements);
  std::int32_t k = key_[v];
  GORDER_DCHECK(k > 0);
  Unlink(v);
  PushFront(v, k - 1);
}

NodeId UnitHeap::ExtractMax() {
  if (size_ == 0) return kInvalidNode;
  GORDER_OBS_INC(c_extracts);
  while (bucket_head_[max_key_] == kInvalidNode) {
    GORDER_DCHECK(max_key_ > 0);
    --max_key_;
  }
  NodeId v = bucket_head_[max_key_];
  Unlink(v);
  in_heap_[v] = false;
  --size_;
  return v;
}

void UnitHeap::Insert(NodeId v, std::int32_t key) {
  GORDER_DCHECK(!in_heap_[v]);
  GORDER_OBS_INC(c_inserts);
  GORDER_DCHECK(key >= 0);
  in_heap_[v] = true;
  ++size_;
  PushFront(v, key);
}

void UnitHeap::Remove(NodeId v) {
  GORDER_DCHECK(in_heap_[v]);
  GORDER_OBS_INC(c_removes);
  Unlink(v);
  in_heap_[v] = false;
  --size_;
}

}  // namespace gorder::order
