#ifndef GORDER_ORDER_GORDER_H_
#define GORDER_ORDER_GORDER_H_

#include <vector>

#include "graph/graph.h"
#include "order/ordering.h"

namespace gorder::order {

/// Gorder (Wei et al., SIGMOD 2016): greedy window ordering.
///
/// Maintains a sliding window of the last `w` placed nodes and repeatedly
/// places the unplaced node v maximising
///     S(v, window) = sum_{u in window} Ss(v, u) + Sn(v, u)
/// where Sn counts direct edges between v and u (0..2) and Ss counts
/// common in-neighbours. Priorities live in a UnitHeap: placing a node
/// increments the key of every node it relates to, and a node falling out
/// of the window decrements the same keys, so each score update is O(1).
///
/// The sibling update through an in-neighbour u costs O(outdeg(u)); for
/// power-law graphs the paper caps this at high-degree nodes, and so does
/// `params.gorder_hub_cap` (0 disables the cap). The greedy is seeded
/// with the maximum in-degree node, and re-seeds implicitly on key-0
/// extractions when the graph is disconnected.
///
/// Returns `perm[old] = new`. The paper proves the window greedy is a
/// 1/(2w)-approximation of the optimal F(pi).
std::vector<NodeId> GorderOrder(const Graph& graph,
                                const OrderingParams& params = {});

}  // namespace gorder::order

#endif  // GORDER_ORDER_GORDER_H_
