#ifndef GORDER_ORDER_GORDER_H_
#define GORDER_ORDER_GORDER_H_

#include <vector>

#include "graph/graph.h"
#include "order/ordering.h"

namespace gorder::order {

/// Gorder (Wei et al., SIGMOD 2016): greedy window ordering.
///
/// Maintains a sliding window of the last `w` placed nodes and repeatedly
/// places the unplaced node v maximising
///     S(v, window) = sum_{u in window} Ss(v, u) + Sn(v, u)
/// where Sn counts direct edges between v and u (0..2) and Ss counts
/// common in-neighbours. Priorities live in a UnitHeap: placing a node
/// increments the key of every node it relates to, and a node falling out
/// of the window decrements the same keys, so each score update is O(1).
///
/// The sibling update through an in-neighbour u costs O(outdeg(u)); for
/// power-law graphs the paper caps this at high-degree nodes, and so does
/// `params.gorder_hub_cap` (0 disables the cap). The greedy is seeded
/// with the maximum in-degree node, and re-seeds implicitly on key-0
/// extractions when the graph is disconnected.
///
/// Per-phase cost breakdown of one GorderOrder run, for
/// `gorder_cli --cmd=order --verbose` and profiling. Collecting it
/// selects a timed kernel instantiation (two clock reads per placement);
/// the permutation is bit-identical with or without stats.
struct GorderPhaseStats {
  double total_seconds = 0.0;
  double init_seconds = 0.0;     // heap build + seed selection
  double score_seconds = 0.0;    // window entry/exit score updates
  double extract_seconds = 0.0;  // ExtractMax + lazy refiles
  double window_seconds = 0.0;   // window ring + bookkeeping (residual)
  std::uint64_t places = 0;
  std::uint64_t score_updates = 0;
  std::uint64_t lazy_refiles = 0;
};

/// Returns `perm[old] = new`. The paper proves the window greedy is a
/// 1/(2w)-approximation of the optimal F(pi).
///
/// The inner loop is compiled per (neighbor score, sibling score, lazy
/// decrements, timed) configuration, with the per-vertex heap state
/// packed into single cache-line slots (see UnitHeap) and software
/// prefetch over the window's adjacency scans.
std::vector<NodeId> GorderOrder(const Graph& graph,
                                const OrderingParams& params = {},
                                GorderPhaseStats* stats = nullptr);

}  // namespace gorder::order

#endif  // GORDER_ORDER_GORDER_H_
