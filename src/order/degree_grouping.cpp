#include "order/degree_grouping.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace gorder::order {

std::vector<NodeId> OutDegSortOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return graph.OutDegree(a) > graph.OutDegree(b);
  });
  return InvertPermutation(order);
}

namespace {

double AverageOutDegree(const Graph& graph) {
  if (graph.NumNodes() == 0) return 0.0;
  return static_cast<double>(graph.NumEdges()) / graph.NumNodes();
}

}  // namespace

std::vector<NodeId> HubSortOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  const double avg = AverageOutDegree(graph);
  std::vector<NodeId> hubs, rest;
  for (NodeId v = 0; v < n; ++v) {
    (graph.OutDegree(v) > avg ? hubs : rest).push_back(v);
  }
  std::stable_sort(hubs.begin(), hubs.end(), [&](NodeId a, NodeId b) {
    return graph.OutDegree(a) > graph.OutDegree(b);
  });
  std::vector<NodeId> perm(n);
  NodeId rank = 0;
  for (NodeId v : hubs) perm[v] = rank++;
  for (NodeId v : rest) perm[v] = rank++;
  return perm;
}

std::vector<NodeId> HubClusterOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  const double avg = AverageOutDegree(graph);
  std::vector<NodeId> perm(n);
  NodeId rank = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (graph.OutDegree(v) > avg) perm[v] = rank++;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (graph.OutDegree(v) <= avg) perm[v] = rank++;
  }
  return perm;
}

std::vector<NodeId> DbgOrder(const Graph& graph, int num_groups) {
  GORDER_CHECK(num_groups >= 2);
  const NodeId n = graph.NumNodes();
  const double avg = std::max(1.0, AverageOutDegree(graph));
  // Group g holds degrees in [avg * 2^(g-1), avg * 2^g); group 0 is
  // everything below the average, the top group is unbounded.
  auto group_of = [&](NodeId v) {
    double d = graph.OutDegree(v);
    int g = 0;
    while (g + 1 < num_groups && d > avg * (1 << g)) ++g;
    return g;
  };
  std::vector<std::vector<NodeId>> groups(num_groups);
  for (NodeId v = 0; v < n; ++v) groups[group_of(v)].push_back(v);
  std::vector<NodeId> perm(n);
  NodeId rank = 0;
  for (int g = num_groups - 1; g >= 0; --g) {
    for (NodeId v : groups[g]) perm[v] = rank++;
  }
  return perm;
}

}  // namespace gorder::order
