#include "order/ordering.h"

#include <algorithm>

#include "order/annealing.h"
#include "order/boba.h"
#include "order/degree_grouping.h"
#include "order/gorder.h"
#include "order/metis_like.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace gorder::order {

namespace {

struct MethodInfo {
  Method method;
  const char* name;
};

constexpr MethodInfo kMethods[] = {
    {Method::kOriginal, "Original"},   {Method::kRandom, "Random"},
    {Method::kMinLa, "MinLA"},         {Method::kMinLogA, "MinLogA"},
    {Method::kRcm, "RCM"},             {Method::kInDegSort, "InDegSort"},
    {Method::kChDfs, "ChDFS"},         {Method::kSlashBurn, "SlashBurn"},
    {Method::kLdg, "LDG"},             {Method::kGorder, "Gorder"},
    {Method::kMetis, "Metis"},         {Method::kOutDegSort, "OutDegSort"},
    {Method::kHubSort, "HubSort"},     {Method::kHubCluster, "HubCluster"},
    {Method::kDbg, "DBG"},             {Method::kBoba, "BOBA"},
};

constexpr int kNumPaperMethods = 10;

AnnealingResult RunAnnealing(const Graph& graph, ArrangementEnergy energy,
                             const OrderingParams& params) {
  // Replication defaults: S = m steps, standard energy k = m / n
  // (or pure local search when requested).
  std::uint64_t steps =
      params.sa_steps != 0 ? params.sa_steps : graph.NumEdges();
  double k = params.sa_local_search ? 0.0
             : params.sa_standard_energy != 0.0
                 ? params.sa_standard_energy
                 : static_cast<double>(graph.NumEdges()) /
                       std::max<NodeId>(1, graph.NumNodes());
  Rng rng(params.seed);
  return AnnealArrangement(graph, energy, steps, k, rng);
}

}  // namespace

const std::string& MethodName(Method method) {
  static const std::vector<std::string>* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const auto& info : kMethods) names->push_back(info.name);
    return names;
  }();
  return (*kNames)[static_cast<int>(method)];
}

Method MethodFromName(const std::string& name) {
  for (const auto& info : kMethods) {
    if (name == info.name) return info.method;
  }
  GORDER_CHECK(false && "unknown ordering method name");
  __builtin_unreachable();
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method>* kAll = [] {
    auto* all = new std::vector<Method>();
    int i = 0;
    for (const auto& info : kMethods) {
      if (i++ < kNumPaperMethods) all->push_back(info.method);
    }
    return all;
  }();
  return *kAll;
}

const std::vector<Method>& AllMethodsExtended() {
  static const std::vector<Method>* kAll = [] {
    auto* all = new std::vector<Method>();
    for (const auto& info : kMethods) all->push_back(info.method);
    return all;
  }();
  return *kAll;
}

std::vector<NodeId> ComputeOrdering(const Graph& graph, Method method,
                                    const OrderingParams& params) {
  GORDER_OBS_SPAN(span, "order:" + MethodName(method));
  switch (method) {
    case Method::kOriginal:
      return OriginalOrder(graph);
    case Method::kRandom: {
      Rng rng(params.seed);
      return RandomOrder(graph, rng);
    }
    case Method::kMinLa:
      return RunAnnealing(graph, ArrangementEnergy::kLinear, params).perm;
    case Method::kMinLogA:
      return RunAnnealing(graph, ArrangementEnergy::kLog, params).perm;
    case Method::kRcm:
      return RcmOrder(graph);
    case Method::kInDegSort:
      return InDegSortOrder(graph);
    case Method::kChDfs:
      return ChDfsOrder(graph);
    case Method::kSlashBurn:
      return SlashBurnOrder(graph);
    case Method::kLdg:
      return LdgOrder(graph, params.ldg_bin_capacity);
    case Method::kGorder:
      return GorderOrder(graph, params);
    case Method::kMetis: {
      MetisLikeParams mp;
      mp.seed = params.seed;
      return MetisLikeOrder(graph, mp);
    }
    case Method::kOutDegSort:
      return OutDegSortOrder(graph);
    case Method::kHubSort:
      return HubSortOrder(graph);
    case Method::kHubCluster:
      return HubClusterOrder(graph);
    case Method::kDbg:
      return DbgOrder(graph);
    case Method::kBoba:
      return BobaOrder(graph);
  }
  GORDER_CHECK(false && "unhandled ordering method");
  __builtin_unreachable();
}

}  // namespace gorder::order
