#include "order/gorder.h"

#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "order/unit_heap.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gorder::order {

namespace {

// Inner-loop telemetry: `gorder.score_updates` counts every key bump
// applied (or deferred) by a window entry/exit, `gorder.lazy_refiles`
// counts pops re-filed to settle lazy-decrement debt, `gorder.places`
// counts nodes committed to the permutation. All are batched in the
// kernel and flushed once per ordering.
GORDER_OBS_COUNTER(c_score_updates, "gorder.score_updates");
GORDER_OBS_COUNTER(c_lazy_refiles, "gorder.lazy_refiles");
GORDER_OBS_COUNTER(c_places, "gorder.places");

// Prefetch distance (in ids) for adjacency scans: slots of ids this far
// ahead are pulled toward L1 while the current id is bumped. Heap slots
// are 16 bytes, adjacency ids 4, so the scan outruns the hardware
// streamer on the *indirect* slot accesses — exactly the pattern the
// paper blames for Gorder's own cost.
constexpr std::ptrdiff_t kPrefetchDist = 4;

/// The greedy loop, compiled per configuration so the per-edge branches
/// on the score terms, laziness and timing are hoisted out of the hot
/// path entirely. Semantically identical to the straightforward loop:
/// same bump order, same tie-breaks, bit-identical permutations.
template <bool kNeighbor, bool kSibling, bool kLazy, bool kTimed>
std::vector<NodeId> GorderKernel(const Graph& graph,
                                 const OrderingParams& params,
                                 GorderPhaseStats* stats) {
  const NodeId n = graph.NumNodes();
  const NodeId w = params.window;
  std::vector<NodeId> perm(n, kInvalidNode);

  Timer total_timer;
  double t_score = 0.0;
  double t_extract = 0.0;
  auto now = [&total_timer]() -> double {
    if constexpr (kTimed) return total_timer.Seconds();
    return 0.0;
  };

  UnitHeap heap(n);
  const NodeId hub_cap = params.gorder_hub_cap == 0
                             ? std::numeric_limits<NodeId>::max()
                             : params.gorder_hub_cap;
  const EdgeId* out_offsets = graph.out_offsets().data();
  const NodeId* out_neigh = graph.out_neighbors().data();
  const EdgeId* in_offsets = graph.in_offsets().data();
  const NodeId* in_neigh = graph.in_neighbors().data();

  std::uint64_t score_updates = 0;
  std::uint64_t lazy_refiles = 0;
  std::uint64_t places = 0;

  // Applies `bump` over [p, e) with the heap slots of ids kPrefetchDist
  // ahead prefetched (split main/tail loops keep the distance check out
  // of the steady state).
  auto scan = [&](const NodeId* p, const NodeId* e, auto&& bump) {
    const NodeId* main_end =
        e - p > kPrefetchDist ? e - kPrefetchDist : p;
    for (; p != main_end; ++p) {
      heap.PrefetchSlot(p[kPrefetchDist]);
      bump(*p);
    }
    for (; p != e; ++p) bump(*p);
  };

  // Score delta caused by `ve` entering or leaving the window, owed to
  // every related node:
  //   - Sn: out-neighbours of ve (edge ve->c) and in-neighbours of ve
  //     (edge c->ve);
  //   - Ss: co-out-neighbours of each in-neighbour u of ve (common
  //     in-neighbour u), skipping hubs beyond gorder_hub_cap.
  // The same rule applies on entry and exit, which keeps every key equal
  // to the (capped) score against the current window and never negative.
  auto apply = [&](NodeId ve, auto&& bump) {
    if constexpr (kNeighbor) {
      scan(out_neigh + out_offsets[ve], out_neigh + out_offsets[ve + 1],
           bump);
    }
    const NodeId* up = in_neigh + in_offsets[ve];
    const NodeId* ue = in_neigh + in_offsets[ve + 1];
    for (; up != ue; ++up) {
      const NodeId u = *up;
      if (up + kPrefetchDist < ue) heap.PrefetchSlot(up[kPrefetchDist]);
      if constexpr (kSibling) {
        // Cross-list prefetch: adjacency lists are short (average degree
        // ~10), so within-list prefetch alone cannot hide the miss on
        // the *next* sibling list. Pull the offsets a few in-neighbours
        // ahead and the first line of the next list while this one is
        // scanned.
        if (up + 4 < ue) __builtin_prefetch(&out_offsets[up[4]]);
        if (up + 1 != ue) {
          __builtin_prefetch(out_neigh + out_offsets[up[1]]);
        }
      }
      if constexpr (kNeighbor) bump(u);
      if constexpr (kSibling) {
        const EdgeId ub = out_offsets[u];
        const EdgeId uend = out_offsets[u + 1];
        if (uend - ub > hub_cap) continue;
        scan(out_neigh + ub, out_neigh + uend, bump);
      }
    }
  };

  auto bump_enter = [&](NodeId c) {
    if (heap.BumpBy(c, 1)) ++score_updates;
  };
  auto bump_exit = [&](NodeId c) {
    if constexpr (kLazy) {
      if (heap.AddDebtBy(c, 1)) ++score_updates;
    } else {
      if (heap.BumpBy(c, -1)) ++score_updates;
    }
  };

  // Seed: the maximum in-degree node (ties -> lowest id), as in the
  // reference implementation.
  NodeId seed = 0;
  {
    GORDER_OBS_SPAN(init_span, "gorder:init");
    for (NodeId v = 1; v < n; ++v) {
      if (graph.InDegree(v) > graph.InDegree(seed)) seed = v;
    }
  }
  double t_init = 0.0;
  if constexpr (kTimed) t_init = now();

  // Circular buffer holding the window (at most w most recent
  // placements).
  std::vector<NodeId> window(w, kInvalidNode);
  NodeId window_size = 0;
  NodeId window_head = 0;  // index of the oldest entry when full

  NodeId next_rank = 0;
  auto place = [&](NodeId v) {
    ++places;
    perm[v] = next_rank++;
    double t0 = 0.0;
    if constexpr (kTimed) t0 = now();
    apply(v, bump_enter);
    if (window_size == w) {
      NodeId oldest = window[window_head];
      apply(oldest, bump_exit);
      window[window_head] = v;
      window_head = window_head + 1 == w ? 0 : window_head + 1;
    } else {
      // head is 0 until the window first fills, so the next free slot
      // is just window_size.
      window[window_size] = v;
      ++window_size;
    }
    if constexpr (kTimed) t_score += now() - t0;
  };

  {
    GORDER_OBS_SPAN(greedy_span, "gorder:greedy");
    heap.Remove(seed);
    place(seed);
    while (next_rank < n) {
      double t0 = 0.0;
      if constexpr (kTimed) t0 = now();
      NodeId v = heap.ExtractMax();
      GORDER_DCHECK(v != kInvalidNode);
      if constexpr (kLazy) {
        while (heap.DebtOf(v) > 0) {
          // Stale key: settle the debt and re-file; the next pop yields
          // the true maximum (possibly v again, now with an exact key).
          ++lazy_refiles;
          std::int32_t true_key = heap.KeyOf(v) - heap.DebtOf(v);
          GORDER_DCHECK(true_key >= 0);
          heap.ClearDebt(v);
          heap.Insert(v, true_key);
          v = heap.ExtractMax();
          GORDER_DCHECK(v != kInvalidNode);
        }
      }
      if constexpr (kTimed) t_extract += now() - t0;
      place(v);
    }
    heap.FlushObsCounters();
    GORDER_OBS_ADD(c_score_updates, score_updates);
    GORDER_OBS_ADD(c_lazy_refiles, lazy_refiles);
    GORDER_OBS_ADD(c_places, places);
  }

  if constexpr (kTimed) {
    stats->total_seconds = total_timer.Seconds();
    stats->init_seconds = t_init;
    stats->score_seconds = t_score;
    stats->extract_seconds = t_extract;
    stats->window_seconds = std::max(
        0.0, stats->total_seconds - t_init - t_score - t_extract);
    stats->places = places;
    stats->score_updates = score_updates;
    stats->lazy_refiles = lazy_refiles;
  }
  return perm;
}

template <bool kTimed>
std::vector<NodeId> Dispatch(const Graph& graph,
                             const OrderingParams& params,
                             GorderPhaseStats* stats) {
  const bool nb = params.gorder_neighbor_score;
  const bool sib = params.gorder_sibling_score;
  const bool lazy = params.gorder_lazy_decrements;
  if (nb) {
    if (sib) {
      return lazy ? GorderKernel<true, true, true, kTimed>(graph, params,
                                                           stats)
                  : GorderKernel<true, true, false, kTimed>(graph, params,
                                                            stats);
    }
    return lazy ? GorderKernel<true, false, true, kTimed>(graph, params,
                                                          stats)
                : GorderKernel<true, false, false, kTimed>(graph, params,
                                                           stats);
  }
  if (sib) {
    return lazy ? GorderKernel<false, true, true, kTimed>(graph, params,
                                                          stats)
                : GorderKernel<false, true, false, kTimed>(graph, params,
                                                           stats);
  }
  return lazy ? GorderKernel<false, false, true, kTimed>(graph, params,
                                                         stats)
              : GorderKernel<false, false, false, kTimed>(graph, params,
                                                          stats);
}

}  // namespace

std::vector<NodeId> GorderOrder(const Graph& graph,
                                const OrderingParams& params,
                                GorderPhaseStats* stats) {
  GORDER_CHECK(params.window >= 1);
  if (graph.NumNodes() == 0) return {};
  if (stats != nullptr) {
    *stats = GorderPhaseStats{};
    return Dispatch<true>(graph, params, stats);
  }
  return Dispatch<false>(graph, params, stats);
}

}  // namespace gorder::order
