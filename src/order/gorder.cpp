#include "order/gorder.h"

#include "obs/metrics.h"
#include "order/unit_heap.h"
#include "util/logging.h"

namespace gorder::order {

namespace {

// Inner-loop telemetry: `gorder.score_updates` counts every key bump
// applied (or deferred) by a window entry/exit, `gorder.lazy_refiles`
// counts pops re-filed to settle lazy-decrement debt, `gorder.places`
// counts nodes committed to the permutation.
GORDER_OBS_COUNTER(c_score_updates, "gorder.score_updates");
GORDER_OBS_COUNTER(c_lazy_refiles, "gorder.lazy_refiles");
GORDER_OBS_COUNTER(c_places, "gorder.places");

}  // namespace

std::vector<NodeId> GorderOrder(const Graph& graph,
                                const OrderingParams& params) {
  const NodeId n = graph.NumNodes();
  const NodeId w = params.window;
  GORDER_CHECK(w >= 1);
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;

  UnitHeap heap(n);
  // Lazy-decrement mode: window-exit decrements accumulate here and are
  // settled only when the node surfaces at the top of the heap (the
  // paper's priority-queue optimisation). Keys in the heap are then
  // upper bounds on the true score, which is safe for a max-extraction
  // greedy: a popped node with pending debt is re-filed at its true key.
  std::vector<std::int32_t> pending(params.gorder_lazy_decrements ? n : 0,
                                    0);

  // Applies the score delta caused by `ve` entering (delta=+1) or leaving
  // (delta=-1) the window to every unplaced related node:
  //   - Sn: out-neighbours of ve (edge ve->c) and in-neighbours of ve
  //     (edge c->ve);
  //   - Ss: co-out-neighbours of each in-neighbour u of ve (common
  //     in-neighbour u), skipping hubs beyond gorder_hub_cap.
  // Placed nodes are no longer in the heap, so Contains() filters them;
  // the same rule applies on entry and exit, which keeps every key equal
  // to the (capped) score against the current window and never negative.
  auto apply = [&](NodeId ve, bool entering) {
    auto bump = [&](NodeId c) {
      if (!heap.Contains(c)) return;
      GORDER_OBS_INC(c_score_updates);
      if (entering) {
        heap.Increment(c);
      } else if (params.gorder_lazy_decrements) {
        ++pending[c];
      } else {
        heap.Decrement(c);
      }
    };
    if (params.gorder_neighbor_score) {
      for (NodeId c : graph.OutNeighbors(ve)) bump(c);
    }
    for (NodeId u : graph.InNeighbors(ve)) {
      if (params.gorder_neighbor_score) bump(u);
      if (!params.gorder_sibling_score) continue;
      if (params.gorder_hub_cap != 0 &&
          graph.OutDegree(u) > params.gorder_hub_cap) {
        continue;
      }
      for (NodeId c : graph.OutNeighbors(u)) bump(c);
    }
  };

  // Seed: the maximum in-degree node (ties -> lowest id), as in the
  // reference implementation.
  NodeId seed = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (graph.InDegree(v) > graph.InDegree(seed)) seed = v;
  }

  // Circular buffer holding the window (at most w most recent placements).
  std::vector<NodeId> window(w, kInvalidNode);
  NodeId window_size = 0;
  NodeId window_head = 0;  // index of the oldest entry when full

  NodeId next_rank = 0;
  auto place = [&](NodeId v) {
    GORDER_OBS_INC(c_places);
    perm[v] = next_rank++;
    apply(v, /*entering=*/true);
    if (window_size == w) {
      NodeId oldest = window[window_head];
      apply(oldest, /*entering=*/false);
      window[window_head] = v;
      window_head = (window_head + 1) % w;
    } else {
      window[(window_head + window_size) % w] = v;
      ++window_size;
    }
  };

  heap.Remove(seed);
  place(seed);
  while (next_rank < n) {
    NodeId v = heap.ExtractMax();
    GORDER_DCHECK(v != kInvalidNode);
    if (params.gorder_lazy_decrements && pending[v] > 0) {
      // Stale key: settle the debt and re-file; the loop will pop the
      // true maximum next (possibly v again, now with an exact key).
      GORDER_OBS_INC(c_lazy_refiles);
      std::int32_t true_key = heap.KeyOf(v) - pending[v];
      GORDER_DCHECK(true_key >= 0);
      pending[v] = 0;
      heap.Insert(v, true_key);
      continue;
    }
    place(v);
  }
  return perm;
}

}  // namespace gorder::order
