#ifndef GORDER_ORDER_ANNEALING_H_
#define GORDER_ORDER_ANNEALING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gorder::order {

/// Which arrangement energy the annealer minimises (replication §2.3):
///   kLinear: E = sum_{(u,v) in E} |pi_u - pi_v|          (MinLA)
///   kLog:    E = sum_{(u,v) in E} log2 |pi_u - pi_v|     (MinLogA)
enum class ArrangementEnergy { kLinear, kLog };

struct AnnealingResult {
  std::vector<NodeId> perm;  // perm[old] = new
  double final_energy = 0.0;
  std::uint64_t accepted_swaps = 0;
  std::uint64_t steps = 0;
};

/// Simulated annealing over index swaps, exactly the replication's
/// procedure: at step s of S the temperature is T = 1 - s/S; a swap of
/// two uniformly random nodes' indices with energy delta e is accepted if
/// e < 0, otherwise with probability exp(-e / (k * T)) where k is the
/// "standard energy". k <= 0 degenerates to pure local search (only
/// downhill swaps), which is what the replication found best.
AnnealingResult AnnealArrangement(const Graph& graph,
                                  ArrangementEnergy energy,
                                  std::uint64_t steps, double standard_energy,
                                  Rng& rng);

/// Evaluates the energy of the identity arrangement of `graph` (i.e. of
/// its current numbering) under `energy`.
double ArrangementEnergyOf(const Graph& graph, ArrangementEnergy energy);

}  // namespace gorder::order

#endif  // GORDER_ORDER_ANNEALING_H_
