#ifndef GORDER_ORDER_ORDERING_H_
#define GORDER_ORDER_ORDERING_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gorder::order {

/// The ten ordering methods of the study (replication §2.3), in its
/// canonical presentation order.
enum class Method {
  kOriginal,    // keep the dataset's own numbering
  kRandom,      // uniform shuffle (replication's added worst-case)
  kMinLa,       // simulated-annealing minimum linear arrangement
  kMinLogA,     // simulated-annealing minimum log arrangement
  kRcm,         // Reverse Cuthill-McKee
  kInDegSort,   // descending in-degree ("DegSort")
  kChDfs,       // children-depth-first traversal order
  kSlashBurn,   // simplified SlashBurn (hubs first, isolates last)
  kLdg,         // Linear Deterministic Greedy bins of cache-line size
  kGorder,      // the paper's contribution

  // ---- Extensions beyond the replication's ten ----
  kMetis,       // multilevel recursive-bisection partitioner ordering
                // (the original paper's Metis baseline, restored)
  kOutDegSort,  // descending out-degree
  kHubSort,     // hubs sorted first, rest in original order (IISWC'18)
  kHubCluster,  // hubs first in original order (pure partition)
  kDbg,         // degree-based grouping into power-of-two classes
  kBoba,        // first-appearance order over the CSR edge stream
                // (arXiv 2306.10410): streaming-speed baseline,
                // communication-free parallel, bit-identical at any
                // thread count
};

/// Tuning knobs. Defaults reproduce the papers' settings.
struct OrderingParams {
  std::uint64_t seed = 42;

  // Gorder: window size w (paper default 5) and the score terms, which
  // the ablation bench toggles.
  NodeId window = 5;
  bool gorder_sibling_score = true;
  bool gorder_neighbor_score = true;
  /// Optional approximation: in-neighbours whose out-degree exceeds this
  /// cap are skipped during sibling-score updates, trading ordering
  /// quality for speed on power-law graphs (see the ablation bench).
  /// 0 (default) = exact updates, as in the paper.
  NodeId gorder_hub_cap = 0;
  /// The paper's lazy-update optimisation: window-exit decrements are
  /// deferred to a per-node pending counter and only applied when the
  /// node reaches the top of the unit heap, halving heap traffic. Same
  /// objective; selection ties can resolve differently.
  bool gorder_lazy_decrements = false;

  // MinLA / MinLogA simulated annealing (replication §2.3 settles on
  // S = m steps and standard energy k = m/n; 0 means "derive from
  // graph"). sa_k_zero_local_search replicates their k = 0 local search.
  std::uint64_t sa_steps = 0;
  double sa_standard_energy = 0.0;
  bool sa_local_search = false;  // force k = 0 (only downhill swaps)

  // LDG bin capacity: 64 ids = one 64-byte cache line per bin of
  // 4-byte node ids... the paper's choice (k = 64).
  NodeId ldg_bin_capacity = 64;

  // Diameter/ChDFS/SlashBurn random choices use `seed`.
};

/// Computes the permutation (`perm[old] = new`) for `method`.
/// Deterministic in (graph, method, params).
std::vector<NodeId> ComputeOrdering(const Graph& graph, Method method,
                                    const OrderingParams& params = {});

/// Name <-> enum mapping ("Original", "Random", "MinLA", "MinLogA",
/// "RCM", "InDegSort", "ChDFS", "SlashBurn", "LDG", "Gorder", plus the
/// extension names "Metis", "OutDegSort", "HubSort", "HubCluster",
/// "DBG", "BOBA").
const std::string& MethodName(Method method);
Method MethodFromName(const std::string& name);  // aborts on unknown

/// The replication's ten methods, in its presentation order (what the
/// paper-reproduction benches sweep).
const std::vector<Method>& AllMethods();
/// The ten plus this repo's extensions (what the extension bench and
/// the CLI expose).
const std::vector<Method>& AllMethodsExtended();

// ---- Individual algorithms (exposed for tests and ablations) ----

std::vector<NodeId> OriginalOrder(const Graph& graph);
std::vector<NodeId> RandomOrder(const Graph& graph, Rng& rng);
std::vector<NodeId> InDegSortOrder(const Graph& graph);
std::vector<NodeId> ChDfsOrder(const Graph& graph);
std::vector<NodeId> RcmOrder(const Graph& graph);
std::vector<NodeId> SlashBurnOrder(const Graph& graph);
std::vector<NodeId> LdgOrder(const Graph& graph, NodeId bin_capacity);

}  // namespace gorder::order

#endif  // GORDER_ORDER_ORDERING_H_
