#include "order/boba.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "obs/metrics.h"
#include "util/parallel.h"

namespace gorder::order {

namespace {

GORDER_OBS_COUNTER(c_touched, "boba.touched_nodes");
GORDER_OBS_COUNTER(c_isolated, "boba.isolated_nodes");

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

void AtomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<NodeId> BobaOrder(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  if (n == 0) return {};
  const EdgeId* off = graph.out_offsets().data();
  const NodeId* nbr = graph.out_neighbors().data();

  // first_pos[v]: minimum occurrence position of v in the edge stream
  // (source of edge e at 2e, destination at 2e + 1 — a source is seen
  // just before its own destination, exactly like reading the pairs).
  // Min-reduction commutes, so concurrent updates over disjoint source
  // ranges yield the same fixpoint in any interleaving.
  std::unique_ptr<std::atomic<std::uint64_t>[]> first_pos(
      new std::atomic<std::uint64_t>[n]);
  ParallelFor(0, n, 4096, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) {
      first_pos[v].store(kNever, std::memory_order_relaxed);
    }
  });
  ParallelFor(0, n, 1024, [&](std::size_t b, std::size_t e) {
    for (std::size_t u = b; u < e; ++u) {
      const EdgeId lo = off[u];
      const EdgeId hi = off[u + 1];
      if (lo == hi) continue;
      AtomicMin(first_pos[u], 2 * static_cast<std::uint64_t>(lo));
      for (EdgeId ed = lo; ed < hi; ++ed) {
        AtomicMin(first_pos[nbr[ed]],
                  2 * static_cast<std::uint64_t>(ed) + 1);
      }
    }
  });

  // Rank touched nodes by first occurrence. Positions are unique (each
  // stream slot holds one node), so the sort has no ties and the result
  // is deterministic.
  std::vector<std::pair<std::uint64_t, NodeId>> touched;
  touched.reserve(n);
  std::vector<NodeId> perm(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    std::uint64_t p = first_pos[v].load(std::memory_order_relaxed);
    if (p != kNever) touched.emplace_back(p, v);
  }
  std::sort(touched.begin(), touched.end());
  NodeId rank = 0;
  for (const auto& [pos, v] : touched) perm[v] = rank++;
  // Isolated nodes (no out-edges and never a destination) follow in
  // ascending id order.
  for (NodeId v = 0; v < n; ++v) {
    if (perm[v] == kInvalidNode) perm[v] = rank++;
  }
  GORDER_OBS_ADD(c_touched, touched.size());
  GORDER_OBS_ADD(c_isolated, n - touched.size());
  return perm;
}

}  // namespace gorder::order
