#include "order/exact.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace gorder::order {

std::uint64_t PairScore(const Graph& graph, NodeId u, NodeId v) {
  std::uint64_t sn = (graph.HasEdge(u, v) ? 1 : 0) +
                     (graph.HasEdge(v, u) ? 1 : 0);
  auto a = graph.InNeighbors(u);
  auto b = graph.InNeighbors(v);
  std::uint64_t ss = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++ss;
      ++ia;
      ++ib;
    }
  }
  return sn + ss;
}

std::uint64_t ExactWindowOneOptimum(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  GORDER_CHECK(n >= 1 && n <= 20);
  // Precompute the symmetric pair-score matrix.
  std::vector<std::uint32_t> score(static_cast<std::size_t>(n) * n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      auto s = static_cast<std::uint32_t>(PairScore(graph, u, v));
      score[u * n + v] = s;
      score[v * n + u] = s;
    }
  }
  const std::uint32_t full = (1u << n) - 1;
  // dp[mask * n + last] = best F over orderings of `mask` ending at
  // `last`. Infeasible states stay at kUnset.
  constexpr std::uint64_t kUnset = ~0ULL;
  std::vector<std::uint64_t> dp(static_cast<std::size_t>(full + 1) * n,
                                kUnset);
  for (NodeId v = 0; v < n; ++v) dp[(1u << v) * n + v] = 0;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    for (NodeId last = 0; last < n; ++last) {
      std::uint64_t cur = dp[static_cast<std::size_t>(mask) * n + last];
      if (cur == kUnset) continue;
      for (NodeId next = 0; next < n; ++next) {
        if (mask & (1u << next)) continue;
        std::uint32_t nmask = mask | (1u << next);
        std::uint64_t cand = cur + score[last * n + next];
        auto& slot = dp[static_cast<std::size_t>(nmask) * n + next];
        if (slot == kUnset || cand > slot) slot = cand;
      }
    }
  }
  std::uint64_t best = 0;
  for (NodeId last = 0; last < n; ++last) {
    std::uint64_t v = dp[static_cast<std::size_t>(full) * n + last];
    if (v != kUnset) best = std::max(best, v);
  }
  return best;
}

}  // namespace gorder::order
