#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace gorder::obs {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("GORDER_OBS");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

/// Registry of every metric ever requested. Entries are leaked
/// intentionally: handles embedded in hot loops must outlive any static
/// destruction order.
struct Registry {
  std::mutex mu;
  std::map<std::string, Counter*> counters;
  std::map<std::string, Gauge*> gauges;
  std::map<std::string, Histogram*> histograms;
  std::vector<Counter*> counter_order;  // registration order, append-only

  static Registry& Get() {
    static Registry* r = new Registry;
    return *r;
  }
};

std::atomic<int> g_next_thread_index{0};

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{EnabledFromEnv()};
}  // namespace internal

int ThreadIndex() {
  thread_local int index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void SetEnabledForTest(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Observe(std::uint64_t v) {
  if (!Enabled()) return;
  int bucket = std::min(static_cast<int>(std::bit_width(v)),
                        kNumBuckets - 1);
  Shard& s = shards_[ThreadShard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::Sum() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::Buckets() const {
  std::vector<std::uint64_t> out(kNumBuckets, 0);
  for (const auto& s : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Counter& GetCounter(const std::string& name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(name, new Counter(name)).first;
    r.counter_order.push_back(it->second);
  }
  return *it->second;
}

Gauge& GetGauge(const std::string& name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(name, new Gauge(name)).first;
  }
  return *it->second;
}

Histogram& GetHistogram(const std::string& name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(name, new Histogram(name)).first;
  }
  return *it->second;
}

const Counter* FindCounter(const std::string& name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  return it == r.counters.end() ? nullptr : it->second;
}

std::vector<std::uint64_t> SnapshotCounterValues() {
  Registry& r = Registry::Get();
  std::vector<Counter*> handles;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    handles = r.counter_order;
  }
  std::vector<std::uint64_t> values;
  values.reserve(handles.size());
  for (const Counter* c : handles) values.push_back(c->Value());
  return values;
}

std::vector<std::string> CounterNames() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.counter_order.size());
  for (const Counter* c : r.counter_order) names.push_back(c->name());
  return names;
}

MetricsDump DumpMetrics() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsDump dump;
  for (const auto& [name, c] : r.counters) {
    dump.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : r.gauges) {
    dump.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : r.histograms) {
    dump.histograms.push_back({name, h->Count(), h->Sum(), h->Buckets()});
  }
  return dump;
}

void ResetAllMetrics() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->Reset();
  for (auto& [name, g] : r.gauges) g->Reset();
  for (auto& [name, h] : r.histograms) h->Reset();
}

}  // namespace gorder::obs
