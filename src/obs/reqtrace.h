#ifndef GORDER_OBS_REQTRACE_H_
#define GORDER_OBS_REQTRACE_H_

/// Per-request trace ring (DESIGN.md §17).
///
/// The serving path assigns every decoded request a 64-bit trace id and,
/// for a sampled subset (1-in-N, plus every slow request), pushes one
/// fixed-size record — queue wait, execute time, bytes in/out, epoch,
/// opcode, status — into a global fixed-capacity ring. `/tracez` and the
/// run report read the most recent records; old ones are overwritten.
///
/// Concurrency: completely lock-free. Writers claim a slot with a
/// fetch_add on the head index and publish via a per-slot sequence
/// number (odd while mid-write, even == index+records-written when
/// complete). Readers copy the slot then re-check the sequence; a torn
/// read is detected and the record skipped. Every field is atomic, so
/// TSan sees no races even while 8 writers hammer a reader.

#include <atomic>
#include <cstdint>
#include <vector>

namespace gorder::obs {

/// One completed (or overload-rejected) request, all times in
/// microseconds relative to obs::NowSeconds()'s epoch.
struct ReqTraceRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t start_us = 0;     // when the request was decoded
  std::uint64_t queue_us = 0;     // decode -> worker pickup
  std::uint64_t exec_us = 0;      // worker pickup -> reply encoded
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t epoch = 0;        // store epoch the request executed on
  std::uint16_t opcode = 0;
  std::uint16_t status = 0;
  bool slow = false;              // exceeded --slow-request-ms
};

/// Fixed-capacity overwrite-oldest trace ring. Push never blocks and
/// never allocates; SnapshotRecent allocates only its result vector.
class ReqTraceRing {
 public:
  static constexpr std::uint64_t kCapacity = 1024;  // power of two

  ReqTraceRing() = default;
  ReqTraceRing(const ReqTraceRing&) = delete;
  ReqTraceRing& operator=(const ReqTraceRing&) = delete;

  void Push(const ReqTraceRecord& rec);

  /// The most recent `max_records` fully published records, newest
  /// first. Records being overwritten mid-read are skipped.
  std::vector<ReqTraceRecord> SnapshotRecent(std::size_t max_records) const;

  /// Total records ever pushed (monotonic; exceeds kCapacity once the
  /// ring has wrapped).
  std::uint64_t TotalPushed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Clears the ring. Only safe with no concurrent writers.
  void ResetForTest();

 private:
  struct alignas(64) Slot {
    // seq == 2*(push index)+2 when slot holds push #index; odd while a
    // writer is mid-publish; 0 when never written.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> queue_us{0};
    std::atomic<std::uint64_t> exec_us{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint32_t> opcode{0};
    std::atomic<std::uint32_t> status{0};
    std::atomic<bool> slow{false};
  };

  std::atomic<std::uint64_t> head_{0};  // next push index
  Slot slots_[kCapacity];
};

/// The process-wide ring `/tracez` and the server publish into
/// (leak-on-purpose, same policy as the metric registry).
ReqTraceRing& GlobalReqTraceRing();

}  // namespace gorder::obs

#endif  // GORDER_OBS_REQTRACE_H_
