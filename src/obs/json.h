#ifndef GORDER_OBS_JSON_H_
#define GORDER_OBS_JSON_H_

/// Minimal JSON writer and parser — the repo's only JSON dependency.
/// The writer produces compact, strictly valid output: strings are
/// escaped per RFC 8259 (quote, backslash, control characters as \u00XX)
/// and non-finite doubles are emitted as null (JSON has no NaN/Inf).
/// The parser (ParseJson) reads back what the writer produces — it
/// exists so gordertop can consume kStats snapshots.
///
/// Usage is push-style and state-checked only by convention: callers
/// alternate Key()/value inside objects and bare values inside arrays.
/// Commas are inserted automatically.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gorder::obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the member name; the next value call supplies its value.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void Uint(std::uint64_t value);
  /// Non-finite values become null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key/value shorthands.
  void KV(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, std::int64_t value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, std::uint64_t value) {
    Key(key);
    Uint(value);
  }
  void KV(std::string_view key, int value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void KV(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Appends `s` escaped (without surrounding quotes) to `out` — exposed
  /// so tests can probe the escaper directly.
  static void AppendEscaped(std::string& out, std::string_view s);

 private:
  void MaybeComma();

  std::string out_;
  bool need_comma_ = false;
};

/// Parsed JSON value. Numbers keep both spellings: `num` always holds
/// the double value; `is_uint`/`uint` additionally hold an exact u64
/// when the token was a plain non-negative integer (metric counters
/// exceed 2^53, so the double alone would silently round).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  bool is_uint = false;
  std::uint64_t uint = 0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion-ordered lookup is unnecessary; metric maps are sorted.
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Numeric member as u64 (rounded from double if needed); `fallback`
  /// when absent or non-numeric.
  std::uint64_t U64(const std::string& key, std::uint64_t fallback = 0) const {
    const JsonValue* v = Find(key);
    if (v == nullptr || v->kind != Kind::kNumber) return fallback;
    return v->is_uint ? v->uint : static_cast<std::uint64_t>(v->num);
  }
};

/// Parses one complete JSON document (RFC 8259). \uXXXX escapes decode
/// to UTF-8, including UTF-16 surrogate pairs; unpaired surrogates are
/// rejected so string values are always well-formed UTF-8.
/// Returns false and fills `error` (with byte offset) on malformed
/// input; trailing non-whitespace after the document is an error.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace gorder::obs

#endif  // GORDER_OBS_JSON_H_
