#ifndef GORDER_OBS_JSON_H_
#define GORDER_OBS_JSON_H_

/// Minimal streaming JSON writer — the repo's only JSON dependency.
/// Produces compact, strictly valid output: strings are escaped per RFC
/// 8259 (quote, backslash, control characters as \u00XX) and non-finite
/// doubles are emitted as null (JSON has no NaN/Inf).
///
/// Usage is push-style and state-checked only by convention: callers
/// alternate Key()/value inside objects and bare values inside arrays.
/// Commas are inserted automatically.

#include <cstdint>
#include <string>
#include <string_view>

namespace gorder::obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the member name; the next value call supplies its value.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void Uint(std::uint64_t value);
  /// Non-finite values become null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key/value shorthands.
  void KV(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, std::int64_t value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, std::uint64_t value) {
    Key(key);
    Uint(value);
  }
  void KV(std::string_view key, int value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void KV(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Appends `s` escaped (without surrounding quotes) to `out` — exposed
  /// so tests can probe the escaper directly.
  static void AppendEscaped(std::string& out, std::string_view s);

 private:
  void MaybeComma();

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace gorder::obs

#endif  // GORDER_OBS_JSON_H_
