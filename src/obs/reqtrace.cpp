#include "obs/reqtrace.h"

#include <algorithm>

namespace gorder::obs {

void ReqTraceRing::Push(const ReqTraceRecord& rec) {
  const std::uint64_t index = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[index % kCapacity];
  // Seqlock publish: odd while writing, even-and-index-stamped when done.
  s.seq.store(2 * index + 1, std::memory_order_release);
  s.trace_id.store(rec.trace_id, std::memory_order_relaxed);
  s.start_us.store(rec.start_us, std::memory_order_relaxed);
  s.queue_us.store(rec.queue_us, std::memory_order_relaxed);
  s.exec_us.store(rec.exec_us, std::memory_order_relaxed);
  s.bytes_in.store(rec.bytes_in, std::memory_order_relaxed);
  s.bytes_out.store(rec.bytes_out, std::memory_order_relaxed);
  s.epoch.store(rec.epoch, std::memory_order_relaxed);
  s.opcode.store(rec.opcode, std::memory_order_relaxed);
  s.status.store(rec.status, std::memory_order_relaxed);
  s.slow.store(rec.slow, std::memory_order_relaxed);
  s.seq.store(2 * index + 2, std::memory_order_release);
  // Two writers a full ring-wrap apart can interleave on one slot; the
  // sequence check below rejects the loser's half-written view. Fields
  // are individually atomic, so even that interleaving is race-free.
}

std::vector<ReqTraceRecord> ReqTraceRing::SnapshotRecent(
    std::size_t max_records) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::vector<ReqTraceRecord> out;
  out.reserve(std::min<std::uint64_t>(max_records, kCapacity));
  const std::uint64_t oldest = head > kCapacity ? head - kCapacity : 0;
  for (std::uint64_t index = head; index-- > oldest;) {
    if (out.size() >= max_records) break;
    const Slot& s = slots_[index % kCapacity];
    const std::uint64_t want = 2 * index + 2;
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    ReqTraceRecord rec;
    rec.trace_id = s.trace_id.load(std::memory_order_relaxed);
    rec.start_us = s.start_us.load(std::memory_order_relaxed);
    rec.queue_us = s.queue_us.load(std::memory_order_relaxed);
    rec.exec_us = s.exec_us.load(std::memory_order_relaxed);
    rec.bytes_in = s.bytes_in.load(std::memory_order_relaxed);
    rec.bytes_out = s.bytes_out.load(std::memory_order_relaxed);
    rec.epoch = s.epoch.load(std::memory_order_relaxed);
    rec.opcode = static_cast<std::uint16_t>(
        s.opcode.load(std::memory_order_relaxed));
    rec.status = static_cast<std::uint16_t>(
        s.status.load(std::memory_order_relaxed));
    rec.slow = s.slow.load(std::memory_order_relaxed);
    // Re-check: a writer that started overwriting this slot mid-copy
    // bumped (or will bump) seq away from `want`.
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    out.push_back(rec);
  }
  return out;
}

void ReqTraceRing::ResetForTest() {
  head_.store(0, std::memory_order_release);
  for (Slot& s : slots_) s.seq.store(0, std::memory_order_release);
}

ReqTraceRing& GlobalReqTraceRing() {
  static ReqTraceRing* ring = new ReqTraceRing;
  return *ring;
}

}  // namespace gorder::obs
