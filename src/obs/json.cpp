#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace gorder::obs {

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view name) {
  MaybeComma();
  out_.push_back('"');
  AppendEscaped(out_, name);
  out_ += "\":";
  need_comma_ = false;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_.push_back('"');
  AppendEscaped(out_, value);
  out_.push_back('"');
  need_comma_ = true;
}

void JsonWriter::Int(std::int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::Uint(std::uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  MaybeComma();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  need_comma_ = true;
}

void JsonWriter::AppendEscaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace gorder::obs
