#include "obs/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gorder::obs {

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view name) {
  MaybeComma();
  out_.push_back('"');
  AppendEscaped(out_, name);
  out_ += "\":";
  need_comma_ = false;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_.push_back('"');
  AppendEscaped(out_, value);
  out_.push_back('"');
  need_comma_ = true;
}

void JsonWriter::Int(std::int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::Uint(std::uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  MaybeComma();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  need_comma_ = true;
}

namespace {

/// Recursive-descent parser over a string_view with a hard depth cap
/// (kStats documents nest 4 deep; 64 is generous and keeps adversarial
/// input from exhausting the stack).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!Value(out, 0)) {
      if (error != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof buf, " at byte %zu", pos_);
        *error = message_ + buf;
      }
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing data after document";
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char want) {
    if (pos_ >= text_.size() || text_[pos_] != want) return false;
    ++pos_;
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return Fail("bad \\u escape");
    }
    *out = code;
    return true;
  }

  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Full RFC 8259 \uXXXX decoding to UTF-8, including UTF-16
            // surrogate pairs. Unpaired surrogates are rejected — the
            // output must always be well-formed UTF-8.
            unsigned code = 0;
            if (!ParseHex4(&code)) return false;
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("unpaired low surrogate");
            }
            std::uint32_t cp = code;
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Fail("unpaired high surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("unpaired high surrogate");
              }
              cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    // Full RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // Leading zeros ("01"), bare signs and dangling exponents ("1e") are
    // rejected rather than best-effort-parsed: metrics consumers round-
    // trip these documents and must agree on what a number is.
    const std::size_t start = pos_;
    if (Consume('-')) { /* sign consumed */ }
    auto digit = [&] {
      return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
    };
    if (!digit()) return Fail("bad number");
    bool integral = true;
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (Consume('.')) {
      integral = false;
      if (!digit()) return Fail("bad number");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) return Fail("bad number");
      while (digit()) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->num = std::strtod(token.c_str(), nullptr);
    if (integral && token[0] != '-') {
      char* end = nullptr;
      errno = 0;
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_uint = true;
        out->uint = u;
      }
    }
    return true;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        SkipSpace();
        if (Consume(']')) return true;
        while (true) {
          out->array.emplace_back();
          if (!Value(&out->array.back(), depth + 1)) return false;
          SkipSpace();
          if (Consume(']')) return true;
          if (!Consume(',')) return Fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        SkipSpace();
        if (Consume('}')) return true;
        while (true) {
          SkipSpace();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipSpace();
          if (!Consume(':')) return Fail("expected ':'");
          if (!Value(&out->object[key], depth + 1)) return false;
          SkipSpace();
          if (Consume('}')) return true;
          if (!Consume(',')) return Fail("expected ',' or '}'");
        }
      }
      default:
        return ParseNumber(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  Parser parser(text);
  return parser.Parse(out, error);
}

void JsonWriter::AppendEscaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace gorder::obs
