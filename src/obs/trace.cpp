#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"

namespace gorder::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::atomic<bool> g_capture{false};
std::atomic<bool> g_hw_spans{false};

/// Record store. A deque keeps references stable while spans close out of
/// order; both the push (span open) and the update (span close) take the
/// mutex, which is fine at phase granularity.
struct SpanStore {
  std::mutex mu;
  std::deque<SpanRecord> records;

  static SpanStore& Get() {
    static SpanStore* store = new SpanStore;
    return *store;
  }
};

/// Innermost open span per thread (indices into the record store).
thread_local std::vector<std::int64_t> t_open_spans;

void WriteHwJson(JsonWriter& json, const cachesim::HwStats& hw) {
  json.BeginObject();
  json.KV("cycles", hw.cycles);
  json.KV("instructions", hw.instructions);
  json.KV("ipc", hw.Ipc());
  json.KV("l1d_loads", hw.l1d_loads);
  json.KV("l1d_misses", hw.l1d_misses);
  json.KV("l1_miss_rate", hw.L1MissRate());
  json.KV("llc_loads", hw.llc_loads);
  json.KV("llc_misses", hw.llc_misses);
  json.KV("llc_miss_rate", hw.LlcMissRate());
  json.KV("multiplexed", hw.multiplexed);
  json.KV("min_running_fraction", hw.MinRunningFraction());
  json.EndObject();
}

}  // namespace

double NowSeconds() {
  return std::chrono::duration<double>(Clock::now() - Epoch()).count();
}

Span::Span(std::string name) {
  if (!g_capture.load(std::memory_order_relaxed)) return;
  const int depth = static_cast<int>(t_open_spans.size());
  counters_at_start_ = SnapshotCounterValues();
  start_s_ = NowSeconds();
  SpanRecord record;
  record.name = std::move(name);
  record.parent = t_open_spans.empty() ? kNoParent : t_open_spans.back();
  record.depth = depth;
  record.tid = ThreadIndex();
  record.start_s = start_s_;
  SpanStore& store = SpanStore::Get();
  {
    std::lock_guard<std::mutex> lock(store.mu);
    index_ = static_cast<std::int64_t>(store.records.size());
    store.records.push_back(std::move(record));
  }
  t_open_spans.push_back(index_);
  if (g_hw_spans.load(std::memory_order_relaxed) &&
      depth < kHwSpanMaxDepth) {
    hw_ = new cachesim::HwCounters;
    if (!hw_->Start()) {
      delete hw_;
      hw_ = nullptr;
    }
  }
}

Span::~Span() {
  if (index_ == kNoParent) return;
  cachesim::HwStats hw;
  bool has_hw = false;
  if (hw_ != nullptr) {
    hw = hw_->Stop();
    has_hw = hw.valid;
    delete hw_;
  }
  const double end_s = NowSeconds();
  std::vector<std::uint64_t> counters_now = SnapshotCounterValues();
  std::vector<std::pair<std::string, std::uint64_t>> deltas;
  if (counters_now.size() >= counters_at_start_.size()) {
    std::vector<std::string> names = CounterNames();
    for (std::size_t i = 0; i < counters_now.size(); ++i) {
      std::uint64_t before =
          i < counters_at_start_.size() ? counters_at_start_[i] : 0;
      if (counters_now[i] > before && i < names.size()) {
        deltas.emplace_back(names[i], counters_now[i] - before);
      }
    }
  }
  t_open_spans.pop_back();
  SpanStore& store = SpanStore::Get();
  std::lock_guard<std::mutex> lock(store.mu);
  SpanRecord& record = store.records[index_];
  record.dur_s = end_s - start_s_;
  record.counter_deltas = std::move(deltas);
  record.has_hw = has_hw;
  record.hw = hw;
}

void StartCapture() { g_capture.store(true, std::memory_order_relaxed); }
void StopCapture() { g_capture.store(false, std::memory_order_relaxed); }
bool CaptureActive() {
  return g_capture.load(std::memory_order_relaxed);
}

void SetHwSpansEnabled(bool enabled) {
  g_hw_spans.store(enabled, std::memory_order_relaxed);
}
bool HwSpansEnabled() {
  return g_hw_spans.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> SnapshotSpans() {
  SpanStore& store = SpanStore::Get();
  std::lock_guard<std::mutex> lock(store.mu);
  return {store.records.begin(), store.records.end()};
}

void ClearSpans() {
  SpanStore& store = SpanStore::Get();
  std::lock_guard<std::mutex> lock(store.mu);
  store.records.clear();
}

std::string RenderChromeTraceJson() {
  std::vector<SpanRecord> records = SnapshotSpans();
  JsonWriter json;
  json.BeginObject();
  json.KV("displayTimeUnit", "ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (const SpanRecord& r : records) {
    if (r.dur_s < 0) continue;  // still open: no complete event
    json.BeginObject();
    json.KV("name", r.name);
    json.KV("cat", "gorder");
    json.KV("ph", "X");
    json.KV("ts", r.start_s * 1e6);
    json.KV("dur", r.dur_s * 1e6);
    json.KV("pid", 1);
    json.KV("tid", r.tid);
    json.Key("args");
    json.BeginObject();
    if (!r.counter_deltas.empty()) {
      json.Key("metrics");
      json.BeginObject();
      for (const auto& [name, delta] : r.counter_deltas) {
        json.KV(name, delta);
      }
      json.EndObject();
    }
    if (r.has_hw) {
      json.Key("hw");
      WriteHwJson(json, r.hw);
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

bool WriteChromeTrace(const std::string& path) {
  // Staged + renamed (util/atomic_file): a failed write never leaves a
  // truncated trace a viewer would choke on at the final path.
  return util::WriteFileAtomic(path, RenderChromeTraceJson()).ok;
}

}  // namespace gorder::obs
