#include "obs/expo.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <mutex>

#include "obs/trace.h"

namespace gorder::obs {

namespace {

std::int64_t CurrentTick() {
  return static_cast<std::int64_t>(NowSeconds()) /
         WindowedHistogram::kSlotSeconds;
}

struct WindowedRegistry {
  std::mutex mu;
  std::map<std::string, WindowedHistogram*> histograms;

  static WindowedRegistry& Get() {
    static WindowedRegistry* r = new WindowedRegistry;
    return *r;
  }
};

}  // namespace

void WindowedHistogram::Record(std::uint64_t v) {
  if (!Enabled()) return;
  RecordAtTick(v, CurrentTick());
}

void WindowedHistogram::RecordAtTick(std::uint64_t v, std::int64_t tick) {
  Slot& s = slots_[static_cast<std::size_t>(tick) %
                   static_cast<std::size_t>(kNumSlots)];
  std::int64_t seen = s.tick.load(std::memory_order_acquire);
  if (seen != tick) {
    // The ring wrapped onto a stale slot: the first recorder to claim it
    // recycles it. A concurrent Record/Snapshot racing the recycle may
    // land in (or read) a partially cleared slot — bounded, benign
    // imprecision at a window edge, never a data race.
    if (s.tick.compare_exchange_strong(seen, tick,
                                       std::memory_order_acq_rel)) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    } else if (seen != tick) {
      return;  // another tick claimed the slot first; drop the sample
    }
  }
  const int bucket =
      std::min(static_cast<int>(std::bit_width(v)), kNumBuckets - 1);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

WindowSnapshot WindowedHistogram::Snapshot(int window_seconds) const {
  return SnapshotAtTick(window_seconds, CurrentTick());
}

WindowSnapshot WindowedHistogram::SnapshotAtTick(int window_seconds,
                                                 std::int64_t tick) const {
  // A window of w seconds spans ceil(w / slot) full slots plus the
  // in-progress one; clamp to the ring size.
  int want = window_seconds / kSlotSeconds + 1;
  want = std::min(want, kNumSlots);

  std::uint64_t buckets[kNumBuckets] = {};
  WindowSnapshot out;
  for (const Slot& s : slots_) {
    const std::int64_t t = s.tick.load(std::memory_order_acquire);
    if (t < 0 || t > tick || tick - t >= want) continue;
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
      buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  // Bucket counts are summed racing concurrent Records, so they may not
  // add to `count` exactly; quantile ranks walk the bucket totals.
  std::uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) total += buckets[b];
  if (total == 0) return out;
  auto quantile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) return BucketUpperBound(b);
    }
    return BucketUpperBound(kNumBuckets - 1);
  };
  out.p50 = quantile(0.50);
  out.p99 = quantile(0.99);
  out.p999 = quantile(0.999);
  return out;
}

std::uint64_t WindowedHistogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~0ull;
  return (1ull << b) - 1;
}

WindowedHistogram& GetWindowedHistogram(const std::string& name) {
  WindowedRegistry& r = WindowedRegistry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(name, new WindowedHistogram(name)).first;
  }
  return *it->second;
}

WindowedHistogram* FindWindowedHistogram(const std::string& name) {
  WindowedRegistry& r = WindowedRegistry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  return it == r.histograms.end() ? nullptr : it->second;
}

std::vector<WindowedDump> DumpWindowed() {
  WindowedRegistry& r = WindowedRegistry::Get();
  std::vector<WindowedHistogram*> handles;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    handles.reserve(r.histograms.size());
    for (const auto& [name, h] : r.histograms) handles.push_back(h);
  }
  std::vector<WindowedDump> out;
  out.reserve(handles.size());
  for (const WindowedHistogram* h : handles) {
    out.push_back({h->name(), h->Snapshot(kWindowSecondsShort),
                   h->Snapshot(kWindowSecondsLong)});
  }
  return out;
}

void WindowedHistogram::ResetForTest() {
  for (Slot& s : slots_) {
    s.tick.store(-1, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

void ResetAllWindowed() {
  WindowedRegistry& r = WindowedRegistry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, h] : r.histograms) h->ResetForTest();
}

std::string PrometheusName(const std::string& metric_name) {
  std::string out = "gorder_";
  out.reserve(out.size() + metric_name.size());
  for (char c : metric_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void AppendLine(std::string* out, const std::string& series,
                std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  *out += series;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

void AppendWindowSeries(std::string* out, const std::string& prom,
                        const char* window, const WindowSnapshot& snap) {
  const std::string suffix = std::string("{window=\"") + window + "\",";
  AppendLine(out, prom + suffix + "quantile=\"0.5\"}", snap.p50);
  AppendLine(out, prom + suffix + "quantile=\"0.99\"}", snap.p99);
  AppendLine(out, prom + suffix + "quantile=\"0.999\"}", snap.p999);
  AppendLine(out, prom + "_count{window=\"" + window + "\"}", snap.count);
  AppendLine(out, prom + "_sum{window=\"" + window + "\"}", snap.sum);
}

}  // namespace

std::string RenderPrometheusText() {
  const MetricsDump dump = DumpMetrics();
  std::string out;
  for (const auto& [name, value] : dump.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    AppendLine(&out, prom, value);
  }
  for (const auto& [name, value] : dump.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    out += prom + " " + buf + "\n";
  }
  for (const auto& h : dump.histograms) {
    const std::string prom = PrometheusName(h.name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      if (h.buckets[b] == 0) continue;  // sparse cumulative series is valid
      char bound[32];
      std::snprintf(
          bound, sizeof bound, "%llu",
          static_cast<unsigned long long>(
              WindowedHistogram::BucketUpperBound(static_cast<int>(b))));
      AppendLine(&out, prom + "_bucket{le=\"" + bound + "\"}", cumulative);
    }
    // The clamped top bucket folds into +Inf. Count and buckets are read
    // at slightly different instants under concurrent recording; publish
    // a mutually consistent total.
    const std::uint64_t total =
        std::max(h.count, cumulative + h.buckets.back());
    AppendLine(&out, prom + "_bucket{le=\"+Inf\"}", total);
    AppendLine(&out, prom + "_sum", h.sum);
    AppendLine(&out, prom + "_count", total);
  }
  for (const auto& w : DumpWindowed()) {
    const std::string prom = PrometheusName(w.name);
    out += "# TYPE " + prom + " summary\n";
    AppendWindowSeries(&out, prom, "10s", w.short_window);
    AppendWindowSeries(&out, prom, "60s", w.long_window);
  }
  return out;
}

}  // namespace gorder::obs
