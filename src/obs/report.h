#ifndef GORDER_OBS_REPORT_H_
#define GORDER_OBS_REPORT_H_

/// Machine-readable run reports (`--json-out=`).
///
/// Every bench binary and gorder_cli registers itself with `StartRun` at
/// flag-parse time; on process exit the report — environment fingerprint,
/// parsed flags, full metric dump and the nested span tree — is written
/// as one JSON document, and optionally a Chrome trace (`--trace-out=`).
/// This is the file format that populates `BENCH_*.json` and lets CI diff
/// perf PR-over-PR (`tools/check_report.py` validates the schema).
///
/// Schema: see DESIGN.md "Observability"; `schema_version` is bumped on
/// any incompatible change, `schema_minor` on backward-compatible
/// additions (new metric/span families, new optional keys). Validators
/// must treat an absent `schema_minor` as 0.

#include <map>
#include <string>

namespace gorder::obs {

inline constexpr int kReportSchemaVersion = 1;
// Minor 1: store.* metrics and spans (src/store pack + ordering cache).
// Minor 2: serve.*/loadgen.*/net.* metrics and spans (gorderd daemon +
//          its open-loop load generator).
// Minor 3: "windows" section — per-WindowedHistogram 10s/60s
//          count/sum/p50/p99/p999 at report time (the live-latency view
//          the daemon exposes via kStats and /metrics).
inline constexpr int kReportSchemaMinorVersion = 3;

/// Host/build identity captured in every report, so a number is never
/// compared against a number from a different machine unknowingly.
struct EnvFingerprint {
  std::string cpu_model;   // /proc/cpuinfo "model name" (or "unknown")
  std::string compiler;    // __VERSION__
  std::string git_sha;     // GORDER_GIT_SHA env, else the build-time sha
  std::string os;          // uname sysname + release
  long l1d_bytes = 0;      // sysconf cache geometry; 0 = unknown
  long l2_bytes = 0;
  long l3_bytes = 0;
  long line_bytes = 0;
  int threads = 0;          // gorder::NumThreads() at report time
  int hardware_concurrency = 0;
  bool obs_enabled = false;
  bool hw_counters_available = false;
};

EnvFingerprint CollectEnvFingerprint();

struct RunOptions {
  std::string bench;  // binary name, e.g. "fig5_speedup"
  std::map<std::string, std::string> flags;  // parsed --key=value pairs
  std::string json_out;   // run-report path ("" = skip)
  std::string trace_out;  // Chrome trace path ("" = skip)
};

/// Declares this process a reported run: starts span capture (unless
/// observability is disabled via GORDER_OBS=off), enables hardware-counter
/// spans when the kernel permits them, and arranges for the artifacts to
/// be written at process exit. Idempotent; later calls replace the
/// options.
void StartRun(const RunOptions& options);

/// Renders the full run report document (also used by tests).
std::string RenderRunReportJson();

/// Writes the registered artifacts immediately. Returns false if any
/// file could not be written. Called automatically at exit after
/// StartRun.
bool WriteRunArtifacts();

}  // namespace gorder::obs

#endif  // GORDER_OBS_REPORT_H_
