#ifndef GORDER_OBS_EXPO_H_
#define GORDER_OBS_EXPO_H_

/// Live metric exposition (DESIGN.md §17).
///
/// Two pieces:
///
///  1. `WindowedHistogram` — a log-bucketed distribution like
///     `obs::Histogram`, but recorded into a ring of rotating time
///     slots so "p99 over the last 10s / 60s" is readable at any moment
///     in O(slots × buckets), with no per-observation allocation and no
///     lock on the record path. This is the serving-side latency
///     instrument: the exit-time `Histogram` answers "how was the whole
///     run", the windowed one answers "how is it *right now*".
///
///  2. Prometheus text exposition — renders every registered counter,
///     gauge, histogram and windowed histogram in the Prometheus text
///     format (v0.0.4) with metric names derived mechanically from the
///     PR 3 taxonomy: `<subsystem>.<event>` becomes
///     `gorder_<subsystem>_<event>`, counters gain `_total`, power-of-two
///     histogram buckets become cumulative `le` bounds. Names are stable
///     identifiers — dashboards and the CI scrape validator
///     (tools/check_metrics.py) key on them.
///
/// Same contracts as the rest of `src/obs`: `GORDER_OBS=off` turns every
/// record into a cheap failed branch, a `GORDER_OBS_DISABLED` build
/// compiles the macros out entirely, and nothing here ever feeds back
/// into an algorithm.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gorder::obs {

/// The two standard read windows, in seconds. Exposition, kStats and the
/// run report publish both for every windowed histogram.
inline constexpr int kWindowSecondsShort = 10;
inline constexpr int kWindowSecondsLong = 60;

/// Quantiles over one time window of a WindowedHistogram. Values are
/// bucket upper bounds (the histogram is log-bucketed, so a quantile is
/// exact to within its power-of-two bucket).
struct WindowSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

/// Power-of-two bucketed distribution over rotating time slots.
///
/// The ring holds kNumSlots slots of kSlotSeconds each — enough to cover
/// the long window with slack, so a 60s read never includes a slot that
/// is being recycled. Record() stamps the calling moment's slot (lazily
/// reclaiming any stale slot that the ring index wraps onto);
/// Snapshot(w) sums the slots overlapping the last `w` seconds and walks
/// the merged buckets for quantiles.
///
/// Concurrency: every field is a relaxed atomic — Record from any number
/// of threads races cleanly with Snapshot from any other (the TSan
/// stress suite hammers exactly this). Slot rotation is approximate at
/// the edges: an observation racing a slot recycle may land in the new
/// slot or be dropped; monitoring reads tolerate that, determinism-
/// sensitive results never come from here.
class WindowedHistogram {
 public:
  static constexpr int kNumBuckets = 32;  // index = bit_width(v), clamped
  static constexpr int kSlotSeconds = 5;
  static constexpr int kNumSlots = 16;    // 80s of history > 60s window

  explicit WindowedHistogram(std::string name) : name_(std::move(name)) {}
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Records `v` into the current time slot (obs trace clock).
  void Record(std::uint64_t v);

  /// Quantiles over the last `window_seconds` (obs trace clock).
  WindowSnapshot Snapshot(int window_seconds) const;

  /// Deterministic variants: the caller supplies the slot tick
  /// (seconds / kSlotSeconds) instead of reading the clock.
  void RecordAtTick(std::uint64_t v, std::int64_t tick);
  WindowSnapshot SnapshotAtTick(int window_seconds, std::int64_t tick) const;

  /// Upper bound of bucket `b`: the largest value with bit_width == b
  /// (0 for bucket 0). Quantiles report these bounds.
  static std::uint64_t BucketUpperBound(int b);

  /// Stamps every slot unused. Only safe with no concurrent recorders
  /// (test support).
  void ResetForTest();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> tick{-1};  // -1 = never used
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kNumBuckets] = {};
  };

  std::string name_;
  Slot slots_[kNumSlots];
};

/// Registry lookup: the unique windowed histogram for `name`, created on
/// first use. Thread-safe; the reference lives forever (same leak-on-
/// purpose policy as GetCounter).
WindowedHistogram& GetWindowedHistogram(const std::string& name);

/// Registry probe without creation: nullptr when `name` was never
/// registered (lets tests prove a GORDER_OBS_DISABLED TU registered
/// nothing, mirroring FindCounter).
WindowedHistogram* FindWindowedHistogram(const std::string& name);

/// Point-in-time view of every registered windowed histogram at both
/// standard windows, sorted by name.
struct WindowedDump {
  std::string name;
  WindowSnapshot short_window;  // last kWindowSecondsShort seconds
  WindowSnapshot long_window;   // last kWindowSecondsLong seconds
};
std::vector<WindowedDump> DumpWindowed();

/// Zeroes every slot of every registered windowed histogram (test
/// support; registrations persist).
void ResetAllWindowed();

/// `<subsystem>.<event>` -> `gorder_<subsystem>_<event>`: the stable,
/// mechanical Prometheus spelling of a taxonomy name (every character
/// outside [a-zA-Z0-9_] becomes '_').
std::string PrometheusName(const std::string& metric_name);

/// Renders every registered metric in the Prometheus text format:
/// counters as `<name>_total`, gauges verbatim, histograms as cumulative
/// `_bucket{le="..."}`/`_sum`/`_count` series with power-of-two bounds,
/// windowed histograms as summary-style quantile series labelled
/// `{window="10s"|"60s",quantile="0.5"|"0.99"|"0.999"}` plus a
/// `_count{window=...}` series. Deterministic: sorted by name.
std::string RenderPrometheusText();

}  // namespace gorder::obs

/// Windowed-histogram instrumentation macros, gated exactly like the
/// GORDER_OBS_COUNTER family: a GORDER_OBS_DISABLED build expands them
/// to nothing, so hot loops carry zero code and no name strings.
#if defined(GORDER_OBS_DISABLED)

#define GORDER_OBS_WINDOWED(var, name) \
  static_assert(true, "observability compiled out")
#define GORDER_OBS_WRECORD(var, v) \
  do {                             \
  } while (0)

#else

#define GORDER_OBS_WINDOWED(var, name) \
  ::gorder::obs::WindowedHistogram& var = \
      ::gorder::obs::GetWindowedHistogram(name)
#define GORDER_OBS_WRECORD(var, v) (var).Record(v)

#endif  // GORDER_OBS_DISABLED

#endif  // GORDER_OBS_EXPO_H_
