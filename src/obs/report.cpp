#include "obs/report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "cachesim/hw_counters.h"
#include "obs/expo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/parallel.h"

#ifndef GORDER_BUILD_GIT_SHA
#define GORDER_BUILD_GIT_SHA "unknown"
#endif

namespace gorder::obs {

namespace {

struct RunState {
  std::mutex mu;
  RunOptions options;
  bool registered = false;

  static RunState& Get() {
    static RunState* state = new RunState;
    return *state;
  }
};

void WriteArtifactsAtExit() { WriteRunArtifacts(); }

long CacheSysconf(int name) {
#ifdef __linux__
  long v = sysconf(name);
  return v > 0 ? v : 0;
#else
  (void)name;
  return 0;
#endif
}

std::string CpuModel() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f != nullptr) {
    char line[512];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "model name", 10) == 0) {
        const char* colon = std::strchr(line, ':');
        if (colon != nullptr) {
          std::string model = colon + 1;
          while (!model.empty() &&
                 (model.front() == ' ' || model.front() == '\t')) {
            model.erase(model.begin());
          }
          while (!model.empty() &&
                 (model.back() == '\n' || model.back() == ' ')) {
            model.pop_back();
          }
          std::fclose(f);
          return model;
        }
      }
    }
    std::fclose(f);
  }
#endif
  return "unknown";
}

std::string OsString() {
#ifdef __linux__
  utsname u;
  if (uname(&u) == 0) {
    return std::string(u.sysname) + " " + u.release;
  }
#endif
  return "unknown";
}

void WriteEnvJson(JsonWriter& json, const EnvFingerprint& env) {
  json.BeginObject();
  json.KV("cpu_model", env.cpu_model);
  json.KV("compiler", env.compiler);
  json.KV("git_sha", env.git_sha);
  json.KV("os", env.os);
  json.Key("cache");
  json.BeginObject();
  json.KV("l1d_bytes", static_cast<std::int64_t>(env.l1d_bytes));
  json.KV("l2_bytes", static_cast<std::int64_t>(env.l2_bytes));
  json.KV("l3_bytes", static_cast<std::int64_t>(env.l3_bytes));
  json.KV("line_bytes", static_cast<std::int64_t>(env.line_bytes));
  json.EndObject();
  json.KV("threads", env.threads);
  json.KV("hardware_concurrency", env.hardware_concurrency);
  json.KV("obs_enabled", env.obs_enabled);
  json.KV("hw_counters_available", env.hw_counters_available);
  json.EndObject();
}

void WriteHwJson(JsonWriter& json, const cachesim::HwStats& hw) {
  json.BeginObject();
  json.KV("cycles", hw.cycles);
  json.KV("instructions", hw.instructions);
  json.KV("ipc", hw.Ipc());
  json.KV("l1_miss_rate", hw.L1MissRate());
  json.KV("llc_miss_rate", hw.LlcMissRate());
  json.KV("multiplexed", hw.multiplexed);
  json.KV("min_running_fraction", hw.MinRunningFraction());
  json.EndObject();
}

void WriteWindowJson(JsonWriter& json, const WindowSnapshot& w) {
  json.BeginObject();
  json.KV("count", w.count);
  json.KV("sum", w.sum);
  json.KV("p50", w.p50);
  json.KV("p99", w.p99);
  json.KV("p999", w.p999);
  json.EndObject();
}

void WriteSpanJson(JsonWriter& json, const std::vector<SpanRecord>& records,
                   const std::vector<std::vector<std::size_t>>& children,
                   std::size_t index) {
  const SpanRecord& r = records[index];
  json.BeginObject();
  json.KV("name", r.name);
  json.KV("tid", r.tid);
  json.KV("start_s", r.start_s);
  json.KV("dur_s", r.dur_s);
  if (!r.counter_deltas.empty()) {
    json.Key("metrics");
    json.BeginObject();
    for (const auto& [name, delta] : r.counter_deltas) json.KV(name, delta);
    json.EndObject();
  }
  if (r.has_hw) {
    json.Key("hw");
    WriteHwJson(json, r.hw);
  }
  if (!children[index].empty()) {
    json.Key("children");
    json.BeginArray();
    for (std::size_t c : children[index]) {
      WriteSpanJson(json, records, children, c);
    }
    json.EndArray();
  }
  json.EndObject();
}

}  // namespace

EnvFingerprint CollectEnvFingerprint() {
  EnvFingerprint env;
  env.cpu_model = CpuModel();
  env.compiler = __VERSION__;
  const char* sha_env = std::getenv("GORDER_GIT_SHA");
  env.git_sha = sha_env != nullptr ? sha_env : GORDER_BUILD_GIT_SHA;
  env.os = OsString();
#ifdef __linux__
  env.l1d_bytes = CacheSysconf(_SC_LEVEL1_DCACHE_SIZE);
  env.l2_bytes = CacheSysconf(_SC_LEVEL2_CACHE_SIZE);
  env.l3_bytes = CacheSysconf(_SC_LEVEL3_CACHE_SIZE);
  env.line_bytes = CacheSysconf(_SC_LEVEL1_DCACHE_LINESIZE);
#endif
  env.threads = NumThreads();
  env.hardware_concurrency =
      static_cast<int>(std::thread::hardware_concurrency());
  env.obs_enabled = Enabled();
  env.hw_counters_available = cachesim::HwCounters::Available();
  return env;
}

void StartRun(const RunOptions& options) {
  RunState& state = RunState::Get();
  bool register_atexit = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.options = options;
    if (!state.registered) {
      state.registered = true;
      register_atexit = true;
    }
  }
  if (Enabled()) {
    StartCapture();
    const char* hw_env = std::getenv("GORDER_OBS_HW");
    bool hw_wanted =
        hw_env == nullptr || (std::strcmp(hw_env, "off") != 0 &&
                              std::strcmp(hw_env, "0") != 0);
    if (hw_wanted && cachesim::HwCounters::Available()) {
      SetHwSpansEnabled(true);
    }
  }
  if (register_atexit) std::atexit(WriteArtifactsAtExit);
}

std::string RenderRunReportJson() {
  RunState& state = RunState::Get();
  RunOptions options;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    options = state.options;
  }
  EnvFingerprint env = CollectEnvFingerprint();
  MetricsDump metrics = DumpMetrics();
  std::vector<SpanRecord> records = SnapshotSpans();

  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "gorder-run-report");
  json.KV("schema_version", kReportSchemaVersion);
  json.KV("schema_minor", kReportSchemaMinorVersion);
  json.KV("bench", options.bench);
  json.KV("timestamp_unix",
          static_cast<std::int64_t>(
              std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count()));
  json.Key("env");
  WriteEnvJson(json, env);

  json.Key("flags");
  json.BeginObject();
  for (const auto& [key, value] : options.flags) json.KV(key, value);
  json.EndObject();

  json.Key("metrics");
  json.BeginObject();
  for (const auto& [name, value] : metrics.counters) json.KV(name, value);
  for (const auto& [name, value] : metrics.gauges) json.KV(name, value);
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const auto& h : metrics.histograms) {
    json.Key(h.name);
    json.BeginObject();
    json.KV("count", h.count);
    json.KV("sum", h.sum);
    json.Key("buckets");
    json.BeginArray();
    for (std::uint64_t b : h.buckets) json.Uint(b);
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  // Minor 3: the live-latency windows at report time. Empty for runs
  // that never touched a WindowedHistogram (all bench binaries today);
  // gorderd populates one per active opcode.
  json.Key("windows");
  json.BeginObject();
  for (const WindowedDump& w : DumpWindowed()) {
    json.Key(w.name);
    json.BeginObject();
    json.Key("10s");
    WriteWindowJson(json, w.short_window);
    json.Key("60s");
    WriteWindowJson(json, w.long_window);
    json.EndObject();
  }
  json.EndObject();

  // Span forest: children grouped under their parent, roots in creation
  // order. Open spans (dur_s < 0) are reported as-is so a crashed run
  // still shows where it was.
  std::vector<std::vector<std::size_t>> children(records.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].parent == kNoParent) {
      roots.push_back(i);
    } else {
      children[static_cast<std::size_t>(records[i].parent)].push_back(i);
    }
  }
  json.Key("spans");
  json.BeginArray();
  for (std::size_t r : roots) WriteSpanJson(json, records, children, r);
  json.EndArray();

  json.EndObject();
  return json.TakeString();
}

bool WriteRunArtifacts() {
  RunState& state = RunState::Get();
  RunOptions options;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    options = state.options;
  }
  bool ok = true;
  if (!options.json_out.empty()) {
    IoResult r = util::WriteFileAtomic(options.json_out,
                                       RenderRunReportJson());
    if (!r.ok) {
      std::fprintf(stderr, "obs: cannot write %s: %s\n",
                   options.json_out.c_str(), r.error.c_str());
      ok = false;
    } else {
      GORDER_LOG_INFO("run report written to %s\n",
                      options.json_out.c_str());
    }
  }
  if (!options.trace_out.empty()) {
    if (!WriteChromeTrace(options.trace_out)) {
      std::fprintf(stderr, "obs: cannot write %s\n",
                   options.trace_out.c_str());
      ok = false;
    } else {
      GORDER_LOG_INFO("chrome trace written to %s (open in Perfetto)\n",
                      options.trace_out.c_str());
    }
  }
  return ok;
}

}  // namespace gorder::obs
