#ifndef GORDER_OBS_TRACE_H_
#define GORDER_OBS_TRACE_H_

/// RAII nested phase spans.
///
/// A `Span` marks one phase of a run (dataset generation, one ordering,
/// one workload, a CSR build). Spans nest per thread: the innermost open
/// span on the constructing thread becomes the parent. Each closed span
/// records wall time, the per-span delta of every registered counter,
/// and — when hardware-counter spans are enabled and the nesting is
/// shallow enough — real cycles/IPC/L1/LLC numbers from perf_event.
///
/// Recording is off until `StartCapture()` (benches call it through
/// `obs::StartRun`), so library users who never ask for telemetry pay one
/// predictable branch per span site. Span data never feeds back into any
/// algorithm; results are bit-identical with tracing on or off.
///
/// Exports:
///   - `RenderChromeTraceJson()` — Chrome `trace_event` format, loadable
///     in Perfetto / chrome://tracing (`--trace-out=`).
///   - `SnapshotSpans()` — raw records, consumed by the run report.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cachesim/hw_counters.h"

namespace gorder::obs {

inline constexpr std::int64_t kNoParent = -1;

/// Spans deeper than this never open perf counter groups (each group is
/// six file descriptors plus ioctls — fine per dataset/ordering/workload,
/// wasteful per inner CSR phase).
inline constexpr int kHwSpanMaxDepth = 3;

struct SpanRecord {
  std::string name;
  std::int64_t parent = kNoParent;  // index into the record list
  int depth = 0;                    // 0 = root on its thread
  int tid = 0;                      // dense obs::ThreadIndex()
  double start_s = 0.0;             // seconds since the trace epoch
  double dur_s = -1.0;              // -1 while the span is still open
  /// Nonzero counter deltas attributed to this span (including children).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  bool has_hw = false;
  cachesim::HwStats hw;
};

class Span {
 public:
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::int64_t index_ = kNoParent;  // kNoParent when capture was off
  double start_s_ = 0.0;
  std::vector<std::uint64_t> counters_at_start_;
  cachesim::HwCounters* hw_ = nullptr;
};

/// Begins recording spans (idempotent). Records accumulate until
/// ClearSpans(); benches capture for the whole process life.
void StartCapture();
void StopCapture();
bool CaptureActive();

/// Opt-in: collect perf_event counters per span (depth < kHwSpanMaxDepth).
/// Callers should check `cachesim::HwCounters::Available()` first.
void SetHwSpansEnabled(bool enabled);
bool HwSpansEnabled();

/// Copy of all records so far (open spans have dur_s < 0).
std::vector<SpanRecord> SnapshotSpans();

/// Drops all records. Only safe with no spans open (test support).
void ClearSpans();

/// Seconds since the trace epoch (first use of the obs clock).
double NowSeconds();

/// Chrome trace_event JSON ("traceEvents" array of complete events).
std::string RenderChromeTraceJson();

/// Writes RenderChromeTraceJson() to `path`; false on IO failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace gorder::obs

/// Span macro: `GORDER_OBS_SPAN(span_var, name_expr);`. The name
/// expression is not evaluated when observability is compiled out.
#if defined(GORDER_OBS_DISABLED)
#define GORDER_OBS_SPAN(var, ...) \
  static_assert(true, "observability compiled out")
#else
#define GORDER_OBS_SPAN(var, ...) ::gorder::obs::Span var(__VA_ARGS__)
#endif

#endif  // GORDER_OBS_TRACE_H_
