#ifndef GORDER_OBS_METRICS_H_
#define GORDER_OBS_METRICS_H_

/// Process-wide metric registry with cache-line-padded per-thread shards.
///
/// Hot-path contract: an enabled `Counter::Add` is one relaxed atomic add
/// to a shard this thread almost always owns exclusively, plus one
/// predictable branch on the global enable flag. With `GORDER_OBS=off`
/// in the environment the branch fails and nothing is written; with the
/// build compiled under `GORDER_OBS_DISABLED` the instrumentation macros
/// expand to nothing at all, so there is no code in the binary.
///
/// Metrics never feed back into any algorithm: results are bit-identical
/// whether observability is on, off, or compiled out.
///
/// Naming scheme (DESIGN.md "Observability"): `<subsystem>.<event>`,
/// lower_snake_case, e.g. `unit_heap.increments`, `pool.chunks`,
/// `csr.build_edges`. Names are stable identifiers — reports and the CI
/// diff tooling key on them.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gorder::obs {

/// Number of counter shards. Threads hash onto shards by a dense
/// per-thread index, so with up to kMaxShards threads every increment is
/// uncontended; beyond that, shards are shared but stay correct (the adds
/// are relaxed atomics).
inline constexpr int kMaxShards = 64;

/// Dense index of the calling thread (0 for the main thread, then in
/// first-use order). Stable for the lifetime of the thread.
int ThreadIndex();

inline int ThreadShard() { return ThreadIndex() % kMaxShards; }

namespace internal {
/// Runtime master switch, resolved once from the environment
/// (`GORDER_OBS=off|0|false` disables) unless overridden by
/// SetEnabledForTest. Relaxed atomic so concurrent readers are
/// sanitizer-clean; the value only changes in single-threaded phases.
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Test hook: flips the runtime switch (normally env-controlled).
void SetEnabledForTest(bool enabled);

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

/// Monotonic event count. Obtain via GetCounter(); never destroyed, so
/// references remain valid for the process lifetime.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  CounterShard shards_[kMaxShards];
};

/// Last-write-wins instantaneous value (e.g. configured thread count).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name))  {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two bucketed distribution: bucket b counts observations v
/// with bit_width(v) == b (bucket 0 holds v == 0), clamped to the last
/// bucket. Good enough for "how skewed were the chunk sizes" questions
/// without per-observation allocation.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(std::uint64_t v);

  std::uint64_t Count() const;
  std::uint64_t Sum() const;
  /// Summed bucket counts, index = clamped bit width of the observation.
  std::vector<std::uint64_t> Buckets() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kNumBuckets] = {};
  };
  std::string name_;
  Shard shards_[kMaxShards];
};

/// Registry lookups: return the unique metric for `name`, creating it on
/// first use. Thread-safe; the returned reference lives forever. A name
/// registered as one kind must not be re-requested as another (checked).
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

/// Lookup without creation; nullptr if `name` was never registered.
const Counter* FindCounter(const std::string& name);

/// Point-in-time values of every registered counter, in registration
/// order. Used by spans to compute per-span deltas cheaply.
std::vector<std::uint64_t> SnapshotCounterValues();

/// Names aligned with SnapshotCounterValues(); entry i names value i.
/// (Registration order is append-only, so a later, longer snapshot is a
/// superset of an earlier one.)
std::vector<std::string> CounterNames();

struct MetricsDump {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  struct Hist {
    std::string name;
    std::uint64_t count;
    std::uint64_t sum;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Hist> histograms;
};

/// Everything currently registered, sorted by name (deterministic report
/// output regardless of registration order).
MetricsDump DumpMetrics();

/// Zeroes every registered metric (registrations persist). Test support.
void ResetAllMetrics();

}  // namespace gorder::obs

/// Instrumentation macros. `GORDER_OBS_COUNTER` declares a namespace- or
/// function-scope handle; the Add macros are no-ops (token-free) when the
/// build defines GORDER_OBS_DISABLED, so hot loops carry zero code.
#if defined(GORDER_OBS_DISABLED)

#define GORDER_OBS_COUNTER(var, name) \
  static_assert(true, "observability compiled out")
#define GORDER_OBS_GAUGE(var, name) \
  static_assert(true, "observability compiled out")
#define GORDER_OBS_HISTOGRAM(var, name) \
  static_assert(true, "observability compiled out")
#define GORDER_OBS_ADD(var, n) \
  do {                         \
  } while (0)
#define GORDER_OBS_INC(var) \
  do {                      \
  } while (0)
#define GORDER_OBS_SET(var, v) \
  do {                         \
  } while (0)
#define GORDER_OBS_OBSERVE(var, v) \
  do {                             \
  } while (0)

#else

#define GORDER_OBS_COUNTER(var, name) \
  ::gorder::obs::Counter& var = ::gorder::obs::GetCounter(name)
#define GORDER_OBS_GAUGE(var, name) \
  ::gorder::obs::Gauge& var = ::gorder::obs::GetGauge(name)
#define GORDER_OBS_HISTOGRAM(var, name) \
  ::gorder::obs::Histogram& var = ::gorder::obs::GetHistogram(name)
#define GORDER_OBS_ADD(var, n) (var).Add(n)
#define GORDER_OBS_INC(var) (var).Add(1)
#define GORDER_OBS_SET(var, v) (var).Set(v)
#define GORDER_OBS_OBSERVE(var, v) (var).Observe(v)

#endif  // GORDER_OBS_DISABLED

#endif  // GORDER_OBS_METRICS_H_
