#ifndef GORDER_CORE_GORDER_LIB_H_
#define GORDER_CORE_GORDER_LIB_H_

/// Single-include facade for the Gorder library.
///
/// Typical use:
///
///   #include "core/gorder_lib.h"
///
///   gorder::Graph g;
///   gorder::ReadEdgeList("graph.txt", &g);
///   auto perm = gorder::order::ComputeOrdering(
///       g, gorder::order::Method::kGorder);
///   gorder::Graph fast = g.Relabel(perm);
///   auto pr = gorder::algo::PageRank(fast);
///
/// Sub-APIs:
///   graph/     CSR graphs, IO, permutations, locality metrics
///   gen/       synthetic dataset generators + the paper's dataset registry
///   order/     the ten ordering methods (Gorder and all baselines)
///   algo/      the nine benchmark workloads (+ cache-traced variants)
///   cachesim/  the software cache hierarchy used for miss-rate studies
///   harness/   experiment grids, timing, rank aggregation
///   store/     binary graph packs (gpack), mmap zero-copy loading, and
///              the ordering artifact cache
///   extmem/    out-of-core pipeline: chunked edge streams, external
///              CSR -> gpack build, semi-external ordering
///   serve/     gorderd: the ordering-as-a-service daemon (wire
///              protocol, server loop, blocking client)
///   obs/       telemetry: sharded metrics, phase spans, run reports

#include "algo/algorithms.h"
#include "algo/extra.h"
#include "algo/traced.h"
#include "cachesim/cache.h"
#include "cachesim/hw_counters.h"
#include "compress/compressed_graph.h"
#include "compress/varint.h"
#include "extmem/edge_stream.h"
#include "extmem/ext_csr.h"
#include "extmem/semi_external.h"
#include "extmem/windowed_file.h"
#include "gen/crawl_order.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/edgelist_io.h"
#include "graph/graph.h"
#include "graph/locality_profile.h"
#include "graph/stats.h"
#include "graph/subgraph.h"
#include "harness/experiment.h"
#include "harness/ranking.h"
#include "obs/expo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "order/annealing.h"
#include "order/exact.h"
#include "order/degree_grouping.h"
#include "order/gorder.h"
#include "order/incremental_gorder.h"
#include "order/metis_like.h"
#include "order/ordering.h"
#include "order/parallel_gorder.h"
#include "order/unit_heap.h"
#include "serve/admin.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "store/fingerprint.h"
#include "store/gpack.h"
#include "store/mapped_file.h"
#include "store/store.h"
#include "util/array_ref.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/net.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/types.h"

#endif  // GORDER_CORE_GORDER_LIB_H_
