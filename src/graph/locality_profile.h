#ifndef GORDER_GRAPH_LOCALITY_PROFILE_H_
#define GORDER_GRAPH_LOCALITY_PROFILE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gorder {

/// Static locality analysis of a graph's current numbering — the
/// quantities that predict cache behaviour before running anything.
/// Used by the CLI (`--cmd=stats`), tests, and the analysis example.
struct LocalityProfile {
  EdgeId num_edges = 0;
  double avg_gap = 0.0;        // mean |pi_u - pi_v| over directed edges
  double avg_log2_gap = 0.0;   // mean log2(1 + gap): gap entropy proxy
  NodeId bandwidth = 0;        // max gap (RCM objective)
  /// gap_histogram[i] counts edges with gap in [2^i, 2^(i+1)); bucket 0
  /// holds gap == 1 ... etc. Dense small buckets = good locality.
  std::vector<std::uint64_t> gap_histogram;
  /// Fraction of edges whose endpoints' 4-byte per-node entries share
  /// one 64-byte cache line (gap < 16): the direct "free ride" rate.
  double same_line_fraction = 0.0;
  /// Fraction of edges with gap <= w for the paper's window w = 5 and a
  /// cache-page-ish window of 1024.
  double within_window5 = 0.0;
  double within_window1024 = 0.0;

  /// Share of edges with gap < 2^i, from the histogram (i <= 32).
  double CumulativeBelow(int log2_gap) const;
};

LocalityProfile ComputeLocalityProfile(const Graph& graph);

}  // namespace gorder

#endif  // GORDER_GRAPH_LOCALITY_PROFILE_H_
