#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace gorder {

void Graph::Builder::AddEdge(NodeId src, NodeId dst) {
  edges_.push_back({src, dst});
  NodeId hi = std::max(src, dst);
  if (hi >= num_nodes_) num_nodes_ = hi + 1;
}

void Graph::Builder::ReserveNodes(NodeId n) {
  if (n > num_nodes_) num_nodes_ = n;
}

Graph Graph::Builder::Build(bool keep_self_loops, bool keep_duplicates) {
  return Graph::FromEdges(num_nodes_, std::move(edges_), keep_self_loops,
                          keep_duplicates);
}

namespace {

// Counting-sort based CSR fill: offsets from degrees, then scatter.
void FillCsr(NodeId num_nodes, const std::vector<Edge>& edges, bool reverse,
             std::vector<EdgeId>& offsets, std::vector<NodeId>& neigh) {
  offsets.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) {
    NodeId key = reverse ? e.dst : e.src;
    ++offsets[key + 1];
  }
  for (std::size_t v = 0; v < num_nodes; ++v) offsets[v + 1] += offsets[v];
  neigh.resize(edges.size());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    NodeId key = reverse ? e.dst : e.src;
    NodeId val = reverse ? e.src : e.dst;
    neigh[cursor[key]++] = val;
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    std::sort(neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
}

}  // namespace

Graph Graph::FromEdges(NodeId num_nodes, std::vector<Edge> edges,
                       bool keep_self_loops, bool keep_duplicates) {
  for (const Edge& e : edges) {
    GORDER_CHECK(e.src < num_nodes && e.dst < num_nodes);
  }
  if (!keep_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (!keep_duplicates) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  Graph g;
  g.num_nodes_ = num_nodes;
  FillCsr(num_nodes, edges, /*reverse=*/false, g.out_offsets_, g.out_neigh_);
  FillCsr(num_nodes, edges, /*reverse=*/true, g.in_offsets_, g.in_neigh_);
  return g;
}

Graph Graph::Clone() const {
  Graph g;
  g.num_nodes_ = num_nodes_;
  g.out_offsets_ = out_offsets_;
  g.out_neigh_ = out_neigh_;
  g.in_offsets_ = in_offsets_;
  g.in_neigh_ = in_neigh_;
  return g;
}

bool Graph::HasEdge(NodeId src, NodeId dst) const {
  GORDER_DCHECK(src < num_nodes_ && dst < num_nodes_);
  auto nbrs = OutNeighbors(src);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

Graph Graph::Relabel(const std::vector<NodeId>& perm) const {
  CheckPermutation(perm, num_nodes_);
  std::vector<Edge> edges;
  edges.reserve(out_neigh_.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w : OutNeighbors(v)) {
      edges.push_back({perm[v], perm[w]});
    }
  }
  // Self-loops/duplicates were already handled at original construction;
  // keep whatever edges exist verbatim.
  return FromEdges(num_nodes_, std::move(edges), /*keep_self_loops=*/true,
                   /*keep_duplicates=*/true);
}

std::vector<Edge> Graph::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(out_neigh_.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w : OutNeighbors(v)) edges.push_back({v, w});
  }
  return edges;
}

std::size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_neigh_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_neigh_.size() * sizeof(NodeId);
}

void CheckPermutation(const std::vector<NodeId>& perm, NodeId n) {
  GORDER_CHECK(perm.size() == n);
  std::vector<bool> seen(n, false);
  for (NodeId p : perm) {
    GORDER_CHECK(p < n);
    GORDER_CHECK(!seen[p]);
    seen[p] = true;
  }
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inv(perm.size());
  for (NodeId v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
  return inv;
}

std::vector<NodeId> ComposePermutations(const std::vector<NodeId>& first,
                                        const std::vector<NodeId>& second) {
  GORDER_CHECK(first.size() == second.size());
  std::vector<NodeId> out(first.size());
  for (NodeId v = 0; v < first.size(); ++v) out[v] = second[first[v]];
  return out;
}

std::vector<NodeId> IdentityPermutation(NodeId n) {
  std::vector<NodeId> p(n);
  for (NodeId v = 0; v < n; ++v) p[v] = v;
  return p;
}

}  // namespace gorder
