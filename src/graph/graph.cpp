#include "graph/graph.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gorder {

namespace {

// CSR phase telemetry: edges processed by construction vs relabel. Both
// count the directed edge instances written per side (out + in), so one
// FromEdges on m clean edges adds 2m to `csr.build_edges`.
GORDER_OBS_COUNTER(c_build_edges, "csr.build_edges");
GORDER_OBS_COUNTER(c_relabel_edges, "csr.relabel_edges");

}  // namespace

void Graph::Builder::AddEdge(NodeId src, NodeId dst) {
  edges_.push_back({src, dst});
  NodeId hi = std::max(src, dst);
  if (hi >= num_nodes_) num_nodes_ = hi + 1;
}

void Graph::Builder::ReserveNodes(NodeId n) {
  if (n > num_nodes_) num_nodes_ = n;
}

Graph Graph::Builder::Build(bool keep_self_loops, bool keep_duplicates) {
  return Graph::FromEdges(num_nodes_, std::move(edges_), keep_self_loops,
                          keep_duplicates);
}

namespace {

constexpr std::size_t kEdgeGrain = 1 << 15;
constexpr std::size_t kNodeGrain = 1 << 11;

/// Builds one CSR side directly from the unsorted edge list: counting-sort
/// scatter into per-node buckets, per-node sort, optional in-place
/// per-node dedup — no global O(m log m) sort. `reverse=false` keys on src
/// (out-CSR), `reverse=true` keys on dst (in-CSR); the two sides are
/// independent, so FromEdges runs them concurrently.
///
/// `kConcurrent` selects atomic vs plain bucket counters: the atomic RMWs
/// only pay for themselves when the inner loops actually run on multiple
/// threads; the serial instantiation keeps 1-thread throughput at the
/// level of the historical serial implementation.
///
/// Deterministic at any thread count: scatter order within a bucket is
/// scheduling-dependent, but every bucket is sorted afterwards, and the
/// dedup keeps one copy of each distinct value, so the final arrays depend
/// only on the edge multiset.
template <bool kConcurrent>
void BuildCsrImpl(NodeId num_nodes, const std::vector<Edge>& edges,
                  bool reverse, bool keep_self_loops, bool keep_duplicates,
                  std::vector<EdgeId>& offsets, std::vector<NodeId>& neigh) {
  const std::size_t n = num_nodes;
  auto bump = [](EdgeId& slot) -> EdgeId {
    if constexpr (kConcurrent) {
      return std::atomic_ref<EdgeId>(slot).fetch_add(
          1, std::memory_order_relaxed);
    } else {
      return slot++;
    }
  };
  offsets.assign(n + 1, 0);
  ParallelFor(0, edges.size(), kEdgeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Edge& edge = edges[i];
      if (!keep_self_loops && edge.src == edge.dst) continue;
      bump(offsets[(reverse ? edge.dst : edge.src) + 1]);
    }
  });
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  neigh.resize(offsets[n]);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  ParallelFor(0, edges.size(), kEdgeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Edge& edge = edges[i];
      if (!keep_self_loops && edge.src == edge.dst) continue;
      NodeId key = reverse ? edge.dst : edge.src;
      NodeId val = reverse ? edge.src : edge.dst;
      neigh[bump(cursor[key])] = val;
    }
  });
  if (keep_duplicates) {
    ParallelFor(0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
      for (std::size_t v = b; v < e; ++v) {
        std::sort(neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
      }
    });
    return;
  }
  // Sort + dedup each bucket, then compact the survivors into fresh
  // arrays — skipped entirely when nothing was removed (clean inputs).
  std::vector<EdgeId> kept(n + 1, 0);
  ParallelFor(0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) {
      auto first = neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      auto last = neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      std::sort(first, last);
      kept[v + 1] = static_cast<EdgeId>(std::unique(first, last) - first);
    }
  });
  for (std::size_t v = 0; v < n; ++v) kept[v + 1] += kept[v];
  if (kept[n] == offsets[n]) return;  // no duplicates: already dense
  std::vector<NodeId> packed(kept[n]);
  ParallelFor(0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) {
      std::copy_n(neigh.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  kept[v + 1] - kept[v],
                  packed.begin() + static_cast<std::ptrdiff_t>(kept[v]));
    }
  });
  offsets = std::move(kept);
  neigh = std::move(packed);
}

void BuildCsr(NodeId num_nodes, const std::vector<Edge>& edges, bool reverse,
              bool keep_self_loops, bool keep_duplicates,
              std::vector<EdgeId>& offsets, std::vector<NodeId>& neigh) {
  if (NumThreads() > 1) {
    BuildCsrImpl<true>(num_nodes, edges, reverse, keep_self_loops,
                       keep_duplicates, offsets, neigh);
  } else {
    BuildCsrImpl<false>(num_nodes, edges, reverse, keep_self_loops,
                        keep_duplicates, offsets, neigh);
  }
}

/// Direct CSR -> CSR renumbering under `perm[old] = new`: degree
/// permutation, prefix sum, disjoint scatter of the mapped neighbour
/// lists, per-bucket sort. O(n + m), no intermediate edge list. Each new
/// bucket is filled by exactly one old node, so the scatter and the sort
/// fuse into one pass. Reads through ArrayRef so the source side can be
/// an mmap-backed graph; the output is always freshly owned.
void RelabelCsr(NodeId num_nodes, const ArrayRef<EdgeId>& old_offsets,
                const ArrayRef<NodeId>& old_neigh,
                const std::vector<NodeId>& perm, std::vector<EdgeId>& offsets,
                std::vector<NodeId>& neigh) {
  const std::size_t n = num_nodes;
  offsets.assign(n + 1, 0);
  ParallelFor(0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) {
      offsets[perm[v] + 1] = old_offsets[v + 1] - old_offsets[v];
    }
  });
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  neigh.resize(old_neigh.size());
  ParallelFor(0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) {
      EdgeId out = offsets[perm[v]];
      for (EdgeId i = old_offsets[v]; i < old_offsets[v + 1]; ++i) {
        neigh[out++] = perm[old_neigh[i]];
      }
      std::sort(neigh.begin() + static_cast<std::ptrdiff_t>(offsets[perm[v]]),
                neigh.begin() + static_cast<std::ptrdiff_t>(out));
    }
  });
}

}  // namespace

Graph Graph::FromEdges(NodeId num_nodes, std::vector<Edge> edges,
                       bool keep_self_loops, bool keep_duplicates) {
  GORDER_OBS_SPAN(span, "graph.from_edges");
  ParallelFor(0, edges.size(), kEdgeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      GORDER_CHECK(edges[i].src < num_nodes && edges[i].dst < num_nodes);
    }
  });
  Graph g;
  g.num_nodes_ = num_nodes;
  // The two sides are built from the same immutable edge list with
  // identical filter semantics, so they always agree on the edge multiset.
  std::vector<EdgeId> out_offsets, in_offsets;
  std::vector<NodeId> out_neigh, in_neigh;
  ParallelInvoke(
      [&] {
        BuildCsr(num_nodes, edges, /*reverse=*/false, keep_self_loops,
                 keep_duplicates, out_offsets, out_neigh);
      },
      [&] {
        BuildCsr(num_nodes, edges, /*reverse=*/true, keep_self_loops,
                 keep_duplicates, in_offsets, in_neigh);
      });
  g.out_offsets_ = ArrayRef<EdgeId>(std::move(out_offsets));
  g.out_neigh_ = ArrayRef<NodeId>(std::move(out_neigh));
  g.in_offsets_ = ArrayRef<EdgeId>(std::move(in_offsets));
  g.in_neigh_ = ArrayRef<NodeId>(std::move(in_neigh));
  GORDER_OBS_ADD(c_build_edges, g.out_neigh_.size() + g.in_neigh_.size());
  return g;
}

Graph Graph::FromMapped(NodeId num_nodes, ArrayRef<EdgeId> out_offsets,
                        ArrayRef<NodeId> out_neighbors,
                        ArrayRef<EdgeId> in_offsets,
                        ArrayRef<NodeId> in_neighbors) {
  GORDER_CHECK(out_offsets.size() == static_cast<std::size_t>(num_nodes) + 1);
  GORDER_CHECK(in_offsets.size() == static_cast<std::size_t>(num_nodes) + 1);
  GORDER_CHECK(out_offsets[0] == 0 &&
               out_offsets[num_nodes] == out_neighbors.size());
  GORDER_CHECK(in_offsets[0] == 0 &&
               in_offsets[num_nodes] == in_neighbors.size());
  Graph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_ = std::move(out_offsets);
  g.out_neigh_ = std::move(out_neighbors);
  g.in_offsets_ = std::move(in_offsets);
  g.in_neigh_ = std::move(in_neighbors);
  return g;
}

Graph Graph::Clone() const {
  Graph g;
  g.num_nodes_ = num_nodes_;
  // Clones always own their storage, even when cloning a mapped graph.
  g.out_offsets_ = ArrayRef<EdgeId>(out_offsets_.ToVector());
  g.out_neigh_ = ArrayRef<NodeId>(out_neigh_.ToVector());
  g.in_offsets_ = ArrayRef<EdgeId>(in_offsets_.ToVector());
  g.in_neigh_ = ArrayRef<NodeId>(in_neigh_.ToVector());
  return g;
}

bool Graph::HasEdge(NodeId src, NodeId dst) const {
  GORDER_DCHECK(src < num_nodes_ && dst < num_nodes_);
  auto nbrs = OutNeighbors(src);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

Graph Graph::Relabel(const std::vector<NodeId>& perm) const {
  GORDER_OBS_SPAN(span, "graph.relabel");
  CheckPermutation(perm, num_nodes_);
  Graph g;
  g.num_nodes_ = num_nodes_;
  // Self-loops/duplicates were already handled at original construction;
  // the permutation copies whatever edges exist verbatim.
  std::vector<EdgeId> out_offsets, in_offsets;
  std::vector<NodeId> out_neigh, in_neigh;
  ParallelInvoke(
      [&] {
        RelabelCsr(num_nodes_, out_offsets_, out_neigh_, perm, out_offsets,
                   out_neigh);
      },
      [&] {
        RelabelCsr(num_nodes_, in_offsets_, in_neigh_, perm, in_offsets,
                   in_neigh);
      });
  g.out_offsets_ = ArrayRef<EdgeId>(std::move(out_offsets));
  g.out_neigh_ = ArrayRef<NodeId>(std::move(out_neigh));
  g.in_offsets_ = ArrayRef<EdgeId>(std::move(in_offsets));
  g.in_neigh_ = ArrayRef<NodeId>(std::move(in_neigh));
  GORDER_OBS_ADD(c_relabel_edges, g.out_neigh_.size() + g.in_neigh_.size());
  return g;
}

std::vector<Edge> Graph::ToEdges() const {
  std::vector<Edge> edges(out_neigh_.size());
  ParallelFor(0, num_nodes_, kNodeGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) {
      EdgeId out = out_offsets_[v];
      for (NodeId w : OutNeighbors(static_cast<NodeId>(v))) {
        edges[out++] = {static_cast<NodeId>(v), w};
      }
    }
  });
  return edges;
}

std::size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_neigh_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_neigh_.size() * sizeof(NodeId);
}

void CheckPermutation(const std::vector<NodeId>& perm, NodeId n) {
  GORDER_CHECK(perm.size() == n);
  std::vector<bool> seen(n, false);
  for (NodeId p : perm) {
    GORDER_CHECK(p < n);
    GORDER_CHECK(!seen[p]);
    seen[p] = true;
  }
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inv(perm.size());
  for (NodeId v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
  return inv;
}

std::vector<NodeId> ComposePermutations(const std::vector<NodeId>& first,
                                        const std::vector<NodeId>& second) {
  GORDER_CHECK(first.size() == second.size());
  std::vector<NodeId> out(first.size());
  for (NodeId v = 0; v < first.size(); ++v) out[v] = second[first[v]];
  return out;
}

std::vector<NodeId> IdentityPermutation(NodeId n) {
  std::vector<NodeId> p(n);
  for (NodeId v = 0; v < n; ++v) p[v] = v;
  return p;
}

}  // namespace gorder
