#ifndef GORDER_GRAPH_SUBGRAPH_H_
#define GORDER_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace gorder {

/// Result of extracting an induced subgraph: the subgraph plus the
/// id mapping back to the parent graph.
struct InducedSubgraph {
  Graph graph;                     // local ids 0..|nodes|-1
  std::vector<NodeId> local_to_global;  // local -> parent id
};

/// Extracts the subgraph induced by `nodes` (parent ids; must be unique).
/// Edges with both endpoints in `nodes` are kept; local ids follow the
/// order of `nodes`. O(sum of member degrees).
InducedSubgraph ExtractInducedSubgraph(const Graph& graph,
                                       const std::vector<NodeId>& nodes);

/// The transpose: every edge (u, v) becomes (v, u).
Graph ReverseGraph(const Graph& graph);

/// The undirected simple closure: for every edge (u, v), both (u, v)
/// and (v, u) exist in the result (deduplicated).
Graph UndirectedClosure(const Graph& graph);

/// The subgraph induced by the largest strongly connected component is a
/// frequent experimental substrate; this returns the largest *weakly*
/// connected component's induced subgraph (cheaper, and what locality
/// experiments usually want).
InducedSubgraph LargestWccSubgraph(const Graph& graph);

}  // namespace gorder

#endif  // GORDER_GRAPH_SUBGRAPH_H_
