#ifndef GORDER_GRAPH_DYNAMIC_GRAPH_H_
#define GORDER_GRAPH_DYNAMIC_GRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace gorder {

/// Mutable directed graph for evolving-network scenarios (the paper's
/// discussion: "networks evolve and require constant recomputation of
/// the node ordering"). Keeps unsorted out/in adjacency vectors for O(1)
/// amortised insertion; convert to the immutable CSR `Graph` for
/// algorithm runs.
class DynamicGraph {
 public:
  DynamicGraph() = default;
  /// Seeds from an existing CSR graph.
  explicit DynamicGraph(const Graph& graph);

  NodeId NumNodes() const { return static_cast<NodeId>(out_.size()); }
  EdgeId NumEdges() const { return num_edges_; }

  /// Appends an isolated node; returns its id.
  NodeId AddNode();

  /// Adds edge src -> dst (nodes must exist). Self-loops rejected;
  /// duplicate edges ignored. Returns true if the edge was new.
  bool AddEdge(NodeId src, NodeId dst);

  bool HasEdge(NodeId src, NodeId dst) const;

  NodeId OutDegree(NodeId v) const {
    return static_cast<NodeId>(out_[v].size());
  }
  NodeId InDegree(NodeId v) const {
    return static_cast<NodeId>(in_[v].size());
  }
  const std::vector<NodeId>& OutNeighbors(NodeId v) const { return out_[v]; }
  const std::vector<NodeId>& InNeighbors(NodeId v) const { return in_[v]; }

  /// Snapshot to immutable CSR (sorted, deduplicated by construction).
  Graph ToCsr() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  EdgeId num_edges_ = 0;
};

}  // namespace gorder

#endif  // GORDER_GRAPH_DYNAMIC_GRAPH_H_
