#include "graph/subgraph.h"

#include <algorithm>

#include "util/logging.h"

namespace gorder {

InducedSubgraph ExtractInducedSubgraph(const Graph& graph,
                                       const std::vector<NodeId>& nodes) {
  InducedSubgraph result;
  result.local_to_global = nodes;
  const NodeId k = static_cast<NodeId>(nodes.size());
  std::vector<NodeId> global_to_local(graph.NumNodes(), kInvalidNode);
  for (NodeId i = 0; i < k; ++i) {
    GORDER_CHECK(nodes[i] < graph.NumNodes());
    GORDER_CHECK(global_to_local[nodes[i]] == kInvalidNode);  // unique
    global_to_local[nodes[i]] = i;
  }
  std::vector<Edge> edges;
  for (NodeId i = 0; i < k; ++i) {
    for (NodeId w : graph.OutNeighbors(nodes[i])) {
      NodeId j = global_to_local[w];
      if (j != kInvalidNode) edges.push_back({i, j});
    }
  }
  result.graph = Graph::FromEdges(k, std::move(edges),
                                  /*keep_self_loops=*/true,
                                  /*keep_duplicates=*/true);
  return result;
}

Graph ReverseGraph(const Graph& graph) {
  std::vector<Edge> edges;
  edges.reserve(graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) edges.push_back({w, v});
  }
  return Graph::FromEdges(graph.NumNodes(), std::move(edges),
                          /*keep_self_loops=*/true,
                          /*keep_duplicates=*/true);
}

Graph UndirectedClosure(const Graph& graph) {
  std::vector<Edge> edges;
  edges.reserve(graph.NumEdges() * 2);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      edges.push_back({v, w});
      edges.push_back({w, v});
    }
  }
  return Graph::FromEdges(graph.NumNodes(), std::move(edges),
                          /*keep_self_loops=*/false,
                          /*keep_duplicates=*/false);
}

InducedSubgraph LargestWccSubgraph(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> component(n, kInvalidNode);
  std::vector<NodeId> queue;
  NodeId num_components = 0;
  std::vector<NodeId> sizes;
  for (NodeId root = 0; root < n; ++root) {
    if (component[root] != kInvalidNode) continue;
    NodeId comp = num_components++;
    NodeId size = 0;
    queue.clear();
    queue.push_back(root);
    component[root] = comp;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      NodeId v = queue[head];
      ++size;
      auto visit = [&](std::span<const NodeId> nbrs) {
        for (NodeId w : nbrs) {
          if (component[w] == kInvalidNode) {
            component[w] = comp;
            queue.push_back(w);
          }
        }
      };
      visit(graph.OutNeighbors(v));
      visit(graph.InNeighbors(v));
    }
    sizes.push_back(size);
  }
  NodeId best = 0;
  for (NodeId c = 1; c < num_components; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  std::vector<NodeId> members;
  members.reserve(num_components == 0 ? 0 : sizes[best]);
  for (NodeId v = 0; v < n; ++v) {
    if (component[v] == best) members.push_back(v);
  }
  return ExtractInducedSubgraph(graph, members);
}

}  // namespace gorder
