#include "graph/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gorder {

GraphStats ComputeStats(const Graph& graph) {
  GraphStats s;
  s.num_nodes = graph.NumNodes();
  s.num_edges = graph.NumEdges();
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    s.max_out_degree = std::max(s.max_out_degree, graph.OutDegree(v));
    s.max_in_degree = std::max(s.max_in_degree, graph.InDegree(v));
  }
  s.avg_degree = s.num_nodes == 0
                     ? 0.0
                     : static_cast<double>(s.num_edges) / s.num_nodes;
  s.memory_bytes = graph.MemoryBytes();
  return s;
}

std::vector<std::uint64_t> OutDegreeHistogram(const Graph& graph) {
  NodeId max_deg = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    max_deg = std::max(max_deg, graph.OutDegree(v));
  }
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_deg) + 1, 0);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    ++hist[graph.OutDegree(v)];
  }
  return hist;
}

double LinearArrangementCost(const Graph& graph) {
  double total = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      total += std::abs(static_cast<double>(v) - static_cast<double>(w));
    }
  }
  return total;
}

double LogArrangementCost(const Graph& graph) {
  double total = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      double gap = std::abs(static_cast<double>(v) - static_cast<double>(w));
      if (gap > 0) total += std::log2(gap);
    }
  }
  return total;
}

NodeId Bandwidth(const Graph& graph) {
  NodeId best = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      NodeId gap = v > w ? v - w : w - v;
      best = std::max(best, gap);
    }
  }
  return best;
}

namespace {

std::size_t SortedIntersectionSize(std::span<const NodeId> a,
                                   std::span<const NodeId> b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

}  // namespace

std::uint64_t GorderScoreUnderPermutation(const Graph& graph,
                                          const std::vector<NodeId>& perm,
                                          NodeId window) {
  GORDER_CHECK(window >= 1);
  CheckPermutation(perm, graph.NumNodes());
  std::vector<NodeId> order = InvertPermutation(perm);
  // O(n * w * average in-degree): evaluates every in-window pair directly.
  // Used for validation and ablation at test scale, not on hot paths.
  std::uint64_t score = 0;
  for (NodeId i = 0; i < graph.NumNodes(); ++i) {
    NodeId u = order[i];
    NodeId lo = i >= window ? i - window : 0;
    for (NodeId j = lo; j < i; ++j) {
      NodeId v = order[j];
      std::uint64_t sn = (graph.HasEdge(u, v) ? 1 : 0) +
                         (graph.HasEdge(v, u) ? 1 : 0);
      std::uint64_t ss =
          SortedIntersectionSize(graph.InNeighbors(u), graph.InNeighbors(v));
      score += sn + ss;
    }
  }
  return score;
}

std::uint64_t GorderScore(const Graph& graph, NodeId window) {
  return GorderScoreUnderPermutation(graph,
                                     IdentityPermutation(graph.NumNodes()),
                                     window);
}

}  // namespace gorder
