#ifndef GORDER_GRAPH_STATS_H_
#define GORDER_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gorder {

/// Summary statistics for a dataset row (Table 1 stand-in).
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  NodeId max_out_degree = 0;
  NodeId max_in_degree = 0;
  double avg_degree = 0.0;
  std::size_t memory_bytes = 0;
};

GraphStats ComputeStats(const Graph& graph);

/// Histogram of out-degrees; index d holds the number of nodes with
/// out-degree d (used by tests to check generator skew).
std::vector<std::uint64_t> OutDegreeHistogram(const Graph& graph);

/// Locality metrics of the *current numbering* — these are the objective
/// functions the ordering methods optimise, evaluated directly:
///
/// - `LinearArrangementCost`:   sum |pi_u - pi_v| over directed edges
///   (MinLA energy).
/// - `LogArrangementCost`:      sum log2 |pi_u - pi_v| (MinLogA energy).
/// - `Bandwidth`:               max |pi_u - pi_v| (RCM objective).
/// - `GorderScore`:             F(pi) = sum_{0 < pi_u - pi_v <= w} S(u,v)
///   with S = sibling (common in-neighbour) + neighbour counts, the
///   quantity Gorder greedily maximises (paper §3).
double LinearArrangementCost(const Graph& graph);
double LogArrangementCost(const Graph& graph);
NodeId Bandwidth(const Graph& graph);
std::uint64_t GorderScore(const Graph& graph, NodeId window);

/// GorderScore for a candidate permutation without materialising the
/// relabelled graph. `perm[old] = new`.
std::uint64_t GorderScoreUnderPermutation(const Graph& graph,
                                          const std::vector<NodeId>& perm,
                                          NodeId window);

}  // namespace gorder

#endif  // GORDER_GRAPH_STATS_H_
