#ifndef GORDER_GRAPH_EDGELIST_IO_H_
#define GORDER_GRAPH_EDGELIST_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/io_result.h"  // IoResult (shared by every IO layer)

namespace gorder {

/// Reads a whitespace-separated directed edge list ("src dst" per line,
/// '#' and '%' comment lines skipped — the SNAP and Konect conventions).
/// Node ids must be non-negative integers; ids are used verbatim, so the
/// file's own numbering is the "Original" ordering, as in the paper.
///
/// The file is parsed in parallel chunks split at line boundaries
/// (util/parallel.h); the resulting graph is identical at any thread
/// count. Lines of arbitrary length are supported.
IoResult ReadEdgeList(const std::string& path, Graph* graph);

/// Writes "src dst" lines with a SNAP-style header comment, through a
/// ~1MB formatting buffer (one fwrite per buffer, not per edge). Writes
/// stage to a temp file and rename into place (util/atomic_file), so a
/// failure never leaves a truncated file at `path`.
IoResult WriteEdgeList(const std::string& path, const Graph& graph);

/// Binary format: magic, counts, then raw CSR arrays. Round-trips exactly
/// and loads without re-sorting; used to cache generated datasets between
/// benchmark runs. The header counts are validated against the file size
/// before sizing any allocation; writes are staged + renamed like
/// WriteEdgeList.
IoResult ReadBinary(const std::string& path, Graph* graph);
IoResult WriteBinary(const std::string& path, const Graph& graph);

}  // namespace gorder

#endif  // GORDER_GRAPH_EDGELIST_IO_H_
