#include "graph/edgelist_io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <new>
#include <vector>

#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/parallel.h"

namespace gorder {

namespace {

GORDER_FAILPOINT_DEFINE(fp_read_open, "graph.read_edgelist.open");
GORDER_FAILPOINT_DEFINE(fp_read_stat, "graph.read_edgelist.stat");
GORDER_FAILPOINT_DEFINE(fp_read_read, "graph.read_edgelist.read");
GORDER_FAILPOINT_DEFINE(fp_read_alloc, "graph.read_edgelist.alloc");
GORDER_FAILPOINT_DEFINE(fp_write_open, "graph.write_edgelist.open");
GORDER_FAILPOINT_DEFINE(fp_write_write, "graph.write_edgelist.write");
GORDER_FAILPOINT_DEFINE(fp_wbin_open, "graph.write_binary.open");
GORDER_FAILPOINT_DEFINE(fp_wbin_write, "graph.write_binary.write");
GORDER_FAILPOINT_DEFINE(fp_rbin_open, "graph.read_binary.open");
GORDER_FAILPOINT_DEFINE(fp_rbin_stat, "graph.read_binary.stat");
GORDER_FAILPOINT_DEFINE(fp_rbin_read, "graph.read_binary.read");
GORDER_FAILPOINT_DEFINE(fp_rbin_alloc, "graph.read_binary.alloc");

constexpr char kBinaryMagic[8] = {'G', 'O', 'R', 'D', 'E', 'R', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr std::size_t kNoError = static_cast<std::size_t>(-1);

/// Parse state for one chunk of the input buffer. Chunks are merged in
/// file order, so the resulting edge sequence — and therefore the graph —
/// is independent of the chunk count and thread schedule.
struct ChunkParse {
  std::vector<Edge> edges;
  NodeId max_node = 0;
  bool saw_node = false;
  std::size_t error_offset = kNoError;  // byte offset of the offending line
  const char* error_kind = nullptr;
};

/// Parses edge lines in `data[begin, end)`. `begin` is at a line start and
/// `end` is at a line boundary (or end of buffer). Accepts the same inputs
/// as the old sscanf("%u %u") parser: leading blanks, '#'/'%' comments,
/// and arbitrary trailing junk after the two ids. Lines of any length are
/// handled — the old fgets-based reader silently split lines longer than
/// 255 bytes into two parses.
void ParseChunk(const char* data, std::size_t begin, std::size_t end,
                ChunkParse* out) {
  std::size_t p = begin;
  while (p < end) {
    const std::size_t line_start = p;
    while (p < end && (data[p] == ' ' || data[p] == '\t')) ++p;
    if (p < end && (data[p] == '#' || data[p] == '%' || data[p] == '\n' ||
                    data[p] == '\0')) {
      while (p < end && data[p] != '\n') ++p;
      if (p < end) ++p;  // consume '\n'
      continue;
    }
    std::uint64_t ids[2];
    bool ok = true;
    for (int k = 0; k < 2 && ok; ++k) {
      while (p < end && (data[p] == ' ' || data[p] == '\t')) ++p;
      if (p >= end || data[p] < '0' || data[p] > '9') {
        ok = false;
        break;
      }
      std::uint64_t value = 0;
      while (p < end && data[p] >= '0' && data[p] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(data[p] - '0');
        if (value > 0xFFFFFFFFFULL) value = 0xFFFFFFFFFULL;  // clamp, reject
        ++p;
      }
      ids[k] = value;
    }
    if (!ok) {
      out->error_offset = line_start;
      out->error_kind = "malformed edge line";
      return;
    }
    if (ids[0] > 0xFFFFFFFEULL || ids[1] > 0xFFFFFFFEULL) {
      out->error_offset = line_start;
      out->error_kind = "node id out of 32-bit range";
      return;
    }
    NodeId src = static_cast<NodeId>(ids[0]);
    NodeId dst = static_cast<NodeId>(ids[1]);
    out->edges.push_back({src, dst});
    NodeId hi = std::max(src, dst);
    if (!out->saw_node || hi > out->max_node) out->max_node = hi;
    out->saw_node = true;
    while (p < end && data[p] != '\n') ++p;  // ignore the rest of the line
    if (p < end) ++p;
  }
}

std::size_t LineNumberAt(const std::vector<char>& data, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(data.begin(),
                            data.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

}  // namespace

IoResult ReadEdgeList(const std::string& path, Graph* graph) {
  GORDER_OBS_SPAN(span, "io.read_edgelist");
  if (GORDER_FAILPOINT(fp_read_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Error("cannot open " + path);
  if (GORDER_FAILPOINT(fp_read_stat) != util::FaultKind::kNone ||
      std::fseek(f.get(), 0, SEEK_END) != 0) {
    return IoResult::Error("cannot seek " + path);
  }
  long size = std::ftell(f.get());
  if (size < 0) return IoResult::Error("cannot stat " + path);
  std::rewind(f.get());
  std::vector<char> data;
  try {
    GORDER_FAULT_ALLOC(fp_read_alloc);
    data.resize(static_cast<std::size_t>(size));
  } catch (const std::bad_alloc&) {
    return IoResult::Error("cannot allocate " + std::to_string(size) +
                           " bytes reading " + path);
  }
  if (!data.empty() &&
      GORDER_FAULT_IO(fp_read_read, data.size(),
                      std::fread(data.data(), 1, data.size(), f.get())) !=
          data.size()) {
    return IoResult::Error("short read from " + path);
  }
  f.reset();

  // Split into chunks at line boundaries; each chunk parses into a local
  // buffer, merged in file order below.
  const int threads = NumThreads();
  const std::size_t want_chunks =
      threads == 1 ? 1
                   : std::min<std::size_t>(static_cast<std::size_t>(threads) * 4,
                                           std::max<std::size_t>(
                                               data.size() / (1 << 16), 1));
  std::vector<std::size_t> bounds;  // chunk i is [bounds[i], bounds[i+1])
  bounds.push_back(0);
  const std::size_t stride = data.size() / want_chunks + 1;
  for (std::size_t c = 1; c < want_chunks; ++c) {
    std::size_t pos = std::min(c * stride, data.size());
    pos = std::max(pos, bounds.back());
    while (pos < data.size() && data[pos] != '\n') ++pos;
    if (pos < data.size()) ++pos;  // start just past the newline
    if (pos > bounds.back()) bounds.push_back(pos);
  }
  bounds.push_back(data.size());

  const std::size_t num_chunks = bounds.size() - 1;
  std::vector<ChunkParse> parts(num_chunks);
  ParallelFor(0, num_chunks, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) {
      ParseChunk(data.data(), bounds[c], bounds[c + 1], &parts[c]);
    }
  });

  for (const ChunkParse& part : parts) {
    if (part.error_offset != kNoError) {
      return IoResult::Error(path + ":" +
                             std::to_string(LineNumberAt(data, part.error_offset)) +
                             ": " + part.error_kind);
    }
  }

  std::size_t total = 0;
  NodeId num_nodes = 0;
  for (const ChunkParse& part : parts) {
    total += part.edges.size();
    if (part.saw_node && part.max_node + 1 > num_nodes) {
      num_nodes = part.max_node + 1;
    }
  }
  std::vector<Edge> edges(total);
  std::size_t pos = 0;
  std::vector<std::size_t> starts(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    starts[c] = pos;
    pos += parts[c].edges.size();
  }
  ParallelFor(0, num_chunks, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) {
      std::copy(parts[c].edges.begin(), parts[c].edges.end(),
                edges.begin() + static_cast<std::ptrdiff_t>(starts[c]));
    }
  });
  *graph = Graph::FromEdges(num_nodes, std::move(edges));
  return IoResult::Ok();
}

namespace {

/// Appends the decimal form of `v` to `buf` at `pos`.
inline std::size_t AppendU32(char* buf, std::size_t pos, std::uint32_t v) {
  char digits[10];
  int len = 0;
  do {
    digits[len++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (len > 0) buf[pos++] = digits[--len];
  return pos;
}

}  // namespace

IoResult WriteEdgeList(const std::string& path, const Graph& graph) {
  GORDER_OBS_SPAN(span, "io.write_edgelist");
  // Stage + rename like every other artifact writer: a failed or
  // crashed write never leaves a truncated edge list at the final path.
  const std::string tmp = util::StagingPath(path);
  if (GORDER_FAILPOINT(fp_write_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + tmp + " for writing");
  }
  FilePtr f(std::fopen(tmp.c_str(), "w"));
  if (!f) return IoResult::Error("cannot open " + tmp + " for writing");
  auto fail = [&] {
    f.reset();
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return IoResult::Error("short write to " + tmp);
  };
  if (std::fprintf(f.get(), "# Directed graph: %u nodes, %" PRIu64 " edges\n",
                   graph.NumNodes(), graph.NumEdges()) < 0) {
    return fail();
  }
  // Buffered formatting: one fwrite per ~1MB instead of one fprintf per
  // edge ("src dst\n" needs at most 22 bytes).
  std::vector<char> buf(1 << 20);
  std::size_t pos = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      if (pos + 24 > buf.size()) {
        if (GORDER_FAULT_IO(fp_write_write, pos,
                            std::fwrite(buf.data(), 1, pos, f.get())) != pos) {
          return fail();
        }
        pos = 0;
      }
      pos = AppendU32(buf.data(), pos, v);
      buf[pos++] = ' ';
      pos = AppendU32(buf.data(), pos, w);
      buf[pos++] = '\n';
    }
  }
  if (pos > 0 &&
      GORDER_FAULT_IO(fp_write_write, pos,
                      std::fwrite(buf.data(), 1, pos, f.get())) != pos) {
    return fail();
  }
  if (!util::FlushAndSync(f.get())) return fail();
  f.reset();
  return util::CommitStagedFile(tmp, path);
}

IoResult WriteBinary(const std::string& path, const Graph& graph) {
  const std::string tmp = util::StagingPath(path);
  if (GORDER_FAILPOINT(fp_wbin_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + tmp + " for writing");
  }
  FilePtr f(std::fopen(tmp.c_str(), "wb"));
  if (!f) return IoResult::Error("cannot open " + tmp + " for writing");
  std::uint64_t n = graph.NumNodes();
  std::uint64_t m = graph.NumEdges();
  auto write_raw = [&](const void* data, std::size_t item_bytes,
                       std::size_t items) {
    return GORDER_FAULT_IO(fp_wbin_write, items,
                           std::fwrite(data, item_bytes, items, f.get())) ==
           items;
  };
  bool ok = write_raw(kBinaryMagic, 1, 8) && write_raw(&n, sizeof n, 1) &&
            write_raw(&m, sizeof m, 1);
  auto write_vec = [&](const auto& v) {
    return v.empty() || write_raw(v.data(), sizeof(v[0]), v.size());
  };
  ok = ok && write_vec(graph.out_offsets()) && write_vec(graph.out_neighbors());
  ok = ok && util::FlushAndSync(f.get());
  if (!ok) {
    f.reset();
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return IoResult::Error("short write to " + tmp);
  }
  f.reset();
  return util::CommitStagedFile(tmp, path);
}

IoResult ReadBinary(const std::string& path, Graph* graph) {
  if (GORDER_FAILPOINT(fp_rbin_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Error("cannot open " + path);
  // File size first: the n/m header fields are untrusted and must be
  // bounded against it before they size any allocation.
  if (GORDER_FAILPOINT(fp_rbin_stat) != util::FaultKind::kNone ||
      std::fseek(f.get(), 0, SEEK_END) != 0) {
    return IoResult::Error("cannot seek " + path);
  }
  const long ssize = std::ftell(f.get());
  if (ssize < 0) return IoResult::Error("cannot stat " + path);
  std::rewind(f.get());
  const auto file_bytes = static_cast<std::uint64_t>(ssize);
  char magic[8];
  std::uint64_t n = 0, m = 0;
  auto read_raw = [&](void* data, std::size_t item_bytes, std::size_t items) {
    return GORDER_FAULT_IO(fp_rbin_read, items,
                           std::fread(data, item_bytes, items, f.get())) ==
           items;
  };
  if (!read_raw(magic, 1, 8) || std::memcmp(magic, kBinaryMagic, 8) != 0) {
    return IoResult::Error(path + ": bad magic (not a gorder binary graph)");
  }
  if (!read_raw(&n, sizeof n, 1) || !read_raw(&m, sizeof m, 1)) {
    return IoResult::Error(path + ": truncated header");
  }
  if (n > 0xFFFFFFFFULL) return IoResult::Error(path + ": node count too big");
  // Bound both counts by what the file could possibly hold before
  // allocating: a crafted header with m near 2^62 would otherwise ask
  // std::vector for a multi-exabyte buffer (bad_alloc at best, OOM kill
  // at worst) before any other check runs. n is capped above, so
  // (n + 1) * sizeof(EdgeId) cannot wrap; m is divided, not multiplied,
  // so the comparison cannot wrap either.
  constexpr std::uint64_t kHeaderBytes = 8 + sizeof n + sizeof m;
  const std::uint64_t payload_bytes =
      file_bytes > kHeaderBytes ? file_bytes - kHeaderBytes : 0;
  const std::uint64_t offsets_bytes = (n + 1) * sizeof(EdgeId);
  if (offsets_bytes > payload_bytes) {
    return IoResult::Error(path + ": node count implausible for file size");
  }
  if (m > (payload_bytes - offsets_bytes) / sizeof(NodeId)) {
    return IoResult::Error(path + ": edge count implausible for file size");
  }
  std::vector<EdgeId> offsets;
  std::vector<NodeId> neigh;
  try {
    GORDER_FAULT_ALLOC(fp_rbin_alloc);
    offsets.resize(n + 1);
    neigh.resize(m);
  } catch (const std::bad_alloc&) {
    return IoResult::Error(path + ": cannot allocate CSR buffers");
  }
  if (!read_raw(offsets.data(), sizeof(EdgeId), offsets.size())) {
    return IoResult::Error(path + ": truncated offsets");
  }
  if (m > 0 && !read_raw(neigh.data(), sizeof(NodeId), neigh.size())) {
    return IoResult::Error(path + ": truncated neighbours");
  }
  if (offsets[0] != 0 || offsets[n] != m) {
    return IoResult::Error(path + ": inconsistent CSR offsets");
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return IoResult::Error(path + ": non-monotone CSR offsets");
    }
    for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
      if (neigh[e] >= n) return IoResult::Error(path + ": neighbour id >= n");
      edges.push_back({static_cast<NodeId>(v), neigh[e]});
    }
  }
  *graph = Graph::FromEdges(static_cast<NodeId>(n), std::move(edges),
                            /*keep_self_loops=*/true,
                            /*keep_duplicates=*/true);
  return IoResult::Ok();
}

}  // namespace gorder
