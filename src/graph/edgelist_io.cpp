#include "graph/edgelist_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace gorder {

namespace {

constexpr char kBinaryMagic[8] = {'G', 'O', 'R', 'D', 'E', 'R', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

IoResult ReadEdgeList(const std::string& path, Graph* graph) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return IoResult::Error("cannot open " + path);
  Graph::Builder builder;
  char line[256];
  std::size_t lineno = 0;
  while (std::fgets(line, sizeof line, f.get()) != nullptr) {
    ++lineno;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    std::uint64_t src = 0, dst = 0;
    if (std::sscanf(p, "%" SCNu64 " %" SCNu64, &src, &dst) != 2) {
      return IoResult::Error(path + ":" + std::to_string(lineno) +
                             ": malformed edge line");
    }
    if (src > 0xFFFFFFFEULL || dst > 0xFFFFFFFEULL) {
      return IoResult::Error(path + ":" + std::to_string(lineno) +
                             ": node id out of 32-bit range");
    }
    builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst));
  }
  *graph = builder.Build();
  return IoResult::Ok();
}

IoResult WriteEdgeList(const std::string& path, const Graph& graph) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return IoResult::Error("cannot open " + path + " for writing");
  std::fprintf(f.get(), "# Directed graph: %u nodes, %" PRIu64 " edges\n",
               graph.NumNodes(), graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      std::fprintf(f.get(), "%u %u\n", v, w);
    }
  }
  return IoResult::Ok();
}

IoResult WriteBinary(const std::string& path, const Graph& graph) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoResult::Error("cannot open " + path + " for writing");
  std::uint64_t n = graph.NumNodes();
  std::uint64_t m = graph.NumEdges();
  bool ok = std::fwrite(kBinaryMagic, 1, 8, f.get()) == 8 &&
            std::fwrite(&n, sizeof n, 1, f.get()) == 1 &&
            std::fwrite(&m, sizeof m, 1, f.get()) == 1;
  auto write_vec = [&](const auto& v) {
    return v.empty() ||
           std::fwrite(v.data(), sizeof(v[0]), v.size(), f.get()) == v.size();
  };
  ok = ok && write_vec(graph.out_offsets()) && write_vec(graph.out_neighbors());
  if (!ok) return IoResult::Error("short write to " + path);
  return IoResult::Ok();
}

IoResult ReadBinary(const std::string& path, Graph* graph) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Error("cannot open " + path);
  char magic[8];
  std::uint64_t n = 0, m = 0;
  if (std::fread(magic, 1, 8, f.get()) != 8 ||
      std::memcmp(magic, kBinaryMagic, 8) != 0) {
    return IoResult::Error(path + ": bad magic (not a gorder binary graph)");
  }
  if (std::fread(&n, sizeof n, 1, f.get()) != 1 ||
      std::fread(&m, sizeof m, 1, f.get()) != 1) {
    return IoResult::Error(path + ": truncated header");
  }
  if (n > 0xFFFFFFFFULL) return IoResult::Error(path + ": node count too big");
  std::vector<EdgeId> offsets(n + 1);
  std::vector<NodeId> neigh(m);
  if (std::fread(offsets.data(), sizeof(EdgeId), offsets.size(), f.get()) !=
      offsets.size()) {
    return IoResult::Error(path + ": truncated offsets");
  }
  if (m > 0 &&
      std::fread(neigh.data(), sizeof(NodeId), neigh.size(), f.get()) !=
          neigh.size()) {
    return IoResult::Error(path + ": truncated neighbours");
  }
  if (offsets[0] != 0 || offsets[n] != m) {
    return IoResult::Error(path + ": inconsistent CSR offsets");
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return IoResult::Error(path + ": non-monotone CSR offsets");
    }
    for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
      if (neigh[e] >= n) return IoResult::Error(path + ": neighbour id >= n");
      edges.push_back({static_cast<NodeId>(v), neigh[e]});
    }
  }
  *graph = Graph::FromEdges(static_cast<NodeId>(n), std::move(edges),
                            /*keep_self_loops=*/true,
                            /*keep_duplicates=*/true);
  return IoResult::Ok();
}

}  // namespace gorder
