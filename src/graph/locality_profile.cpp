#include "graph/locality_profile.h"

#include <bit>
#include <cmath>

#include "util/logging.h"

namespace gorder {

double LocalityProfile::CumulativeBelow(int log2_gap) const {
  if (num_edges == 0) return 0.0;
  std::uint64_t count = 0;
  for (int i = 0; i < log2_gap && i < static_cast<int>(gap_histogram.size());
       ++i) {
    count += gap_histogram[i];
  }
  return static_cast<double>(count) / static_cast<double>(num_edges);
}

LocalityProfile ComputeLocalityProfile(const Graph& graph) {
  LocalityProfile p;
  p.num_edges = graph.NumEdges();
  p.gap_histogram.assign(33, 0);
  if (p.num_edges == 0) return p;
  std::uint64_t same_line = 0, win5 = 0, win1024 = 0;
  double gap_sum = 0.0, log_sum = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      std::uint32_t gap = v > w ? v - w : w - v;
      if (gap == 0) continue;  // self loop, if kept
      p.bandwidth = std::max(p.bandwidth, gap);
      gap_sum += gap;
      log_sum += std::log2(1.0 + gap);
      // bucket = floor(log2(gap)): gap 1 -> 0, 2..3 -> 1, ...
      ++p.gap_histogram[std::bit_width(gap) - 1];
      same_line += gap < 16;
      win5 += gap <= 5;
      win1024 += gap <= 1024;
    }
  }
  const auto m = static_cast<double>(p.num_edges);
  p.avg_gap = gap_sum / m;
  p.avg_log2_gap = log_sum / m;
  p.same_line_fraction = static_cast<double>(same_line) / m;
  p.within_window5 = static_cast<double>(win5) / m;
  p.within_window1024 = static_cast<double>(win1024) / m;
  return p;
}

}  // namespace gorder
