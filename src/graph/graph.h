#ifndef GORDER_GRAPH_GRAPH_H_
#define GORDER_GRAPH_GRAPH_H_

#include <span>
#include <utility>
#include <vector>

#include "util/array_ref.h"
#include "util/types.h"

namespace gorder {

/// An edge (src -> dst) in a directed graph.
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable directed graph in Compressed Sparse Row format.
///
/// Both out-adjacency and in-adjacency are materialised: the paper's
/// workloads need out-neighbours (traversals, NQ, SP), in-neighbours
/// (PageRank pull, InDegSort, Gorder's sibling score) and the undirected
/// view (RCM, SlashBurn, K-core, Dominating Set).
///
/// Neighbour lists are sorted ascending, which the benchmark algorithms
/// rely on for deterministic "lexicographic" tie-breaking (replication
/// §2.1) and which maximises the benefit of locality-aware orderings.
///
/// Construction goes through `Builder` (dedups, strips self-loops by
/// default) or `FromEdges`. Copy is expensive and therefore explicit via
/// `Clone`; the type itself is move-only.
///
/// `FromEdges` and `Relabel` run on the shared parallel runtime
/// (util/parallel.h): counting-sort scatter plus per-node sorts, with the
/// out- and in-CSR built concurrently. Results are bit-identical at any
/// thread count; `SetNumThreads(1)` gives a fully serial build.
class Graph {
 public:
  /// Incremental builder. Collects edges, then `Build()` produces the CSR.
  class Builder {
   public:
    explicit Builder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

    /// Adds a directed edge, growing the node count as needed.
    void AddEdge(NodeId src, NodeId dst);

    /// Ensures the graph has at least `n` nodes (isolated nodes allowed).
    void ReserveNodes(NodeId n);
    void ReserveEdges(std::size_t m) { edges_.reserve(m); }

    std::size_t num_pending_edges() const { return edges_.size(); }

    /// Finalises into a Graph. `keep_self_loops` / `keep_duplicates`
    /// default to false to match the simple-directed-graph datasets used
    /// in the paper.
    Graph Build(bool keep_self_loops = false, bool keep_duplicates = false);

   private:
    NodeId num_nodes_;
    std::vector<Edge> edges_;
  };

  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Builds directly from an edge list.
  static Graph FromEdges(NodeId num_nodes, std::vector<Edge> edges,
                         bool keep_self_loops = false,
                         bool keep_duplicates = false);

  /// Wraps pre-built CSR arrays — typically borrowed from a memory-mapped
  /// gpack (src/store) — without copying. The caller is responsible for
  /// deep validation (monotone offsets, in-range sorted neighbours);
  /// store::LoadPack performs it before constructing. Only cheap
  /// structural invariants are re-checked here.
  static Graph FromMapped(NodeId num_nodes, ArrayRef<EdgeId> out_offsets,
                          ArrayRef<NodeId> out_neighbors,
                          ArrayRef<EdgeId> in_offsets,
                          ArrayRef<NodeId> in_neighbors);

  /// Deep copy (explicit because it is O(n + m)).
  Graph Clone() const;

  NodeId NumNodes() const { return num_nodes_; }
  EdgeId NumEdges() const { return static_cast<EdgeId>(out_neigh_.size()); }

  NodeId OutDegree(NodeId v) const {
    return static_cast<NodeId>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  NodeId InDegree(NodeId v) const {
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }
  /// Degree of the undirected view (out + in, double-counting reciprocal
  /// edges; cheap and monotone, which is all the degree-based orderings
  /// need).
  NodeId UndirectedDegree(NodeId v) const {
    return OutDegree(v) + InDegree(v);
  }

  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {out_neigh_.data() + out_offsets_[v],
            out_neigh_.data() + out_offsets_[v + 1]};
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_neigh_.data() + in_offsets_[v],
            in_neigh_.data() + in_offsets_[v + 1]};
  }

  /// Raw CSR access, used by the cache-traced algorithm variants to model
  /// the exact memory layout the paper's implementation touches. The
  /// arrays are owned-or-borrowed (util/array_ref.h): vector-backed for
  /// built graphs, mapping-backed for graphs loaded zero-copy from a
  /// gpack. Indexing cost is identical either way.
  const ArrayRef<EdgeId>& out_offsets() const { return out_offsets_; }
  const ArrayRef<NodeId>& out_neighbors() const { return out_neigh_; }
  const ArrayRef<EdgeId>& in_offsets() const { return in_offsets_; }
  const ArrayRef<NodeId>& in_neighbors() const { return in_neigh_; }

  /// True when the CSR arrays borrow from a shared mapping (zero-copy
  /// load) rather than owning their storage.
  bool IsMapped() const { return out_neigh_.borrowed(); }

  /// True if the directed edge (src, dst) exists (binary search).
  bool HasEdge(NodeId src, NodeId dst) const;

  /// Returns the renumbered graph under `perm`, where `perm[old] = new`.
  /// Direct CSR -> CSR permutation (no intermediate edge list); neighbour
  /// lists of the result are re-sorted. O(n + m).
  Graph Relabel(const std::vector<NodeId>& perm) const;

  /// Materialises the edge list (src/dst pairs, sorted by src then dst).
  std::vector<Edge> ToEdges() const;

  /// Total bytes of the CSR arrays (reported in Table 1 stand-in).
  std::size_t MemoryBytes() const;

 private:
  NodeId num_nodes_ = 0;
  ArrayRef<EdgeId> out_offsets_{std::vector<EdgeId>{0}};
  ArrayRef<NodeId> out_neigh_;
  ArrayRef<EdgeId> in_offsets_{std::vector<EdgeId>{0}};
  ArrayRef<NodeId> in_neigh_;
};

/// Validates that `perm` is a permutation of [0, n). Aborts otherwise.
void CheckPermutation(const std::vector<NodeId>& perm, NodeId n);

/// Returns the inverse permutation: if `perm[old] = new`, the result maps
/// `result[new] = old`.
std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm);

/// Composes permutations: result[v] = second[first[v]].
std::vector<NodeId> ComposePermutations(const std::vector<NodeId>& first,
                                        const std::vector<NodeId>& second);

/// The identity permutation on n nodes.
std::vector<NodeId> IdentityPermutation(NodeId n);

}  // namespace gorder

#endif  // GORDER_GRAPH_GRAPH_H_
