#include "graph/dynamic_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace gorder {

DynamicGraph::DynamicGraph(const Graph& graph) {
  out_.resize(graph.NumNodes());
  in_.resize(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    auto outs = graph.OutNeighbors(v);
    out_[v].assign(outs.begin(), outs.end());
    auto ins = graph.InNeighbors(v);
    in_[v].assign(ins.begin(), ins.end());
  }
  num_edges_ = graph.NumEdges();
}

NodeId DynamicGraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

bool DynamicGraph::AddEdge(NodeId src, NodeId dst) {
  GORDER_CHECK(src < NumNodes() && dst < NumNodes());
  if (src == dst) return false;
  if (HasEdge(src, dst)) return false;
  out_[src].push_back(dst);
  in_[dst].push_back(src);
  ++num_edges_;
  return true;
}

bool DynamicGraph::HasEdge(NodeId src, NodeId dst) const {
  // Scan the smaller of the two incidence lists.
  const auto& fwd = out_[src];
  const auto& bwd = in_[dst];
  if (fwd.size() <= bwd.size()) {
    return std::find(fwd.begin(), fwd.end(), dst) != fwd.end();
  }
  return std::find(bwd.begin(), bwd.end(), src) != bwd.end();
}

Graph DynamicGraph::ToCsr() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId v = 0; v < NumNodes(); ++v) {
    for (NodeId w : out_[v]) edges.push_back({v, w});
  }
  return Graph::FromEdges(NumNodes(), std::move(edges),
                          /*keep_self_loops=*/false,
                          /*keep_duplicates=*/false);
}

}  // namespace gorder
