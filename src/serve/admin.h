#ifndef GORDER_SERVE_ADMIN_H_
#define GORDER_SERVE_ADMIN_H_

/// gorderd admin surface (DESIGN.md §17): a dedicated listener speaking
/// just enough HTTP/1.0 that `curl` and a Prometheus scraper work
/// without the binary protocol.
///
///   GET /metrics   Prometheus text format (obs/expo.h)
///   GET /healthz   "ok\n" while the daemon serves
///   GET /tracez    JSON dump of the sampled request-trace ring
///
/// One request per connection, response closes the socket (HTTP/1.0
/// semantics; scrape traffic is low-rate, so connection reuse buys
/// nothing and keep-alive state machines are where HTTP bugs live).
/// The request parser is a pure function over bytes — the ASan fuzz
/// suite feeds it adversarial input directly — and caps header size at
/// kMaxAdminRequestBytes before any allocation growth.
///
/// Failpoints `net.admin.accept`, `net.admin.read`, `net.admin.write`
/// cover the three syscall sites, proving (fault-sweep suite) that an
/// injected admin-plane failure never takes down the query plane.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "util/io_result.h"
#include "util/net.h"

namespace gorder::serve {

/// Hard cap on the bytes of one admin request head. A peer that sends
/// more before the blank line is answered 400 and closed.
inline constexpr std::size_t kMaxAdminRequestBytes = 8192;

enum class AdminParse {
  kNeedMore,  // no blank line yet; read more (caller enforces the cap)
  kOk,        // request line parsed
  kBad,       // malformed request line / oversized head
};

struct AdminRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics" (query strings are kept verbatim)
};

/// Parses one HTTP request head out of `data` (everything up to the
/// first blank line). Headers after the request line are ignored —
/// routing needs only the method and path.
AdminParse ParseAdminRequest(std::string_view data, AdminRequest* out);

/// Renders a complete HTTP/1.0 response with Content-Length and
/// Connection: close.
std::string RenderHttpResponse(int status_code, std::string_view content_type,
                               std::string_view body);

/// Content callbacks for the three routes; each returns the body.
struct AdminHandlers {
  std::function<std::string()> metrics_text;  // /metrics
  std::function<std::string()> healthz_text;  // /healthz
  std::function<std::string()> tracez_json;   // /tracez
};

/// Pure routing: full HTTP response for a parsed request (405 for
/// non-GET, 404 for unknown paths).
std::string HandleAdminRequest(const AdminRequest& req,
                               const AdminHandlers& handlers);

/// The admin listener: one accept thread, requests handled serially
/// (scrapes are rare and cheap; a serial loop cannot leak threads). A
/// 5-second socket timeout keeps a wedged peer from blocking the next
/// scrape forever.
class AdminListener {
 public:
  AdminListener() = default;
  ~AdminListener() { Stop(); }
  AdminListener(const AdminListener&) = delete;
  AdminListener& operator=(const AdminListener&) = delete;

  IoResult Start(const util::NetAddress& addr, AdminHandlers handlers);
  void Stop();

  bool running() const { return running_; }
  /// Bound TCP port after Start() on tcp:0; 0 for unix sockets.
  int Port() const { return listener_.LocalPort(); }

 private:
  void ServeLoop();
  void ServeOne(util::Socket sock);

  util::Socket listener_;
  AdminHandlers handlers_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  std::thread thread_;
};

}  // namespace gorder::serve

#endif  // GORDER_SERVE_ADMIN_H_
