#ifndef GORDER_SERVE_STATS_H_
#define GORDER_SERVE_STATS_H_

/// kStats / /tracez JSON rendering (DESIGN.md §17).
///
/// Pure functions from explicit inputs to bytes — no registry reads, no
/// clocks — so the protocol conformance suite can pin byte-level goldens
/// on fixed inputs. The server feeds them live values; the tests feed
/// them constants.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/expo.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"

namespace gorder::serve {

/// Server-core state that is not in the metric registry.
struct ServerStatsView {
  std::uint64_t epoch = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t connections = 0;
  std::uint64_t traces_sampled = 0;  // ReqTraceRing::TotalPushed()
};

/// The kStats JSON document:
///
///   {"schema":"gorder-stats","schema_version":1,
///    "epoch":E,"queue_depth":Q,"in_flight":F,"connections":C,
///    "traces_sampled":T,
///    "counters":{"name":v,...},"gauges":{"name":v,...},
///    "windows":{"name":{"10s":{"count":..,"sum":..,"p50":..,"p99":..,
///                              "p999":..},"60s":{...}},...}}
///
/// Maps are sorted by name (DumpMetrics/DumpWindowed order), so the
/// bytes are deterministic for fixed inputs.
std::string RenderStatsJson(const ServerStatsView& view,
                            const obs::MetricsDump& metrics,
                            const std::vector<obs::WindowedDump>& windows);

/// The /tracez JSON document: {"schema":"gorder-tracez","total_pushed":N,
/// "records":[{...newest first...}]}.
std::string RenderTracezJson(std::uint64_t total_pushed,
                             const std::vector<obs::ReqTraceRecord>& records);

}  // namespace gorder::serve

#endif  // GORDER_SERVE_STATS_H_
