#include "serve/admin.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/time.h>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace gorder::serve {

namespace {

GORDER_FAILPOINT_DEFINE(fp_admin_accept, "net.admin.accept");
GORDER_FAILPOINT_DEFINE(fp_admin_read, "net.admin.read");
GORDER_FAILPOINT_DEFINE(fp_admin_write, "net.admin.write");

GORDER_OBS_COUNTER(c_admin_requests, "admin.requests");
GORDER_OBS_COUNTER(c_admin_bad_requests, "admin.bad_requests");

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

}  // namespace

AdminParse ParseAdminRequest(std::string_view data, AdminRequest* out) {
  // The head ends at the first blank line ("\r\n\r\n", or "\n\n" from
  // hand-typed netcat input).
  std::size_t head_end = data.find("\r\n\r\n");
  std::size_t terminator = 4;
  if (head_end == std::string_view::npos) {
    head_end = data.find("\n\n");
    terminator = 2;
  }
  if (head_end == std::string_view::npos) {
    return data.size() > kMaxAdminRequestBytes ? AdminParse::kBad
                                               : AdminParse::kNeedMore;
  }
  if (head_end + terminator > kMaxAdminRequestBytes) return AdminParse::kBad;
  std::string_view head = data.substr(0, head_end);
  // Request line is the first line: METHOD SP PATH SP VERSION.
  std::size_t line_end = head.find('\n');
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return AdminParse::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return AdminParse::kBad;
  std::string_view version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return AdminParse::kBad;
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (path.empty() || path[0] != '/') return AdminParse::kBad;
  for (char c : line) {
    if (static_cast<unsigned char>(c) < 0x20) return AdminParse::kBad;
  }
  out->method = std::string(line.substr(0, sp1));
  out->path = std::string(path);
  return AdminParse::kOk;
}

std::string RenderHttpResponse(int status_code, std::string_view content_type,
                               std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status_code) + " " +
                    ReasonPhrase(status_code) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string HandleAdminRequest(const AdminRequest& req,
                               const AdminHandlers& handlers) {
  if (req.method != "GET") {
    return RenderHttpResponse(405, "text/plain", "method not allowed\n");
  }
  // Strip a query string: Prometheus may append one to the scrape path.
  std::string path = req.path.substr(0, req.path.find('?'));
  if (path == "/metrics") {
    return RenderHttpResponse(200, "text/plain; version=0.0.4",
                              handlers.metrics_text());
  }
  if (path == "/healthz") {
    return RenderHttpResponse(200, "text/plain", handlers.healthz_text());
  }
  if (path == "/tracez") {
    return RenderHttpResponse(200, "application/json",
                              handlers.tracez_json());
  }
  return RenderHttpResponse(404, "text/plain", "not found\n");
}

IoResult AdminListener::Start(const util::NetAddress& addr,
                              AdminHandlers handlers) {
  IoResult r = util::ListenSocket(addr, &listener_);
  if (!r.ok) return r;
  handlers_ = std::move(handlers);
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { ServeLoop(); });
  running_ = true;
  return IoResult::Ok();
}

void AdminListener::Stop() {
  if (!running_) return;
  stopping_.store(true, std::memory_order_relaxed);
  listener_.ShutdownBoth();
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  running_ = false;
}

void AdminListener::ServeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (GORDER_FAILPOINT(fp_admin_accept) != util::FaultKind::kNone) {
      // Same degradation as the query-plane accept loop: log, pause,
      // keep listening. The admin plane must never crash the daemon.
      GORDER_LOG_DEBUG("admin: accept failed (injected)\n");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    util::Socket sock;
    IoResult r = util::AcceptSocket(listener_, &sock);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (!r.ok) {
      GORDER_LOG_DEBUG("admin: accept failed: %s\n", r.error.c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // Bound every peer interaction: a wedged scraper must not block the
    // next one past this.
    timeval tv{5, 0};
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeOne(std::move(sock));
  }
}

void AdminListener::ServeOne(util::Socket sock) {
  std::string buf;
  AdminRequest req;
  AdminParse parsed = AdminParse::kNeedMore;
  while (parsed == AdminParse::kNeedMore &&
         buf.size() <= kMaxAdminRequestBytes) {
    char chunk[1024];
    if (GORDER_FAILPOINT(fp_admin_read) != util::FaultKind::kNone) {
      GORDER_LOG_DEBUG("admin: read failed (injected)\n");
      return;
    }
    std::size_t got = 0;
    IoResult r = util::ReadSome(sock, chunk, sizeof(chunk), &got);
    if (!r.ok || got == 0) return;  // error or EOF before a full head
    buf.append(chunk, got);
    parsed = ParseAdminRequest(buf, &req);
  }
  std::string response;
  if (parsed == AdminParse::kOk) {
    GORDER_OBS_INC(c_admin_requests);
    response = HandleAdminRequest(req, handlers_);
  } else {
    GORDER_OBS_INC(c_admin_bad_requests);
    response = RenderHttpResponse(400, "text/plain", "bad request\n");
  }
  if (GORDER_FAILPOINT(fp_admin_write) != util::FaultKind::kNone) {
    GORDER_LOG_DEBUG("admin: write failed (injected)\n");
    return;
  }
  IoResult w = util::WriteFull(sock, response.data(), response.size());
  if (!w.ok) {
    GORDER_LOG_DEBUG("admin: write failed: %s\n", w.error.c_str());
  }
}

}  // namespace gorder::serve
