#include "serve/client.h"

#include <cstring>

namespace gorder::serve {

namespace {

/// Marks a reply as transport-dead: the daemon never answered.
template <typename R>
R TransportError(const std::string& message) {
  R r;
  r.status = Status::kInternal;
  r.error = "transport: " + message;
  return r;
}

/// Pulls the daemon's error message out of an error body.
void FillErrorMessage(Reply* reply, const std::byte* body,
                      std::size_t body_len) {
  WireReader r(body, body_len);
  std::uint16_t msg_len = 0;
  if (!r.GetU16(&msg_len) || r.remaining() < msg_len) return;
  reply->error.resize(msg_len);
  r.GetBytes(reply->error.data(), msg_len);
}

}  // namespace

IoResult Client::Connect(const util::NetAddress& addr, double timeout_s) {
  IoResult r = util::ConnectSocket(addr, &sock_, timeout_s);
  if (!r.ok) return r;
  std::string hello;
  AppendHandshake(&hello);
  r = util::WriteFull(sock_, hello.data(), hello.size());
  if (!r.ok) {
    sock_.Close();
    return r;
  }
  std::byte ack[kHandshakeBytes];
  r = util::ReadFull(sock_, ack, sizeof(ack));
  if (!r.ok) {
    sock_.Close();
    return r;
  }
  std::uint32_t magic, version;
  std::memcpy(&magic, ack, 4);
  std::memcpy(&version, ack + 4, 4);
  if (magic != kWireMagic) {
    sock_.Close();
    return IoResult::Error("handshake: bad magic from server");
  }
  if (version != kProtocolVersion) {
    sock_.Close();
    return IoResult::Error("handshake: server rejected protocol version " +
                           std::to_string(kProtocolVersion));
  }
  return IoResult::Ok();
}

RawReply Client::Call(const std::string& frame) {
  if (!sock_.valid()) return TransportError<RawReply>("not connected");
  IoResult w = util::WriteFull(sock_, frame.data(), frame.size());
  if (!w.ok) {
    sock_.Close();
    return TransportError<RawReply>(w.error);
  }
  std::byte len_bytes[4];
  IoResult r = util::ReadFull(sock_, len_bytes, 4);
  if (!r.ok) {
    sock_.Close();
    return TransportError<RawReply>(r.error);
  }
  std::uint32_t payload_len;
  std::memcpy(&payload_len, len_bytes, 4);
  if (payload_len > kMaxPayloadBytes) {
    sock_.Close();
    return TransportError<RawReply>("response declares oversized payload");
  }
  std::vector<std::byte> buf(4 + payload_len);
  std::memcpy(buf.data(), len_bytes, 4);
  if (payload_len > 0) {
    r = util::ReadFull(sock_, buf.data() + 4, payload_len);
    if (!r.ok) {
      sock_.Close();
      return TransportError<RawReply>(r.error);
    }
  }
  std::size_t consumed = 0;
  ResponseHeader header;
  const std::byte* body = nullptr;
  std::size_t body_len = 0;
  std::string error;
  DecodeResult d = DecodeResponse(buf.data(), buf.size(), &consumed, &header,
                                  &body, &body_len, &error);
  if (d != DecodeResult::kOk) {
    sock_.Close();
    return TransportError<RawReply>("undecodable response: " + error);
  }
  RawReply reply;
  reply.status = header.status;
  reply.epoch = header.epoch;
  reply.body.assign(reinterpret_cast<const char*>(body), body_len);
  if (!reply.ok()) FillErrorMessage(&reply, body, body_len);
  return reply;
}

RawReply Client::RoundTrip(Request req) {
  req.id = next_id_++;
  std::string frame;
  AppendRequest(&frame, req);
  return Call(frame);
}

namespace {

/// Copies the envelope of `raw` onto a typed reply; true when the typed
/// body should be decoded.
template <typename R>
bool BeginDecode(const RawReply& raw, R* out) {
  out->status = raw.status;
  out->epoch = raw.epoch;
  out->error = raw.error;
  return raw.ok();
}

template <typename R>
void MarkTruncated(R* out) {
  out->status = Status::kInternal;
  out->error = "transport: truncated response body";
}

Request Req(Opcode op, NodeId node = 0, std::uint32_t k = 0,
            std::uint32_t iterations = 0) {
  Request r;
  r.opcode = op;
  r.node = node;
  r.k = k;
  r.iterations = iterations;
  return r;
}

}  // namespace

Reply Client::Ping() {
  Reply out;
  RawReply raw = RoundTrip(Req(Opcode::kPing));
  BeginDecode(raw, &out);
  return out;
}

InfoReply Client::Info() {
  InfoReply out;
  RawReply raw = RoundTrip(Req(Opcode::kInfo));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  if (!r.GetU64(&out.num_nodes) || !r.GetU64(&out.num_edges) ||
      !r.GetU32(&out.serve_threads) || !r.GetU32(&out.protocol_version)) {
    MarkTruncated(&out);
  }
  return out;
}

DegreeReply Client::Degree(NodeId node) {
  DegreeReply out;
  RawReply raw = RoundTrip(Req(Opcode::kDegree, node));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  if (!r.GetU32(&out.out_degree) || !r.GetU32(&out.in_degree)) {
    MarkTruncated(&out);
  }
  return out;
}

NeighborsReply Client::Neighbors(NodeId node) {
  NeighborsReply out;
  RawReply raw = RoundTrip(Req(Opcode::kNeighbors, node));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  std::uint32_t count = 0;
  if (!r.GetU32(&count) ||
      r.remaining() != static_cast<std::size_t>(count) * sizeof(NodeId)) {
    MarkTruncated(&out);
    return out;
  }
  out.neighbors.resize(count);
  r.GetBytes(out.neighbors.data(), r.remaining());
  return out;
}

BfsReply Client::Bfs(NodeId source) {
  BfsReply out;
  RawReply raw = RoundTrip(Req(Opcode::kBfs, source));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  if (!r.GetU32(&out.num_reached) || !r.GetU64(&out.sum_levels) ||
      !r.GetU64(&out.level_hash)) {
    MarkTruncated(&out);
  }
  return out;
}

SpReply Client::Sp(NodeId source) {
  SpReply out;
  RawReply raw = RoundTrip(Req(Opcode::kSp, source));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  if (!r.GetU32(&out.num_reached) || !r.GetU32(&out.max_dist) ||
      !r.GetU32(&out.num_rounds) || !r.GetU64(&out.dist_hash)) {
    MarkTruncated(&out);
  }
  return out;
}

PageRankTopKReply Client::PageRankTopK(std::uint32_t k,
                                       std::uint32_t iterations) {
  PageRankTopKReply out;
  RawReply raw = RoundTrip(Req(Opcode::kPageRankTopK, 0, k, iterations));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  std::uint32_t count = 0;
  if (!r.GetF64(&out.total_mass) || !r.GetU32(&count) ||
      r.remaining() != static_cast<std::size_t>(count) * 12) {
    MarkTruncated(&out);
    return out;
  }
  out.top.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    NodeId node = 0;
    double rank = 0.0;
    r.GetU32(&node);
    r.GetF64(&rank);
    out.top.emplace_back(node, rank);
  }
  return out;
}

OrderReply Client::Order(const std::string& method, std::uint64_t seed,
                         NodeId num_nodes, const std::vector<Edge>& edges) {
  OrderReply out;
  Request req;
  req.opcode = Opcode::kOrder;
  req.method = method;
  req.seed = seed;
  req.num_nodes = num_nodes;
  req.edges = edges;
  RawReply raw = RoundTrip(std::move(req));
  if (!BeginDecode(raw, &out)) return out;
  WireReader r(reinterpret_cast<const std::byte*>(raw.body.data()),
               raw.body.size());
  std::uint32_t count = 0;
  if (!r.GetU32(&count) ||
      r.remaining() != static_cast<std::size_t>(count) * sizeof(NodeId)) {
    MarkTruncated(&out);
    return out;
  }
  out.perm.resize(count);
  r.GetBytes(out.perm.data(), r.remaining());
  return out;
}

Reply Client::SwapPack(const std::string& pack_path) {
  Reply out;
  Request req;
  req.opcode = Opcode::kSwapPack;
  req.pack_path = pack_path;
  RawReply raw = RoundTrip(std::move(req));
  BeginDecode(raw, &out);
  return out;
}

Reply Client::Shutdown() {
  Reply out;
  RawReply raw = RoundTrip(Req(Opcode::kShutdown));
  BeginDecode(raw, &out);
  return out;
}

StatsReply Client::Stats() {
  StatsReply out;
  RawReply raw = RoundTrip(Req(Opcode::kStats));
  if (!BeginDecode(raw, &out)) return out;
  if (!DecodeStatsBody(reinterpret_cast<const std::byte*>(raw.body.data()),
                       raw.body.size(), &out.json)) {
    MarkTruncated(&out);
  }
  return out;
}

}  // namespace gorder::serve
