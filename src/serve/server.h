#ifndef GORDER_SERVE_SERVER_H_
#define GORDER_SERVE_SERVER_H_

/// gorderd server core (DESIGN.md §16): a long-running daemon serving
/// graph queries over the length-prefixed binary protocol
/// (serve/protocol.h) on a unix or TCP stream socket.
///
/// Architecture:
///
///   acceptor thread ──▶ per-connection reader threads
///                          │ decode frames, admission control
///                          ▼
///                    bounded request queue  ── full ─▶ OVERLOADED reply
///                          │
///                          ▼
///                  serve_threads worker threads
///                          │ execute against the current snapshot,
///                          ▼ reply under the connection's write lock
///
/// The graph is held as an immutable, epoch-numbered snapshot behind a
/// shared_ptr: queries pin the snapshot they started with, `Publish`
/// swaps in a new one atomically, and the old mapping (typically an
/// mmap'd .gpack, zero-copy shared across all workers) is unmapped only
/// when its last in-flight query drains — the graceful hot-swap story.
/// Every response carries the serving epoch, so swaps are observable.
///
/// Backpressure is explicit: when the queue is full the *reader* thread
/// answers kOverloaded immediately instead of buffering unboundedly —
/// an open-loop client sees the overload rather than unbounded latency.
///
/// Kernels executed by workers (BFS, SP, PageRank, orderings) are the
/// library functions and keep their determinism contract, so a response
/// is bit-identical to a direct library call on the same snapshot.

#include <cstdint>
#include <functional>
#include <string>

#include "graph/graph.h"
#include "serve/protocol.h"
#include "util/io_result.h"
#include "util/net.h"

namespace gorder::serve {

struct ServerOptions {
  util::NetAddress listen;

  /// Worker threads executing queries (the "server threads" of the
  /// concurrency differential test). Kernels may additionally fan out
  /// on the shared fork-join pool (util/parallel.h).
  int serve_threads = 2;
  /// Bounded request queue; a frame arriving while it is full is
  /// answered kOverloaded by the reader thread (admission control).
  int queue_capacity = 128;
  /// Connections beyond this are accepted and immediately closed.
  int max_connections = 64;

  // Per-request resource bounds (kBadRequest / kTooLarge when exceeded).
  std::uint32_t max_neighbors = 1u << 20;   // kNeighbors reply cap
  std::uint32_t max_topk = 4096;            // kPageRankTopK k cap
  std::uint32_t max_iterations = 1000;      // kPageRankTopK iterations cap
  NodeId max_order_nodes = 1u << 22;        // kOrder uploaded-graph cap

  /// Admin opcodes can be disabled for exposed deployments.
  bool allow_swap = true;
  bool allow_shutdown = true;

  /// Admin plane (DESIGN.md §17): HTTP/1.0 listener answering
  /// GET /metrics, /healthz, /tracez. Off by default — it is a second
  /// listening socket, so turning it on is an explicit deployment
  /// decision (gorderd --admin-addr).
  bool admin_enabled = false;
  util::NetAddress admin_listen;

  /// Request tracing: requests with trace_id % trace_sample == 0 are
  /// recorded in the trace ring (0 disables sampling). Slow requests
  /// are always recorded regardless.
  std::uint32_t trace_sample = 64;
  /// Threshold for "slow": queue wait + execution above this logs one
  /// structured line and force-samples the trace. 0 disables.
  int slow_request_ms = 0;
};

class Server {
 public:
  /// Takes ownership of the initial snapshot (epoch 1).
  Server(Graph graph, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listen address and starts the acceptor and worker
  /// threads. On failure nothing runs and the error is returned.
  IoResult Start();

  /// Graceful stop: stop accepting, fail new requests with
  /// kShuttingDown, drain queued work, then tear down connections and
  /// join every thread. Idempotent; also invoked by the destructor.
  void Stop();

  /// Blocks up to `timeout_s` for a client kShutdown request (or a
  /// Stop() from another thread). Returns true once shutdown has been
  /// requested — the caller then runs Stop(). This indirection keeps
  /// Stop() off the worker threads, which could not join themselves.
  bool WaitForShutdown(double timeout_s);

  /// Publishes a new snapshot; readers drain on the old one. Returns
  /// the new epoch.
  std::uint64_t Publish(Graph graph);

  std::uint64_t Epoch() const;
  /// Actual bound TCP port after Start() (tcp:0 resolves here); 0 for
  /// unix sockets.
  int Port() const;
  /// Bound admin TCP port (admin_listen = tcp:0 resolves here); 0 when
  /// the admin plane is off or on a unix socket.
  int AdminPort() const;
  const ServerOptions& options() const;

  /// Test hook, called on the worker thread just before each dequeued
  /// request executes. Lets tests hold workers on a latch to fill the
  /// queue deterministically. Not for production use.
  void SetExecuteHookForTest(std::function<void(const Request&)> hook);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace gorder::serve

#endif  // GORDER_SERVE_SERVER_H_
