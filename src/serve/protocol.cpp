#include "serve/protocol.h"

#include <cstring>

namespace gorder::serve {

static_assert(sizeof(Edge) == 8, "Edge must be two packed u32s (wire format)");

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kInfo: return "info";
    case Opcode::kDegree: return "degree";
    case Opcode::kNeighbors: return "neighbors";
    case Opcode::kBfs: return "bfs";
    case Opcode::kSp: return "sp";
    case Opcode::kPageRankTopK: return "pagerank_topk";
    case Opcode::kOrder: return "order";
    case Opcode::kSwapPack: return "swap_pack";
    case Opcode::kShutdown: return "shutdown";
    case Opcode::kStats: return "stats";
  }
  return "?";
}

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad_frame";
    case Status::kBadOpcode: return "bad_opcode";
    case Status::kBadRequest: return "bad_request";
    case Status::kTooLarge: return "too_large";
    case Status::kOverloaded: return "overloaded";
    case Status::kInternal: return "internal";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "?";
}

void PutU16(std::string* out, std::uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

void PutU32(std::string* out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool WireReader::GetBytes(void* out, std::size_t n) {
  if (len_ - pos_ < n) return false;
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::Skip(std::size_t n) {
  if (len_ - pos_ < n) return false;
  pos_ += n;
  return true;
}

bool WireReader::GetU16(std::uint16_t* v) { return GetBytes(v, 2); }
bool WireReader::GetU32(std::uint32_t* v) { return GetBytes(v, 4); }
bool WireReader::GetU64(std::uint64_t* v) { return GetBytes(v, 8); }
bool WireReader::GetF64(double* v) { return GetBytes(v, 8); }

void AppendHandshake(std::string* out) {
  PutU32(out, kWireMagic);
  PutU32(out, kProtocolVersion);
}

void AppendHandshakeAck(std::string* out, bool accepted) {
  PutU32(out, kWireMagic);
  PutU32(out, accepted ? kProtocolVersion : 0);
}

namespace {

std::string EncodeRequestBody(const Request& req) {
  std::string body;
  switch (req.opcode) {
    case Opcode::kPing:
    case Opcode::kInfo:
    case Opcode::kShutdown:
    case Opcode::kStats:
      break;
    case Opcode::kDegree:
    case Opcode::kNeighbors:
    case Opcode::kBfs:
    case Opcode::kSp:
      PutU32(&body, req.node);
      break;
    case Opcode::kPageRankTopK:
      PutU32(&body, req.k);
      PutU32(&body, req.iterations);
      break;
    case Opcode::kOrder: {
      PutU16(&body, static_cast<std::uint16_t>(req.method.size()));
      body.append(req.method);
      PutU64(&body, req.seed);
      PutU32(&body, req.num_nodes);
      PutU32(&body, static_cast<std::uint32_t>(req.edges.size()));
      body.append(reinterpret_cast<const char*>(req.edges.data()),
                  req.edges.size() * sizeof(Edge));
      break;
    }
    case Opcode::kSwapPack:
      PutU16(&body, static_cast<std::uint16_t>(req.pack_path.size()));
      body.append(req.pack_path);
      break;
  }
  return body;
}

}  // namespace

void AppendRequest(std::string* out, const Request& req) {
  const std::string body = EncodeRequestBody(req);
  PutU32(out, static_cast<std::uint32_t>(kRequestPrefixBytes + body.size()));
  PutU64(out, req.id);
  PutU16(out, static_cast<std::uint16_t>(req.opcode));
  PutU16(out, 0);  // reserved
  out->append(body);
}

void AppendResponse(std::string* out, const ResponseHeader& header,
                    const std::string& body) {
  PutU32(out, static_cast<std::uint32_t>(kResponsePrefixBytes + body.size()));
  PutU64(out, header.id);
  PutU16(out, static_cast<std::uint16_t>(header.status));
  PutU16(out, 0);  // reserved
  PutU64(out, header.epoch);
  out->append(body);
}

std::string ErrorBody(const std::string& message) {
  const std::size_t n = std::min<std::size_t>(message.size(), 0xFFFF);
  std::string body;
  PutU16(&body, static_cast<std::uint16_t>(n));
  body.append(message.data(), n);
  return body;
}

namespace {

bool ValidOpcode(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(Opcode::kPing) &&
         raw <= static_cast<std::uint16_t>(Opcode::kStats);
}

DecodeResult Fail(DecodeResult kind, std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return kind;
}

}  // namespace

DecodeResult DecodeRequest(const std::byte* data, std::size_t len,
                           std::size_t* consumed, Request* out,
                           std::string* error) {
  *consumed = 0;
  if (len < 4) return DecodeResult::kNeedMoreData;
  std::uint32_t payload_len;
  std::memcpy(&payload_len, data, 4);
  // The cap check comes before *any* use of the declared size: a hostile
  // prefix never drives an allocation or a long read loop.
  if (payload_len > kMaxPayloadBytes) {
    return Fail(DecodeResult::kTooLarge, error,
                "declared payload exceeds kMaxPayloadBytes");
  }
  if (len < 4 + static_cast<std::size_t>(payload_len)) {
    return DecodeResult::kNeedMoreData;
  }
  *consumed = 4 + static_cast<std::size_t>(payload_len);
  if (payload_len < kRequestPrefixBytes) {
    return Fail(DecodeResult::kBadFrame, error,
                "payload shorter than the request prefix");
  }
  WireReader r(data + 4, payload_len);
  std::uint16_t raw_opcode = 0, reserved = 0;
  r.GetU64(&out->id);
  r.GetU16(&raw_opcode);
  r.GetU16(&reserved);
  if (reserved != 0) {
    return Fail(DecodeResult::kBadFrame, error, "reserved field must be zero");
  }
  if (!ValidOpcode(raw_opcode)) {
    return Fail(DecodeResult::kBadOpcode, error, "unknown opcode");
  }
  out->opcode = static_cast<Opcode>(raw_opcode);
  switch (out->opcode) {
    case Opcode::kPing:
    case Opcode::kInfo:
    case Opcode::kShutdown:
    case Opcode::kStats:
      break;
    case Opcode::kDegree:
    case Opcode::kNeighbors:
    case Opcode::kBfs:
    case Opcode::kSp:
      if (!r.GetU32(&out->node)) {
        return Fail(DecodeResult::kBadFrame, error, "truncated node id");
      }
      break;
    case Opcode::kPageRankTopK:
      if (!r.GetU32(&out->k) || !r.GetU32(&out->iterations)) {
        return Fail(DecodeResult::kBadFrame, error, "truncated pagerank body");
      }
      break;
    case Opcode::kOrder: {
      std::uint16_t method_len = 0;
      if (!r.GetU16(&method_len) || r.remaining() < method_len) {
        return Fail(DecodeResult::kBadFrame, error, "truncated method name");
      }
      out->method.resize(method_len);
      r.GetBytes(out->method.data(), method_len);
      std::uint32_t num_edges = 0;
      if (!r.GetU64(&out->seed) || !r.GetU32(&out->num_nodes) ||
          !r.GetU32(&num_edges)) {
        return Fail(DecodeResult::kBadFrame, error, "truncated order header");
      }
      // The declared edge count must account for the remaining bytes
      // exactly — and the remaining bytes are already under the payload
      // cap, so the resize below is bounded by what was actually sent.
      if (static_cast<std::uint64_t>(num_edges) * sizeof(Edge) !=
          r.remaining()) {
        return Fail(DecodeResult::kBadFrame, error,
                    "edge count disagrees with payload size");
      }
      out->edges.resize(num_edges);
      r.GetBytes(out->edges.data(), r.remaining());
      break;
    }
    case Opcode::kSwapPack: {
      std::uint16_t path_len = 0;
      if (!r.GetU16(&path_len) || r.remaining() < path_len) {
        return Fail(DecodeResult::kBadFrame, error, "truncated pack path");
      }
      out->pack_path.resize(path_len);
      r.GetBytes(out->pack_path.data(), path_len);
      break;
    }
  }
  if (!r.exhausted()) {
    return Fail(DecodeResult::kBadFrame, error, "trailing bytes after body");
  }
  return DecodeResult::kOk;
}

DecodeResult DecodeResponse(const std::byte* data, std::size_t len,
                            std::size_t* consumed, ResponseHeader* header,
                            const std::byte** body, std::size_t* body_len,
                            std::string* error) {
  *consumed = 0;
  if (len < 4) return DecodeResult::kNeedMoreData;
  std::uint32_t payload_len;
  std::memcpy(&payload_len, data, 4);
  if (payload_len > kMaxPayloadBytes) {
    return Fail(DecodeResult::kTooLarge, error,
                "declared payload exceeds kMaxPayloadBytes");
  }
  if (len < 4 + static_cast<std::size_t>(payload_len)) {
    return DecodeResult::kNeedMoreData;
  }
  *consumed = 4 + static_cast<std::size_t>(payload_len);
  if (payload_len < kResponsePrefixBytes) {
    return Fail(DecodeResult::kBadFrame, error,
                "payload shorter than the response prefix");
  }
  WireReader r(data + 4, payload_len);
  std::uint16_t raw_status = 0, reserved = 0;
  r.GetU64(&header->id);
  r.GetU16(&raw_status);
  r.GetU16(&reserved);
  r.GetU64(&header->epoch);
  if (reserved != 0) {
    return Fail(DecodeResult::kBadFrame, error, "reserved field must be zero");
  }
  header->status = static_cast<Status>(raw_status);
  *body = data + 4 + kResponsePrefixBytes;
  *body_len = payload_len - kResponsePrefixBytes;
  return DecodeResult::kOk;
}

std::string EncodeStatsBody(const std::string& json) {
  std::string body;
  PutU32(&body, static_cast<std::uint32_t>(json.size()));
  body.append(json);
  return body;
}

bool DecodeStatsBody(const std::byte* body, std::size_t len,
                     std::string* json) {
  WireReader r(body, len);
  std::uint32_t json_len = 0;
  if (!r.GetU32(&json_len) || r.remaining() < json_len) return false;
  json->resize(json_len);
  r.GetBytes(json->data(), json_len);
  return r.exhausted();
}

std::uint64_t HashBytes64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace gorder::serve
