#ifndef GORDER_SERVE_CLIENT_H_
#define GORDER_SERVE_CLIENT_H_

/// Blocking gorderd client: one connection, typed wrappers over the wire
/// protocol (serve/protocol.h). Used by the CLI-side of the daemon
/// tooling, the load generator and the test battery.
///
/// Every call returns a result struct carrying `status` + serving
/// `epoch`; `ok()` means the daemon answered kOk, `error` carries the
/// daemon's message otherwise. A transport failure (socket error,
/// truncated response) surfaces as kInternal with the IO error text —
/// callers can always distinguish it from a daemon-sent kInternal by the
/// connection being dead afterwards.
///
/// `Call` sends an arbitrary pre-framed request and returns the raw
/// response, which is what the conformance and fuzz suites use to push
/// adversarial frames at a live server.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "serve/protocol.h"
#include "util/io_result.h"
#include "util/net.h"

namespace gorder::serve {

/// Common reply envelope. Specific results add their payload fields.
struct Reply {
  Status status = Status::kInternal;
  std::uint64_t epoch = 0;
  std::string error;  // daemon or transport error message

  bool ok() const { return status == Status::kOk; }
};

struct InfoReply : Reply {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t serve_threads = 0;
  std::uint32_t protocol_version = 0;
};

struct DegreeReply : Reply {
  std::uint32_t out_degree = 0;
  std::uint32_t in_degree = 0;
};

struct NeighborsReply : Reply {
  std::vector<NodeId> neighbors;
};

struct BfsReply : Reply {
  std::uint32_t num_reached = 0;
  std::uint64_t sum_levels = 0;
  std::uint64_t level_hash = 0;  // FNV-1a 64 of the level array
};

struct SpReply : Reply {
  std::uint32_t num_reached = 0;
  std::uint32_t max_dist = 0;
  std::uint32_t num_rounds = 0;
  std::uint64_t dist_hash = 0;  // FNV-1a 64 of the dist array
};

struct PageRankTopKReply : Reply {
  double total_mass = 0.0;
  std::vector<std::pair<NodeId, double>> top;  // (node, rank), rank desc
};

struct OrderReply : Reply {
  std::vector<NodeId> perm;  // perm[old] = new
};

struct StatsReply : Reply {
  std::string json;  // the gorder-stats JSON document, verbatim
};

/// Raw response as received, for protocol-level tests.
struct RawReply : Reply {
  std::string body;  // opcode-specific body bytes (error body for !ok)
};

class Client {
 public:
  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Connects and runs the magic/version handshake. `timeout_s` bounds
  /// every subsequent send/recv, so a wedged daemon fails calls instead
  /// of hanging the caller.
  IoResult Connect(const util::NetAddress& addr, double timeout_s = 30.0);
  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  Reply Ping();
  InfoReply Info();
  DegreeReply Degree(NodeId node);
  NeighborsReply Neighbors(NodeId node);
  BfsReply Bfs(NodeId source);
  SpReply Sp(NodeId source);
  PageRankTopKReply PageRankTopK(std::uint32_t k, std::uint32_t iterations);
  OrderReply Order(const std::string& method, std::uint64_t seed,
                   NodeId num_nodes, const std::vector<Edge>& edges);
  /// Asks the daemon to load `pack_path` and publish it as a new
  /// snapshot; on kOk the reply's `epoch` is the new epoch.
  Reply SwapPack(const std::string& pack_path);
  Reply Shutdown();
  /// Live metrics snapshot (kStats); `json` holds the document.
  StatsReply Stats();

  /// Sends `frame` verbatim (must include the length prefix) and reads
  /// one response. Conformance/fuzz entry point.
  RawReply Call(const std::string& frame);

  /// Encodes `req` with the next request id and performs one round trip.
  RawReply RoundTrip(Request req);

 private:
  util::Socket sock_;
  std::uint64_t next_id_ = 1;
};

}  // namespace gorder::serve

#endif  // GORDER_SERVE_CLIENT_H_
