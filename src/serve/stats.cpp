#include "serve/stats.h"

#include "obs/json.h"
#include "serve/protocol.h"

namespace gorder::serve {

namespace {

void WriteWindow(obs::JsonWriter* w, const char* key,
                 const obs::WindowSnapshot& snap) {
  w->Key(key);
  w->BeginObject();
  w->KV("count", snap.count);
  w->KV("sum", snap.sum);
  w->KV("p50", snap.p50);
  w->KV("p99", snap.p99);
  w->KV("p999", snap.p999);
  w->EndObject();
}

}  // namespace

std::string RenderStatsJson(const ServerStatsView& view,
                            const obs::MetricsDump& metrics,
                            const std::vector<obs::WindowedDump>& windows) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "gorder-stats");
  w.KV("schema_version", 1);
  w.KV("epoch", view.epoch);
  w.KV("queue_depth", view.queue_depth);
  w.KV("in_flight", view.in_flight);
  w.KV("connections", view.connections);
  w.KV("traces_sampled", view.traces_sampled);
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : metrics.counters) w.KV(name, value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : metrics.gauges) w.KV(name, value);
  w.EndObject();
  w.Key("windows");
  w.BeginObject();
  for (const auto& win : windows) {
    w.Key(win.name);
    w.BeginObject();
    WriteWindow(&w, "10s", win.short_window);
    WriteWindow(&w, "60s", win.long_window);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string RenderTracezJson(
    std::uint64_t total_pushed,
    const std::vector<obs::ReqTraceRecord>& records) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("schema", "gorder-tracez");
  w.KV("total_pushed", total_pushed);
  w.Key("records");
  w.BeginArray();
  for (const auto& rec : records) {
    w.BeginObject();
    w.KV("trace_id", rec.trace_id);
    w.KV("opcode", OpcodeName(static_cast<Opcode>(rec.opcode)));
    w.KV("status", StatusName(static_cast<Status>(rec.status)));
    w.KV("start_us", rec.start_us);
    w.KV("queue_us", rec.queue_us);
    w.KV("exec_us", rec.exec_us);
    w.KV("bytes_in", rec.bytes_in);
    w.KV("bytes_out", rec.bytes_out);
    w.KV("epoch", rec.epoch);
    w.KV("slow", rec.slow);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace gorder::serve
