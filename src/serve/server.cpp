#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "algo/algorithms.h"
#include "obs/expo.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "order/ordering.h"
#include "serve/admin.h"
#include "serve/stats.h"
#include "store/gpack.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gorder::serve {

namespace {

GORDER_OBS_COUNTER(c_connections, "serve.connections");
GORDER_OBS_COUNTER(c_conn_rejected, "serve.conn_rejected");
GORDER_OBS_COUNTER(c_handshake_rejected, "serve.handshake_rejected");
GORDER_OBS_COUNTER(c_requests, "serve.requests");
GORDER_OBS_COUNTER(c_responses, "serve.responses");
GORDER_OBS_COUNTER(c_overloaded, "serve.overloaded");
GORDER_OBS_COUNTER(c_bad_frames, "serve.bad_frames");
GORDER_OBS_COUNTER(c_errors, "serve.error_responses");
GORDER_OBS_COUNTER(c_swaps, "serve.swaps");
GORDER_OBS_COUNTER(c_shutdown_reqs, "serve.shutdown_requests");
GORDER_OBS_HISTOGRAM(h_request_us, "serve.request_us");
GORDER_OBS_GAUGE(g_queue_depth, "serve.queue_depth");
GORDER_OBS_COUNTER(c_slow_requests, "serve.slow_requests");
GORDER_OBS_COUNTER(c_stats_reqs, "serve.stats_requests");

#if !defined(GORDER_OBS_DISABLED)
// Per-opcode windowed latencies (serve.req_us.<opcode>) — the live p99
// the admin plane and gordertop read. Resolved once here, not per
// request: the registry lookup takes a mutex.
GORDER_OBS_WINDOWED(w_ping, "serve.req_us.ping");
GORDER_OBS_WINDOWED(w_info, "serve.req_us.info");
GORDER_OBS_WINDOWED(w_degree, "serve.req_us.degree");
GORDER_OBS_WINDOWED(w_neighbors, "serve.req_us.neighbors");
GORDER_OBS_WINDOWED(w_bfs, "serve.req_us.bfs");
GORDER_OBS_WINDOWED(w_sp, "serve.req_us.sp");
GORDER_OBS_WINDOWED(w_pagerank, "serve.req_us.pagerank_topk");
GORDER_OBS_WINDOWED(w_order, "serve.req_us.order");
GORDER_OBS_WINDOWED(w_swap, "serve.req_us.swap_pack");
GORDER_OBS_WINDOWED(w_shutdown, "serve.req_us.shutdown");
GORDER_OBS_WINDOWED(w_stats, "serve.req_us.stats");

obs::WindowedHistogram& WindowedForOpcode(Opcode op) {
  switch (op) {
    case Opcode::kPing: return w_ping;
    case Opcode::kInfo: return w_info;
    case Opcode::kDegree: return w_degree;
    case Opcode::kNeighbors: return w_neighbors;
    case Opcode::kBfs: return w_bfs;
    case Opcode::kSp: return w_sp;
    case Opcode::kPageRankTopK: return w_pagerank;
    case Opcode::kOrder: return w_order;
    case Opcode::kSwapPack: return w_swap;
    case Opcode::kShutdown: return w_shutdown;
    case Opcode::kStats: return w_stats;
  }
  return w_ping;  // unreachable: decode rejects unknown opcodes
}
#endif  // GORDER_OBS_DISABLED

/// Non-aborting ordering-method lookup (order::MethodFromName aborts,
/// which a server must never do on client input).
bool FindMethod(const std::string& name, order::Method* out) {
  for (order::Method m : order::AllMethodsExtended()) {
    if (order::MethodName(m) == name) {
      *out = m;
      return true;
    }
  }
  return false;
}

}  // namespace

struct Server::Impl {
  /// One immutable epoch of the served graph. Queries pin it via
  /// shared_ptr; Publish swaps the pointer and the old epoch (and its
  /// mmap, if the Graph borrows one) dies with its last reader.
  struct Snapshot {
    Graph graph;
    std::uint64_t epoch = 0;
    Snapshot(Graph g, std::uint64_t e) : graph(std::move(g)), epoch(e) {}
  };

  struct Conn {
    util::Socket sock;
    std::mutex write_mu;
  };

  struct QueueItem {
    std::shared_ptr<Conn> conn;
    Request req;
    std::uint64_t trace_id = 0;
    double enqueue_s = 0;        // obs::NowSeconds() at decode
    std::uint64_t bytes_in = 0;  // full frame size, length prefix included
  };

  ServerOptions options;

  std::mutex snap_mu;
  std::shared_ptr<const Snapshot> snapshot;
  std::atomic<std::uint64_t> epoch{0};

  util::Socket listener;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> shutdown_requested{false};

  std::mutex queue_mu;
  std::condition_variable queue_cv;      // workers wait for work
  std::condition_variable drained_cv;    // Stop waits for drain
  std::deque<QueueItem> queue;
  int in_flight = 0;  // dequeued but not yet answered

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Conn>> conns;

  AdminListener admin;
  std::atomic<std::uint64_t> next_trace_id{1};

  std::mutex threads_mu;
  std::thread acceptor;
  std::vector<std::thread> workers;
  std::vector<std::thread> readers;

  std::mutex shutdown_mu;
  std::condition_variable shutdown_cv;

  std::function<void(const Request&)> execute_hook;

  std::shared_ptr<const Snapshot> CurrentSnapshot() {
    std::lock_guard<std::mutex> lock(snap_mu);
    return snapshot;
  }

  void SendResponse(const std::shared_ptr<Conn>& conn,
                    const ResponseHeader& header, const std::string& body) {
    std::string frame;
    frame.reserve(4 + kResponsePrefixBytes + body.size());
    AppendResponse(&frame, header, body);
    std::lock_guard<std::mutex> lock(conn->write_mu);
    // A failed write (peer gone, injected fault) is the peer's problem:
    // the reader thread will observe the broken stream and retire the
    // connection; the server keeps serving everyone else.
    IoResult r = util::WriteFull(conn->sock, frame.data(), frame.size());
    if (r.ok) {
      GORDER_OBS_INC(c_responses);
    } else {
      GORDER_LOG_DEBUG("serve: write failed: %s\n", r.error.c_str());
    }
  }

  void SendError(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                 Status status, const std::string& message) {
    GORDER_OBS_INC(c_errors);
    SendResponse(conn, {id, status, epoch.load(std::memory_order_relaxed)},
                 ErrorBody(message));
  }

  // ---- Request execution (worker threads) ----

  std::string ExecuteQuery(const Request& req, const Snapshot& snap,
                           Status* status, std::string* message,
                           std::uint64_t* reply_epoch) {
    const Graph& g = snap.graph;
    std::string body;
    auto bad_request = [&](const std::string& m) {
      *status = Status::kBadRequest;
      *message = m;
      return std::string();
    };
    switch (req.opcode) {
      case Opcode::kPing:
        return body;
      case Opcode::kInfo:
        PutU64(&body, g.NumNodes());
        PutU64(&body, g.NumEdges());
        PutU32(&body, static_cast<std::uint32_t>(options.serve_threads));
        PutU32(&body, kProtocolVersion);
        return body;
      case Opcode::kDegree:
        if (req.node >= g.NumNodes()) return bad_request("node out of range");
        PutU32(&body, g.OutDegree(req.node));
        PutU32(&body, g.InDegree(req.node));
        return body;
      case Opcode::kNeighbors: {
        if (req.node >= g.NumNodes()) return bad_request("node out of range");
        auto neigh = g.OutNeighbors(req.node);
        if (neigh.size() > options.max_neighbors) {
          *status = Status::kTooLarge;
          *message = "neighbor list exceeds max_neighbors";
          return std::string();
        }
        PutU32(&body, static_cast<std::uint32_t>(neigh.size()));
        body.append(reinterpret_cast<const char*>(neigh.data()),
                    neigh.size() * sizeof(NodeId));
        return body;
      }
      case Opcode::kBfs: {
        if (req.node >= g.NumNodes()) return bad_request("node out of range");
        algo::BfsResult r = algo::Bfs(g, req.node);
        PutU32(&body, r.num_reached);
        PutU64(&body, r.sum_levels);
        PutU64(&body, HashVector64(r.level));
        return body;
      }
      case Opcode::kSp: {
        if (req.node >= g.NumNodes()) return bad_request("node out of range");
        algo::SpResult r = algo::Sp(g, req.node);
        PutU32(&body, r.num_reached);
        PutU32(&body, r.max_dist);
        PutU32(&body, r.num_rounds);
        PutU64(&body, HashVector64(r.dist));
        return body;
      }
      case Opcode::kPageRankTopK: {
        if (req.k == 0) return bad_request("k must be positive");
        if (req.k > options.max_topk) return bad_request("k exceeds max_topk");
        if (req.iterations == 0 || req.iterations > options.max_iterations) {
          return bad_request("iterations out of range");
        }
        if (g.NumNodes() == 0) return bad_request("graph is empty");
        algo::PageRankResult r =
            algo::PageRank(g, static_cast<int>(req.iterations));
        const NodeId n = g.NumNodes();
        const NodeId k = std::min<NodeId>(req.k, n);
        std::vector<NodeId> idx(n);
        for (NodeId v = 0; v < n; ++v) idx[v] = v;
        // Deterministic top-k: rank descending, node id ascending on ties
        // — the same lexicographic tie-break every kernel uses.
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&r](NodeId a, NodeId b) {
                            if (r.rank[a] != r.rank[b]) {
                              return r.rank[a] > r.rank[b];
                            }
                            return a < b;
                          });
        PutF64(&body, r.total_mass);
        PutU32(&body, k);
        for (NodeId i = 0; i < k; ++i) {
          PutU32(&body, idx[i]);
          PutF64(&body, r.rank[idx[i]]);
        }
        return body;
      }
      case Opcode::kOrder: {
        if (req.num_nodes > options.max_order_nodes) {
          return bad_request("num_nodes exceeds max_order_nodes");
        }
        order::Method method;
        if (!FindMethod(req.method, &method)) {
          return bad_request("unknown ordering method '" + req.method + "'");
        }
        for (const Edge& e : req.edges) {
          if (e.src >= req.num_nodes || e.dst >= req.num_nodes) {
            return bad_request("edge endpoint out of range");
          }
        }
        Graph uploaded = Graph::FromEdges(req.num_nodes, req.edges);
        order::OrderingParams params;
        params.seed = req.seed;
        std::vector<NodeId> perm =
            order::ComputeOrdering(uploaded, method, params);
        PutU32(&body, static_cast<std::uint32_t>(perm.size()));
        body.append(reinterpret_cast<const char*>(perm.data()),
                    perm.size() * sizeof(NodeId));
        return body;
      }
      case Opcode::kSwapPack: {
        if (!options.allow_swap) return bad_request("swap is disabled");
        Graph loaded;
        IoResult r = store::LoadPack(req.pack_path, &loaded);
        if (!r.ok) {
          *status = Status::kInternal;
          *message = "swap failed: " + r.error;
          return std::string();
        }
        *reply_epoch = PublishGraph(std::move(loaded));
        GORDER_OBS_INC(c_swaps);
        return body;
      }
      case Opcode::kShutdown: {
        if (!options.allow_shutdown) return bad_request("shutdown is disabled");
        GORDER_OBS_INC(c_shutdown_reqs);
        RequestShutdown();
        return body;
      }
      case Opcode::kStats: {
        GORDER_OBS_INC(c_stats_reqs);
        return EncodeStatsBody(RenderStatsJson(
            StatsView(snap.epoch), obs::DumpMetrics(), obs::DumpWindowed()));
      }
    }
    *status = Status::kBadOpcode;
    *message = "unknown opcode";
    return std::string();
  }

  ServerStatsView StatsView(std::uint64_t current_epoch) {
    ServerStatsView view;
    view.epoch = current_epoch;
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      view.queue_depth = queue.size();
      view.in_flight = static_cast<std::uint64_t>(in_flight);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      view.connections = conns.size();
    }
    view.traces_sampled = obs::GlobalReqTraceRing().TotalPushed();
    return view;
  }

  void ExecuteAndReply(const QueueItem& item) {
    GORDER_OBS_SPAN(span, std::string("serve:req:") + OpcodeName(item.req.opcode));
    const double picked_s = obs::NowSeconds();
    Timer timer;
    std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
    Status status = Status::kOk;
    std::string message;
    std::uint64_t reply_epoch = snap->epoch;
    std::string body =
        ExecuteQuery(item.req, *snap, &status, &message, &reply_epoch);
    std::uint64_t bytes_out = 4 + kResponsePrefixBytes;
    if (status == Status::kOk) {
      bytes_out += body.size();
      SendResponse(item.conn, {item.req.id, status, reply_epoch}, body);
    } else {
      GORDER_OBS_INC(c_errors);
      std::string err = ErrorBody(message);
      bytes_out += err.size();
      SendResponse(item.conn, {item.req.id, status, reply_epoch}, err);
    }
    const auto exec_us = static_cast<std::uint64_t>(timer.Seconds() * 1e6);
    GORDER_OBS_OBSERVE(h_request_us, exec_us);
    GORDER_OBS_WRECORD(WindowedForOpcode(item.req.opcode), exec_us);
    FinishTrace(item, status, reply_epoch, picked_s, exec_us, bytes_out);
  }

  /// Trace sampling + slow-request accounting, after the reply is sent.
  void FinishTrace(const QueueItem& item, Status status,
                   std::uint64_t reply_epoch, double picked_s,
                   std::uint64_t exec_us, std::uint64_t bytes_out) {
    if (!obs::Enabled()) return;  // GORDER_OBS=off: tracing fully off
    const auto queue_us = item.enqueue_s > 0 && picked_s > item.enqueue_s
                              ? static_cast<std::uint64_t>(
                                    (picked_s - item.enqueue_s) * 1e6)
                              : 0;
    const bool slow =
        options.slow_request_ms > 0 &&
        queue_us + exec_us >=
            static_cast<std::uint64_t>(options.slow_request_ms) * 1000;
    const bool sampled = options.trace_sample > 0 &&
                         item.trace_id % options.trace_sample == 0;
    if (!slow && !sampled) return;
    obs::ReqTraceRecord rec;
    rec.trace_id = item.trace_id;
    rec.start_us = static_cast<std::uint64_t>(item.enqueue_s * 1e6);
    rec.queue_us = queue_us;
    rec.exec_us = exec_us;
    rec.bytes_in = item.bytes_in;
    rec.bytes_out = bytes_out;
    rec.epoch = reply_epoch;
    rec.opcode = static_cast<std::uint16_t>(item.req.opcode);
    rec.status = static_cast<std::uint16_t>(status);
    rec.slow = slow;
    obs::GlobalReqTraceRing().Push(rec);
    if (slow) {
      GORDER_OBS_INC(c_slow_requests);
      GORDER_LOG_INFO(
          "gorderd: slow-request trace_id=%llu opcode=%s status=%s "
          "queue_us=%llu exec_us=%llu bytes_in=%llu bytes_out=%llu "
          "epoch=%llu\n",
          static_cast<unsigned long long>(item.trace_id),
          OpcodeName(item.req.opcode), StatusName(status),
          static_cast<unsigned long long>(queue_us),
          static_cast<unsigned long long>(exec_us),
          static_cast<unsigned long long>(item.bytes_in),
          static_cast<unsigned long long>(bytes_out),
          static_cast<unsigned long long>(reply_epoch));
    }
  }

  std::uint64_t PublishGraph(Graph g) {
    std::lock_guard<std::mutex> lock(snap_mu);
    const std::uint64_t next = snapshot->epoch + 1;
    snapshot = std::make_shared<const Snapshot>(std::move(g), next);
    epoch.store(next, std::memory_order_relaxed);
    return next;
  }

  void RequestShutdown() {
    shutdown_requested.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shutdown_mu);
    shutdown_cv.notify_all();
  }

  // ---- Worker threads ----

  void WorkerLoop() {
    while (true) {
      QueueItem item;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [this] {
          return !queue.empty() || stopping.load(std::memory_order_relaxed);
        });
        if (queue.empty()) {
          if (stopping.load(std::memory_order_relaxed)) return;
          continue;
        }
        item = std::move(queue.front());
        queue.pop_front();
        GORDER_OBS_SET(g_queue_depth,
                       static_cast<std::int64_t>(queue.size()));
        ++in_flight;
      }
      if (execute_hook) execute_hook(item.req);
      ExecuteAndReply(item);
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        --in_flight;
        if (queue.empty() && in_flight == 0) drained_cv.notify_all();
      }
    }
  }

  // ---- Reader threads (one per connection) ----

  bool DoHandshake(const std::shared_ptr<Conn>& conn) {
    std::byte hello[kHandshakeBytes];
    IoResult r = util::ReadFull(conn->sock, hello, sizeof(hello));
    if (!r.ok) return false;
    std::uint32_t magic, version;
    std::memcpy(&magic, hello, 4);
    std::memcpy(&version, hello + 4, 4);
    const bool accepted = magic == kWireMagic && version == kProtocolVersion;
    std::string ack;
    AppendHandshakeAck(&ack, accepted);
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      IoResult w = util::WriteFull(conn->sock, ack.data(), ack.size());
      if (!w.ok) return false;
    }
    if (!accepted) GORDER_OBS_INC(c_handshake_rejected);
    return accepted;
  }

  void ReaderLoop(std::shared_ptr<Conn> conn) {
    if (!DoHandshake(conn)) {
      RetireConn(conn);
      return;
    }
    std::vector<std::byte> frame;
    while (!stopping.load(std::memory_order_relaxed)) {
      std::byte len_bytes[4];
      bool clean_eof = false;
      IoResult r = util::ReadFull(conn->sock, len_bytes, 4, &clean_eof);
      if (!r.ok) {
        if (!clean_eof) {
          GORDER_LOG_DEBUG("serve: read failed: %s\n", r.error.c_str());
        }
        break;
      }
      std::uint32_t payload_len;
      std::memcpy(&payload_len, len_bytes, 4);
      if (payload_len > kMaxPayloadBytes) {
        // The stream can no longer be framed; answer and hang up.
        GORDER_OBS_INC(c_bad_frames);
        SendError(conn, 0, Status::kTooLarge,
                  "declared payload exceeds kMaxPayloadBytes");
        break;
      }
      frame.resize(4 + payload_len);
      std::memcpy(frame.data(), len_bytes, 4);
      if (payload_len > 0) {
        r = util::ReadFull(conn->sock, frame.data() + 4, payload_len);
        if (!r.ok) {
          GORDER_LOG_DEBUG("serve: read failed mid-frame: %s\n",
                           r.error.c_str());
          break;
        }
      }
      std::size_t consumed = 0;
      Request req;
      std::string error;
      DecodeResult d =
          DecodeRequest(frame.data(), frame.size(), &consumed, &req, &error);
      switch (d) {
        case DecodeResult::kOk:
          break;
        case DecodeResult::kBadFrame:
          GORDER_OBS_INC(c_bad_frames);
          SendError(conn, req.id, Status::kBadFrame, error);
          continue;
        case DecodeResult::kBadOpcode:
          GORDER_OBS_INC(c_bad_frames);
          SendError(conn, req.id, Status::kBadOpcode, error);
          continue;
        case DecodeResult::kTooLarge:
        case DecodeResult::kNeedMoreData:  // impossible: full frame in hand
          GORDER_OBS_INC(c_bad_frames);
          SendError(conn, req.id, Status::kBadFrame, error);
          continue;
      }
      GORDER_OBS_INC(c_requests);
      if (stopping.load(std::memory_order_relaxed)) {
        SendError(conn, req.id, Status::kShuttingDown, "daemon is draining");
        break;
      }
      // Admission control: a full queue answers immediately instead of
      // buffering without bound (explicit backpressure).
      QueueItem item;
      item.conn = conn;
      item.trace_id =
          next_trace_id.fetch_add(1, std::memory_order_relaxed);
      item.enqueue_s = obs::NowSeconds();
      item.bytes_in = frame.size();
      item.req = std::move(req);
      bool enqueued = false;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        if (queue.size() <
            static_cast<std::size_t>(options.queue_capacity)) {
          queue.push_back(std::move(item));
          GORDER_OBS_SET(g_queue_depth,
                         static_cast<std::int64_t>(queue.size()));
          enqueued = true;
        }
      }
      if (enqueued) {
        queue_cv.notify_one();
      } else {
        GORDER_OBS_INC(c_overloaded);
        SendError(conn, item.req.id, Status::kOverloaded,
                  "request queue full");
      }
    }
    RetireConn(conn);
  }

  void RetireConn(const std::shared_ptr<Conn>& conn) {
    conn->sock.ShutdownBoth();
    std::lock_guard<std::mutex> lock(conns_mu);
    conns.erase(std::remove(conns.begin(), conns.end(), conn), conns.end());
  }

  // ---- Acceptor thread ----

  void AcceptLoop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      util::Socket sock;
      IoResult r = util::AcceptSocket(listener, &sock);
      if (stopping.load(std::memory_order_relaxed)) return;
      if (!r.ok) {
        GORDER_LOG_DEBUG("serve: accept failed: %s\n", r.error.c_str());
        // Transient (or injected) failure: don't spin, don't die.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto conn = std::make_shared<Conn>();
      conn->sock = std::move(sock);
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        if (conns.size() >=
            static_cast<std::size_t>(options.max_connections)) {
          GORDER_OBS_INC(c_conn_rejected);
          continue;  // conn drops here; the client sees a clean EOF
        }
        conns.push_back(conn);
      }
      GORDER_OBS_INC(c_connections);
      std::lock_guard<std::mutex> lock(threads_mu);
      readers.emplace_back([this, conn] { ReaderLoop(std::move(conn)); });
    }
  }
};

Server::Server(Graph graph, ServerOptions options) : impl_(new Impl) {
  impl_->options = std::move(options);
  impl_->snapshot =
      std::make_shared<const Impl::Snapshot>(std::move(graph), 1);
  impl_->epoch.store(1, std::memory_order_relaxed);
}

Server::~Server() {
  Stop();
  delete impl_;
}

IoResult Server::Start() {
  GORDER_CHECK(!impl_->started.load());
  if (impl_->options.admin_enabled) {
    AdminHandlers handlers;
    handlers.metrics_text = [] { return obs::RenderPrometheusText(); };
    handlers.healthz_text = [] { return std::string("ok\n"); };
    handlers.tracez_json = [] {
      obs::ReqTraceRing& ring = obs::GlobalReqTraceRing();
      return RenderTracezJson(ring.TotalPushed(), ring.SnapshotRecent(256));
    };
    IoResult a = impl_->admin.Start(impl_->options.admin_listen,
                                    std::move(handlers));
    if (!a.ok) {
      return IoResult::Error("admin listener: " + a.error);
    }
    GORDER_LOG_INFO("gorderd: admin plane on %s\n",
                    impl_->options.admin_listen.ToString().c_str());
  }
  IoResult r = util::ListenSocket(impl_->options.listen, &impl_->listener);
  if (!r.ok) {
    impl_->admin.Stop();
    return r;
  }
  impl_->started.store(true);
  impl_->stopping.store(false);
  {
    std::lock_guard<std::mutex> lock(impl_->threads_mu);
    for (int i = 0; i < impl_->options.serve_threads; ++i) {
      impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
    }
    impl_->acceptor = std::thread([this] { impl_->AcceptLoop(); });
  }
  GORDER_LOG_INFO("gorderd: listening on %s (%d worker threads, queue %d)\n",
                  impl_->options.listen.ToString().c_str(),
                  impl_->options.serve_threads, impl_->options.queue_capacity);
  return IoResult::Ok();
}

void Server::Stop() {
  if (!impl_->started.load()) return;
  if (impl_->stopping.exchange(true)) return;
  // 0. The admin plane goes first: a scrape racing teardown would read
  //    half-dismantled state.
  impl_->admin.Stop();
  // 1. Break the acceptor out of accept() and join it, so no new reader
  //    threads can be registered while we collect the ones to join.
  impl_->listener.ShutdownBoth();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  impl_->listener.Close();
  // 2. Drain queued work (readers now answer kShuttingDown, so the
  //    queue only shrinks). Bounded wait: a wedged peer must not block
  //    shutdown forever.
  {
    std::unique_lock<std::mutex> lock(impl_->queue_mu);
    impl_->queue_cv.notify_all();
    impl_->drained_cv.wait_for(lock, std::chrono::seconds(10), [this] {
      return impl_->queue.empty() && impl_->in_flight == 0;
    });
  }
  // 3. Tear down connections so blocked readers unblock.
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    for (const auto& conn : impl_->conns) conn->sock.ShutdownBoth();
  }
  // 4. Join everything.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(impl_->threads_mu);
    impl_->queue_cv.notify_all();
    for (auto& t : impl_->workers) to_join.push_back(std::move(t));
    for (auto& t : impl_->readers) to_join.push_back(std::move(t));
    impl_->workers.clear();
    impl_->readers.clear();
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  if (impl_->options.listen.is_unix) {
    ::unlink(impl_->options.listen.path.c_str());
  }
  impl_->started.store(false);
  impl_->RequestShutdown();  // release any WaitForShutdown caller
}

bool Server::WaitForShutdown(double timeout_s) {
  std::unique_lock<std::mutex> lock(impl_->shutdown_mu);
  impl_->shutdown_cv.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [this] {
        return impl_->shutdown_requested.load(std::memory_order_relaxed);
      });
  return impl_->shutdown_requested.load(std::memory_order_relaxed);
}

std::uint64_t Server::Publish(Graph graph) {
  return impl_->PublishGraph(std::move(graph));
}

std::uint64_t Server::Epoch() const {
  return impl_->epoch.load(std::memory_order_relaxed);
}

int Server::Port() const { return impl_->listener.LocalPort(); }

int Server::AdminPort() const { return impl_->admin.Port(); }

const ServerOptions& Server::options() const { return impl_->options; }

void Server::SetExecuteHookForTest(std::function<void(const Request&)> hook) {
  impl_->execute_hook = std::move(hook);
}

}  // namespace gorder::serve
