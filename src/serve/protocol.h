#ifndef GORDER_SERVE_PROTOCOL_H_
#define GORDER_SERVE_PROTOCOL_H_

/// gorderd wire protocol v1 (DESIGN.md §16).
///
/// Everything here is pure byte-shuffling — no sockets, no allocation
/// beyond the decoded values — so the conformance suite can pin golden
/// frames and the fuzzer can feed adversarial bytes without a live
/// server.
///
/// Connection lifecycle: the client opens a stream socket and sends an
/// 8-byte hello (`magic` + `version`, both little-endian u32). The
/// server answers with the same 8-byte shape; `version == 0` in the
/// reply means "rejected" and the server closes. After an accepted
/// handshake both directions carry length-prefixed frames:
///
///   request  = u32 payload_len | payload
///   payload  = u64 request_id | u16 opcode | u16 reserved(0) | body
///
///   response = u32 payload_len | payload
///   payload  = u64 request_id | u16 status | u16 reserved(0) |
///              u64 epoch | body
///
/// `payload_len` counts the bytes after the length field and is bounded
/// by kMaxPayloadBytes — the decoder rejects larger declarations
/// *before* allocating anything, so a hostile 4 GiB length prefix costs
/// nothing. `request_id` is echoed verbatim (responses may arrive out
/// of order under pipelining). `epoch` identifies the graph snapshot
/// that served the request, which is what makes artifact hot-swaps
/// observable and testable. All integers are little-endian; floats are
/// IEEE-754 binary64 bit patterns.
///
/// Error responses (status != kOk) carry `u16 message_len | message`
/// as their body.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace gorder::serve {

/// "GRD1" on the wire (little-endian u32).
inline constexpr std::uint32_t kWireMagic = 0x31445247u;
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on a declared payload length, request or response. Checked
/// before any allocation; a frame declaring more is answered with
/// kTooLarge and the connection is closed (stream framing can no longer
/// be trusted).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/// Fixed payload prefixes (before the opcode-specific body).
inline constexpr std::size_t kRequestPrefixBytes = 12;   // id + op + rsvd
inline constexpr std::size_t kResponsePrefixBytes = 20;  // + epoch
inline constexpr std::size_t kHandshakeBytes = 8;

enum class Opcode : std::uint16_t {
  kPing = 1,          // liveness probe; empty body both ways
  kInfo = 2,          // -> n, m, serve threads, protocol version
  kDegree = 3,        // u32 node -> out_degree, in_degree
  kNeighbors = 4,     // u32 node -> count, out-neighbour ids
  kBfs = 5,           // u32 source -> reached, sum_levels, levels hash
  kSp = 6,            // u32 source -> reached, ecc, rounds, dist hash
  kPageRankTopK = 7,  // u32 k, u32 iters -> total_mass, top-k (node, rank)
  kOrder = 8,         // uploaded edge list -> permutation
  kSwapPack = 9,      // pack path -> publishes new snapshot (epoch bumps)
  kShutdown = 10,     // graceful daemon shutdown
  kStats = 11,        // -> u32 json_len | JSON metrics snapshot
};

enum class Status : std::uint16_t {
  kOk = 0,
  kBadFrame = 1,      // malformed body (short, trailing bytes, reserved!=0)
  kBadOpcode = 2,     // unknown opcode value
  kBadRequest = 3,    // well-formed but unservable (node out of range, ...)
  kTooLarge = 4,      // declared payload over the cap (connection closes)
  kOverloaded = 5,    // admission control: request queue full, try later
  kInternal = 6,      // server-side failure (e.g. swap pack unreadable)
  kShuttingDown = 7,  // daemon is draining; no new work accepted
};

/// Stable names for logs, tests and counter keys ("ping", "ok", ...).
const char* OpcodeName(Opcode op);      // "?" for unknown values
const char* StatusName(Status status);  // "?" for unknown values

/// A decoded request. Only the fields of the active opcode are
/// meaningful.
struct Request {
  std::uint64_t id = 0;
  Opcode opcode = Opcode::kPing;

  NodeId node = 0;               // kDegree/kNeighbors/kBfs/kSp
  std::uint32_t k = 0;           // kPageRankTopK
  std::uint32_t iterations = 0;  // kPageRankTopK
  std::string method;            // kOrder: ordering method name
  std::uint64_t seed = 0;        // kOrder
  NodeId num_nodes = 0;          // kOrder
  std::vector<Edge> edges;       // kOrder
  std::string pack_path;         // kSwapPack
};

struct ResponseHeader {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::uint64_t epoch = 0;
};

// ---- Encoding (appends to `out`; never fails) ----

void AppendHandshake(std::string* out);                 // client hello
void AppendHandshakeAck(std::string* out, bool accepted);  // server reply
void AppendRequest(std::string* out, const Request& req);
/// Encodes a complete response frame with an already-built body.
void AppendResponse(std::string* out, const ResponseHeader& header,
                    const std::string& body);
/// Error-response body: u16 message_len | message (truncated to 64 KiB).
std::string ErrorBody(const std::string& message);

// ---- Little-endian primitives (shared by server/client body codecs) ----

void PutU16(std::string* out, std::uint16_t v);
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
void PutF64(std::string* out, double v);

/// Bounded cursor over a received payload. Get* return false once the
/// reader has over-run or under-run; no partial state is exposed.
class WireReader {
 public:
  WireReader(const std::byte* data, std::size_t len)
      : data_(data), len_(len) {}

  bool GetU16(std::uint16_t* v);
  bool GetU32(std::uint32_t* v);
  bool GetU64(std::uint64_t* v);
  bool GetF64(double* v);
  bool GetBytes(void* out, std::size_t n);
  bool Skip(std::size_t n);
  std::size_t remaining() const { return len_ - pos_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  const std::byte* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

// ---- Decoding ----

enum class DecodeResult {
  kOk,            // one frame consumed, *out filled
  kNeedMoreData,  // buffer ends mid-frame; read more and retry
  kBadFrame,      // malformed payload — answer kBadFrame, keep the stream
  kBadOpcode,     // unknown opcode — answer kBadOpcode, keep the stream
  kTooLarge,      // hostile length prefix — answer kTooLarge, close
};

/// Decodes one request frame from `data`. On kOk sets `*consumed` to the
/// full frame size (length field included). On kBadFrame/kBadOpcode the
/// frame is still fully consumed (its declared length is trusted — it
/// passed the cap) so the caller can answer and continue; `*error` gets
/// a diagnostic and, when the prefix was readable, `out->id` carries the
/// request id to echo. Declared sizes are validated against both
/// kMaxPayloadBytes and the actual payload length before any allocation.
DecodeResult DecodeRequest(const std::byte* data, std::size_t len,
                           std::size_t* consumed, Request* out,
                           std::string* error);

/// Splits one response frame into header + body view. Same contract as
/// DecodeRequest; kBadOpcode is never returned.
DecodeResult DecodeResponse(const std::byte* data, std::size_t len,
                            std::size_t* consumed, ResponseHeader* header,
                            const std::byte** body, std::size_t* body_len,
                            std::string* error);

/// kStats response body: `u32 json_len | json` (a UTF-8 JSON document,
/// shape documented in DESIGN.md §17). Length-prefixed rather than
/// "rest of payload" so the body can grow trailing fields compatibly.
std::string EncodeStatsBody(const std::string& json);
/// False on a malformed body (short prefix, length disagreeing with the
/// payload size).
bool DecodeStatsBody(const std::byte* body, std::size_t len,
                     std::string* json);

/// FNV-1a 64 over raw bytes — the result-vector fingerprint carried in
/// kBfs/kSp responses so clients can assert bit-identity without
/// shipping O(n) arrays.
std::uint64_t HashBytes64(const void* data, std::size_t len);

template <typename T>
std::uint64_t HashVector64(const std::vector<T>& v) {
  return HashBytes64(v.data(), v.size() * sizeof(T));
}

}  // namespace gorder::serve

#endif  // GORDER_SERVE_PROTOCOL_H_
