#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/flags.h"

namespace gorder::util {

namespace {

GORDER_FAILPOINT_DEFINE(fp_listen, "net.listen.socket");
GORDER_FAILPOINT_DEFINE(fp_accept, "net.accept");
GORDER_FAILPOINT_DEFINE(fp_connect, "net.connect");
GORDER_FAILPOINT_DEFINE(fp_read, "net.read");
GORDER_FAILPOINT_DEFINE(fp_write, "net.write");

GORDER_OBS_COUNTER(c_bytes_in, "net.bytes_in");
GORDER_OBS_COUNTER(c_bytes_out, "net.bytes_out");

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

IoResult FillSockaddrUn(const NetAddress& addr, sockaddr_un* sa) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sun_family = AF_UNIX;
  if (addr.path.size() >= sizeof(sa->sun_path)) {
    return IoResult::Error("unix socket path too long (" +
                           std::to_string(addr.path.size()) + " bytes, max " +
                           std::to_string(sizeof(sa->sun_path) - 1) + "): " +
                           addr.path);
  }
  std::memcpy(sa->sun_path, addr.path.data(), addr.path.size());
  return IoResult::Ok();
}

IoResult FillSockaddrIn(const NetAddress& addr, sockaddr_in* sa) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(static_cast<std::uint16_t>(addr.port));
  const std::string host = addr.host.empty() ? "127.0.0.1" : addr.host;
  if (inet_pton(AF_INET, host.c_str(), &sa->sin_addr) != 1) {
    return IoResult::Error("invalid IPv4 address: " + host);
  }
  return IoResult::Ok();
}

}  // namespace

std::string NetAddress::ToString() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

bool ParseNetAddress(const std::string& spec, NetAddress* out,
                     std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (spec.rfind("unix:", 0) == 0) {
    std::string path = spec.substr(5);
    if (path.empty()) return fail("unix: address needs a path");
    out->is_unix = true;
    out->path = std::move(path);
    out->host.clear();
    out->port = 0;
    return true;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string rest = spec.substr(4);
    std::string host;
    std::string port_text = rest;
    std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      host = rest.substr(0, colon);
      port_text = rest.substr(colon + 1);
    }
    std::int64_t port = 0;
    if (!ParseInt64(port_text, &port) || port < 0 || port > 65535) {
      return fail("tcp: '" + port_text + "' is not a port number (0-65535)");
    }
    out->is_unix = false;
    out->path.clear();
    out->host = std::move(host);
    out->port = static_cast<int>(port);
    return true;
  }
  return fail("address must start with unix: or tcp:, got '" + spec + "'");
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

int Socket::LocalPort() const {
  if (fd_ < 0) return 0;
  sockaddr_in sa;
  socklen_t len = sizeof(sa);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0 ||
      sa.sin_family != AF_INET) {
    return 0;
  }
  return static_cast<int>(ntohs(sa.sin_port));
}

IoResult ListenSocket(const NetAddress& addr, Socket* out, int backlog) {
  if (GORDER_FAILPOINT(fp_listen) != FaultKind::kNone) {
    errno = EIO;
    return IoResult::Error(ErrnoMessage(
        ("cannot listen on " + addr.ToString()).c_str()));
  }
  Socket sock(::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return IoResult::Error(ErrnoMessage("socket"));
  if (addr.is_unix) {
    sockaddr_un sa;
    IoResult r = FillSockaddrUn(addr, &sa);
    if (!r.ok) return r;
    ::unlink(addr.path.c_str());  // stale socket from a previous daemon
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return IoResult::Error(ErrnoMessage(("bind " + addr.path).c_str()));
    }
  } else {
    sockaddr_in sa;
    IoResult r = FillSockaddrIn(addr, &sa);
    if (!r.ok) return r;
    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return IoResult::Error(ErrnoMessage(("bind " + addr.ToString()).c_str()));
    }
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return IoResult::Error(ErrnoMessage("listen"));
  }
  *out = std::move(sock);
  return IoResult::Ok();
}

IoResult AcceptSocket(const Socket& listener, Socket* out) {
  if (GORDER_FAILPOINT(fp_accept) != FaultKind::kNone) {
    errno = EIO;
    return IoResult::Error(ErrnoMessage("accept"));
  }
  while (true) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      *out = Socket(fd);
      return IoResult::Ok();
    }
    if (errno == EINTR) continue;
    return IoResult::Error(ErrnoMessage("accept"));
  }
}

IoResult ConnectSocket(const NetAddress& addr, Socket* out, double timeout_s) {
  if (GORDER_FAILPOINT(fp_connect) != FaultKind::kNone) {
    errno = EIO;
    return IoResult::Error(ErrnoMessage(
        ("cannot connect to " + addr.ToString()).c_str()));
  }
  Socket sock(::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return IoResult::Error(ErrnoMessage("socket"));
  int rc;
  if (addr.is_unix) {
    sockaddr_un sa;
    IoResult r = FillSockaddrUn(addr, &sa);
    if (!r.ok) return r;
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } else {
    sockaddr_in sa;
    IoResult r = FillSockaddrIn(addr, &sa);
    if (!r.ok) return r;
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  }
  if (rc != 0) {
    return IoResult::Error(
        ErrnoMessage(("connect " + addr.ToString()).c_str()));
  }
  if (timeout_s > 0) {
    timeval tv;
    tv.tv_sec = static_cast<long>(timeout_s);
    tv.tv_usec = static_cast<long>((timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  *out = std::move(sock);
  return IoResult::Ok();
}

IoResult ReadFull(const Socket& sock, void* buf, std::size_t n,
                  bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  std::size_t done = 0;
  auto* bytes = static_cast<char*>(buf);
  while (done < n) {
    ssize_t got = ::recv(sock.fd(), bytes + done, n - done, 0);
    if (got > 0) {
      // Injected faults model a peer/kernel failure part-way through the
      // transfer: shrink the observed byte count (kShort) or fail it.
      std::size_t eff = GORDER_FAULT_IO(fp_read, static_cast<std::size_t>(got),
                                        static_cast<std::size_t>(got));
      if (eff == 0) return IoResult::Error(ErrnoMessage("recv"));
      if (eff < static_cast<std::size_t>(got)) {
        return IoResult::Error("recv: short read (injected)");
      }
      done += static_cast<std::size_t>(got);
      GORDER_OBS_ADD(c_bytes_in, static_cast<std::uint64_t>(got));
      continue;
    }
    if (got == 0) {
      if (done == 0 && clean_eof != nullptr) *clean_eof = true;
      return IoResult::Error(done == 0 ? "connection closed by peer"
                                       : "connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return IoResult::Error(ErrnoMessage("recv"));
  }
  return IoResult::Ok();
}

IoResult ReadSome(const Socket& sock, void* buf, std::size_t cap,
                  std::size_t* got) {
  *got = 0;
  while (true) {
    ssize_t n = ::recv(sock.fd(), buf, cap, 0);
    if (n >= 0) {
      *got = static_cast<std::size_t>(n);
      GORDER_OBS_ADD(c_bytes_in, static_cast<std::uint64_t>(n));
      return IoResult::Ok();
    }
    if (errno == EINTR) continue;
    return IoResult::Error(ErrnoMessage("recv"));
  }
}

IoResult WriteFull(const Socket& sock, const void* buf, std::size_t n) {
  std::size_t done = 0;
  const auto* bytes = static_cast<const char*>(buf);
  while (done < n) {
    ssize_t put = ::send(sock.fd(), bytes + done, n - done, MSG_NOSIGNAL);
    if (put > 0) {
      std::size_t eff = GORDER_FAULT_IO(fp_write, static_cast<std::size_t>(put),
                                        static_cast<std::size_t>(put));
      if (eff == 0 || eff < static_cast<std::size_t>(put)) {
        return IoResult::Error(ErrnoMessage("send (injected)"));
      }
      done += static_cast<std::size_t>(put);
      GORDER_OBS_ADD(c_bytes_out, static_cast<std::uint64_t>(put));
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return IoResult::Error(ErrnoMessage("send"));
  }
  return IoResult::Ok();
}

}  // namespace gorder::util
