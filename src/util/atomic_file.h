#ifndef GORDER_UTIL_ATOMIC_FILE_H_
#define GORDER_UTIL_ATOMIC_FILE_H_

/// Helpers for the write-to-temp-then-rename pattern shared by every
/// artifact writer (gpack, gperm, run reports, Chrome traces, graph
/// files). Together they give the usual atomicity story: readers only
/// ever see the old file or the complete new one, concurrent writers
/// never interleave into each other's staging file, and the renamed
/// file survives a crash/power loss once the writer returned success.
///
/// Lives in util (not store) so the obs artifact writers can depend on
/// it without a store -> obs -> store cycle.

#include <cstdio>
#include <string>

#include "util/io_result.h"

namespace gorder::util {

/// Staging path for an atomic write of `path`, unique per writer
/// (pid + an in-process counter), so concurrent writers targeting the
/// same final path each stage to their own file.
std::string StagingPath(const std::string& path);

/// Flushes stdio buffers and fsyncs the file to stable storage.
/// Returns false if either step fails.
bool FlushAndSync(std::FILE* f);

/// Best-effort fsync of the directory containing `path`, making a
/// just-completed rename into that directory durable.
void SyncParentDir(const std::string& path);

/// Renames a fully-written-and-synced staging file onto its final path
/// and fsyncs the parent directory. On failure the staging file is
/// removed, so no `.tmp.*` debris survives a failed commit.
IoResult CommitStagedFile(const std::string& tmp, const std::string& path);

/// Writes `bytes` of `data` to `path` atomically: stage to a
/// writer-unique temp file, fflush+fsync, rename over the target, fsync
/// the parent directory. On any failure the staging file is removed and
/// the previous content of `path` (if any) is untouched — a reader can
/// never observe a partially-written file at the final path.
IoResult WriteFileAtomic(const std::string& path, const void* data,
                         std::size_t bytes);

inline IoResult WriteFileAtomic(const std::string& path,
                                const std::string& contents) {
  return WriteFileAtomic(path, contents.data(), contents.size());
}

}  // namespace gorder::util

#endif  // GORDER_UTIL_ATOMIC_FILE_H_
