#ifndef GORDER_UTIL_TABLE_H_
#define GORDER_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace gorder {

/// Minimal aligned-console-table printer used by the benchmark harness to
/// render the paper's tables. Cells are strings; columns auto-size.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded
  /// with empty cells; longer rows are rejected.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Renders as comma-separated values (for piping into plotting tools).
  void PrintCsv(std::FILE* out = stdout) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant decimal places.
  static std::string Num(double value, int digits = 2);
  /// Formats a duration in the paper's style: "394ms", "3s", "2m", "9h".
  static std::string Duration(double seconds);
  /// Formats a count with engineering suffix: "31M", "1.94G".
  static std::string Count(double value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gorder

#endif  // GORDER_UTIL_TABLE_H_
