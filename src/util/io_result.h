#ifndef GORDER_UTIL_IO_RESULT_H_
#define GORDER_UTIL_IO_RESULT_H_

#include <string>
#include <utility>

namespace gorder {

/// Outcome of a fallible IO operation. Every filesystem-touching layer
/// (graph IO, the store, the obs artifact writers) reports environment
/// failures through this — never UB, an abort, or a partial artifact at
/// a final path (DESIGN.md §14).
struct IoResult {
  bool ok = true;
  std::string error;

  static IoResult Ok() { return {}; }
  static IoResult Error(std::string message) {
    return {false, std::move(message)};
  }
};

}  // namespace gorder

#endif  // GORDER_UTIL_IO_RESULT_H_
