#ifndef GORDER_UTIL_PARALLEL_H_
#define GORDER_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>

namespace gorder {

/// Shared parallel runtime: a lazily initialised fork-join thread pool.
///
/// The pool is created on the first parallel call that actually needs more
/// than one thread, and is shared by every subsystem (CSR construction,
/// relabelling, edge-list parsing, partition-parallel Gorder). Thread
/// count comes from, in priority order: `SetNumThreads()` (the `--threads`
/// flag of the CLI/bench binaries), the `GORDER_THREADS` environment
/// variable, then `std::thread::hardware_concurrency()`.
///
/// Determinism contract: every primitive here hands out *statically
/// determined* work ranges and requires bodies to write only to
/// range-disjoint outputs (scatter slots, per-chunk buffers merged in
/// chunk order). Under that discipline results are bit-identical at any
/// thread count, and `NumThreads() == 1` degenerates to plain serial
/// execution on the calling thread with the pool never touched.

/// Current global thread budget (>= 1).
int NumThreads();

/// Sets the global thread budget. `n < 1` restores the default
/// (GORDER_THREADS env var, else hardware concurrency).
void SetNumThreads(int n);

/// Runs `body(chunk_begin, chunk_end)` over `[begin, end)` split into
/// chunks of at most `grain` items. Chunks are claimed dynamically by up
/// to `max_threads` threads (0 = the global budget), so skewed chunks
/// load-balance. The body must tolerate being called with any subrange:
/// the serial fast path invokes it once with the whole range.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 int max_threads = 0);

namespace internal {
void ParallelInvokeImpl(std::function<void()>* fns, int count);
}  // namespace internal

/// Runs the given callables concurrently and waits for all of them.
/// Nested parallel calls inside the callables are legal: idle pool
/// workers join whichever region has open work.
template <typename... Fns>
void ParallelInvoke(Fns&&... fns) {
  std::function<void()> tasks[] = {
      std::function<void()>(std::forward<Fns>(fns))...};
  internal::ParallelInvokeImpl(tasks, static_cast<int>(sizeof...(Fns)));
}

}  // namespace gorder

#endif  // GORDER_UTIL_PARALLEL_H_
