#ifndef GORDER_UTIL_TYPES_H_
#define GORDER_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace gorder {

/// Node identifier. 32 bits: the paper's largest graph has 95M nodes, and
/// the synthetic stand-ins in this repo stay far below 2^32.
using NodeId = std::uint32_t;

/// Edge index into a CSR neighbour array. 64 bits so that graphs with more
/// than 4G edges remain representable.
using EdgeId = std::uint64_t;

/// Sentinel for "no node" (e.g. unvisited parent, absent bin).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel distance for unreachable nodes in shortest-path algorithms.
inline constexpr std::uint32_t kInfDistance =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace gorder

#endif  // GORDER_UTIL_TYPES_H_
