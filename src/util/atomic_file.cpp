#include "util/atomic_file.h"

#include <atomic>
#include <cstdint>
#include <filesystem>

#include "util/failpoint.h"

#if defined(__linux__) || defined(__APPLE__)
#define GORDER_UTIL_HAS_POSIX_SYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace gorder::util {

GORDER_FAILPOINT_DEFINE(fp_sync, "util.atomic.sync");
GORDER_FAILPOINT_DEFINE(fp_dirsync, "util.atomic.dirsync");
GORDER_FAILPOINT_DEFINE(fp_write_open, "util.atomic_write.open");
GORDER_FAILPOINT_DEFINE(fp_write_write, "util.atomic_write.write");
GORDER_FAILPOINT_DEFINE(fp_rename, "util.atomic.rename");

std::string StagingPath(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
#ifdef GORDER_UTIL_HAS_POSIX_SYNC
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." + std::to_string(seq);
}

bool FlushAndSync(std::FILE* f) {
  if (!GORDER_FAULT_OK(fp_sync, std::fflush(f) == 0)) return false;
#ifdef GORDER_UTIL_HAS_POSIX_SYNC
  if (::fsync(::fileno(f)) != 0) return false;
#endif
  return true;
}

void SyncParentDir(const std::string& path) {
  // Best-effort by contract: a failure here (injected or real) is
  // tolerated silently — the rename itself already happened.
  if (GORDER_FAILPOINT(fp_dirsync) != FaultKind::kNone) return;
#ifdef GORDER_UTIL_HAS_POSIX_SYNC
  const std::filesystem::path p(path);
  const std::string dir =
      p.has_parent_path() ? p.parent_path().string() : std::string(".");
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

IoResult WriteFileAtomic(const std::string& path, const void* data,
                         std::size_t bytes) {
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = StagingPath(path);
  if (GORDER_FAILPOINT(fp_write_open) != FaultKind::kNone) {
    return IoResult::Error("cannot open " + tmp + " for writing");
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return IoResult::Error("cannot open " + tmp + " for writing");
  }
  bool ok = bytes == 0 ||
            GORDER_FAULT_IO(fp_write_write, bytes,
                            std::fwrite(data, 1, bytes, f)) == bytes;
  ok = ok && FlushAndSync(f);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::filesystem::remove(tmp, ec);
    return IoResult::Error("short write to " + tmp);
  }
  return CommitStagedFile(tmp, path);
}

IoResult CommitStagedFile(const std::string& tmp, const std::string& path) {
  std::error_code ec;
  if (GORDER_FAILPOINT(fp_rename) != FaultKind::kNone) {
    std::filesystem::remove(tmp, ec);
    return IoResult::Error("cannot rename " + tmp + " to " + path);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return IoResult::Error("cannot rename " + tmp + " to " + path);
  }
  SyncParentDir(path);
  return IoResult::Ok();
}

}  // namespace gorder::util
