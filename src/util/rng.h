#ifndef GORDER_UTIL_RNG_H_
#define GORDER_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace gorder {

/// SplitMix64: used to seed Xoshiro and as a standalone cheap generator.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014). Public-domain algorithm.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality, deterministic PRNG. All randomised
/// components of the library (generators, Random ordering, simulated
/// annealing, sampling) take an explicit Rng so experiments are exactly
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  std::uint32_t NextU32() { return static_cast<std::uint32_t>(NextU64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless method.
  std::uint64_t Uniform(std::uint64_t bound) {
    // 128-bit multiply keeps the result unbiased enough for simulation use;
    // we accept the tiny modulo bias only when bound is astronomically large.
    const auto x = NextU64();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace gorder

#endif  // GORDER_UTIL_RNG_H_
