#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace gorder {

namespace {

[[noreturn]] void BadValue(const std::string& key, const std::string& value,
                           const char* kind) {
  std::fprintf(stderr, "flag --%s: '%s' is not a valid %s\n", key.c_str(),
               value.c_str(), kind);
  std::exit(2);
}

std::int64_t ParseIntStrict(const std::string& key,
                            const std::string& value) {
  std::int64_t v = 0;
  if (!ParseInt64(value, &v)) BadValue(key, value, "integer");
  return v;
}

}  // namespace

bool ParseInt64(const std::string& text, std::int64_t* out) {
  const char* s = text.c_str();
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return ParseIntStrict(key, it->second);
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) {
    BadValue(key, it->second, "number");
  }
  return v;
}

std::vector<int> Flags::GetIntList(const std::string& key,
                                   const std::vector<int>& def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<int> result;
  const std::string& value = it->second;
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = value.find(',', pos);
    std::string elem = value.substr(
        pos, comma == std::string::npos ? comma : comma - pos);
    result.push_back(static_cast<int>(ParseIntStrict(key, elem)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return result;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace gorder
