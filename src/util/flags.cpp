#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace gorder {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                  nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace gorder
