#ifndef GORDER_UTIL_NET_H_
#define GORDER_UTIL_NET_H_

/// Minimal blocking socket layer for the serving subsystem (src/serve).
///
/// Lives in util so the serve layer stays free of raw syscalls: every
/// socket/accept/connect/read/write site here is a registered failpoint
/// (DESIGN.md §14) — `net.listen.socket`, `net.accept`, `net.connect`,
/// `net.read`, `net.write` — so the fault-sweep suite can prove that a
/// failing network syscall degrades to a clean IoResult, never UB or a
/// wedged daemon.
///
/// Addresses are spelled as flag-friendly strings:
///
///   unix:/path/to/socket      stream socket in the filesystem
///   tcp:PORT                  TCP on 127.0.0.1 (loopback only)
///   tcp:HOST:PORT             TCP on an explicit address
///
/// `tcp:0` binds an ephemeral port; the bound port is readable from the
/// listener afterwards (Socket::LocalPort), which is what lets tests and
/// the daemon's LISTENING line avoid port races.

#include <cstddef>
#include <string>

#include "util/io_result.h"

namespace gorder::util {

struct NetAddress {
  bool is_unix = false;
  std::string path;         // unix socket path
  std::string host;         // tcp host (numeric or "127.0.0.1")
  int port = 0;             // tcp port (0 = ephemeral)

  /// Canonical "unix:..." / "tcp:host:port" spelling.
  std::string ToString() const;
};

/// Parses an address spec (grammar above). Returns false and fills
/// `*error` on malformed input; nothing is resolved via DNS — hosts must
/// be numeric.
bool ParseNetAddress(const std::string& spec, NetAddress* out,
                     std::string* error);

/// Move-only owning file-descriptor wrapper.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  /// shutdown(SHUT_RDWR): unblocks any thread parked in a read/accept on
  /// this socket (the graceful-stop path). The fd stays owned.
  void ShutdownBoth();

  /// Bound local TCP port (after ListenSocket on tcp:0); 0 for unix
  /// sockets or on error.
  int LocalPort() const;

 private:
  int fd_ = -1;
};

/// Creates, binds and listens. For unix addresses a stale socket file at
/// the path is removed first (a daemon restart must not need manual rm).
IoResult ListenSocket(const NetAddress& addr, Socket* out, int backlog = 128);

/// Accepts one connection (blocking). EINTR is retried; every other
/// failure — including an injected one — returns a clean error so the
/// accept loop can decide to retry or stop.
IoResult AcceptSocket(const Socket& listener, Socket* out);

/// Connects (blocking) and applies `timeout_s` as both the send and
/// receive timeout on the resulting socket (0 = no timeout). A timeout
/// surfaces as a failed ReadFull/WriteFull, so a client can never hang
/// forever on a wedged peer.
IoResult ConnectSocket(const NetAddress& addr, Socket* out,
                       double timeout_s = 30.0);

/// Reads exactly `n` bytes. EOF before the first byte is a "connection
/// closed" error with `*clean_eof` set (when provided) so callers can
/// tell an orderly peer close from a mid-frame truncation.
IoResult ReadFull(const Socket& sock, void* buf, std::size_t n,
                  bool* clean_eof = nullptr);

/// Reads whatever is available, up to `cap` bytes, into `buf`; `*got`
/// receives the byte count (0 on orderly EOF, which is still ok). The
/// admin HTTP listener uses this to accumulate a request head whose
/// length is not known in advance.
IoResult ReadSome(const Socket& sock, void* buf, std::size_t cap,
                  std::size_t* got);

/// Writes exactly `n` bytes (SIGPIPE suppressed; a closed peer surfaces
/// as an error, never a signal).
IoResult WriteFull(const Socket& sock, const void* buf, std::size_t n);

}  // namespace gorder::util

#endif  // GORDER_UTIL_NET_H_
