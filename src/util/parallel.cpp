#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/flags.h"

namespace gorder {

namespace {

// Pool telemetry (DESIGN.md "Observability"). `pool.chunks` is sharded
// per thread, so worker imbalance shows up as skew across shards;
// `pool.chunks_per_call` is the fan-out distribution;
// `pool.worker_parks` counts a worker going idle (one park per wait on
// the job condition variable), `pool.worker_joins` a worker picking up a
// job. Metrics never feed back into scheduling: claiming stays a single
// atomic fetch_add and results are bit-identical with telemetry on, off,
// or compiled out.
GORDER_OBS_COUNTER(c_parallel_calls, "pool.parallel_calls");
GORDER_OBS_COUNTER(c_serial_calls, "pool.serial_calls");
GORDER_OBS_COUNTER(c_chunks, "pool.chunks");
GORDER_OBS_COUNTER(c_invoke_calls, "pool.invoke_calls");
GORDER_OBS_COUNTER(c_invoke_tasks, "pool.invoke_tasks");
GORDER_OBS_COUNTER(c_worker_parks, "pool.worker_parks");
GORDER_OBS_COUNTER(c_worker_joins, "pool.worker_joins");
GORDER_OBS_GAUGE(g_pool_threads, "pool.threads");
GORDER_OBS_HISTOGRAM(h_chunks_per_call, "pool.chunks_per_call");

int DefaultNumThreads() {
  // GORDER_THREADS is parsed with the same strict parser as --threads:
  // "4x" or "two" used to atoi-truncate to 4 / silently mean "auto",
  // turning a typo into a different experiment. Malformed or
  // non-positive values are fatal instead.
  if (const char* env = std::getenv("GORDER_THREADS")) {
    std::int64_t n = 0;
    if (!ParseInt64(env, &n) || n < 1) {
      std::fprintf(stderr,
                   "GORDER_THREADS: '%s' is not a positive integer\n", env);
      std::exit(2);
    }
    return static_cast<int>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::atomic<int> g_num_threads{0};  // 0 = not yet initialised

/// Fork-join pool with help-first nesting.
///
/// `Run(p, body)` publishes a job with `p - 1` open worker slots, executes
/// `body` on the calling thread, then waits for every worker that joined
/// to leave. Bodies claim work internally (an atomic chunk counter), so a
/// job completes even if no worker ever picks it up — which is what makes
/// nested regions deadlock-free: a nested `Run` from inside a worker
/// simply executes its body to completion on that worker, and any *idle*
/// workers are free to join the inner job for real parallelism.
///
/// Workers are spawned lazily up to `NumThreads() - 1` and parked on a
/// condition variable between jobs. The pool is intentionally leaked so
/// parked workers never race static destruction.
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool;
    return *pool;
  }

  void Run(int participants, const std::function<void()>& body) {
    if (participants <= 1) {
      body();
      return;
    }
    auto job = std::make_shared<Job>();
    job->body = &body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->open_slots = participants - 1;
      while (static_cast<int>(workers_.size()) < participants - 1) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
      jobs_.push_back(job);
    }
    cv_work_.notify_all();
    body();
    std::unique_lock<std::mutex> lock(mu_);
    job->open_slots = 0;  // no new joiners
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
    cv_done_.wait(lock, [&] { return job->running == 0; });
  }

 private:
  struct Job {
    const std::function<void()>* body = nullptr;
    int open_slots = 0;  // worker slots still unclaimed
    int running = 0;     // workers currently inside body
  };

  std::shared_ptr<Job> FindOpenJob() {
    for (const auto& job : jobs_) {
      if (job->open_slots > 0) return job;
    }
    return nullptr;
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      GORDER_OBS_INC(c_worker_parks);
      cv_work_.wait(lock, [&] { return FindOpenJob() != nullptr; });
      std::shared_ptr<Job> job = FindOpenJob();
      --job->open_slots;
      ++job->running;
      GORDER_OBS_INC(c_worker_joins);
      lock.unlock();
      (*job->body)();
      lock.lock();
      --job->running;
      cv_done_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Job>> jobs_;
};

}  // namespace

int NumThreads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = DefaultNumThreads();
    g_num_threads.store(n, std::memory_order_relaxed);
    GORDER_OBS_SET(g_pool_threads, n);
  }
  return n;
}

void SetNumThreads(int n) {
  int resolved = n >= 1 ? n : DefaultNumThreads();
  g_num_threads.store(resolved, std::memory_order_relaxed);
  GORDER_OBS_SET(g_pool_threads, resolved);
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 int max_threads) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t num_chunks = (count + grain - 1) / grain;
  int threads = NumThreads();
  if (max_threads > 0) threads = std::min(threads, max_threads);
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), num_chunks));
  if (threads <= 1) {
    GORDER_OBS_INC(c_serial_calls);
    body(begin, end);
    return;
  }
  GORDER_OBS_INC(c_parallel_calls);
  GORDER_OBS_OBSERVE(h_chunks_per_call, num_chunks);
  std::atomic<std::size_t> next{0};
  Pool::Get().Run(threads, [&] {
    while (true) {
      std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      GORDER_OBS_INC(c_chunks);
      std::size_t chunk_begin = begin + c * grain;
      std::size_t chunk_end = std::min(end, chunk_begin + grain);
      body(chunk_begin, chunk_end);
    }
  });
}

namespace internal {

void ParallelInvokeImpl(std::function<void()>* fns, int count) {
  if (count <= 0) return;
  GORDER_OBS_INC(c_invoke_calls);
  GORDER_OBS_ADD(c_invoke_tasks, static_cast<std::uint64_t>(count));
  int threads = std::min(NumThreads(), count);
  if (threads <= 1) {
    for (int i = 0; i < count; ++i) fns[i]();
    return;
  }
  std::atomic<int> next{0};
  Pool::Get().Run(threads, [&] {
    while (true) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fns[i]();
    }
  });
}

}  // namespace internal

}  // namespace gorder
