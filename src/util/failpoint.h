#ifndef GORDER_UTIL_FAILPOINT_H_
#define GORDER_UTIL_FAILPOINT_H_

/// Deterministic fault injection for IO/syscall error paths
/// (DESIGN.md §14).
///
/// A *failpoint* is a named site in fallible code (an fopen, an fwrite,
/// an fsync, an allocation) that a test can arm to fail on the Nth hit
/// with a chosen failure kind. Failpoints are a build-time feature:
/// release builds (the default) compile every macro below to nothing —
/// no registry, no counters, no strings in the binary — while
/// `-DGORDER_FAILPOINTS=ON` builds carry the full framework, armed via
/// the `GORDER_FAILPOINTS` environment variable or the `--failpoints`
/// flag with specs like
///
///   store.pack_write.fsync=err@3;graph.read_binary.alloc=oom@1
///
/// Grammar: `name=kind[@N[+]]`, separated by `;` or `,`. `kind` is one
/// of `err`, `short`, `enospc`, `oom`; `@N` (default 1, counted from
/// the moment of arming) fires on exactly the Nth hit, `@N+` on every
/// hit from the Nth onward.
///
/// Usage in instrumented code:
///
///   GORDER_FAILPOINT_DEFINE(fp_pack_open, "store.pack_write.open");
///   ...
///   if (GORDER_FAILPOINT(fp_pack_open) != util::FaultKind::kNone) {
///     return IoResult::Error("cannot open " + tmp);  // injected
///   }
///   FilePtr f(std::fopen(tmp.c_str(), "wb"));
///
/// `GORDER_FAILPOINT_DEFINE` lives at namespace scope in the .cpp so
/// every point registers during static initialisation — the fault-sweep
/// test enumerates the registry and fails if any registered point is
/// never reached, flagging dead error-handling code. Hit and fire
/// counts are kept in the registry (authoritative, unaffected by
/// GORDER_OBS=off) and mirrored into obs counters
/// (`failpoint.hit.<name>` / `failpoint.fired.<name>`) so run reports
/// show exactly which points fired.

#include <cstddef>

namespace gorder::util {

/// What an armed failpoint injects. Sites with a single failure mode
/// (open, mmap, alloc, rename) treat every kind as their one failure;
/// transfer sites (read/write) distinguish short transfers and errno.
enum class FaultKind : int {
  kNone = 0,
  kError,   // operation fails outright (errno EIO)
  kShort,   // read/write transfers fewer bytes than requested
  kEnospc,  // write fails with errno ENOSPC
  kOom,     // allocation failure (std::bad_alloc)
};

}  // namespace gorder::util

#if defined(GORDER_FAILPOINTS_ENABLED)

#include <cerrno>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

namespace gorder::util {

namespace internal {
struct FailpointState;
}  // namespace internal

/// One registered failpoint site. Constructed at namespace scope via
/// GORDER_FAILPOINT_DEFINE, so registration happens at static init.
/// Two handles with the same name share one registry entry.
class FailpointHandle {
 public:
  explicit FailpointHandle(const char* name);
  FailpointHandle(const FailpointHandle&) = delete;
  FailpointHandle& operator=(const FailpointHandle&) = delete;

  /// Counts one hit and returns the armed kind if this hit fires,
  /// kNone otherwise. Cheap: two relaxed atomics when disarmed.
  FaultKind Check();

  const std::string& name() const;

 private:
  internal::FailpointState* state_;
};

/// Arms the points named in `spec` (grammar above). Every named point
/// must already be registered — unknown names are an error, so typos in
/// test specs fail loudly. Arming resets the point's hit counter, so
/// `@N` is counted from this call. Returns false and fills `*error` on
/// a malformed spec (nothing is armed then).
bool ArmFailpointsFromSpec(const std::string& spec, std::string* error);

/// Arms one point directly. `nth` is 1-based; `sticky` fires on every
/// hit >= nth instead of exactly the nth. Returns false if `name` is
/// not registered.
bool ArmFailpoint(const std::string& name, FaultKind kind,
                  std::uint64_t nth = 1, bool sticky = false);

/// Disarms every point (hit/fire counters are left intact).
void DisarmAllFailpoints();

/// Zeroes every point's hit and fire counters.
void ResetFailpointCounters();

struct FailpointInfo {
  std::string name;
  std::uint64_t hits = 0;   // times the site was evaluated
  std::uint64_t fires = 0;  // times a fault was injected
  bool armed = false;
};

/// Every registered point with its counters, sorted by name.
std::vector<FailpointInfo> SnapshotFailpoints();

/// Names of every registered point, sorted.
std::vector<std::string> RegisteredFailpoints();

/// Specs from the GORDER_FAILPOINTS environment variable (or an
/// ArmFailpointsFromSpec call made before the process finished static
/// init) that have not matched any registered point yet. Non-empty
/// after startup means a typo'd or compiled-out point name.
std::vector<std::string> PendingFailpointSpecs();

/// Applies an injected fault to a transfer-style result (fread/fwrite
/// item or byte counts). `want` is the requested count, `got` the real
/// call's result; returns `got` when nothing fires, otherwise a count
/// strictly below `want` with errno set per kind.
inline std::size_t FaultedTransfer(FailpointHandle& fp, std::size_t want,
                                   std::size_t got) {
  switch (fp.Check()) {
    case FaultKind::kNone:
      return got;
    case FaultKind::kShort:
      return want / 2;
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return want / 2;
    case FaultKind::kOom:
      errno = ENOMEM;
      return 0;
    case FaultKind::kError:
    default:
      errno = EIO;
      return 0;
  }
}

/// Applies an injected fault to a boolean success value whose real
/// operation has already run (fsync, fclose): any armed kind turns
/// success into failure with errno set.
inline bool FaultedOk(FailpointHandle& fp, bool real) {
  switch (fp.Check()) {
    case FaultKind::kNone:
      return real;
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return false;
    default:
      errno = EIO;
      return false;
  }
}

}  // namespace gorder::util

/// Defines a failpoint handle at namespace scope (registers at static
/// init).
#define GORDER_FAILPOINT_DEFINE(var, name) \
  static ::gorder::util::FailpointHandle var(name)

/// Evaluates the failpoint: counts a hit, yields the armed FaultKind
/// (kNone when disarmed or not firing yet).
#define GORDER_FAILPOINT(var) ((var).Check())

/// Transfer-style wrapper: `expr` is the real fread/fwrite result for a
/// requested count of `want`; an injected fault shrinks it below `want`.
#define GORDER_FAULT_IO(var, want, expr) \
  (::gorder::util::FaultedTransfer((var), (want), (expr)))

/// Boolean wrapper: `expr` (the real operation, always evaluated)
/// is forced to false when the point fires.
#define GORDER_FAULT_OK(var, expr) (::gorder::util::FaultedOk((var), (expr)))

/// Allocation wrapper: throws std::bad_alloc when the point fires.
/// Place inside the try block whose catch handles real OOM.
#define GORDER_FAULT_ALLOC(var)                                            \
  do {                                                                     \
    if ((var).Check() != ::gorder::util::FaultKind::kNone) throw std::bad_alloc(); \
  } while (0)

#else  // !GORDER_FAILPOINTS_ENABLED

/// Release builds: every macro compiles to nothing — no registry, no
/// handle objects, no failpoint name strings in the binary. The `var`
/// token is never expanded, so instrumented TUs carry zero code.
#define GORDER_FAILPOINT_DEFINE(var, name) \
  static_assert(true, "failpoints compiled out")
#define GORDER_FAILPOINT(var) (::gorder::util::FaultKind::kNone)
#define GORDER_FAULT_IO(var, want, expr) (expr)
#define GORDER_FAULT_OK(var, expr) (expr)
#define GORDER_FAULT_ALLOC(var) \
  do {                          \
  } while (0)

#endif  // GORDER_FAILPOINTS_ENABLED

#endif  // GORDER_UTIL_FAILPOINT_H_
