#ifndef GORDER_UTIL_CRC32_H_
#define GORDER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gorder {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used for the
/// gpack/gperm on-disk sections (src/store). Streaming-friendly: feed the
/// previous return value back in as `seed` to continue a running CRC over
/// multiple buffers. Crc32(data, len) == Crc32 of the whole buffer.
///
/// Reference value (RFC 3720 appendix / zlib test vector):
///   Crc32("123456789", 9) == 0xCBF43926
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace gorder

#endif  // GORDER_UTIL_CRC32_H_
