#ifndef GORDER_UTIL_ARRAY_REF_H_
#define GORDER_UTIL_ARRAY_REF_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace gorder {

/// Owned-or-borrowed immutable array.
///
/// The CSR arrays of `Graph` live behind this wrapper so a graph can
/// either own its storage (`std::vector`, the classic build path) or
/// borrow it from a memory-mapped gpack section (src/store) without a
/// copy. A borrowed ArrayRef holds a shared keep-alive handle to the
/// mapping, so the bytes stay valid for as long as any array referencing
/// them is alive — several ArrayRefs (the four CSR sides) typically share
/// one mapping.
///
/// Read access is branch-free: `data_`/`size_` are maintained across
/// moves so `operator[]` costs exactly what a raw pointer does, keeping
/// the algorithm kernels' inner loops unchanged. Like the Graph that
/// contains it, the type is move-only; deep copies are explicit
/// (`ToVector`).
template <typename T>
class ArrayRef {
 public:
  using value_type = T;

  ArrayRef() = default;

  /// Owning: takes the vector's storage.
  explicit ArrayRef(std::vector<T> v)
      : owned_(std::move(v)), data_(owned_.data()), size_(owned_.size()) {}

  /// Borrowing: points into `keepalive`-owned memory (e.g. an mmap'ed
  /// file section). The region [data, data + size) must stay valid while
  /// `keepalive` is alive.
  ArrayRef(const T* data, std::size_t size,
           std::shared_ptr<const void> keepalive)
      : keepalive_(std::move(keepalive)),
        data_(data),
        size_(size),
        borrowed_(true) {}

  ArrayRef(ArrayRef&& other) noexcept { *this = std::move(other); }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      keepalive_ = std::move(other.keepalive_);
      borrowed_ = other.borrowed_;
      size_ = other.size_;
      // A moved-from std::vector keeps its element storage alive in the
      // destination, so the cached pointer must be re-derived for the
      // owning case (and stays as-is for the borrowed case).
      data_ = borrowed_ ? other.data_ : owned_.data();
      other.owned_.clear();
      other.keepalive_.reset();
      other.data_ = nullptr;
      other.size_ = 0;
      other.borrowed_ = false;
    }
    return *this;
  }
  ArrayRef(const ArrayRef&) = delete;
  ArrayRef& operator=(const ArrayRef&) = delete;

  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  /// True when this array borrows from a shared mapping rather than
  /// owning a vector.
  bool borrowed() const { return borrowed_; }

  /// Explicit deep copy into owned storage.
  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const ArrayRef& a, const ArrayRef& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::vector<T> owned_;
  std::shared_ptr<const void> keepalive_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool borrowed_ = false;
};

}  // namespace gorder

#endif  // GORDER_UTIL_ARRAY_REF_H_
