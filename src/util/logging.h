#ifndef GORDER_UTIL_LOGGING_H_
#define GORDER_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace gorder::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace gorder::internal_logging

/// Always-on invariant check. Used for programmer errors that must never
/// happen in a correct program (corrupt CSR, invalid permutation, ...).
/// The library deliberately aborts rather than throwing: these are logic
/// bugs, not recoverable conditions.
#define GORDER_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gorder::internal_logging::CheckFailed(__FILE__, __LINE__,      \
                                              #expr);                  \
    }                                                                  \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define GORDER_DCHECK(expr) GORDER_CHECK(expr)
#else
#define GORDER_DCHECK(expr) \
  do {                      \
  } while (0)
#endif

#endif  // GORDER_UTIL_LOGGING_H_
