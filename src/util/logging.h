#ifndef GORDER_UTIL_LOGGING_H_
#define GORDER_UTIL_LOGGING_H_

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gorder::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace gorder::internal_logging

namespace gorder {

/// Levelled progress logging for the bench/CLI narration that used to be
/// ad-hoc fprintf(stderr, ...). All narration goes to stderr so it never
/// interleaves with table/CSV data on stdout. Level comes from the
/// GORDER_LOG environment variable (quiet|info|debug, default info) and
/// can be overridden programmatically (`--quiet` maps to kQuiet).
enum class LogLevel : int { kQuiet = 0, kInfo = 1, kDebug = 2 };

namespace internal_logging {

inline std::atomic<int>& LogLevelVar() {
  static std::atomic<int> level{-1};  // -1 = not yet resolved from env
  return level;
}

inline int ResolveLogLevelFromEnv() {
  const char* env = std::getenv("GORDER_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "quiet") == 0 || std::strcmp(env, "off") == 0) {
    return static_cast<int>(LogLevel::kQuiet);
  }
  if (std::strcmp(env, "debug") == 0) {
    return static_cast<int>(LogLevel::kDebug);
  }
  return static_cast<int>(LogLevel::kInfo);
}

__attribute__((format(printf, 1, 2))) inline void LogRaw(const char* fmt,
                                                         ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
}

}  // namespace internal_logging

inline LogLevel CurrentLogLevel() {
  int level = internal_logging::LogLevelVar().load(std::memory_order_relaxed);
  if (level < 0) {
    level = internal_logging::ResolveLogLevelFromEnv();
    internal_logging::LogLevelVar().store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

inline void SetLogLevel(LogLevel level) {
  internal_logging::LogLevelVar().store(static_cast<int>(level),
                                        std::memory_order_relaxed);
}

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(CurrentLogLevel()) >= static_cast<int>(level);
}

}  // namespace gorder

/// Progress narration (stderr). INFO is on by default; DEBUG needs
/// GORDER_LOG=debug. Both are silenced by --quiet / GORDER_LOG=quiet.
#define GORDER_LOG_INFO(...)                                      \
  do {                                                            \
    if (::gorder::LogEnabled(::gorder::LogLevel::kInfo)) {        \
      ::gorder::internal_logging::LogRaw(__VA_ARGS__);            \
    }                                                             \
  } while (0)

#define GORDER_LOG_DEBUG(...)                                     \
  do {                                                            \
    if (::gorder::LogEnabled(::gorder::LogLevel::kDebug)) {       \
      ::gorder::internal_logging::LogRaw(__VA_ARGS__);            \
    }                                                             \
  } while (0)

/// Always-on invariant check. Used for programmer errors that must never
/// happen in a correct program (corrupt CSR, invalid permutation, ...).
/// The library deliberately aborts rather than throwing: these are logic
/// bugs, not recoverable conditions.
#define GORDER_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gorder::internal_logging::CheckFailed(__FILE__, __LINE__,      \
                                              #expr);                  \
    }                                                                  \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define GORDER_DCHECK(expr) GORDER_CHECK(expr)
#else
#define GORDER_DCHECK(expr) \
  do {                      \
  } while (0)
#endif

#endif  // GORDER_UTIL_LOGGING_H_
