#include "util/table.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gorder {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  GORDER_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  GORDER_CHECK(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(width[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::size_t total = header_.size() - 1;
  for (auto w : width) total += w + 1;
  std::string sep(total, '-');
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string TablePrinter::Duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  }
  return buf;
}

std::string TablePrinter::Count(double value) {
  char buf[64];
  if (value < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else if (value < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fK", value / 1e3);
  } else if (value < 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fM", value / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fG", value / 1e9);
  }
  return buf;
}

}  // namespace gorder
