#ifndef GORDER_UTIL_FLAGS_H_
#define GORDER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gorder {

/// Strict base-10 integer parse: the whole string must be a number (no
/// empty input, no trailing garbage, no overflow). Returns false without
/// touching *out on failure. Shared by the flag parser and by env-var
/// consumers like GORDER_THREADS so every numeric knob rejects typos the
/// same way instead of silently truncating ("4x" -> 4).
bool ParseInt64(const std::string& text, std::int64_t* out);

/// Tiny `--key=value` / `--flag` command-line parser for the benchmark and
/// example binaries. Unknown positional arguments are rejected so typos in
/// experiment scripts fail loudly instead of silently running defaults —
/// and so are malformed numeric values: `--threads=4x` exits with a clear
/// error instead of being truncated to 4.
class Flags {
 public:
  /// Parses argv. Aborts with a usage message on malformed input.
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& def) const;
  /// Numeric getters exit(2) with a diagnostic if the value is present
  /// but not fully parseable (empty, non-numeric, trailing garbage).
  std::int64_t GetInt(const std::string& key, std::int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  /// Comma-separated integer list, e.g. `--threads=1,2,8`. Every element
  /// is parsed strictly; empty elements are rejected.
  std::vector<int> GetIntList(const std::string& key,
                              const std::vector<int>& def) const;

  /// All parsed `--key=value` pairs verbatim (bare `--flag` maps to "").
  /// Run reports embed this so a result file is self-describing.
  const std::map<std::string, std::string>& Raw() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gorder

#endif  // GORDER_UTIL_FLAGS_H_
