#include "util/crc32.h"

#include <array>

namespace gorder {

namespace {

/// Slice-by-4 lookup tables, generated once at first use. Table 0 is the
/// classic byte-at-a-time table; tables 1..3 fold in the CRC of a zero
/// byte appended 1..3 times, letting the hot loop consume 4 bytes per
/// iteration (~4x the throughput of the naive loop, which matters when a
/// pack write checksums hundreds of MB of CSR data).
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables* tables = new Crc32Tables;
  return *tables;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (len >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
    c = t[3][c & 0xFFu] ^ t[2][(c >> 8) & 0xFFu] ^ t[1][(c >> 16) & 0xFFu] ^
        t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace gorder
