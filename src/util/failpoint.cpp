#include "util/failpoint.h"

#if defined(GORDER_FAILPOINTS_ENABLED)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace gorder::util {

namespace internal {

/// Per-point state. Leaked intentionally (handles embedded in IO paths
/// must outlive static destruction, same policy as the obs registry).
struct FailpointState {
  std::string name;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
  // Armed spec. kind == kNone means disarmed; nth is the 1-based hit
  // ordinal (counted from arming) that fires; sticky fires on every hit
  // >= nth instead of exactly the nth.
  std::atomic<int> kind{0};
  std::atomic<std::uint64_t> nth{1};
  std::atomic<bool> sticky{false};
  // obs mirror (registered lazily so GORDER_OBS=off builds stay clean).
  obs::Counter* obs_hits = nullptr;
  obs::Counter* obs_fires = nullptr;
};

}  // namespace internal

namespace {

using internal::FailpointState;

struct ArmedSpec {
  FaultKind kind = FaultKind::kError;
  std::uint64_t nth = 1;
  bool sticky = false;
};

/// Registry of every failpoint ever defined, plus specs parsed before
/// their point registered (env specs are read during static init, and
/// TU initialisation order is unspecified).
struct Registry {
  std::mutex mu;
  std::map<std::string, FailpointState*> points;
  std::map<std::string, ArmedSpec> pending;

  static Registry& Get() {
    static Registry* r = new Registry;
    return *r;
  }
};

void Apply(FailpointState* state, const ArmedSpec& spec) {
  state->hits.store(0, std::memory_order_relaxed);
  state->nth.store(spec.nth, std::memory_order_relaxed);
  state->sticky.store(spec.sticky, std::memory_order_relaxed);
  state->kind.store(static_cast<int>(spec.kind), std::memory_order_relaxed);
}

bool ParseKind(const std::string& s, FaultKind* out) {
  if (s == "err") *out = FaultKind::kError;
  else if (s == "short") *out = FaultKind::kShort;
  else if (s == "enospc") *out = FaultKind::kEnospc;
  else if (s == "oom") *out = FaultKind::kOom;
  else return false;
  return true;
}

/// Parses one `name=kind[@N[+]]` entry. Returns false with a message on
/// malformed input.
bool ParseEntry(const std::string& entry, std::string* name, ArmedSpec* spec,
                std::string* error) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "failpoint spec '" + entry + "' is not name=kind[@N[+]]";
    return false;
  }
  *name = entry.substr(0, eq);
  std::string rhs = entry.substr(eq + 1);
  *spec = ArmedSpec{};
  const std::size_t at = rhs.find('@');
  if (at != std::string::npos) {
    std::string count = rhs.substr(at + 1);
    rhs = rhs.substr(0, at);
    if (!count.empty() && count.back() == '+') {
      spec->sticky = true;
      count.pop_back();
    }
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      *error = "failpoint spec '" + entry + "': '@" + count +
               "' is not a positive hit count";
      return false;
    }
    spec->nth = std::strtoull(count.c_str(), nullptr, 10);
    if (spec->nth == 0) {
      *error = "failpoint spec '" + entry + "': hit count must be >= 1";
      return false;
    }
  }
  if (!ParseKind(rhs, &spec->kind)) {
    *error = "failpoint spec '" + entry + "': unknown kind '" + rhs +
             "' (want err|short|enospc|oom)";
    return false;
  }
  return true;
}

bool ParseSpec(const std::string& spec,
               std::vector<std::pair<std::string, ArmedSpec>>* out,
               std::string* error) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t sep = spec.find_first_of(";,", pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string entry = spec.substr(pos, sep - pos);
    if (!entry.empty()) {
      std::string name;
      ArmedSpec armed;
      if (!ParseEntry(entry, &name, &armed, error)) return false;
      out->emplace_back(std::move(name), armed);
    }
    pos = sep + 1;
  }
  return true;
}

/// Env arming: GORDER_FAILPOINTS is parsed once, when the first
/// failpoint registers (i.e. during static init). Points that register
/// later pick their spec up from the pending map; a malformed spec
/// aborts immediately so a typo'd test run cannot silently inject
/// nothing.
void LoadEnvSpecsLocked(Registry& r) {
  static bool loaded = false;
  if (loaded) return;
  loaded = true;
  const char* env = std::getenv("GORDER_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  std::vector<std::pair<std::string, ArmedSpec>> parsed;
  std::string error;
  if (!ParseSpec(env, &parsed, &error)) {
    std::fprintf(stderr, "GORDER_FAILPOINTS: %s\n", error.c_str());
    std::abort();
  }
  for (auto& [name, spec] : parsed) r.pending[name] = spec;
}

}  // namespace

FailpointHandle::FailpointHandle(const char* name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  LoadEnvSpecsLocked(r);
  auto it = r.points.find(name);
  if (it == r.points.end()) {
    auto* state = new FailpointState;
    state->name = name;
    state->obs_hits = &obs::GetCounter(std::string("failpoint.hit.") + name);
    state->obs_fires =
        &obs::GetCounter(std::string("failpoint.fired.") + name);
    it = r.points.emplace(name, state).first;
    auto pending = r.pending.find(name);
    if (pending != r.pending.end()) {
      Apply(state, pending->second);
      r.pending.erase(pending);
    }
  }
  state_ = it->second;
}

FaultKind FailpointHandle::Check() {
  FailpointState& s = *state_;
  const std::uint64_t hit =
      s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  s.obs_hits->Add(1);
  const int kind = s.kind.load(std::memory_order_relaxed);
  if (kind == static_cast<int>(FaultKind::kNone)) return FaultKind::kNone;
  const std::uint64_t nth = s.nth.load(std::memory_order_relaxed);
  const bool fire =
      s.sticky.load(std::memory_order_relaxed) ? hit >= nth : hit == nth;
  if (!fire) return FaultKind::kNone;
  s.fires.fetch_add(1, std::memory_order_relaxed);
  s.obs_fires->Add(1);
  return static_cast<FaultKind>(kind);
}

const std::string& FailpointHandle::name() const { return state_->name; }

bool ArmFailpointsFromSpec(const std::string& spec, std::string* error) {
  std::vector<std::pair<std::string, ArmedSpec>> parsed;
  std::string local_error;
  if (error == nullptr) error = &local_error;
  if (!ParseSpec(spec, &parsed, error)) return false;
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  // Validate every name before arming anything: a spec either applies
  // fully or not at all.
  for (const auto& [name, armed] : parsed) {
    if (r.points.find(name) == r.points.end()) {
      *error = "unknown failpoint '" + name + "' (see RegisteredFailpoints)";
      return false;
    }
  }
  for (const auto& [name, armed] : parsed) Apply(r.points[name], armed);
  return true;
}

bool ArmFailpoint(const std::string& name, FaultKind kind, std::uint64_t nth,
                  bool sticky) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  Apply(it->second, ArmedSpec{kind, nth, sticky});
  return true;
}

void DisarmAllFailpoints() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, state] : r.points) {
    state->kind.store(static_cast<int>(FaultKind::kNone),
                      std::memory_order_relaxed);
  }
  r.pending.clear();
}

void ResetFailpointCounters() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, state] : r.points) {
    state->hits.store(0, std::memory_order_relaxed);
    state->fires.store(0, std::memory_order_relaxed);
  }
}

std::vector<FailpointInfo> SnapshotFailpoints() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<FailpointInfo> out;
  out.reserve(r.points.size());
  for (const auto& [name, state] : r.points) {
    FailpointInfo info;
    info.name = name;
    info.hits = state->hits.load(std::memory_order_relaxed);
    info.fires = state->fires.load(std::memory_order_relaxed);
    info.armed = state->kind.load(std::memory_order_relaxed) !=
                 static_cast<int>(FaultKind::kNone);
    out.push_back(std::move(info));
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::string> RegisteredFailpoints() {
  std::vector<std::string> names;
  for (FailpointInfo& info : SnapshotFailpoints()) {
    names.push_back(std::move(info.name));
  }
  return names;
}

std::vector<std::string> PendingFailpointSpecs() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  for (const auto& [name, spec] : r.pending) names.push_back(name);
  return names;
}

}  // namespace gorder::util

#endif  // GORDER_FAILPOINTS_ENABLED
