#include "harness/ranking.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace gorder::harness {

double RankTable::MeanRank(std::size_t method) const {
  GORDER_CHECK(method < counts.size());
  double sum = 0.0;
  int total = 0;
  for (std::size_t r = 0; r < counts[method].size(); ++r) {
    sum += static_cast<double>(r) * counts[method][r];
    total += counts[method][r];
  }
  return total == 0 ? 0.0 : sum / total;
}

RankTable RankSeries(const std::vector<std::vector<double>>& times,
                     double tie_ratio) {
  RankTable table;
  if (times.empty()) return table;
  const std::size_t num_methods = times[0].size();
  table.counts.assign(num_methods, std::vector<int>(num_methods, 0));
  table.num_series = static_cast<int>(times.size());

  std::vector<std::size_t> idx(num_methods);
  for (const auto& row : times) {
    GORDER_CHECK(row.size() == num_methods);
    double best = *std::min_element(row.begin(), row.end());
    GORDER_CHECK(best > 0.0);
    for (std::size_t i = 0; i < num_methods; ++i) idx[i] = i;
    // Effective value: capped at tie_ratio * best when requested, so all
    // methods beyond the cap collapse into one shared bucket.
    auto value = [&](std::size_t i) {
      double v = row[i];
      if (tie_ratio > 1.0) v = std::min(v, best * tie_ratio);
      return v;
    };
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return value(a) < value(b);
    });
    std::size_t rank = 0;
    for (std::size_t i = 0; i < num_methods; ++i) {
      if (i > 0 && value(idx[i]) > value(idx[i - 1])) rank = i;
      ++table.counts[idx[i]][rank];
    }
  }
  return table;
}

}  // namespace gorder::harness
