#include "harness/experiment.h"

#include <algorithm>

#include "algo/algorithms.h"
#include "algo/traced.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace gorder::harness {

namespace {

constexpr const char* kWorkloadNames[] = {"NQ", "BFS", "DFS", "SCC", "SP",
                                          "PR", "DS", "Kcore", "Diam"};

std::uint64_t FoldDouble(double x) {
  // Quantised fold so results that are equal up to floating noise
  // checksum identically.
  return static_cast<std::uint64_t>(x * 1e9);
}

std::vector<NodeId> MapSources(const std::vector<NodeId>& logical,
                               const std::vector<NodeId>& perm) {
  std::vector<NodeId> mapped;
  mapped.reserve(logical.size());
  for (NodeId s : logical) mapped.push_back(perm[s]);
  return mapped;
}

// Per-workload touch counts: every cache-traced run adds its simulated
// L1 reference count, i.e. the number of graph memory touches the
// workload performed (identical across orderings of the same graph).
GORDER_OBS_COUNTER(c_traced_refs, "workload.traced_refs");
GORDER_OBS_COUNTER(c_runs, "workload.runs");
GORDER_OBS_COUNTER(c_traced_runs, "workload.traced_runs");

}  // namespace

const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload>* kAll = new std::vector<Workload>{
      Workload::kNq, Workload::kBfs, Workload::kDfs,
      Workload::kScc, Workload::kSp, Workload::kPr,
      Workload::kDs, Workload::kKcore, Workload::kDiam};
  return *kAll;
}

const std::string& WorkloadName(Workload w) {
  static const std::vector<std::string>* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const char* n : kWorkloadNames) names->push_back(n);
    return names;
  }();
  return (*kNames)[static_cast<int>(w)];
}

WorkloadConfig MakeDefaultConfig(const Graph& original_graph,
                                 NodeId num_diam_sources,
                                 std::uint64_t seed) {
  WorkloadConfig config;
  const NodeId n = original_graph.NumNodes();
  GORDER_CHECK(n > 0);
  NodeId best = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (original_graph.OutDegree(v) > original_graph.OutDegree(best)) {
      best = v;
    }
  }
  config.sp_source_logical = best;
  Rng rng(seed);
  for (NodeId i = 0; i < num_diam_sources; ++i) {
    config.diam_sources_logical.push_back(
        static_cast<NodeId>(rng.Uniform(n)));
  }
  return config;
}

std::uint64_t RunWorkload(const Graph& graph, Workload workload,
                          const WorkloadConfig& config,
                          const std::vector<NodeId>& perm) {
  GORDER_OBS_SPAN(span, "workload:" + WorkloadName(workload));
  GORDER_OBS_INC(c_runs);
  switch (workload) {
    case Workload::kNq:
      return algo::Nq(graph).checksum;
    case Workload::kBfs: {
      auto r = algo::BfsForest(graph);
      return r.sum_levels + r.num_reached;
    }
    case Workload::kDfs:
      return algo::DfsForest(graph).finish_checksum;
    case Workload::kScc: {
      auto r = algo::Scc(graph);
      return (static_cast<std::uint64_t>(r.num_components) << 32) |
             r.largest_component;
    }
    case Workload::kSp: {
      auto r = algo::Sp(graph, perm[config.sp_source_logical]);
      return (static_cast<std::uint64_t>(r.num_reached) << 32) | r.max_dist;
    }
    case Workload::kPr: {
      auto r = algo::PageRank(graph, config.pagerank_iterations,
                              config.pagerank_damping);
      return FoldDouble(r.total_mass);
    }
    case Workload::kDs:
      return algo::DominatingSet(graph).set_size;
    case Workload::kKcore:
      return algo::KCore(graph).max_core;
    case Workload::kDiam: {
      auto r = algo::Diameter(graph,
                              MapSources(config.diam_sources_logical, perm));
      return r.diameter_estimate;
    }
  }
  GORDER_CHECK(false && "unhandled workload");
  __builtin_unreachable();
}

std::uint64_t RunWorkloadTraced(const Graph& graph, Workload workload,
                                const WorkloadConfig& config,
                                const std::vector<NodeId>& perm,
                                cachesim::CacheHierarchy& caches) {
  GORDER_OBS_SPAN(span, "workload:" + WorkloadName(workload) + ":traced");
  GORDER_OBS_INC(c_traced_runs);
  const std::uint64_t refs_before = caches.stats().l1_refs;
  struct RefDelta {
    cachesim::CacheHierarchy& caches;
    std::uint64_t before;
    ~RefDelta() {
      GORDER_OBS_ADD(c_traced_refs, caches.stats().l1_refs - before);
    }
  } ref_delta{caches, refs_before};
  switch (workload) {
    case Workload::kNq:
      return algo::NqTraced(graph, caches).checksum;
    case Workload::kBfs: {
      auto r = algo::BfsForestTraced(graph, caches);
      return r.sum_levels + r.num_reached;
    }
    case Workload::kDfs:
      return algo::DfsForestTraced(graph, caches).finish_checksum;
    case Workload::kScc: {
      auto r = algo::SccTraced(graph, caches);
      return (static_cast<std::uint64_t>(r.num_components) << 32) |
             r.largest_component;
    }
    case Workload::kSp: {
      auto r =
          algo::SpTraced(graph, perm[config.sp_source_logical], caches);
      return (static_cast<std::uint64_t>(r.num_reached) << 32) | r.max_dist;
    }
    case Workload::kPr: {
      auto r = algo::PageRankTraced(graph, config.pagerank_iterations,
                                    config.pagerank_damping, caches);
      return FoldDouble(r.total_mass);
    }
    case Workload::kDs:
      return algo::DominatingSetTraced(graph, caches).set_size;
    case Workload::kKcore:
      return algo::KCoreTraced(graph, caches).max_core;
    case Workload::kDiam: {
      auto r = algo::DiameterTraced(
          graph, MapSources(config.diam_sources_logical, perm), caches);
      return r.diameter_estimate;
    }
  }
  GORDER_CHECK(false && "unhandled workload");
  __builtin_unreachable();
}

double TimeWorkload(const Graph& graph, Workload workload,
                    const WorkloadConfig& config,
                    const std::vector<NodeId>& perm, int repeats) {
  GORDER_CHECK(repeats >= 1);
  std::vector<double> times;
  times.reserve(repeats);
  volatile std::uint64_t sink = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    sink = sink + RunWorkload(graph, workload, config, perm);
    times.push_back(timer.Seconds());
  }
  (void)sink;
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::vector<double> TimeWorkloadSweep(const Graph& graph, Workload workload,
                                      const WorkloadConfig& config,
                                      const std::vector<NodeId>& perm,
                                      const std::vector<int>& thread_counts,
                                      int repeats) {
  const int previous = NumThreads();
  std::vector<double> times;
  times.reserve(thread_counts.size());
  for (int t : thread_counts) {
    SetNumThreads(t);
    times.push_back(TimeWorkload(graph, workload, config, perm, repeats));
  }
  SetNumThreads(previous);
  return times;
}

double ModelWorkloadCycles(const Graph& graph, Workload workload,
                           const WorkloadConfig& config,
                           const std::vector<NodeId>& perm,
                           const cachesim::CacheHierarchyConfig& geometry) {
  cachesim::CacheHierarchy caches(geometry);
  RunWorkloadTraced(graph, workload, config, perm, caches);
  return caches.stats().compute_cycles + caches.stats().stall_cycles;
}

}  // namespace gorder::harness
