#ifndef GORDER_HARNESS_EXPERIMENT_H_
#define GORDER_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "cachesim/cache.h"
#include "graph/graph.h"

namespace gorder::harness {

/// The nine timed workloads, in the paper's presentation order
/// (Figure 5 / original Figure 9 rows).
enum class Workload { kNq, kBfs, kDfs, kScc, kSp, kPr, kDs, kKcore, kDiam };

const std::vector<Workload>& AllWorkloads();
const std::string& WorkloadName(Workload w);  // "NQ", "BFS", ...

/// Per-run knobs. Sources are *logical* ids: they refer to nodes of the
/// original graph and are mapped through the ordering permutation, so
/// every ordering does the same logical work.
struct WorkloadConfig {
  int pagerank_iterations = 20;  // paper uses 100; scaled for laptop runs
  double pagerank_damping = 0.85;
  NodeId sp_source_logical = 0;
  std::vector<NodeId> diam_sources_logical;
};

/// Picks canonical logical sources for a graph: the SP source is the
/// max-out-degree node (a well-connected start, stable across orderings)
/// and `num_diam_sources` further sources are drawn with a fixed seed.
WorkloadConfig MakeDefaultConfig(const Graph& original_graph,
                                 NodeId num_diam_sources = 8,
                                 std::uint64_t seed = 7);

/// Runs `workload` on `graph` (already relabelled by `perm`, where
/// `perm[original] = current`). Returns a result checksum — primarily to
/// defeat dead-code elimination, but also compared across orderings by
/// the harness's sanity checks where the workload is order-invariant.
std::uint64_t RunWorkload(const Graph& graph, Workload workload,
                          const WorkloadConfig& config,
                          const std::vector<NodeId>& perm);

/// Cache-traced twin of RunWorkload: replays the same workload through
/// `caches` (which the caller should Flush() beforehand).
std::uint64_t RunWorkloadTraced(const Graph& graph, Workload workload,
                                const WorkloadConfig& config,
                                const std::vector<NodeId>& perm,
                                cachesim::CacheHierarchy& caches);

/// Times `repeats` runs of the workload and returns the median seconds.
double TimeWorkload(const Graph& graph, Workload workload,
                    const WorkloadConfig& config,
                    const std::vector<NodeId>& perm, int repeats = 3);

/// Thread sweep: times the workload at each budget in `thread_counts`
/// (median of `repeats`), restoring the previous global budget before
/// returning. Entries align with `thread_counts`; kernels are
/// bit-identical across the sweep, so only the time varies.
std::vector<double> TimeWorkloadSweep(const Graph& graph, Workload workload,
                                      const WorkloadConfig& config,
                                      const std::vector<NodeId>& perm,
                                      const std::vector<int>& thread_counts,
                                      int repeats = 3);

/// Deterministic runtime model: replays the workload through a fresh
/// cache hierarchy of the given geometry and returns the modelled total
/// cycles (compute + stall). This is the repo's substitute for wall-clock
/// on the paper's testbed: the scaled-down datasets fit inside a modern
/// host's physical caches, so real wall time no longer differentiates
/// orderings, but the modelled cycles — with the matching scaled cache —
/// reproduce the paper's regime exactly and without timer noise.
double ModelWorkloadCycles(const Graph& graph, Workload workload,
                           const WorkloadConfig& config,
                           const std::vector<NodeId>& perm,
                           const cachesim::CacheHierarchyConfig& geometry);

}  // namespace gorder::harness

#endif  // GORDER_HARNESS_EXPERIMENT_H_
