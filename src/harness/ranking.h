#ifndef GORDER_HARNESS_RANKING_H_
#define GORDER_HARNESS_RANKING_H_

#include <vector>

namespace gorder::harness {

/// Rank histogram in the style of the replication's Figure 6: for every
/// experiment series (one algorithm on one dataset), methods are ranked
/// by runtime; `counts[method][rank]` is the number of series in which
/// `method` finished at `rank` (0 = best).
struct RankTable {
  std::vector<std::vector<int>> counts;
  int num_series = 0;

  /// Mean rank of a method across all series (lower is better).
  double MeanRank(std::size_t method) const;
};

/// `times[series][method]`, all rows the same width, strictly positive.
/// Ties: if `tie_ratio > 1`, runtimes within that factor of the series
/// minimum beyond... precisely: any two times a <= b with b / a <=
/// tie_ratio - but transitively applied would merge everything, so the
/// rule actually used (and what the replication's "above 1.5x Gorder is
/// equal" amounts to) is bucketing by ratio-to-best: times with
/// ratio-to-best above `tie_ratio` share the same (worst) rank bucket.
/// Pass 0 for exact ranking. Equal times always share the better rank.
RankTable RankSeries(const std::vector<std::vector<double>>& times,
                     double tie_ratio = 0.0);

}  // namespace gorder::harness

#endif  // GORDER_HARNESS_RANKING_H_
