#ifndef GORDER_STORE_ATOMIC_FILE_H_
#define GORDER_STORE_ATOMIC_FILE_H_

/// Helpers for the write-to-temp-then-rename pattern shared by the
/// gpack and gperm writers. Together they give the usual atomicity
/// story: readers only ever see the old file or the complete new one,
/// concurrent writers never interleave into each other's staging file,
/// and the renamed file survives a crash/power loss once the writer
/// returned success.

#include <cstdio>
#include <string>

namespace gorder::store {

/// Staging path for an atomic write of `path`, unique per writer
/// (pid + an in-process counter), so concurrent writers targeting the
/// same final path each stage to their own file.
std::string StagingPath(const std::string& path);

/// Flushes stdio buffers and fsyncs the file to stable storage.
/// Returns false if either step fails.
bool FlushAndSync(std::FILE* f);

/// Best-effort fsync of the directory containing `path`, making a
/// just-completed rename into that directory durable.
void SyncParentDir(const std::string& path);

}  // namespace gorder::store

#endif  // GORDER_STORE_ATOMIC_FILE_H_
