#include "store/fingerprint.h"

#include <cstdio>

namespace gorder::store {

std::uint64_t GraphFingerprint(const Graph& graph) {
  Hash64 h;
  h.Mix(graph.NumNodes());
  h.Mix(graph.NumEdges());
  for (EdgeId off : graph.out_offsets()) h.Mix(off);
  for (NodeId v : graph.out_neighbors()) h.Mix(v);
  return h.Digest();
}

std::string FingerprintHex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace gorder::store
