#include "store/atomic_file.h"

#include <atomic>
#include <cstdint>
#include <filesystem>

#if defined(__linux__) || defined(__APPLE__)
#define GORDER_STORE_HAS_POSIX_SYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace gorder::store {

std::string StagingPath(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
#ifdef GORDER_STORE_HAS_POSIX_SYNC
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." + std::to_string(seq);
}

bool FlushAndSync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifdef GORDER_STORE_HAS_POSIX_SYNC
  if (::fsync(::fileno(f)) != 0) return false;
#endif
  return true;
}

void SyncParentDir(const std::string& path) {
#ifdef GORDER_STORE_HAS_POSIX_SYNC
  const std::filesystem::path p(path);
  const std::string dir =
      p.has_parent_path() ? p.parent_path().string() : std::string(".");
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace gorder::store
