#include "store/gpack.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <new>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fingerprint.h"
#include "store/mapped_file.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/parallel.h"

namespace gorder::store {

namespace {

GORDER_FAILPOINT_DEFINE(fp_pack_open, "store.pack_write.open");
GORDER_FAILPOINT_DEFINE(fp_pack_write, "store.pack_write.write");
GORDER_FAILPOINT_DEFINE(fp_pack_load_alloc, "store.pack_load.alloc");

// The on-disk layout is little-endian by definition; the structs below
// are written/read as raw bytes, which is only correct on LE hosts.
static_assert(std::endian::native == std::endian::little,
              "gpack I/O assumes a little-endian host");

GORDER_OBS_COUNTER(c_pack_write, "store.pack_write");
GORDER_OBS_COUNTER(c_pack_write_bytes, "store.pack_write_bytes");
GORDER_OBS_COUNTER(c_mmap_load, "store.mmap_load");
GORDER_OBS_COUNTER(c_mmap_load_bytes, "store.mmap_load_bytes");
GORDER_OBS_COUNTER(c_copy_load, "store.copy_load");

constexpr char kMagic[8] = {'G', 'P', 'A', 'C', 'K', 'B', 'I', 'N'};
constexpr std::uint64_t kFlagHasInCsr = 1;
constexpr std::uint32_t kSectionAlign = 64;
constexpr std::uint32_t kMaxSections = 64;

// Section ids, fixed for format version 1.
enum SectionId : std::uint32_t {
  kOutOffsets = 1,
  kOutNeighbors = 2,
  kInOffsets = 3,
  kInNeighbors = 4,
};

struct GpackHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t header_bytes;
  std::uint64_t flags;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t fingerprint;
  std::uint32_t section_count;
  std::uint32_t header_crc;  // CRC32 of header (this field zeroed) + table
  std::uint8_t reserved[8];
};
static_assert(sizeof(GpackHeader) == 64);

struct GpackSectionEntry {
  std::uint32_t id;
  std::uint32_t item_bytes;
  std::uint64_t offset;
  std::uint64_t bytes;
  std::uint32_t crc32;
  std::uint32_t reserved;
};
static_assert(sizeof(GpackSectionEntry) == 32);

const char* SectionName(std::uint32_t id) {
  switch (id) {
    case kOutOffsets: return "out_offsets";
    case kOutNeighbors: return "out_neighbors";
    case kInOffsets: return "in_offsets";
    case kInNeighbors: return "in_neighbors";
    default: return "unknown";
  }
}

std::uint64_t AlignUp(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

/// CRC of the header (crc field zeroed) followed by the section table.
std::uint32_t HeaderCrc(GpackHeader header,
                        const std::vector<GpackSectionEntry>& table) {
  header.header_crc = 0;
  std::uint32_t crc = Crc32(&header, sizeof header);
  return table.empty()
             ? crc
             : Crc32(table.data(), table.size() * sizeof(GpackSectionEntry),
                     crc);
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Streams `bytes` of `data` through fwrite in large chunks.
bool WriteBuffered(std::FILE* f, const void* data, std::uint64_t bytes) {
  constexpr std::uint64_t kChunk = 8ULL << 20;
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    std::size_t step = static_cast<std::size_t>(std::min(bytes, kChunk));
    if (GORDER_FAULT_IO(fp_pack_write, step, std::fwrite(p, 1, step, f)) !=
        step) {
      return false;
    }
    p += step;
    bytes -= step;
  }
  return true;
}

bool WriteZeros(std::FILE* f, std::uint64_t bytes) {
  char zeros[kSectionAlign] = {};
  while (bytes > 0) {
    std::size_t step = static_cast<std::size_t>(
        std::min<std::uint64_t>(bytes, sizeof zeros));
    if (GORDER_FAULT_IO(fp_pack_write, step, std::fwrite(zeros, 1, step, f)) !=
        step) {
      return false;
    }
    bytes -= step;
  }
  return true;
}

/// Validated view of a pack file: header, table and section extents all
/// checked against the mapped size. Populated by ParseAndCheck.
struct PackView {
  GpackHeader header;
  std::vector<GpackSectionEntry> table;
  // Section payloads by id (index 0 unused), bounds-checked.
  const std::byte* payload[5] = {};
};

/// Parses and validates everything except the payload CRCs (those are an
/// O(data) scan, done separately so ReadPackInfo stays cheap). Any
/// failure returns a clean diagnostic; no out-of-bounds reads happen on
/// the way (every access is preceded by a size check).
IoResult ParseAndCheck(const std::string& path, const MappedFile& file,
                       PackView* view) {
  const std::byte* base = file.data();
  const std::uint64_t size = file.size();
  if (size < sizeof(GpackHeader)) {
    return IoResult::Error(path + ": truncated gpack (no header)");
  }
  std::memcpy(&view->header, base, sizeof(GpackHeader));
  const GpackHeader& h = view->header;
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    return IoResult::Error(path + ": bad magic (not a gpack file)");
  }
  if (h.format_version != kGpackFormatVersion) {
    return IoResult::Error(
        path + ": gpack format version " + std::to_string(h.format_version) +
        " not supported (this build reads version " +
        std::to_string(kGpackFormatVersion) + ")");
  }
  if (h.header_bytes != sizeof(GpackHeader)) {
    return IoResult::Error(path + ": unexpected header size");
  }
  if (h.section_count == 0 || h.section_count > kMaxSections) {
    return IoResult::Error(path + ": implausible section count");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(h.section_count) * sizeof(GpackSectionEntry);
  if (size < sizeof(GpackHeader) + table_bytes) {
    return IoResult::Error(path + ": truncated gpack (no section table)");
  }
  view->table.resize(h.section_count);
  std::memcpy(view->table.data(), base + sizeof(GpackHeader),
              static_cast<std::size_t>(table_bytes));
  if (HeaderCrc(h, view->table) != h.header_crc) {
    return IoResult::Error(path + ": header checksum mismatch (corrupt)");
  }
  if (h.num_nodes > 0xFFFFFFFFULL) {
    return IoResult::Error(path + ": node count exceeds 32-bit id space");
  }
  // Bound num_edges by the file size before it enters any size
  // arithmetic: an unchecked 2^62 would wrap `items * item_bytes` below,
  // let zero-length neighbor sections pass, and the CSR scan would then
  // read far past the mapping. (num_nodes is already capped above, so
  // (n + 1) * sizeof(EdgeId) cannot wrap.)
  if (h.num_edges > size / sizeof(NodeId)) {
    return IoResult::Error(path + ": edge count implausible for file size");
  }
  if ((h.flags & kFlagHasInCsr) == 0) {
    return IoResult::Error(path + ": pack lacks the in-CSR (flag unset)");
  }

  const std::uint64_t n = h.num_nodes;
  const std::uint64_t m = h.num_edges;
  struct Expected {
    std::uint32_t id;
    std::uint32_t item_bytes;
    std::uint64_t items;
  };
  const Expected expected[4] = {
      {kOutOffsets, sizeof(EdgeId), n + 1},
      {kOutNeighbors, sizeof(NodeId), m},
      {kInOffsets, sizeof(EdgeId), n + 1},
      {kInNeighbors, sizeof(NodeId), m},
  };
  for (const Expected& want : expected) {
    const GpackSectionEntry* entry = nullptr;
    for (const GpackSectionEntry& e : view->table) {
      if (e.id == want.id) {
        if (entry != nullptr) {
          return IoResult::Error(path + ": duplicate section " +
                                 SectionName(want.id));
        }
        entry = &e;
      }
    }
    if (entry == nullptr) {
      return IoResult::Error(path + ": missing section " +
                             SectionName(want.id));
    }
    if (entry->item_bytes != want.item_bytes ||
        entry->bytes != want.items * want.item_bytes) {
      return IoResult::Error(path + ": section " + SectionName(want.id) +
                             " has inconsistent size");
    }
    if (entry->offset % want.item_bytes != 0) {
      return IoResult::Error(path + ": section " + SectionName(want.id) +
                             " is misaligned");
    }
    if (entry->offset > size || entry->bytes > size - entry->offset) {
      return IoResult::Error(path + ": section " + SectionName(want.id) +
                             " extends past end of file (truncated?)");
    }
    view->payload[want.id] = base + entry->offset;
  }
  return IoResult::Ok();
}

/// Verifies the payload CRCs of the four CSR sections (parallel across
/// sections).
IoResult CheckSectionCrcs(const std::string& path, const MappedFile& file,
                          const PackView& view) {
  std::atomic<const char*> bad{nullptr};
  auto check = [&](std::uint32_t id) {
    for (const GpackSectionEntry& e : view.table) {
      if (e.id != id) continue;
      if (Crc32(file.data() + e.offset,
                static_cast<std::size_t>(e.bytes)) != e.crc32) {
        bad.store(SectionName(id), std::memory_order_relaxed);
      }
      return;
    }
  };
  ParallelInvoke([&] { check(kOutOffsets); }, [&] { check(kOutNeighbors); },
                 [&] { check(kInOffsets); }, [&] { check(kInNeighbors); });
  if (const char* name = bad.load()) {
    return IoResult::Error(path + ": section " + name +
                           " checksum mismatch (corrupt)");
  }
  return IoResult::Ok();
}

/// Deep CSR validation of one side: offsets start at 0, end at m, are
/// monotone; neighbour lists are sorted ascending with all ids < n.
/// Guarantees every later array access in the algorithms stays in
/// bounds.
bool ValidCsrSide(std::uint64_t n, std::uint64_t m, const EdgeId* offsets,
                  const NodeId* neigh) {
  if (offsets[0] != 0 || offsets[n] != m) return false;
  std::atomic<bool> ok{true};
  ParallelFor(0, static_cast<std::size_t>(n), 1 << 12,
              [&](std::size_t b, std::size_t e) {
                bool good = true;
                for (std::size_t v = b; v < e && good; ++v) {
                  const EdgeId lo = offsets[v], hi = offsets[v + 1];
                  if (lo > hi || hi > m) {
                    good = false;
                    break;
                  }
                  for (EdgeId i = lo; i < hi; ++i) {
                    if (neigh[i] >= n || (i > lo && neigh[i] < neigh[i - 1])) {
                      good = false;
                      break;
                    }
                  }
                }
                if (!good) ok.store(false, std::memory_order_relaxed);
              });
  return ok.load();
}

IoResult CheckCsrInvariants(const std::string& path, const PackView& view) {
  const std::uint64_t n = view.header.num_nodes;
  const std::uint64_t m = view.header.num_edges;
  const auto* out_off = reinterpret_cast<const EdgeId*>(view.payload[kOutOffsets]);
  const auto* out_nbr = reinterpret_cast<const NodeId*>(view.payload[kOutNeighbors]);
  const auto* in_off = reinterpret_cast<const EdgeId*>(view.payload[kInOffsets]);
  const auto* in_nbr = reinterpret_cast<const NodeId*>(view.payload[kInNeighbors]);
  if (!ValidCsrSide(n, m, out_off, out_nbr)) {
    return IoResult::Error(path + ": out-CSR violates format invariants");
  }
  if (!ValidCsrSide(n, m, in_off, in_nbr)) {
    return IoResult::Error(path + ": in-CSR violates format invariants");
  }
  return IoResult::Ok();
}

}  // namespace

GpackLayout ComputeGpackLayout(std::uint64_t num_nodes,
                               std::uint64_t num_edges) {
  const std::uint64_t off_bytes = (num_nodes + 1) * sizeof(EdgeId);
  const std::uint64_t nbr_bytes = num_edges * sizeof(NodeId);
  GpackLayout layout;
  std::uint64_t offset = AlignUp(
      sizeof(GpackHeader) + 4 * sizeof(GpackSectionEntry), kSectionAlign);
  layout.out_offsets = offset;
  offset = AlignUp(offset + off_bytes, kSectionAlign);
  layout.out_neighbors = offset;
  offset = AlignUp(offset + nbr_bytes, kSectionAlign);
  layout.in_offsets = offset;
  offset = AlignUp(offset + off_bytes, kSectionAlign);
  layout.in_neighbors = offset;
  // Like WritePack, the file ends at the last payload byte — padding is
  // only ever written ahead of a section.
  layout.file_bytes = offset + nbr_bytes;
  return layout;
}

std::string SerializeGpackHeader(std::uint64_t num_nodes,
                                 std::uint64_t num_edges,
                                 std::uint64_t fingerprint,
                                 const std::uint32_t crcs[4]) {
  const GpackLayout layout = ComputeGpackLayout(num_nodes, num_edges);
  const std::uint64_t off_bytes = (num_nodes + 1) * sizeof(EdgeId);
  const std::uint64_t nbr_bytes = num_edges * sizeof(NodeId);

  GpackHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.format_version = kGpackFormatVersion;
  header.header_bytes = sizeof(GpackHeader);
  header.flags = kFlagHasInCsr;
  header.num_nodes = num_nodes;
  header.num_edges = num_edges;
  header.fingerprint = fingerprint;
  header.section_count = 4;

  std::vector<GpackSectionEntry> table(4);
  const struct {
    std::uint32_t id;
    std::uint32_t item_bytes;
    std::uint64_t offset;
    std::uint64_t bytes;
  } sections[4] = {
      {kOutOffsets, sizeof(EdgeId), layout.out_offsets, off_bytes},
      {kOutNeighbors, sizeof(NodeId), layout.out_neighbors, nbr_bytes},
      {kInOffsets, sizeof(EdgeId), layout.in_offsets, off_bytes},
      {kInNeighbors, sizeof(NodeId), layout.in_neighbors, nbr_bytes},
  };
  for (std::size_t i = 0; i < 4; ++i) {
    table[i].id = sections[i].id;
    table[i].item_bytes = sections[i].item_bytes;
    table[i].offset = sections[i].offset;
    table[i].bytes = sections[i].bytes;
    table[i].crc32 = crcs[i];
    table[i].reserved = 0;
  }
  header.header_crc = HeaderCrc(header, table);

  std::string out(sizeof(GpackHeader) + 4 * sizeof(GpackSectionEntry), '\0');
  std::memcpy(out.data(), &header, sizeof header);
  std::memcpy(out.data() + sizeof header, table.data(),
              4 * sizeof(GpackSectionEntry));
  return out;
}

IoResult WritePack(const std::string& path, const Graph& graph) {
  GORDER_OBS_SPAN(span, "store.pack_write");
  const std::uint64_t n = graph.NumNodes();
  const std::uint64_t m = graph.NumEdges();

  GpackHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.format_version = kGpackFormatVersion;
  header.header_bytes = sizeof(GpackHeader);
  header.flags = kFlagHasInCsr;
  header.num_nodes = n;
  header.num_edges = m;
  header.section_count = 4;

  struct Payload {
    std::uint32_t id;
    std::uint32_t item_bytes;
    const void* data;
    std::uint64_t bytes;
  };
  const Payload payloads[4] = {
      {kOutOffsets, sizeof(EdgeId), graph.out_offsets().data(),
       graph.out_offsets().size() * sizeof(EdgeId)},
      {kOutNeighbors, sizeof(NodeId), graph.out_neighbors().data(),
       graph.out_neighbors().size() * sizeof(NodeId)},
      {kInOffsets, sizeof(EdgeId), graph.in_offsets().data(),
       graph.in_offsets().size() * sizeof(EdgeId)},
      {kInNeighbors, sizeof(NodeId), graph.in_neighbors().data(),
       graph.in_neighbors().size() * sizeof(NodeId)},
  };

  // Fingerprint and the four payload CRCs are independent scans; run them
  // concurrently on the shared pool.
  std::vector<GpackSectionEntry> table(4);
  std::uint64_t offset =
      AlignUp(sizeof(GpackHeader) + table.size() * sizeof(GpackSectionEntry),
              kSectionAlign);
  for (std::size_t i = 0; i < 4; ++i) {
    table[i].id = payloads[i].id;
    table[i].item_bytes = payloads[i].item_bytes;
    table[i].offset = offset;
    table[i].bytes = payloads[i].bytes;
    table[i].reserved = 0;
    offset = AlignUp(offset + payloads[i].bytes, kSectionAlign);
  }
  ParallelInvoke(
      [&] { header.fingerprint = GraphFingerprint(graph); },
      [&] {
        table[0].crc32 = Crc32(payloads[0].data, payloads[0].bytes);
        table[1].crc32 = Crc32(payloads[1].data, payloads[1].bytes);
      },
      [&] {
        table[2].crc32 = Crc32(payloads[2].data, payloads[2].bytes);
        table[3].crc32 = Crc32(payloads[3].data, payloads[3].bytes);
      });
  header.header_crc = HeaderCrc(header, table);

  // Stage to a writer-unique temp file next to the target, fsync, and
  // rename on success: a crashed or concurrent writer can never leave a
  // half-written pack under the final name, and the rename only happens
  // once the bytes are on stable storage.
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = util::StagingPath(path);
  if (GORDER_FAILPOINT(fp_pack_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + tmp + " for writing");
  }
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return IoResult::Error("cannot open " + tmp + " for writing");
    bool ok = GORDER_FAULT_IO(fp_pack_write, 1,
                              std::fwrite(&header, sizeof header, 1,
                                          f.get())) == 1 &&
              GORDER_FAULT_IO(fp_pack_write, table.size(),
                              std::fwrite(table.data(),
                                          sizeof(GpackSectionEntry),
                                          table.size(), f.get())) ==
                  table.size();
    std::uint64_t pos =
        sizeof(GpackHeader) + table.size() * sizeof(GpackSectionEntry);
    for (std::size_t i = 0; ok && i < 4; ++i) {
      ok = WriteZeros(f.get(), table[i].offset - pos) &&
           WriteBuffered(f.get(), payloads[i].data, payloads[i].bytes);
      pos = table[i].offset + table[i].bytes;
    }
    if (!ok || !util::FlushAndSync(f.get())) {
      f.reset();
      std::filesystem::remove(tmp, ec);
      return IoResult::Error("short write to " + tmp);
    }
  }
  if (IoResult r = util::CommitStagedFile(tmp, path); !r.ok) return r;
  GORDER_OBS_INC(c_pack_write);
  GORDER_OBS_ADD(c_pack_write_bytes, offset);
  return IoResult::Ok();
}

IoResult LoadPack(const std::string& path, Graph* graph, LoadMode mode) {
  GORDER_OBS_SPAN(span, "store.mmap_load");
  std::shared_ptr<MappedFile> file;
  IoResult r = MappedFile::Map(path, &file);
  if (!r.ok) return r;
  PackView view;
  if (r = ParseAndCheck(path, *file, &view); !r.ok) return r;
  if (r = CheckSectionCrcs(path, *file, view); !r.ok) return r;
  if (r = CheckCsrInvariants(path, view); !r.ok) return r;

  const auto n = static_cast<NodeId>(view.header.num_nodes);
  const auto n_off = static_cast<std::size_t>(view.header.num_nodes) + 1;
  const std::uint64_t m = view.header.num_edges;
  const auto* out_off = reinterpret_cast<const EdgeId*>(view.payload[kOutOffsets]);
  const auto* out_nbr = reinterpret_cast<const NodeId*>(view.payload[kOutNeighbors]);
  const auto* in_off = reinterpret_cast<const EdgeId*>(view.payload[kInOffsets]);
  const auto* in_nbr = reinterpret_cast<const NodeId*>(view.payload[kInNeighbors]);
  const auto count = static_cast<std::size_t>(m);

  if (mode == LoadMode::kMmap) {
    *graph = Graph::FromMapped(
        n, ArrayRef<EdgeId>(out_off, n_off, file),
        ArrayRef<NodeId>(out_nbr, count, file),
        ArrayRef<EdgeId>(in_off, n_off, file),
        ArrayRef<NodeId>(in_nbr, count, file));
    GORDER_OBS_INC(c_mmap_load);
    GORDER_OBS_ADD(c_mmap_load_bytes, file->size());
  } else {
    try {
      GORDER_FAULT_ALLOC(fp_pack_load_alloc);
      *graph = Graph::FromMapped(
          n, ArrayRef<EdgeId>(std::vector<EdgeId>(out_off, out_off + n_off)),
          ArrayRef<NodeId>(std::vector<NodeId>(out_nbr, out_nbr + count)),
          ArrayRef<EdgeId>(std::vector<EdgeId>(in_off, in_off + n_off)),
          ArrayRef<NodeId>(std::vector<NodeId>(in_nbr, in_nbr + count)));
    } catch (const std::bad_alloc&) {
      return IoResult::Error(path + ": cannot allocate CSR copy buffers");
    }
    GORDER_OBS_INC(c_copy_load);
  }
  return IoResult::Ok();
}

IoResult ReadPackInfo(const std::string& path, GpackInfo* info) {
  std::shared_ptr<MappedFile> file;
  IoResult r = MappedFile::Map(path, &file);
  if (!r.ok) return r;
  PackView view;
  if (r = ParseAndCheck(path, *file, &view); !r.ok) return r;
  info->format_version = view.header.format_version;
  info->flags = view.header.flags;
  info->num_nodes = view.header.num_nodes;
  info->num_edges = view.header.num_edges;
  info->fingerprint = view.header.fingerprint;
  info->file_bytes = file->size();
  info->sections.clear();
  for (const GpackSectionEntry& e : view.table) {
    info->sections.push_back({SectionName(e.id), e.id, e.item_bytes, e.offset,
                              e.bytes, e.crc32});
  }
  return IoResult::Ok();
}

IoResult VerifyPack(const std::string& path) {
  Graph g;
  IoResult r = LoadPack(path, &g, LoadMode::kMmap);
  if (!r.ok) return r;
  GpackInfo info;
  if (r = ReadPackInfo(path, &info); !r.ok) return r;
  if (GraphFingerprint(g) != info.fingerprint) {
    return IoResult::Error(path +
                           ": content fingerprint mismatch (header does not "
                           "match payload)");
  }
  return IoResult::Ok();
}

}  // namespace gorder::store
