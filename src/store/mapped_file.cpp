#include "store/mapped_file.h"

#include <cstdio>
#include <cstring>

#include "util/failpoint.h"

#if defined(__linux__) || defined(__APPLE__)
#define GORDER_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace gorder::store {

namespace {
GORDER_FAILPOINT_DEFINE(fp_map_open, "store.map.open");
GORDER_FAILPOINT_DEFINE(fp_map_stat, "store.map.stat");
GORDER_FAILPOINT_DEFINE(fp_map_mmap, "store.map.mmap");
}  // namespace

IoResult MappedFile::Map(const std::string& path,
                         std::shared_ptr<MappedFile>* out) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#ifdef GORDER_STORE_HAS_MMAP
  if (GORDER_FAILPOINT(fp_map_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoResult::Error("cannot open " + path);
  struct stat st;
  if (GORDER_FAILPOINT(fp_map_stat) != util::FaultKind::kNone ||
      ::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return IoResult::Error("cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* p = GORDER_FAILPOINT(fp_map_mmap) != util::FaultKind::kNone
                  ? MAP_FAILED
                  : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return IoResult::Error("cannot mmap " + path);
    }
    file->data_ = static_cast<const std::byte*>(p);
  }
  // The mapping outlives the descriptor; close it now.
  ::close(fd);
  file->size_ = size;
  file->mmapped_ = true;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoResult::Error("cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return IoResult::Error("cannot seek " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return IoResult::Error("cannot stat " + path);
  }
  std::rewind(f);
  auto* buf = size > 0 ? new std::byte[static_cast<std::size_t>(size)]
                       : nullptr;
  if (size > 0 && std::fread(buf, 1, static_cast<std::size_t>(size), f) !=
                      static_cast<std::size_t>(size)) {
    delete[] buf;
    std::fclose(f);
    return IoResult::Error("short read from " + path);
  }
  std::fclose(f);
  file->data_ = buf;
  file->size_ = static_cast<std::size_t>(size);
  file->mmapped_ = false;
#endif
  *out = std::move(file);
  return IoResult::Ok();
}

MappedFile::~MappedFile() {
#ifdef GORDER_STORE_HAS_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#else
  delete[] data_;
#endif
}

}  // namespace gorder::store
