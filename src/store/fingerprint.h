#ifndef GORDER_STORE_FINGERPRINT_H_
#define GORDER_STORE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace gorder::store {

/// Streaming 64-bit content hash (splitmix-style mixing per word).
///
/// Environment-independent by construction: values are mixed as logical
/// integers, never as raw memory, so the digest does not depend on
/// endianness, padding, compiler, thread count or pointer width. Used for
/// the gpack graph fingerprint and the ordering-cache parameter hash —
/// both are persisted to disk, so the mixing constants below are part of
/// the on-disk format and must never change without bumping the format
/// version.
class Hash64 {
 public:
  void Mix(std::uint64_t v) {
    state_ += 0x9E3779B97F4A7C15ULL + v;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    digest_ ^= z ^ (z >> 31);
    digest_ *= 0xFF51AFD7ED558CCDULL;
  }

  void MixString(const std::string& s) {
    Mix(s.size());
    for (char c : s) Mix(static_cast<unsigned char>(c));
  }

  std::uint64_t Digest() const {
    std::uint64_t z = digest_ ^ state_;
    z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53ULL;
    return z ^ (z >> 33);
  }

 private:
  std::uint64_t state_ = 0x6A09E667F3BCC908ULL;  // sqrt(2) fractional bits
  std::uint64_t digest_ = 0;
};

/// Content fingerprint of a graph: hashes (n, m) and the out-CSR arrays.
/// The in-CSR is fully determined by the out-CSR (same edge multiset,
/// sorted lists), so hashing one side identifies the graph while halving
/// the cost. Identical for an owned graph and its zero-copy mapped twin.
/// Keys the ordering-artifact cache: an ordering computed for fingerprint
/// F is valid for exactly the graphs with fingerprint F.
std::uint64_t GraphFingerprint(const Graph& graph);

/// Formats a fingerprint the way store paths and diagnostics spell it:
/// 16 lowercase hex digits.
std::string FingerprintHex(std::uint64_t fp);

}  // namespace gorder::store

#endif  // GORDER_STORE_FINGERPRINT_H_
