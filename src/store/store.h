#ifndef GORDER_STORE_STORE_H_
#define GORDER_STORE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/edgelist_io.h"  // IoResult
#include "order/ordering.h"
#include "store/gpack.h"

namespace gorder::store {

/// On-disk artifact store (DESIGN.md §12): dataset gpacks plus an
/// ordering artifact cache, so layouts are built once and amortised
/// across runs — the serving posture the paper's economics assume
/// (ordering cost only pays off across many traversals).
///
/// Layout under the root directory:
///
///   <root>/packs/<dataset>-s<scale>-r<seed>.gpack
///   <root>/orderings/<graph-fingerprint>/<method>-<params-hash>.gperm
///
/// Dataset packs are keyed by the full generation recipe (name, scale,
/// seed) — the triple that makes gen::MakeDataset deterministic.
/// Ordering artifacts are keyed by the *content* fingerprint of the
/// graph plus a hash of every OrderingParams field, so an artifact can
/// never be replayed against a graph or parameterisation it was not
/// computed for; a pack regenerated with a different recipe gets a
/// different fingerprint and the stale orderings are simply never found.
class Store {
 public:
  explicit Store(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  /// Canonical pack path for a generation recipe.
  std::string PackPath(const std::string& dataset, double scale,
                       std::uint64_t seed) const;

  /// Resolves a dataset spec to a Graph through the store: mmap the pack
  /// zero-copy on hit; generate, pack and mmap on miss. Narrates hit or
  /// miss at INFO level. Aborts (like gen::MakeDataset) on an unknown
  /// dataset name — CLI paths should pre-validate with
  /// gen::FindDatasetSpec.
  Graph GetDataset(const std::string& name, double scale, std::uint64_t seed);

  /// Canonical artifact path for an ordering.
  std::string OrderingPath(std::uint64_t graph_fingerprint,
                           order::Method method,
                           const order::OrderingParams& params) const;

  /// A cached permutation plus the wall-clock cost of the original
  /// computation (so warm runs can report how much setup time they
  /// saved).
  struct CachedOrdering {
    std::vector<NodeId> perm;
    double compute_seconds = 0.0;
  };

  /// Looks up a cached ordering. Returns true and fills `out` only when
  /// a valid artifact exists for exactly (fingerprint, method, params)
  /// and holds a permutation of [0, num_nodes). Corrupt or mismatched
  /// artifacts are treated as misses (never an abort).
  bool LoadOrdering(std::uint64_t graph_fingerprint, order::Method method,
                    const order::OrderingParams& params, NodeId num_nodes,
                    CachedOrdering* out);

  /// Persists an ordering artifact (atomic rename, CRC-protected).
  IoResult SaveOrdering(std::uint64_t graph_fingerprint, order::Method method,
                        const order::OrderingParams& params,
                        const std::vector<NodeId>& perm,
                        double compute_seconds);

 private:
  std::string root_;
};

/// Hash of every OrderingParams field plus the method name; part of the
/// .gperm cache key. Any new params field must be added here (changing
/// the hash invalidates old artifacts, which is the safe direction).
std::uint64_t HashOrderingKey(order::Method method,
                              const order::OrderingParams& params);

}  // namespace gorder::store

#endif  // GORDER_STORE_STORE_H_
