#include "store/store.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <new>

#include "gen/datasets.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fingerprint.h"
#include "store/mapped_file.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gorder::store {

namespace {

GORDER_FAILPOINT_DEFINE(fp_ord_open, "store.ordering_write.open");
GORDER_FAILPOINT_DEFINE(fp_ord_write, "store.ordering_write.write");
GORDER_FAILPOINT_DEFINE(fp_ord_close, "store.ordering_write.close");
GORDER_FAILPOINT_DEFINE(fp_ord_load_alloc, "store.ordering_load.alloc");

static_assert(std::endian::native == std::endian::little,
              "gperm I/O assumes a little-endian host");

GORDER_OBS_COUNTER(c_pack_hit, "store.pack_hit");
GORDER_OBS_COUNTER(c_pack_miss, "store.pack_miss");
GORDER_OBS_COUNTER(c_ordering_hit, "store.ordering_hit");
GORDER_OBS_COUNTER(c_ordering_miss, "store.ordering_miss");
GORDER_OBS_COUNTER(c_ordering_write, "store.ordering_write");

constexpr char kGpermMagic[8] = {'G', 'P', 'E', 'R', 'M', 'B', 'I', 'N'};
constexpr std::uint32_t kGpermFormatVersion = 1;

/// .gperm ordering artifact header; the permutation (num_nodes x NodeId)
/// follows immediately.
struct GpermHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t reserved;
  std::uint64_t graph_fingerprint;
  std::uint64_t params_hash;
  std::uint64_t num_nodes;
  double compute_seconds;
  std::uint32_t perm_crc;    // CRC32 of the permutation payload
  std::uint32_t header_crc;  // CRC32 of this header with the field zeroed
};
static_assert(sizeof(GpermHeader) == 56);

std::uint32_t GpermHeaderCrc(GpermHeader h) {
  h.header_crc = 0;
  return Crc32(&h, sizeof h);
}

/// Non-aborting permutation check (CheckPermutation in graph.h aborts;
/// a corrupt cache artifact must degrade to a miss instead).
bool IsPermutation(const std::vector<NodeId>& perm, NodeId n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (NodeId p : perm) {
    if (p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

std::string FormatScale(double scale) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", scale);
  return buf;
}

}  // namespace

std::uint64_t HashOrderingKey(order::Method method,
                              const order::OrderingParams& params) {
  Hash64 h;
  h.MixString(order::MethodName(method));
  h.Mix(params.seed);
  h.Mix(params.window);
  h.Mix(params.gorder_sibling_score ? 1 : 0);
  h.Mix(params.gorder_neighbor_score ? 1 : 0);
  h.Mix(params.gorder_hub_cap);
  h.Mix(params.gorder_lazy_decrements ? 1 : 0);
  h.Mix(params.sa_steps);
  h.Mix(std::bit_cast<std::uint64_t>(params.sa_standard_energy));
  h.Mix(params.sa_local_search ? 1 : 0);
  h.Mix(params.ldg_bin_capacity);
  return h.Digest();
}

std::string Store::PackPath(const std::string& dataset, double scale,
                            std::uint64_t seed) const {
  return root_ + "/packs/" + dataset + "-s" + FormatScale(scale) + "-r" +
         std::to_string(seed) + ".gpack";
}

Graph Store::GetDataset(const std::string& name, double scale,
                        std::uint64_t seed) {
  const std::string path = PackPath(name, scale, seed);
  Graph g;
  if (std::filesystem::exists(path)) {
    Timer timer;
    IoResult r = LoadPack(path, &g, LoadMode::kMmap);
    if (r.ok) {
      GORDER_OBS_INC(c_pack_hit);
      GORDER_LOG_INFO(
          "store: pack hit %s (n=%u m=%llu, mmap %.1f MB in %.1f ms)\n",
          path.c_str(), g.NumNodes(),
          static_cast<unsigned long long>(g.NumEdges()),
          static_cast<double>(g.MemoryBytes()) / (1 << 20),
          timer.Seconds() * 1e3);
      return g;
    }
    // A corrupt or version-skewed pack is a miss: regenerate and
    // overwrite it, but tell the user why.
    GORDER_LOG_INFO("store: discarding unusable pack: %s\n",
                    r.error.c_str());
  }
  GORDER_OBS_INC(c_pack_miss);
  GORDER_LOG_INFO("store: pack miss for %s (scale=%s seed=%llu) — "
                  "generating and packing\n",
                  name.c_str(), FormatScale(scale).c_str(),
                  static_cast<unsigned long long>(seed));
  g = gen::MakeDataset(name, scale, seed);
  IoResult w = WritePack(path, g);
  if (!w.ok) {
    // The store is an accelerator, not a correctness dependency: if the
    // disk is read-only or full, run from the in-memory graph.
    GORDER_LOG_INFO("store: cannot write pack (%s); continuing unpacked\n",
                    w.error.c_str());
  }
  return g;
}

std::string Store::OrderingPath(std::uint64_t graph_fingerprint,
                                order::Method method,
                                const order::OrderingParams& params) const {
  return root_ + "/orderings/" + FingerprintHex(graph_fingerprint) + "/" +
         order::MethodName(method) + "-" +
         FingerprintHex(HashOrderingKey(method, params)) + ".gperm";
}

bool Store::LoadOrdering(std::uint64_t graph_fingerprint,
                         order::Method method,
                         const order::OrderingParams& params, NodeId num_nodes,
                         CachedOrdering* out) {
  GORDER_OBS_SPAN(span, "store.ordering_lookup");
  const std::string path = OrderingPath(graph_fingerprint, method, params);
  std::shared_ptr<MappedFile> file;
  if (!MappedFile::Map(path, &file).ok) {
    GORDER_OBS_INC(c_ordering_miss);
    return false;
  }
  auto miss = [&](const char* why) {
    GORDER_LOG_INFO("store: ignoring ordering artifact %s: %s\n",
                    path.c_str(), why);
    GORDER_OBS_INC(c_ordering_miss);
    return false;
  };
  if (file->size() < sizeof(GpermHeader)) return miss("truncated header");
  GpermHeader h;
  std::memcpy(&h, file->data(), sizeof h);
  if (std::memcmp(h.magic, kGpermMagic, sizeof h.magic) != 0) {
    return miss("bad magic");
  }
  if (h.format_version != kGpermFormatVersion) {
    return miss("format version mismatch");
  }
  if (GpermHeaderCrc(h) != h.header_crc) return miss("header checksum");
  if (h.graph_fingerprint != graph_fingerprint) {
    return miss("graph fingerprint mismatch");
  }
  if (h.params_hash != HashOrderingKey(method, params)) {
    return miss("ordering-params mismatch");
  }
  if (h.num_nodes != num_nodes) return miss("node count mismatch");
  const std::uint64_t perm_bytes = h.num_nodes * sizeof(NodeId);
  if (file->size() - sizeof(GpermHeader) < perm_bytes) {
    return miss("truncated permutation");
  }
  const auto* perm_data =
      reinterpret_cast<const NodeId*>(file->data() + sizeof(GpermHeader));
  if (Crc32(perm_data, static_cast<std::size_t>(perm_bytes)) != h.perm_crc) {
    return miss("permutation checksum");
  }
  try {
    GORDER_FAULT_ALLOC(fp_ord_load_alloc);
    out->perm.assign(perm_data, perm_data + h.num_nodes);
  } catch (const std::bad_alloc&) {
    out->perm.clear();
    return miss("cannot allocate permutation buffer");
  }
  if (!IsPermutation(out->perm, num_nodes)) {
    out->perm.clear();
    return miss("payload is not a permutation");
  }
  out->compute_seconds = h.compute_seconds;
  GORDER_OBS_INC(c_ordering_hit);
  return true;
}

IoResult Store::SaveOrdering(std::uint64_t graph_fingerprint,
                             order::Method method,
                             const order::OrderingParams& params,
                             const std::vector<NodeId>& perm,
                             double compute_seconds) {
  const std::string path = OrderingPath(graph_fingerprint, method, params);
  GpermHeader h = {};
  std::memcpy(h.magic, kGpermMagic, sizeof h.magic);
  h.format_version = kGpermFormatVersion;
  h.graph_fingerprint = graph_fingerprint;
  h.params_hash = HashOrderingKey(method, params);
  h.num_nodes = perm.size();
  h.compute_seconds = compute_seconds;
  h.perm_crc = Crc32(perm.data(), perm.size() * sizeof(NodeId));
  h.header_crc = GpermHeaderCrc(h);

  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = util::StagingPath(path);
  if (GORDER_FAILPOINT(fp_ord_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IoResult::Error("cannot open " + tmp);
  bool ok = GORDER_FAULT_IO(fp_ord_write, 1,
                            std::fwrite(&h, sizeof h, 1, f)) == 1 &&
            (perm.empty() ||
             GORDER_FAULT_IO(fp_ord_write, perm.size(),
                             std::fwrite(perm.data(), sizeof(NodeId),
                                         perm.size(), f)) == perm.size());
  ok = ok && util::FlushAndSync(f);
  ok = GORDER_FAULT_OK(fp_ord_close, std::fclose(f) == 0) && ok;
  if (!ok) {
    std::filesystem::remove(tmp, ec);
    return IoResult::Error("short write to " + tmp);
  }
  if (IoResult r = util::CommitStagedFile(tmp, path); !r.ok) return r;
  GORDER_OBS_INC(c_ordering_write);
  return IoResult::Ok();
}

}  // namespace gorder::store
