#ifndef GORDER_STORE_GPACK_H_
#define GORDER_STORE_GPACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edgelist_io.h"  // IoResult
#include "graph/graph.h"

namespace gorder::store {

/// gpack: the versioned binary CSR graph container (DESIGN.md §12).
///
/// Little-endian layout, 64-byte aligned sections:
///
///   [ 0,  64)  header: magic "GPACKBIN", format version, flags,
///              n, m, content fingerprint, section count, header CRC32
///   [64, ...)  section table: one 32-byte entry per section
///              (id, element width, file offset, byte length, CRC32)
///   aligned    section payloads: out_offsets, out_neighbors,
///              in_offsets, in_neighbors — raw CSR arrays, padded to
///              64-byte boundaries so a zero-copy mmap load can cast
///              them in place.
///
/// The header CRC covers the header and the whole section table; every
/// payload carries its own CRC. A pack either loads fully validated
/// (structure, checksums, CSR invariants — monotone offsets, in-range
/// sorted neighbour lists) or fails with a clean IoResult; no load path
/// reads past the mapped bounds, and corrupt input can never abort or
/// invoke UB.
inline constexpr std::uint32_t kGpackFormatVersion = 1;

/// How LoadPack materialises the CSR arrays.
enum class LoadMode {
  kMmap,  // zero-copy: Graph borrows the mapped sections (default)
  kCopy,  // deep copy into owned vectors (mapping released immediately)
};

struct GpackSectionInfo {
  std::string name;       // "out_offsets", "out_neighbors", ...
  std::uint32_t id = 0;
  std::uint32_t item_bytes = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};

struct GpackInfo {
  std::uint32_t format_version = 0;
  std::uint64_t flags = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t fingerprint = 0;  // GraphFingerprint of the content
  std::uint64_t file_bytes = 0;
  std::vector<GpackSectionInfo> sections;
};

/// Byte layout of a standard four-section pack, computed from (n, m)
/// alone. The in-memory writer (WritePack) and the external-memory
/// builder (src/extmem) both derive their file layout from this, so a
/// pack built out-of-core is byte-identical to one written from an
/// in-memory graph with the same CSR content.
struct GpackLayout {
  std::uint64_t out_offsets = 0;    // file offset of each section payload
  std::uint64_t out_neighbors = 0;
  std::uint64_t in_offsets = 0;
  std::uint64_t in_neighbors = 0;
  std::uint64_t file_bytes = 0;     // total file size (ends at the last
                                    // payload byte, like WritePack)
};
GpackLayout ComputeGpackLayout(std::uint64_t num_nodes,
                               std::uint64_t num_edges);

/// Serialises the 64-byte header plus the four-entry section table for a
/// standard pack — the first 192 bytes of the file. `crcs` are the
/// payload CRC32s in section order (out_offsets, out_neighbors,
/// in_offsets, in_neighbors). Everything between the returned prefix and
/// the first payload (and between payloads) is zero padding.
std::string SerializeGpackHeader(std::uint64_t num_nodes,
                                 std::uint64_t num_edges,
                                 std::uint64_t fingerprint,
                                 const std::uint32_t crcs[4]);

/// Writes `graph` as a gpack at `path` (atomically: staged to a
/// temporary file in the same directory, then renamed). Buffered
/// streaming — the CSR arrays are written in large chunks, never
/// element-at-a-time.
IoResult WritePack(const std::string& path, const Graph& graph);

/// Loads a gpack. kMmap (default) maps the file and hands the Graph
/// borrowed, shared-ownership views of the sections — O(validation), no
/// copies; kCopy materialises owned vectors. Both modes fully validate
/// (header + section CRCs, CSR invariants) before constructing.
IoResult LoadPack(const std::string& path, Graph* graph,
                  LoadMode mode = LoadMode::kMmap);

/// Reads and validates only the header + section table (cheap; does not
/// touch the payloads).
IoResult ReadPackInfo(const std::string& path, GpackInfo* info);

/// Full integrity check: everything LoadPack validates, plus recomputes
/// the content fingerprint and compares it to the header.
IoResult VerifyPack(const std::string& path);

}  // namespace gorder::store

#endif  // GORDER_STORE_GPACK_H_
