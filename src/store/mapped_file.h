#ifndef GORDER_STORE_MAPPED_FILE_H_
#define GORDER_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "graph/edgelist_io.h"  // IoResult

namespace gorder::store {

/// Read-only memory-mapped file with shared ownership.
///
/// The mapping lives until the last shared_ptr to it is dropped; Graph
/// arrays loaded zero-copy from a gpack hold such a pointer as their
/// keep-alive, so closing a Store or dropping the original handle never
/// invalidates a live graph. On platforms without mmap the file is read
/// into a heap buffer instead — same interface, one copy.
class MappedFile {
 public:
  /// Maps `path` read-only. On success `*out` holds the mapping; on
  /// failure returns a descriptive error (missing file, empty file is OK
  /// and yields size() == 0).
  static IoResult Map(const std::string& path,
                      std::shared_ptr<MappedFile>* out);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when backed by a real mmap (false: heap-buffer fallback).
  bool zero_copy() const { return mmapped_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;
};

}  // namespace gorder::store

#endif  // GORDER_STORE_MAPPED_FILE_H_
