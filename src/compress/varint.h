#ifndef GORDER_COMPRESS_VARINT_H_
#define GORDER_COMPRESS_VARINT_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace gorder::compress {

/// LEB128 variable-length integers plus zigzag signed mapping — the
/// building blocks of the gap-encoded adjacency format.

inline void AppendVarint(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Decodes a varint at `pos`, advancing it. Aborts on truncated input
/// (the buffer is produced by this library; corruption is a logic bug).
inline std::uint64_t ReadVarint(const std::vector<std::uint8_t>& buf,
                                std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    GORDER_DCHECK(pos < buf.size());
    std::uint8_t byte = buf[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    GORDER_DCHECK(shift < 64);
  }
  return value;
}

/// Zigzag: maps signed to unsigned so small magnitudes stay small.
inline std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Number of bytes AppendVarint would emit.
inline std::size_t VarintSize(std::uint64_t value) {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

}  // namespace gorder::compress

#endif  // GORDER_COMPRESS_VARINT_H_
