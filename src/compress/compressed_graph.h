#ifndef GORDER_COMPRESS_COMPRESSED_GRAPH_H_
#define GORDER_COMPRESS_COMPRESSED_GRAPH_H_

#include <cstdint>
#include <vector>

#include "compress/varint.h"
#include "graph/graph.h"

namespace gorder::compress {

/// Gap-encoded immutable out-adjacency, in the WebGraph spirit (Boldi &
/// Vigna 2004, the compression scheme the paper's discussion section
/// points at): each node's sorted neighbour list is stored as
///
///   zigzag(first - v) , gap_2 - 1 , gap_3 - 1 , ...
///
/// in LEB128 varints. The encoded size is a direct function of the
/// numbering's locality — exactly what node orderings optimise — so
/// `BitsPerEdge()` doubles as a compression-quality metric for any
/// ordering (see bench/ext_compression and the web_graph_compression
/// example).
///
/// The in-adjacency is not stored; decompress to a `Graph` when both
/// directions are needed. Requires a simple graph (strictly ascending
/// neighbour lists, i.e. no parallel edges), which `Graph::Builder`
/// produces by default.
class CompressedGraph {
 public:
  CompressedGraph() = default;

  /// Encodes the out-adjacency of `graph`.
  static CompressedGraph FromGraph(const Graph& graph);

  NodeId NumNodes() const { return num_nodes_; }
  EdgeId NumEdges() const { return num_edges_; }

  NodeId OutDegree(NodeId v) const { return degree_[v]; }

  /// Streams v's out-neighbours (ascending) into `fn(NodeId)`.
  template <typename Fn>
  void ForEachOutNeighbor(NodeId v, Fn&& fn) const;

  /// Full round-trip back to CSR (loses nothing: lists were sorted).
  Graph Decompress() const;

  /// Encoded payload size (gap bytes only; excludes the offset index).
  std::size_t PayloadBytes() const { return bytes_.size(); }
  /// Total size including the per-node offset/degree index.
  std::size_t TotalBytes() const {
    return bytes_.size() + offsets_.size() * sizeof(std::uint64_t) +
           degree_.size() * sizeof(NodeId);
  }
  double BitsPerEdge() const {
    return num_edges_ == 0
               ? 0.0
               : 8.0 * static_cast<double>(PayloadBytes()) /
                     static_cast<double>(num_edges_);
  }

 private:
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  std::vector<std::uint64_t> offsets_;  // byte offset of each node's run
  std::vector<NodeId> degree_;
  std::vector<std::uint8_t> bytes_;
};

// ---- Implementation of the template member ----

template <typename Fn>
void CompressedGraph::ForEachOutNeighbor(NodeId v, Fn&& fn) const {
  std::size_t pos = offsets_[v];
  NodeId remaining = degree_[v];
  if (remaining == 0) return;
  std::int64_t first =
      static_cast<std::int64_t>(v) + ZigZagDecode(ReadVarint(bytes_, pos));
  auto current = static_cast<NodeId>(first);
  fn(current);
  while (--remaining > 0) {
    current += static_cast<NodeId>(ReadVarint(bytes_, pos)) + 1;
    fn(current);
  }
}

/// PageRank evaluated directly over the compressed representation
/// (push formulation: each node scatters rank/outdeg to its decoded
/// out-neighbours). Demonstrates compute-over-compressed-data — the
/// WebGraph use case the paper's discussion points at — and is
/// numerically identical to algo::PageRank on the decompressed graph.
std::vector<double> PageRankOnCompressed(const CompressedGraph& graph,
                                         int iterations,
                                         double damping = 0.85);

}  // namespace gorder::compress

#endif  // GORDER_COMPRESS_COMPRESSED_GRAPH_H_
