#include "compress/compressed_graph.h"

#include "compress/varint.h"
#include "util/logging.h"

namespace gorder::compress {

CompressedGraph CompressedGraph::FromGraph(const Graph& graph) {
  CompressedGraph cg;
  cg.num_nodes_ = graph.NumNodes();
  cg.num_edges_ = graph.NumEdges();
  cg.offsets_.resize(cg.num_nodes_);
  cg.degree_.resize(cg.num_nodes_);
  cg.bytes_.reserve(graph.NumEdges());  // >= 1 byte per edge lower bound
  for (NodeId v = 0; v < cg.num_nodes_; ++v) {
    cg.offsets_[v] = cg.bytes_.size();
    auto nbrs = graph.OutNeighbors(v);  // sorted ascending by CSR invariant
    cg.degree_[v] = static_cast<NodeId>(nbrs.size());
    if (nbrs.empty()) continue;
    std::int64_t first_gap = static_cast<std::int64_t>(nbrs[0]) -
                             static_cast<std::int64_t>(v);
    AppendVarint(ZigZagEncode(first_gap), cg.bytes_);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      GORDER_DCHECK(nbrs[i] > nbrs[i - 1]);
      AppendVarint(nbrs[i] - nbrs[i - 1] - 1, cg.bytes_);
    }
  }
  return cg;
}

Graph CompressedGraph::Decompress() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    ForEachOutNeighbor(v, [&](NodeId w) { edges.push_back({v, w}); });
  }
  return Graph::FromEdges(num_nodes_, std::move(edges),
                          /*keep_self_loops=*/true,
                          /*keep_duplicates=*/true);
}

std::vector<double> PageRankOnCompressed(const CompressedGraph& graph,
                                         int iterations, double damping) {
  const NodeId n = graph.NumNodes();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / n);
  if (n == 0) return rank;
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      NodeId deg = graph.OutDegree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      double share = rank[u] / deg;
      graph.ForEachOutNeighbor(u, [&](NodeId v) { next[v] += share; });
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (NodeId v = 0; v < n; ++v) {
      rank[v] = base + damping * next[v];
    }
  }
  return rank;
}

}  // namespace gorder::compress
