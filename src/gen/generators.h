#ifndef GORDER_GEN_GENERATORS_H_
#define GORDER_GEN_GENERATORS_H_

#include <functional>

#include "gen/chunked.h"  // chunked/streaming generators (StreamRmat & co.)
#include "graph/graph.h"
#include "util/io_result.h"
#include "util/rng.h"

namespace gorder::gen {

/// G(n, m): m distinct directed edges sampled uniformly. Baseline model
/// with no community structure or degree skew; used in tests and as a
/// worst case for locality orderings. Rejection-sampled with a global
/// dedup set, so it is exact but serial and in-memory — requests denser
/// than half the edge space are rejected up front (the rejection loop
/// degenerates near the density ceiling; stream the complement or use
/// StreamErdosRenyi instead). For 10^8+ edges use StreamErdosRenyi
/// (chunked.h).
Graph ErdosRenyi(NodeId n, EdgeId m, Rng& rng);

/// Directed preferential attachment (Barabasi-Albert flavour): each new
/// node emits `out_k` edges whose targets are chosen proportionally to
/// in-degree + 1, distinct per source (a node never emits two parallel
/// edges in one round, and self-attachment re-samples from the
/// attachment mass, preserving preferential attachment). Produces the
/// skewed in-degree distribution typical of social graphs. Serial; for
/// 10^8+ edges use StreamBarabasiAlbert (chunked.h).
Graph BarabasiAlbert(NodeId n, NodeId out_k, Rng& rng);

/// R-MAT / Kronecker generator (Chakrabarti et al., SDM 2004): samples
/// `m` edges by recursive quadrant descent over a 2^scale x 2^scale
/// adjacency matrix with probabilities (a, b, c, d) and multiplicative
/// noise. The standard stand-in for crawled social networks.
struct RmatParams {
  int scale = 16;          // n = 2^scale
  EdgeId num_edges = 1 << 20;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
};
Graph Rmat(const RmatParams& params, Rng& rng);

// StreamRmat and the other chunked/streaming generators live in
// gen/chunked.h (included above): communication-free per-chunk seeding,
// parallel on the shared pool, bit-identical at any thread count.

namespace internal {
/// One R-MAT edge sample: recursive quadrant descent with
/// multiplicative noise (+-10%) per level, which avoids the degree
/// staircase artefact of noiseless R-MAT. `d = 1 - a - b - c`. Shared
/// by the in-memory and chunked generators.
Edge SampleRmatEdge(const RmatParams& params, double d, Rng& rng);
}  // namespace internal

/// Linear copying model (Kumar et al., FOCS 2000), the classic web-graph
/// model: node i picks a random prototype and copies each of its
/// `out_k` out-links with probability `copy_prob`, otherwise links to a
/// uniform random earlier node. Copying creates many shared-out-neighbour
/// (sibling) pairs — exactly the structure Gorder's Ss term exploits.
Graph CopyingModel(NodeId n, NodeId out_k, double copy_prob, Rng& rng);

/// Watts-Strogatz small world on a directed ring (both directions of each
/// lattice edge emitted, then rewired independently with prob `rewire_p`).
Graph WattsStrogatz(NodeId n, NodeId k, double rewire_p, Rng& rng);

/// Samples n degrees from a discrete power law P(d) ~ d^-exponent over
/// [min_deg, max_deg] by inverse-transform sampling. The standard way to
/// make controlled skewed-degree experiments.
std::vector<NodeId> SamplePowerLawDegrees(NodeId n, double exponent,
                                          NodeId min_deg, NodeId max_deg,
                                          Rng& rng);

/// Directed configuration model: realises the given out- and in-degree
/// sequences (sums must match) by pairing shuffled stubs. Self-loops and
/// parallel edges arising from the pairing are dropped (the standard
/// "erased" configuration model), so realised degrees can undershoot
/// slightly on heavy tails.
Graph DirectedConfigurationModel(const std::vector<NodeId>& out_degrees,
                                 const std::vector<NodeId>& in_degrees,
                                 Rng& rng);

/// Convenience: power-law out- and in-degree sequences (independently
/// sampled, trimmed to a common edge count) through the configuration
/// model — a graph with controlled skew and no community structure.
Graph PowerLawConfigurationGraph(NodeId n, double exponent, NodeId min_deg,
                                 NodeId max_deg, Rng& rng);

/// Planted-partition social model: `num_communities` groups with
/// power-law-ish sizes; each node draws ~`avg_deg` out-edges, each
/// intra-community with probability `1 - mixing`. Gives ground-truth
/// community structure for ordering experiments.
struct PlantedPartitionParams {
  NodeId num_nodes = 10000;
  NodeId num_communities = 50;
  double avg_degree = 12.0;
  double mixing = 0.15;  // fraction of inter-community edges
};
Graph PlantedPartition(const PlantedPartitionParams& params, Rng& rng);

}  // namespace gorder::gen

#endif  // GORDER_GEN_GENERATORS_H_
