#include "gen/datasets.h"

#include <cmath>

#include "gen/crawl_order.h"
#include "gen/generators.h"
#include "util/logging.h"

namespace gorder::gen {

namespace {

std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  // Sizes follow Table 1's ordering (epinion smallest ... sdarc largest)
  // with the absolute range compressed to laptop scale; the inter-dataset
  // size *ratios* are roughly preserved in rank so scalability trends
  // (Table 2) remain visible. Social graphs with strong community
  // structure (pokec, livejournal) use the planted-partition model;
  // follower-style graphs (epinion, flickr, gplus, twitter) use R-MAT;
  // web graphs (wiki, pldarc, sdarc) use the copying model whose shared
  // out-links reproduce hyperlink sibling structure.
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      {"epinion", "social", "rmat", 0.0759, 0.509, 8192, 55000, 0.30},
      {"pokec", "social", "planted", 1.63, 30.6, 16000, 130000, 0.30},
      {"flickr", "social", "rmat", 2.30, 33.1, 16384, 150000, 0.25},
      {"livejournal", "social", "planted", 4.85, 69.0, 24000, 260000, 0.30},
      {"wiki", "web", "copying", 13.6, 437.0, 40000, 560000, 0.12},
      {"gplus", "social", "rmat", 28.9, 463.0, 32768, 620000, 0.25},
      {"pldarc", "web", "copying", 42.9, 623.0, 48000, 700000, 0.12},
      {"twitter", "social", "rmat", 61.6, 1470.0, 65536, 880000, 0.25},
      {"sdarc", "web", "copying", 94.9, 1940.0, 64000, 980000, 0.12},
  };
  return *kSpecs;
}

const std::vector<DatasetSpec>& HugeDatasets() {
  // 10^9 edge attempts over 2^26 nodes at scale 1.0 (avg degree ~16,
  // the regime of the BOBA / lightweight-reordering papers). All three
  // are chunked-streaming generators (gen/chunked.h): they never exist
  // as an in-RAM edge list, only as a deterministic edge stream that
  // feeds extmem::ExtPackBuilder. crawl_jump_prob is unused — huge
  // datasets keep the generator's natural id space.
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      {"rmat-huge", "social", "rmat-stream", 0.0, 0.0, 1u << 26,
       EdgeId{1} << 30, 0.0, DatasetTier::kHuge},
      {"er-huge", "uniform", "er-stream", 0.0, 0.0, 1u << 26,
       EdgeId{1} << 30, 0.0, DatasetTier::kHuge},
      {"ba-huge", "social", "ba-stream", 0.0, 0.0, 1u << 26,
       EdgeId{1} << 30, 0.0, DatasetTier::kHuge},
  };
  return *kSpecs;
}

const DatasetSpec& GetDatasetSpec(const std::string& name) {
  const DatasetSpec* spec = FindDatasetSpec(name);
  GORDER_CHECK(spec != nullptr && "unknown dataset name");
  return *spec;
}

const DatasetSpec* FindDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return &spec;
  }
  for (const DatasetSpec& spec : HugeDatasets()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string DatasetNames() { return DatasetNames(DatasetTier::kStandard); }

std::string DatasetNames(DatasetTier tier) {
  std::string all;
  const auto& specs =
      tier == DatasetTier::kHuge ? HugeDatasets() : AllDatasets();
  for (const DatasetSpec& spec : specs) {
    if (!all.empty()) all += ", ";
    all += spec.name;
  }
  return all;
}

Graph MakeDataset(const std::string& name, double scale, std::uint64_t seed) {
  const DatasetSpec& spec = GetDatasetSpec(name);
  GORDER_CHECK(spec.tier == DatasetTier::kStandard &&
               "huge-tier datasets are stream-only: use StreamDataset / "
               "gorder_cli --cmd=gen --tier=huge --out=<f.gpack>");
  GORDER_CHECK(scale > 0);
  Rng rng(seed ^ HashName(name));
  const auto n = static_cast<NodeId>(
      std::max(64.0, static_cast<double>(spec.sim_nodes) * scale));
  const auto m = static_cast<EdgeId>(
      std::max(128.0, static_cast<double>(spec.sim_edges) * scale));

  Graph g;
  if (spec.generator == "rmat") {
    RmatParams p;
    p.scale = std::max(6, static_cast<int>(std::lround(std::log2(n))));
    p.num_edges = m;
    g = Rmat(p, rng);
  } else if (spec.generator == "planted") {
    PlantedPartitionParams p;
    p.num_nodes = n;
    p.num_communities = std::max<NodeId>(8, n / 250);
    p.avg_degree = static_cast<double>(m) / n;
    p.mixing = 0.15;
    g = PlantedPartition(p, rng);
  } else if (spec.generator == "copying") {
    NodeId out_k = std::max<NodeId>(2, static_cast<NodeId>(m / n));
    g = CopyingModel(n, out_k, /*copy_prob=*/0.6, rng);
  } else {
    GORDER_CHECK(false && "unknown generator kind");
  }

  // Expose ids in noisy-crawl order: this *is* the dataset's "Original"
  // ordering for all downstream experiments.
  std::vector<NodeId> crawl =
      MakeCrawlOrderPermutation(g, spec.crawl_jump_prob, rng);
  return g.Relabel(crawl);
}

IoResult StreamDataset(const std::string& name, double scale,
                       std::uint64_t seed, const ChunkedOptions& options,
                       const EdgeSink& sink, NodeId* num_nodes) {
  const DatasetSpec& spec = GetDatasetSpec(name);
  GORDER_CHECK(spec.tier == DatasetTier::kHuge &&
               "StreamDataset serves huge-tier specs; standard datasets "
               "generate in memory via MakeDataset");
  GORDER_CHECK(scale > 0);
  const std::uint64_t stream_seed = seed ^ HashName(name);
  const auto n = static_cast<NodeId>(
      std::max(64.0, static_cast<double>(spec.sim_nodes) * scale));
  const auto m = static_cast<EdgeId>(
      std::max(128.0, static_cast<double>(spec.sim_edges) * scale));

  if (spec.generator == "rmat-stream") {
    RmatParams p;
    p.scale = std::max(6, static_cast<int>(std::lround(std::log2(n))));
    p.num_edges = m;
    if (num_nodes != nullptr) *num_nodes = NodeId{1} << p.scale;
    return StreamRmat(p, stream_seed, options, sink);
  }
  if (spec.generator == "er-stream") {
    if (num_nodes != nullptr) *num_nodes = n;
    return StreamErdosRenyi(n, m, stream_seed, options, sink);
  }
  if (spec.generator == "ba-stream") {
    const auto out_k = std::max<NodeId>(1, static_cast<NodeId>(m / n));
    if (num_nodes != nullptr) *num_nodes = n;
    return StreamBarabasiAlbert(n, out_k, stream_seed, options, sink);
  }
  GORDER_CHECK(false && "unknown streaming generator kind");
  return IoResult::Error("unreachable");
}

}  // namespace gorder::gen
