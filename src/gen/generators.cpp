#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace gorder::gen {

namespace {

std::uint64_t PackEdge(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

Graph ErdosRenyi(NodeId n, EdgeId m, Rng& rng) {
  GORDER_CHECK(n >= 2);
  // Exact integer feasibility (n <= 2^32-1, so n*(n-1) fits in 64
  // bits): the old double comparison was lossy above 2^53 and let
  // near-infeasible m reach the allocation and rejection loop below.
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  GORDER_CHECK(m <= max_edges && "ErdosRenyi: m exceeds n*(n-1)");
  Graph::Builder builder(n);
  builder.ReserveEdges(m);
  if (m <= max_edges / 2) {
    // Sparse regime: rejection-sample (src, dst) pairs into a dedup
    // set. With m at most half the edge space every draw hits a fresh
    // edge with probability >= 1/2, so expected draws are O(m).
    std::unordered_set<std::uint64_t> seen;
    // Bounded reserve: feasible m can still be huge, and the table
    // grows on demand anyway — never pre-commit multi-GB in one call
    // (the ReadBinary bug class from PR 5).
    seen.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(m * 2, std::uint64_t{1} << 24)));
    while (seen.size() < m) {
      NodeId src = static_cast<NodeId>(rng.Uniform(n));
      NodeId dst = static_cast<NodeId>(rng.Uniform(n));
      if (src == dst) continue;
      if (seen.insert(PackEdge(src, dst)).second) builder.AddEdge(src, dst);
    }
  } else {
    // Dense regime: rejection sampling would coupon-collector-grind
    // near the density ceiling, so sample the complement instead —
    // choose the max_edges - m *holes* (fewer than half the space, so
    // the same O(holes) rejection bound applies) and emit every other
    // index of the self-loop-free edge enumeration
    //   idx -> src = idx / (n-1), dst = r + (r >= src), r = idx % (n-1).
    const std::uint64_t holes = max_edges - m;
    std::unordered_set<std::uint64_t> excluded;
    excluded.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(holes * 2, std::uint64_t{1} << 24)));
    while (excluded.size() < holes) excluded.insert(rng.Uniform(max_edges));
    for (std::uint64_t idx = 0; idx < max_edges; ++idx) {
      if (excluded.count(idx)) continue;
      const NodeId src = static_cast<NodeId>(idx / (n - 1));
      const std::uint64_t r = idx % (n - 1);
      const NodeId dst = static_cast<NodeId>(r + (r >= src ? 1 : 0));
      builder.AddEdge(src, dst);
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(NodeId n, NodeId out_k, Rng& rng) {
  GORDER_CHECK(n > out_k && out_k >= 1);
  Graph::Builder builder(n);
  builder.ReserveEdges(static_cast<std::size_t>(n) * out_k);
  // `targets` holds one entry per (in-degree + 1) unit of attachment mass,
  // so uniform sampling from it is preferential attachment.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(n) * (out_k + 1));
  // Seed clique-ish core of out_k + 1 nodes.
  for (NodeId v = 0; v <= out_k; ++v) {
    for (NodeId w = 0; w <= out_k; ++w) {
      if (v != w) builder.AddEdge(v, w);
    }
    targets.push_back(v);
    targets.push_back(v);  // extra mass for the core
  }
  // Per-source dedup scratch: a node must not emit two parallel edges
  // in one round, or its realised out-degree silently drops when the
  // builder dedups.
  std::vector<NodeId> round;
  round.reserve(out_k);
  for (NodeId v = out_k + 1; v < n; ++v) {
    round.clear();
    for (NodeId e = 0; e < out_k; ++e) {
      // Re-sample from the attachment mass until the target is neither
      // v nor a repeat of this round: a uniform fallback here would
      // bypass preferential attachment. Terminates with probability 1 —
      // the seed core alone provides out_k + 1 distinct candidates.
      NodeId dst;
      do {
        dst = targets[rng.Uniform(targets.size())];
      } while (dst == v ||
               std::find(round.begin(), round.end(), dst) != round.end());
      round.push_back(dst);
      builder.AddEdge(v, dst);
      targets.push_back(dst);
    }
    targets.push_back(v);
  }
  return builder.Build();
}

namespace internal {

Edge SampleRmatEdge(const RmatParams& params, double d, Rng& rng) {
  NodeId src = 0, dst = 0;
  for (int level = 0; level < params.scale; ++level) {
    double na = params.a * (0.9 + 0.2 * rng.UniformDouble());
    double nb = params.b * (0.9 + 0.2 * rng.UniformDouble());
    double nc = params.c * (0.9 + 0.2 * rng.UniformDouble());
    double nd = d * (0.9 + 0.2 * rng.UniformDouble());
    double total = na + nb + nc + nd;
    double r = rng.UniformDouble() * total;
    src <<= 1;
    dst <<= 1;
    if (r < na) {
      // top-left quadrant: no bits set
    } else if (r < na + nb) {
      dst |= 1;
    } else if (r < na + nb + nc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

}  // namespace internal

Graph Rmat(const RmatParams& params, Rng& rng) {
  GORDER_CHECK(params.scale >= 1 && params.scale < 31);
  const double d = 1.0 - params.a - params.b - params.c;
  GORDER_CHECK(d > 0.0);
  const NodeId n = static_cast<NodeId>(1) << params.scale;
  Graph::Builder builder(n);
  builder.ReserveEdges(params.num_edges);
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    const Edge edge = internal::SampleRmatEdge(params, d, rng);
    if (edge.src != edge.dst) builder.AddEdge(edge.src, edge.dst);
  }
  return builder.Build();
}

Graph CopyingModel(NodeId n, NodeId out_k, double copy_prob, Rng& rng) {
  GORDER_CHECK(n > out_k + 1 && out_k >= 1);
  GORDER_CHECK(copy_prob >= 0.0 && copy_prob <= 1.0);
  // Adjacency kept during generation so prototypes can be copied.
  std::vector<std::vector<NodeId>> adj(n);
  const NodeId seed_nodes = out_k + 2;
  for (NodeId v = 0; v < seed_nodes; ++v) {
    for (NodeId e = 1; e <= out_k; ++e) {
      adj[v].push_back((v + e) % seed_nodes);
    }
  }
  for (NodeId v = seed_nodes; v < n; ++v) {
    NodeId proto = static_cast<NodeId>(rng.Uniform(v));
    adj[v].reserve(out_k);
    for (NodeId e = 0; e < out_k; ++e) {
      NodeId dst;
      if (rng.UniformDouble() < copy_prob && e < adj[proto].size()) {
        dst = adj[proto][e];
      } else {
        dst = static_cast<NodeId>(rng.Uniform(v));
      }
      if (dst != v) adj[v].push_back(dst);
    }
  }
  Graph::Builder builder(n);
  builder.ReserveEdges(static_cast<std::size_t>(n) * out_k);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : adj[v]) builder.AddEdge(v, w);
  }
  return builder.Build();
}

Graph WattsStrogatz(NodeId n, NodeId k, double rewire_p, Rng& rng) {
  GORDER_CHECK(n > 2 * k && k >= 1);
  Graph::Builder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId e = 1; e <= k; ++e) {
      NodeId w = (v + e) % n;
      if (rng.UniformDouble() < rewire_p) {
        w = static_cast<NodeId>(rng.Uniform(n));
        if (w == v) w = (v + e) % n;
      }
      builder.AddEdge(v, w);
      builder.AddEdge(w, v);
    }
  }
  return builder.Build();
}

std::vector<NodeId> SamplePowerLawDegrees(NodeId n, double exponent,
                                          NodeId min_deg, NodeId max_deg,
                                          Rng& rng) {
  GORDER_CHECK(min_deg >= 1 && max_deg >= min_deg);
  GORDER_CHECK(exponent > 1.0);
  // Inverse-transform over the continuous power law, rounded down:
  // d = min * (1 - u*(1 - (max/min)^(1-a)))^(1/(1-a)).
  const double a = exponent;
  const double ratio_pow =
      std::pow(static_cast<double>(max_deg) / min_deg, 1.0 - a);
  std::vector<NodeId> degrees(n);
  for (NodeId i = 0; i < n; ++i) {
    double u = rng.UniformDouble();
    double d = min_deg *
               std::pow(1.0 - u * (1.0 - ratio_pow), 1.0 / (1.0 - a));
    degrees[i] = std::min<NodeId>(max_deg,
                                  static_cast<NodeId>(std::floor(d)));
    degrees[i] = std::max(degrees[i], min_deg);
  }
  return degrees;
}

Graph DirectedConfigurationModel(const std::vector<NodeId>& out_degrees,
                                 const std::vector<NodeId>& in_degrees,
                                 Rng& rng) {
  GORDER_CHECK(out_degrees.size() == in_degrees.size());
  const NodeId n = static_cast<NodeId>(out_degrees.size());
  std::vector<NodeId> out_stubs, in_stubs;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId i = 0; i < out_degrees[v]; ++i) out_stubs.push_back(v);
    for (NodeId i = 0; i < in_degrees[v]; ++i) in_stubs.push_back(v);
  }
  GORDER_CHECK(out_stubs.size() == in_stubs.size());
  rng.Shuffle(in_stubs);
  Graph::Builder builder(n);
  builder.ReserveEdges(out_stubs.size());
  for (std::size_t i = 0; i < out_stubs.size(); ++i) {
    builder.AddEdge(out_stubs[i], in_stubs[i]);
  }
  // Builder strips self-loops and duplicates: the erased variant.
  return builder.Build();
}

Graph PowerLawConfigurationGraph(NodeId n, double exponent, NodeId min_deg,
                                 NodeId max_deg, Rng& rng) {
  auto out_deg = SamplePowerLawDegrees(n, exponent, min_deg, max_deg, rng);
  auto in_deg = SamplePowerLawDegrees(n, exponent, min_deg, max_deg, rng);
  // Trim stubs from the larger side (highest-degree first, one at a
  // time) until the sums match.
  auto sum_of = [](const std::vector<NodeId>& d) {
    std::uint64_t s = 0;
    for (NodeId x : d) s += x;
    return s;
  };
  std::uint64_t so = sum_of(out_deg), si = sum_of(in_deg);
  auto& bigger = so > si ? out_deg : in_deg;
  std::uint64_t excess = so > si ? so - si : si - so;
  for (NodeId v = 0; excess > 0; v = (v + 1) % n) {
    if (bigger[v] > 1) {
      --bigger[v];
      --excess;
    }
  }
  return DirectedConfigurationModel(out_deg, in_deg, rng);
}

Graph PlantedPartition(const PlantedPartitionParams& params, Rng& rng) {
  const NodeId n = params.num_nodes;
  const NodeId c = params.num_communities;
  GORDER_CHECK(n >= c && c >= 1);
  // Power-law-ish community sizes: community i gets mass ~ 1/(i+1),
  // normalised to n. This mimics the skewed community-size distribution
  // of real social networks.
  std::vector<NodeId> community_of(n);
  std::vector<double> mass(c);
  double total_mass = 0.0;
  for (NodeId i = 0; i < c; ++i) {
    mass[i] = 1.0 / std::sqrt(static_cast<double>(i) + 1.0);
    total_mass += mass[i];
  }
  std::vector<NodeId> start(c + 1, 0);
  double acc = 0.0;
  for (NodeId i = 0; i < c; ++i) {
    acc += mass[i];
    start[i + 1] = static_cast<NodeId>(acc / total_mass * n);
  }
  start[c] = n;
  std::vector<std::pair<NodeId, NodeId>> ranges(c);
  for (NodeId i = 0; i < c; ++i) {
    ranges[i] = {start[i], std::max<NodeId>(start[i + 1], start[i] + 1)};
    for (NodeId v = start[i]; v < start[i + 1]; ++v) community_of[v] = i;
  }
  // Endpoint sampling is weighted by a per-node power-law "activity" so
  // the social stand-ins get the skewed degree distributions of real
  // platforms (uniform sampling would give near-Poisson degrees).
  // Tickets: node v appears activity_v times; drawing a ticket samples
  // proportionally to activity. One ticket pool per community plus a
  // global pool for the mixing edges.
  std::vector<NodeId> activity =
      SamplePowerLawDegrees(n, /*exponent=*/2.2, /*min_deg=*/1,
                            /*max_deg=*/std::max<NodeId>(2, n / 40), rng);
  std::vector<std::vector<NodeId>> community_tickets(c);
  std::vector<NodeId> global_tickets;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId t = 0; t < activity[v]; ++t) {
      community_tickets[community_of[v]].push_back(v);
      global_tickets.push_back(v);
    }
  }

  // Node ids are assigned community-contiguously, then scattered: the
  // caller decides the exposed ordering (see MakeCrawlOrder / datasets).
  const EdgeId m = static_cast<EdgeId>(params.avg_degree * n);
  std::unordered_set<std::uint64_t> seen;
  // Bounded like ErdosRenyi's: grow on demand past 2^24 buckets.
  seen.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(m * 2, std::uint64_t{1} << 24)));
  Graph::Builder builder(n);
  builder.ReserveEdges(m);
  EdgeId added = 0;
  EdgeId attempts = 0;
  const EdgeId max_attempts = m * 20;
  while (added < m && attempts < max_attempts) {
    ++attempts;
    NodeId src = global_tickets[rng.Uniform(global_tickets.size())];
    NodeId dst;
    if (rng.UniformDouble() >= params.mixing) {
      const auto& pool = community_tickets[community_of[src]];
      dst = pool[rng.Uniform(pool.size())];
    } else {
      dst = global_tickets[rng.Uniform(global_tickets.size())];
    }
    if (src == dst) continue;
    if (seen.insert(PackEdge(src, dst)).second) {
      builder.AddEdge(src, dst);
      ++added;
    }
  }
  return builder.Build();
}

}  // namespace gorder::gen
