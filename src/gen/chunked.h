#ifndef GORDER_GEN_CHUNKED_H_
#define GORDER_GEN_CHUNKED_H_

/// Communication-free chunked graph generation (DESIGN.md §19).
///
/// Every streaming generator here splits its edge space into fixed-size
/// chunks and derives chunk c's PRNG state purely from
/// (params, seed, c) — the KaGen recipe ("Communication-free Massively
/// Distributed Graph Generation", Funke et al.) — so chunks can be
/// produced in any order, on any number of threads, with bit-identical
/// output. The driver generates a bounded window of chunks on the
/// shared pool (util/parallel.h) and hands them to the sink in
/// ascending chunk order, which makes the delivered *stream* (not just
/// the final graph) deterministic in (params, seed, chunk_edges) and
/// keeps RAM at O(window * chunk_edges) however many edges are
/// requested.
///
/// The sink is invoked from the calling thread only, one chunk at a
/// time, so ordinary single-threaded sinks (Graph::Builder,
/// extmem::ExtPackBuilder) need no locking.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "util/io_result.h"
#include "util/rng.h"

namespace gorder::gen {

struct RmatParams;  // generators.h

/// Receives generated edges chunk by chunk, in ascending chunk order.
/// The pointer is only valid for the duration of the call. Returning an
/// error stops the stream; no further chunks are delivered.
using EdgeSink = std::function<IoResult(const Edge*, std::size_t)>;

/// Knobs for the chunked drivers. Defaults suit the out-of-core
/// pipeline: 2 MiB of edges per chunk, window sized from the thread
/// budget.
struct ChunkedOptions {
  /// Edge attempts per chunk. Part of the determinism key: the same
  /// (params, seed) at a different chunk_edges is a different stream.
  std::size_t chunk_edges = 1u << 18;
  /// Chunks generated concurrently per window. 0 derives
  /// max(4, 2 * threads). Affects only scheduling and peak RAM, never
  /// output.
  std::size_t window_chunks = 0;
  /// Thread cap for this stream (0 = the global pool budget).
  int max_threads = 0;
  /// Runs the retained straight-line serial loop instead of the
  /// windowed parallel driver. Same output by contract; the
  /// differential tests pin the parallel driver against this path.
  bool serial_reference = false;
};

/// Chunk c's PRNG seed, derived only from (seed, c): the StreamRmat
/// pattern, shared by every chunked generator. Fold generator
/// parameters into `seed` first (MixParamsSeed) so distinct parameter
/// sets give independent streams.
std::uint64_t ChunkSeed(std::uint64_t seed, std::uint64_t chunk_index);

/// Folds a generator tag and parameter words into a stream seed
/// (FNV-1a over the words, then SplitMix64-finalised).
std::uint64_t MixParamsSeed(const char* tag, std::uint64_t seed,
                            std::initializer_list<std::uint64_t> params);

/// Chunked R-MAT (Chakrabarti et al.): `params.num_edges` quadrant-
/// descent samples, self-loop attempts skipped. Deterministic in
/// (params, seed, chunk_edges); identical to the serial StreamRmat of
/// PR 9 chunk for chunk.
IoResult StreamRmat(const RmatParams& params, std::uint64_t seed,
                    const ChunkedOptions& options, const EdgeSink& sink);

/// Back-compat wrapper (the PR 9 signature).
IoResult StreamRmat(const RmatParams& params, std::uint64_t seed,
                    std::size_t chunk_edges, const EdgeSink& sink);

/// Chunked G(n, m): exactly m uniform non-self-loop edge samples, the
/// sample count partitioned exactly across chunks (chunk c draws the
/// attempts with global indices [c*chunk_edges, min(m, ...))). There is
/// no global dedup set — duplicate samples survive the stream and are
/// removed downstream (Graph::Builder / the extmem merge dedup), so the
/// realised simple-graph edge count can undershoot m slightly, like
/// R-MAT. Self-loops are avoided exactly (dst drawn from [0, n-1) and
/// shifted past src), so no rejection loop exists to grind at the
/// density ceiling; m > n*(n-1) is still rejected as infeasible.
IoResult StreamErdosRenyi(NodeId n, EdgeId m, std::uint64_t seed,
                          const ChunkedOptions& options,
                          const EdgeSink& sink);

/// Chunk-parallel Barabasi-Albert: n nodes, out_k attachment samples
/// per node, preferential attachment realised with the Batagelj-Brandes
/// position array whose random draws are *hash-derived* from the global
/// edge index (Sanders & Schulz, "Scalable Generation of Scale-free
/// Graphs") — any chunk can resolve any attachment chain locally, so
/// the model parallelises with zero communication. Self-loop samples
/// (including the degenerate first edge) are skipped; duplicate
/// (v, dst) samples survive to downstream dedup, so out-degrees can
/// undershoot out_k slightly. This is a *different random process* from
/// the sequential in-memory BarabasiAlbert — same model family, not the
/// same graph.
IoResult StreamBarabasiAlbert(NodeId n, NodeId out_k, std::uint64_t seed,
                              const ChunkedOptions& options,
                              const EdgeSink& sink);

/// The hash-resolved attachment target of global BA edge `edge_index`
/// (see StreamBarabasiAlbert). Exposed so tests can replay the chain
/// resolution independently of the chunk driver.
NodeId BarabasiAlbertTarget(std::uint64_t stream_seed, NodeId out_k,
                            std::uint64_t edge_index);

namespace internal {

/// Per-chunk producers, exposed for the chunked-vs-serial differential
/// tests: concatenating chunk 0..k of one of these serially must equal
/// the driver's delivered stream bit for bit.
void RmatChunk(const RmatParams& params, std::uint64_t seed,
               std::uint64_t chunk_index, std::uint64_t attempts,
               std::vector<Edge>* out);
void ErdosRenyiChunk(NodeId n, std::uint64_t stream_seed,
                     std::uint64_t chunk_index, std::uint64_t attempts,
                     std::vector<Edge>* out);
void BarabasiAlbertChunk(NodeId n, NodeId out_k, std::uint64_t stream_seed,
                         std::uint64_t first_edge, std::uint64_t count,
                         std::vector<Edge>* out);

/// The generic driver: `total_attempts` edge-attempt indices split into
/// chunk_edges-sized chunks, `produce(chunk, first, count, out)` filling
/// each chunk's buffer (must depend only on its arguments), delivery to
/// `sink` in ascending chunk order. Stops at the first sink error.
IoResult RunChunked(
    std::uint64_t total_attempts, const ChunkedOptions& options,
    const std::function<void(std::uint64_t chunk, std::uint64_t first,
                             std::uint64_t count, std::vector<Edge>*)>&
        produce,
    const EdgeSink& sink);

}  // namespace internal

}  // namespace gorder::gen

#endif  // GORDER_GEN_CHUNKED_H_
