#ifndef GORDER_GEN_CRAWL_ORDER_H_
#define GORDER_GEN_CRAWL_ORDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gorder::gen {

/// Produces a permutation (`perm[old] = new`) that renumbers nodes in a
/// noisy breadth-first "crawl" order over the undirected view.
///
/// Why: the paper observes that the *Original* numbering of real datasets
/// already has locality — crawlers emit neighbouring pages consecutively,
/// and social-network exports cluster by registration cohort. Synthetic
/// generators emit ids in structureless order, so without this step the
/// "Original" baseline would behave like Random, distorting Figure 5/9.
/// With probability `jump_prob` the crawl teleports to a random
/// unvisited node instead of continuing the frontier, degrading locality
/// in a controlled way (web crawls ~ 0.05, social exports ~ 0.3).
std::vector<NodeId> MakeCrawlOrderPermutation(const Graph& graph,
                                              double jump_prob, Rng& rng);

}  // namespace gorder::gen

#endif  // GORDER_GEN_CRAWL_ORDER_H_
