#include "gen/crawl_order.h"

#include <deque>

#include "util/logging.h"

namespace gorder::gen {

std::vector<NodeId> MakeCrawlOrderPermutation(const Graph& graph,
                                              double jump_prob, Rng& rng) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> perm(n, kInvalidNode);
  std::vector<bool> queued(n, false);
  // Unvisited pool for teleports and component restarts: a shuffled list
  // scanned left to right (already-queued entries skipped lazily).
  std::vector<NodeId> pool(n);
  for (NodeId v = 0; v < n; ++v) pool[v] = v;
  rng.Shuffle(pool);
  std::size_t pool_pos = 0;
  auto next_unqueued = [&]() -> NodeId {
    while (pool_pos < pool.size() && queued[pool[pool_pos]]) ++pool_pos;
    return pool_pos < pool.size() ? pool[pool_pos] : kInvalidNode;
  };

  std::deque<NodeId> frontier;
  NodeId next_rank = 0;
  while (next_rank < n) {
    if (frontier.empty()) {
      NodeId seed = next_unqueued();
      GORDER_CHECK(seed != kInvalidNode);
      queued[seed] = true;
      frontier.push_back(seed);
    }
    NodeId v;
    if (rng.UniformDouble() < jump_prob) {
      NodeId jump = next_unqueued();
      if (jump != kInvalidNode) {
        queued[jump] = true;
        v = jump;
      } else {
        v = frontier.front();
        frontier.pop_front();
      }
    } else {
      v = frontier.front();
      frontier.pop_front();
    }
    perm[v] = next_rank++;
    for (NodeId w : graph.OutNeighbors(v)) {
      if (!queued[w]) {
        queued[w] = true;
        frontier.push_back(w);
      }
    }
    for (NodeId w : graph.InNeighbors(v)) {
      if (!queued[w]) {
        queued[w] = true;
        frontier.push_back(w);
      }
    }
  }
  return perm;
}

}  // namespace gorder::gen
