#ifndef GORDER_GEN_DATASETS_H_
#define GORDER_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gorder::gen {

/// A registry entry describing one of the paper's benchmark datasets and
/// the synthetic stand-in this repo generates for it (DESIGN.md §4).
struct DatasetSpec {
  std::string name;       // paper's dataset name, e.g. "pokec"
  std::string category;   // "social" or "web"
  std::string generator;  // "rmat", "planted", "copying"
  // Paper-reported sizes (for Table 1 context).
  double paper_nodes_m = 0.0;  // millions
  double paper_edges_m = 0.0;  // millions
  // Stand-in sizes at scale = 1.
  NodeId sim_nodes = 0;
  EdgeId sim_edges = 0;
  double crawl_jump_prob = 0.1;  // locality of the "Original" numbering
};

/// The nine datasets of the replication (eight from the original paper
/// plus epinion), ordered smallest to largest as in its figures.
const std::vector<DatasetSpec>& AllDatasets();

/// Spec lookup by name; aborts on unknown name. For user-supplied names
/// (CLI flags, tool arguments) use FindDatasetSpec instead and report the
/// valid names.
const DatasetSpec& GetDatasetSpec(const std::string& name);

/// Non-aborting lookup: nullptr if `name` is not a registered dataset.
const DatasetSpec* FindDatasetSpec(const std::string& name);

/// Comma-separated registry names ("epinion, pokec, ..."), for "unknown
/// dataset" diagnostics.
std::string DatasetNames();

/// Generates the synthetic stand-in for `name`. `scale` multiplies the
/// default node/edge counts (0.25 for quick smoke runs, 4+ to stress).
/// The node numbering of the returned graph is the dataset's "Original"
/// ordering: a noisy-crawl relabel that mimics real export locality.
/// Deterministic in (name, scale, seed).
Graph MakeDataset(const std::string& name, double scale = 1.0,
                  std::uint64_t seed = 42);

}  // namespace gorder::gen

#endif  // GORDER_GEN_DATASETS_H_
