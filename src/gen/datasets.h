#ifndef GORDER_GEN_DATASETS_H_
#define GORDER_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "gen/chunked.h"
#include "graph/graph.h"
#include "util/io_result.h"

namespace gorder::gen {

/// Registry tier. Standard datasets are the paper-replication stand-ins
/// that generate in memory; the huge tier (DESIGN.md §19) holds
/// 10^8-10^9-edge chunked-streaming datasets that only exist as edge
/// streams / .gpack files and are gated behind an explicit --tier=huge
/// everywhere user-facing, so nothing tries to materialise one by
/// accident.
enum class DatasetTier { kStandard, kHuge };

/// A registry entry describing one of the paper's benchmark datasets and
/// the synthetic stand-in this repo generates for it (DESIGN.md §4), or
/// a huge-tier streaming dataset (§19).
struct DatasetSpec {
  std::string name;       // paper's dataset name, e.g. "pokec"
  std::string category;   // "social" or "web"
  std::string generator;  // "rmat", "planted", "copying";
                          // huge tier: "rmat-stream", "er-stream",
                          // "ba-stream"
  // Paper-reported sizes (for Table 1 context); zero for huge tier.
  double paper_nodes_m = 0.0;  // millions
  double paper_edges_m = 0.0;  // millions
  // Stand-in sizes at scale = 1. For huge-tier specs sim_edges counts
  // edge *attempts* (downstream dedup can undershoot slightly).
  NodeId sim_nodes = 0;
  EdgeId sim_edges = 0;
  double crawl_jump_prob = 0.1;  // locality of the "Original" numbering
  DatasetTier tier = DatasetTier::kStandard;
};

/// The nine standard datasets of the replication (eight from the
/// original paper plus epinion), ordered smallest to largest as in its
/// figures.
const std::vector<DatasetSpec>& AllDatasets();

/// The huge tier: chunked-streaming datasets at 10^8-10^9 edge attempts
/// (scale 1.0), one per chunked generator family.
const std::vector<DatasetSpec>& HugeDatasets();

/// Spec lookup by name; aborts on unknown name. For user-supplied names
/// (CLI flags, tool arguments) use FindDatasetSpec instead and report the
/// valid names.
const DatasetSpec& GetDatasetSpec(const std::string& name);

/// Non-aborting lookup across both tiers: nullptr if `name` is not a
/// registered dataset. Callers must check `spec->tier` before choosing
/// an in-memory path.
const DatasetSpec* FindDatasetSpec(const std::string& name);

/// Comma-separated registry names ("epinion, pokec, ..."), for "unknown
/// dataset" diagnostics. Standard tier by default.
std::string DatasetNames();
std::string DatasetNames(DatasetTier tier);

/// Generates the synthetic stand-in for `name`. `scale` multiplies the
/// default node/edge counts (0.25 for quick smoke runs, 4+ to stress).
/// The node numbering of the returned graph is the dataset's "Original"
/// ordering: a noisy-crawl relabel that mimics real export locality.
/// Deterministic in (name, scale, seed). Standard tier only: huge-tier
/// specs are stream-only (StreamDataset) and abort here.
Graph MakeDataset(const std::string& name, double scale = 1.0,
                  std::uint64_t seed = 42);

/// Streams a huge-tier dataset's edges through `sink`, chunk-parallel
/// on the shared pool and bit-identical at any thread count
/// (deterministic in (name, scale, seed, options.chunk_edges)). `scale`
/// multiplies the spec's node/attempt budgets like MakeDataset.
/// `*num_nodes` (optional) receives the node-count before streaming
/// starts so sinks can pre-reserve. Huge datasets skip the noisy-crawl
/// relabel — their "Original" ordering is the generator's natural id
/// space, which is what a billion-edge export looks like anyway.
IoResult StreamDataset(const std::string& name, double scale,
                       std::uint64_t seed, const ChunkedOptions& options,
                       const EdgeSink& sink, NodeId* num_nodes = nullptr);

}  // namespace gorder::gen

#endif  // GORDER_GEN_DATASETS_H_
