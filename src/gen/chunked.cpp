#include "gen/chunked.h"

#include <algorithm>

#include "gen/generators.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gorder::gen {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// One hash-derived uniform draw in [0, bound): the per-index PRNG of
/// the communication-free BA resolution. SplitMix64 of (seed, index),
/// bounded by Lemire's multiply-shift like Rng::Uniform.
std::uint64_t HashDraw(std::uint64_t seed, std::uint64_t index,
                       std::uint64_t bound) {
  SplitMix64 sm(seed ^ (kGolden * (index + 1)));
  const std::uint64_t x = sm.Next();
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * bound) >> 64);
}

}  // namespace

std::uint64_t ChunkSeed(std::uint64_t seed, std::uint64_t chunk_index) {
  // Bit-compatible with PR 9's StreamRmat chunk seeding: existing
  // packs, goldens and the extmem differential stay valid.
  SplitMix64 sm(seed ^ (kGolden * (chunk_index + 1)));
  return sm.Next();
}

std::uint64_t MixParamsSeed(const char* tag, std::uint64_t seed,
                            std::initializer_list<std::uint64_t> params) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char* c = tag; *c != '\0'; ++c) {
    h ^= static_cast<unsigned char>(*c);
    h *= 1099511628211ULL;
  }
  for (std::uint64_t p : params) {
    for (int b = 0; b < 8; ++b) {
      h ^= (p >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  SplitMix64 sm(h ^ seed);
  return sm.Next();
}

namespace internal {

IoResult RunChunked(
    std::uint64_t total_attempts, const ChunkedOptions& options,
    const std::function<void(std::uint64_t chunk, std::uint64_t first,
                             std::uint64_t count, std::vector<Edge>*)>&
        produce,
    const EdgeSink& sink) {
  GORDER_CHECK(options.chunk_edges > 0);
  const std::uint64_t chunk_edges = options.chunk_edges;
  const std::uint64_t num_chunks =
      (total_attempts + chunk_edges - 1) / chunk_edges;
  auto chunk_range = [&](std::uint64_t c, std::uint64_t* first,
                         std::uint64_t* count) {
    *first = c * chunk_edges;
    *count = std::min<std::uint64_t>(chunk_edges, total_attempts - *first);
  };

  const int threads = options.max_threads > 0
                          ? std::min(options.max_threads, NumThreads())
                          : NumThreads();
  if (options.serial_reference || threads <= 1) {
    // The retained serial reference: a straight-line loop, structurally
    // the PR 9 StreamRmat shape. The parallel driver below must match
    // it bit for bit (tests/gen_chunked_test.cpp pins this).
    std::vector<Edge> chunk;
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
      std::uint64_t first = 0, count = 0;
      chunk_range(c, &first, &count);
      chunk.clear();
      produce(c, first, count, &chunk);
      if (!chunk.empty()) {
        if (IoResult r = sink(chunk.data(), chunk.size()); !r.ok) return r;
      }
    }
    return IoResult::Ok();
  }

  // Windowed parallel driver: generate `window` chunks concurrently
  // into per-chunk buffers (range-disjoint writes — the pool's
  // determinism discipline), then drain them to the sink in chunk
  // order from this thread. Window size bounds RAM and is invisible in
  // the output.
  const std::uint64_t window =
      options.window_chunks > 0
          ? options.window_chunks
          : std::max<std::uint64_t>(4, 2 * static_cast<std::uint64_t>(threads));
  std::vector<std::vector<Edge>> buffers(
      static_cast<std::size_t>(std::min<std::uint64_t>(window, num_chunks)));
  for (std::uint64_t base = 0; base < num_chunks; base += window) {
    const std::uint64_t batch = std::min(window, num_chunks - base);
    ParallelFor(
        0, static_cast<std::size_t>(batch), 1,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::uint64_t c = base + i;
            std::uint64_t first = 0, count = 0;
            chunk_range(c, &first, &count);
            buffers[i].clear();
            produce(c, first, count, &buffers[i]);
          }
        },
        options.max_threads);
    for (std::uint64_t i = 0; i < batch; ++i) {
      if (buffers[i].empty()) continue;
      if (IoResult r = sink(buffers[i].data(), buffers[i].size()); !r.ok) {
        return r;
      }
    }
  }
  return IoResult::Ok();
}

void RmatChunk(const RmatParams& params, std::uint64_t seed,
               std::uint64_t chunk_index, std::uint64_t attempts,
               std::vector<Edge>* out) {
  const double d = 1.0 - params.a - params.b - params.c;
  Rng rng(ChunkSeed(seed, chunk_index));
  out->reserve(out->size() + attempts);
  for (std::uint64_t e = 0; e < attempts; ++e) {
    const Edge edge = SampleRmatEdge(params, d, rng);
    if (edge.src != edge.dst) out->push_back(edge);
  }
}

void ErdosRenyiChunk(NodeId n, std::uint64_t stream_seed,
                     std::uint64_t chunk_index, std::uint64_t attempts,
                     std::vector<Edge>* out) {
  Rng rng(ChunkSeed(stream_seed, chunk_index));
  out->reserve(out->size() + attempts);
  for (std::uint64_t e = 0; e < attempts; ++e) {
    const NodeId src = static_cast<NodeId>(rng.Uniform(n));
    // Exact non-self-loop sampling: draw from the n-1 other nodes and
    // shift past src. No rejection loop, so density cannot make this
    // grind.
    NodeId dst = static_cast<NodeId>(rng.Uniform(n - 1));
    if (dst >= src) ++dst;
    out->push_back({src, dst});
  }
}

void BarabasiAlbertChunk(NodeId n, NodeId out_k, std::uint64_t stream_seed,
                         std::uint64_t first_edge, std::uint64_t count,
                         std::vector<Edge>* out) {
  (void)n;
  out->reserve(out->size() + count);
  for (std::uint64_t i = first_edge; i < first_edge + count; ++i) {
    const NodeId src = static_cast<NodeId>(i / out_k);
    const NodeId dst = BarabasiAlbertTarget(stream_seed, out_k, i);
    if (src != dst) out->push_back({src, dst});
  }
}

}  // namespace internal

IoResult StreamRmat(const RmatParams& params, std::uint64_t seed,
                    const ChunkedOptions& options, const EdgeSink& sink) {
  GORDER_CHECK(params.scale >= 1 && params.scale < 31);
  GORDER_CHECK(1.0 - params.a - params.b - params.c > 0.0);
  return internal::RunChunked(
      params.num_edges, options,
      [&params, seed](std::uint64_t chunk, std::uint64_t /*first*/,
                      std::uint64_t count, std::vector<Edge>* out) {
        internal::RmatChunk(params, seed, chunk, count, out);
      },
      sink);
}

IoResult StreamRmat(const RmatParams& params, std::uint64_t seed,
                    std::size_t chunk_edges, const EdgeSink& sink) {
  ChunkedOptions options;
  options.chunk_edges = chunk_edges;
  return StreamRmat(params, seed, options, sink);
}

IoResult StreamErdosRenyi(NodeId n, EdgeId m, std::uint64_t seed,
                          const ChunkedOptions& options,
                          const EdgeSink& sink) {
  GORDER_CHECK(n >= 2);
  // Exact integer feasibility: n <= 2^32-1, so n*(n-1) fits in 64 bits.
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  GORDER_CHECK(m <= max_edges && "ErdosRenyi: m exceeds n*(n-1)");
  const std::uint64_t stream_seed =
      MixParamsSeed("er", seed, {n, m});
  return internal::RunChunked(
      m, options,
      [n, stream_seed](std::uint64_t chunk, std::uint64_t /*first*/,
                       std::uint64_t count, std::vector<Edge>* out) {
        internal::ErdosRenyiChunk(n, stream_seed, chunk, count, out);
      },
      sink);
}

NodeId BarabasiAlbertTarget(std::uint64_t stream_seed, NodeId out_k,
                            std::uint64_t edge_index) {
  // Batagelj-Brandes position array M of size 2 * num_edges, resolved
  // lazily: position 2i holds edge i's source (i / out_k, known in
  // closed form), position 2i+1 holds edge i's target, drawn uniformly
  // from the prefix M[0 .. 2i]. Because the draw for index i is a pure
  // hash of (stream_seed, i), any thread can chase the chain
  // odd-position -> earlier edge without ever materialising M.
  std::uint64_t i = edge_index;
  for (;;) {
    const std::uint64_t r = HashDraw(stream_seed, i, 2 * i + 1);
    if ((r & 1) == 0) return static_cast<NodeId>((r >> 1) / out_k);
    i = r >> 1;  // odd position 2j+1: recurse into edge j = r>>1 < i
  }
}

IoResult StreamBarabasiAlbert(NodeId n, NodeId out_k, std::uint64_t seed,
                              const ChunkedOptions& options,
                              const EdgeSink& sink) {
  GORDER_CHECK(n > out_k && out_k >= 1);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(out_k);
  const std::uint64_t stream_seed =
      MixParamsSeed("ba", seed, {n, out_k});
  return internal::RunChunked(
      total, options,
      [n, out_k, stream_seed](std::uint64_t /*chunk*/, std::uint64_t first,
                              std::uint64_t count, std::vector<Edge>* out) {
        internal::BarabasiAlbertChunk(n, out_k, stream_seed, first, count,
                                      out);
      },
      sink);
}

}  // namespace gorder::gen
