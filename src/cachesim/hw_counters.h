#ifndef GORDER_CACHESIM_HW_COUNTERS_H_
#define GORDER_CACHESIM_HW_COUNTERS_H_

#include <cstdint>

namespace gorder::cachesim {

/// Hardware performance counters read via Linux perf_event_open — the
/// same source the papers use (perf/ocperf, replication §3.5). This is
/// the "real hardware" complement to the software CacheHierarchy: when
/// the kernel allows it (perf_event_paranoid and no seccomp filter),
/// benches can report measured L1/LLC miss rates next to simulated ones.
///
/// All methods degrade gracefully: on kernels or containers where the
/// syscall is unavailable, `Start()` returns false and benches fall back
/// to simulation-only output.
struct HwStats {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_loads = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;

  double L1MissRate() const {
    return l1d_loads == 0 ? 0.0
                          : static_cast<double>(l1d_misses) / l1d_loads;
  }
  double LlcMissRate() const {
    return llc_loads == 0 ? 0.0
                          : static_cast<double>(llc_misses) / llc_loads;
  }
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / cycles;
  }
};

class HwCounters {
 public:
  HwCounters() = default;
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True if this kernel/container permits opening the counter group.
  static bool Available();

  /// Opens and starts the counters. Returns false (and stays inert) if
  /// any event cannot be opened.
  bool Start();

  /// Stops and reads. `valid` is false if Start() failed or a counter
  /// was multiplexed away entirely.
  HwStats Stop();

  static constexpr int kNumEvents = 6;

 private:
  int fds_[kNumEvents] = {-1, -1, -1, -1, -1, -1};
  bool running_ = false;
};

}  // namespace gorder::cachesim

#endif  // GORDER_CACHESIM_HW_COUNTERS_H_
