#ifndef GORDER_CACHESIM_HW_COUNTERS_H_
#define GORDER_CACHESIM_HW_COUNTERS_H_

#include <cstdint>

namespace gorder::cachesim {

/// Hardware performance counters read via Linux perf_event_open — the
/// same source the papers use (perf/ocperf, replication §3.5). This is
/// the "real hardware" complement to the software CacheHierarchy: when
/// the kernel allows it (perf_event_paranoid and no seccomp filter),
/// benches can report measured L1/LLC miss rates next to simulated ones.
///
/// All methods degrade gracefully: on kernels or containers where the
/// syscall is unavailable, `Start()` returns false and benches fall back
/// to simulation-only output.
inline constexpr int kNumHwEvents = 6;

/// Names aligned with the per-event arrays below (and with the order the
/// counter group is opened in): cycles, instructions, l1d_loads,
/// l1d_misses, llc_loads, llc_misses.
const char* HwEventName(int event);

struct HwStats {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_loads = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;

  /// Per-event scheduling status from the kernel: an event that was
  /// opened but only scheduled onto the PMU part of the time (shared with
  /// other sessions) has time_running < time_enabled, and its raw count
  /// undercounts. A report must never present such a miss rate as a
  /// clean measurement — check `multiplexed` / Clean() first.
  bool opened[kNumHwEvents] = {};
  std::uint64_t time_enabled[kNumHwEvents] = {};
  std::uint64_t time_running[kNumHwEvents] = {};
  bool multiplexed = false;  // any event with time_running < time_enabled

  /// min over events of time_running / time_enabled; 1.0 = every event
  /// counted the whole interval, lower = that fraction of it.
  double MinRunningFraction() const {
    if (!valid) return 0.0;
    double min_frac = 1.0;
    for (int i = 0; i < kNumHwEvents; ++i) {
      if (!opened[i] || time_enabled[i] == 0) continue;
      double frac = static_cast<double>(time_running[i]) /
                    static_cast<double>(time_enabled[i]);
      if (frac < min_frac) min_frac = frac;
    }
    return min_frac;
  }

  /// True when the numbers can be quoted as-is: counters read back and no
  /// event was multiplexed away for any part of the interval.
  bool Clean() const { return valid && !multiplexed; }

  double L1MissRate() const {
    return l1d_loads == 0 ? 0.0
                          : static_cast<double>(l1d_misses) / l1d_loads;
  }
  double LlcMissRate() const {
    return llc_loads == 0 ? 0.0
                          : static_cast<double>(llc_misses) / llc_loads;
  }
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / cycles;
  }
};

class HwCounters {
 public:
  HwCounters() = default;
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True if this kernel/container permits opening the counter group.
  static bool Available();

  /// Opens and starts the counters. Returns false (and stays inert) if
  /// any event cannot be opened.
  bool Start();

  /// Stops and reads. `valid` is false if Start() failed or a counter
  /// was multiplexed away entirely.
  HwStats Stop();

  static constexpr int kNumEvents = kNumHwEvents;

 private:
  int fds_[kNumEvents] = {-1, -1, -1, -1, -1, -1};
  bool running_ = false;
};

}  // namespace gorder::cachesim

#endif  // GORDER_CACHESIM_HW_COUNTERS_H_
