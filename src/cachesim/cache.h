#ifndef GORDER_CACHESIM_CACHE_H_
#define GORDER_CACHESIM_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gorder::cachesim {

/// Geometry of one cache level.
struct CacheLevelConfig {
  std::string name;
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 8;
  /// Absolute load-to-use latency in cycles when the access is served by
  /// this level (used for the stall-cycle model of Figure 1).
  double latency_cycles = 0.0;
};

/// Full hierarchy geometry plus memory latency.
struct CacheHierarchyConfig {
  std::uint32_t line_bytes = 64;
  std::vector<CacheLevelConfig> levels;
  double memory_latency_cycles = 161.0;
  /// CPU-work cycles charged per traced access (models the ALU/branch
  /// work between memory touches; calibrates Figure 1's compute share).
  double compute_cycles_per_access = 2.0;

  /// The replication's machine (SGI UV2000, Xeon E5-4650L @2.6GHz):
  /// L1d 32KiB/8-way (4c), L2 256KiB/8-way (12c), L3 20MiB/16-way (42c),
  /// RAM ~62ns ~= 161 cycles at 2.6GHz. 64-byte lines. Use this when the
  /// traced dataset is paper-scale (hundreds of MiB of CSR).
  static CacheHierarchyConfig ReplicationXeon();

  /// The Xeon hierarchy shrunk ~64x with latencies kept: L1 8KiB/8-way,
  /// L2 32KiB/8-way, L3 256KiB/16-way. The benchmark datasets in this
  /// repo are scaled ~1/40-1/100 of the paper's, so shrinking the caches
  /// by a similar factor restores the paper's working-set-to-cache ratio
  /// (graphs several times larger than the last level) and with it the
  /// miss-rate differentiation the paper measures.
  static CacheHierarchyConfig ScaledBench();

  /// A deliberately tiny hierarchy for unit tests (4 lines direct-mapped).
  static CacheHierarchyConfig TestTiny();
};

/// Counters in the layout of the paper's Tables 3/4.
struct CacheStats {
  std::uint64_t l1_refs = 0;      // total accesses
  std::uint64_t l1_misses = 0;    // not found in L1
  std::uint64_t l3_refs = 0;      // reached the last level
  std::uint64_t l3_misses = 0;    // went to memory
  double stall_cycles = 0.0;      // latency beyond an L1 hit
  double compute_cycles = 0.0;    // 1 cycle per access baseline

  double L1MissRate() const {
    return l1_refs == 0 ? 0.0 : static_cast<double>(l1_misses) / l1_refs;
  }
  /// "L3-r" in the paper: share of all references that had to consult L3.
  double L3Ratio() const {
    return l1_refs == 0 ? 0.0 : static_cast<double>(l3_refs) / l1_refs;
  }
  /// "Cache-mr": share of all references served by main memory.
  double OverallMissRate() const {
    return l1_refs == 0 ? 0.0 : static_cast<double>(l3_misses) / l1_refs;
  }
  /// Fraction of modelled time spent stalled (Figure 1's black bars).
  double StallFraction() const {
    double total = stall_cycles + compute_cycles;
    return total == 0.0 ? 0.0 : stall_cycles / total;
  }
};

/// One set-associative LRU cache level.
class CacheLevel {
 public:
  CacheLevel(const CacheLevelConfig& config, std::uint32_t line_bytes);

  /// Touches `line_addr` (already line-granular). Returns true on hit;
  /// on miss the line is installed, evicting the LRU way.
  bool Access(std::uint64_t line_addr);

  void Flush();

  std::uint64_t num_sets() const { return num_sets_; }
  std::uint32_t ways() const { return ways_; }
  const std::string& name() const { return name_; }
  double latency_cycles() const { return latency_cycles_; }

 private:
  std::string name_;
  std::uint64_t num_sets_;
  bool pow2_sets_ = true;
  std::uint32_t ways_;
  double latency_cycles_;
  std::uint64_t tick_ = 0;
  static constexpr std::uint64_t kEmptyTag = ~0ULL;
  std::vector<std::uint64_t> tags_;    // num_sets * ways
  std::vector<std::uint64_t> stamps_;  // LRU timestamps, parallel to tags_
};

/// An inclusive-fill multi-level hierarchy with per-level hit/miss
/// accounting and a simple additive latency model. This is the repo's
/// substitute for the papers' hardware performance counters (perf/ocperf):
/// deterministic, portable, and it counts exactly the event classes the
/// paper reports (L1 refs/misses, L3 refs/ratio, overall miss rate,
/// cache-stall share).
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheHierarchyConfig& config =
                              CacheHierarchyConfig::ReplicationXeon());

  /// Touches `size` bytes starting at `addr`; every 64-byte line in the
  /// range counts as one reference. Use for single scalar/struct loads.
  void Access(const void* addr, std::size_t size);

  /// Touches `count` consecutive elements of `elem_size` bytes, counting
  /// one reference *per element* — the accounting of hardware load
  /// counters, where a sequential scan issues one load per element and
  /// misses only on line boundaries. This is what keeps the simulated
  /// L1-ref and miss-rate columns comparable to the paper's perf output.
  void AccessElements(const void* addr, std::size_t elem_size,
                      std::size_t count);

  void AccessLine(std::uint64_t line_addr);

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats(); }
  /// Empties all levels (cold caches) and clears statistics.
  void Flush();

  const CacheHierarchyConfig& config() const { return config_; }

 private:
  CacheHierarchyConfig config_;
  std::vector<CacheLevel> levels_;
  CacheStats stats_;
  std::uint32_t line_shift_;
};

/// No-op tracer: the timed benchmark variants instantiate algorithm
/// templates with this and the compiler erases every Touch call.
struct NullTracer {
  static constexpr bool kEnabled = false;
  template <typename T>
  void Touch(const T*, std::size_t = 1) {}
};

/// Tracer that forwards every touched range to a CacheHierarchy.
class CacheTracer {
 public:
  static constexpr bool kEnabled = true;
  explicit CacheTracer(CacheHierarchy* hierarchy) : hierarchy_(hierarchy) {}

  template <typename T>
  void Touch(const T* ptr, std::size_t count = 1) {
    if (count == 1) {
      hierarchy_->Access(ptr, sizeof(T));
    } else {
      hierarchy_->AccessElements(ptr, sizeof(T), count);
    }
  }

 private:
  CacheHierarchy* hierarchy_;
};

}  // namespace gorder::cachesim

#endif  // GORDER_CACHESIM_CACHE_H_
