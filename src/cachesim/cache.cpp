#include "cachesim/cache.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

namespace gorder::cachesim {

CacheHierarchyConfig CacheHierarchyConfig::ReplicationXeon() {
  CacheHierarchyConfig c;
  c.line_bytes = 64;
  c.levels = {
      {"L1d", 32 * 1024, 8, 4.0},
      {"L2", 256 * 1024, 8, 12.0},
      {"L3", 20 * 1024 * 1024, 16, 42.0},
  };
  c.memory_latency_cycles = 161.0;
  return c;
}

CacheHierarchyConfig CacheHierarchyConfig::ScaledBench() {
  CacheHierarchyConfig c;
  c.line_bytes = 64;
  c.levels = {
      {"L1d", 8 * 1024, 8, 4.0},
      {"L2", 32 * 1024, 8, 12.0},
      {"L3", 256 * 1024, 16, 42.0},
  };
  c.memory_latency_cycles = 161.0;
  return c;
}

CacheHierarchyConfig CacheHierarchyConfig::TestTiny() {
  CacheHierarchyConfig c;
  c.line_bytes = 64;
  c.levels = {
      {"L1", 4 * 64, 1, 1.0},   // 4 sets, direct mapped
      {"L2", 16 * 64, 2, 4.0},  // 8 sets, 2-way
  };
  c.memory_latency_cycles = 20.0;
  c.compute_cycles_per_access = 1.0;  // keeps unit-test arithmetic simple
  return c;
}

CacheLevel::CacheLevel(const CacheLevelConfig& config,
                       std::uint32_t line_bytes)
    : name_(config.name),
      ways_(config.ways),
      latency_cycles_(config.latency_cycles) {
  GORDER_CHECK(config.ways >= 1);
  GORDER_CHECK(config.size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                                    config.ways) ==
               0);
  num_sets_ = config.size_bytes / line_bytes / config.ways;
  GORDER_CHECK(num_sets_ >= 1);
  // Power-of-two set counts index with a mask; others (e.g. the 20 MiB
  // L3 of the replication machine: 20480 sets) fall back to modulo.
  pow2_sets_ = std::has_single_bit(num_sets_);
  tags_.assign(num_sets_ * ways_, kEmptyTag);
  stamps_.assign(num_sets_ * ways_, 0);
}

bool CacheLevel::Access(std::uint64_t line_addr) {
  const std::uint64_t set =
      pow2_sets_ ? (line_addr & (num_sets_ - 1)) : (line_addr % num_sets_);
  std::uint64_t* tags = &tags_[set * ways_];
  std::uint64_t* stamps = &stamps_[set * ways_];
  ++tick_;
  std::uint32_t victim = 0;
  std::uint64_t oldest = ~0ULL;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (tags[w] == line_addr) {
      stamps[w] = tick_;
      return true;
    }
    if (stamps[w] < oldest) {
      oldest = stamps[w];
      victim = w;
    }
  }
  tags[victim] = line_addr;
  stamps[victim] = tick_;
  return false;
}

void CacheLevel::Flush() {
  std::fill(tags_.begin(), tags_.end(), kEmptyTag);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  tick_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig& config)
    : config_(config) {
  GORDER_CHECK(!config.levels.empty());
  GORDER_CHECK(std::has_single_bit(config.line_bytes));
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  for (const auto& lvl : config.levels) {
    levels_.emplace_back(lvl, config.line_bytes);
  }
}

void CacheHierarchy::Access(const void* addr, std::size_t size) {
  GORDER_DCHECK(size > 0);
  const auto start = reinterpret_cast<std::uint64_t>(addr);
  const std::uint64_t first = start >> line_shift_;
  const std::uint64_t last = (start + size - 1) >> line_shift_;
  for (std::uint64_t line = first; line <= last; ++line) AccessLine(line);
}

void CacheHierarchy::AccessElements(const void* addr, std::size_t elem_size,
                                    std::size_t count) {
  const auto start = reinterpret_cast<std::uint64_t>(addr);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t first = (start + i * elem_size) >> line_shift_;
    const std::uint64_t last =
        (start + (i + 1) * elem_size - 1) >> line_shift_;
    AccessLine(first);
    // Elements larger than a line (rare) still touch every line once.
    for (std::uint64_t line = first + 1; line <= last; ++line) {
      AccessLine(line);
    }
  }
}

void CacheHierarchy::AccessLine(std::uint64_t line_addr) {
  ++stats_.l1_refs;
  stats_.compute_cycles += config_.compute_cycles_per_access;
  const std::size_t last = levels_.size() - 1;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    // The loop only reaches level i after missing in all shallower levels,
    // so counting last-level references here matches the paper's "L3-ref".
    if (i == last) ++stats_.l3_refs;
    bool hit = levels_[i].Access(line_addr);
    if (hit) {
      // Inclusive fill: Access() installed the line in every level we
      // traversed on the way down, so no separate fill pass is needed.
      if (i > 0) stats_.stall_cycles += levels_[i].latency_cycles();
      return;
    }
    if (i == 0) ++stats_.l1_misses;
    if (i == last) {
      ++stats_.l3_misses;
      stats_.stall_cycles += config_.memory_latency_cycles;
      return;
    }
  }
}

void CacheHierarchy::Flush() {
  for (auto& lvl : levels_) lvl.Flush();
  ResetStats();
}

}  // namespace gorder::cachesim
