#include "cachesim/hw_counters.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace gorder::cachesim {

namespace {

constexpr const char* kHwEventNames[kNumHwEvents] = {
    "cycles",    "instructions", "l1d_loads",
    "l1d_misses", "llc_loads",    "llc_misses"};

}  // namespace

const char* HwEventName(int event) {
  return event >= 0 && event < kNumHwEvents ? kHwEventNames[event]
                                            : "unknown";
}

#ifdef __linux__

namespace {

int PerfEventOpen(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Scheduling times alongside the count: if the kernel multiplexed the
  // event (time_running < time_enabled) the raw value undercounts, and
  // the report must flag it rather than quote it as clean.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                  group_fd, 0));
}

constexpr std::uint64_t CacheConfig(std::uint64_t cache, std::uint64_t op,
                                    std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

const EventSpec kEvents[HwCounters::kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE, CacheConfig(PERF_COUNT_HW_CACHE_L1D,
                                     PERF_COUNT_HW_CACHE_OP_READ,
                                     PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE, CacheConfig(PERF_COUNT_HW_CACHE_L1D,
                                     PERF_COUNT_HW_CACHE_OP_READ,
                                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE, CacheConfig(PERF_COUNT_HW_CACHE_LL,
                                     PERF_COUNT_HW_CACHE_OP_READ,
                                     PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE, CacheConfig(PERF_COUNT_HW_CACHE_LL,
                                     PERF_COUNT_HW_CACHE_OP_READ,
                                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

}  // namespace

HwCounters::~HwCounters() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

bool HwCounters::Available() {
  HwCounters probe;
  if (!probe.Start()) return false;
  probe.Stop();
  return true;
}

bool HwCounters::Start() {
  if (running_) return false;
  int group = -1;
  for (int i = 0; i < kNumEvents; ++i) {
    fds_[i] = PerfEventOpen(kEvents[i].type, kEvents[i].config, group);
    if (fds_[i] < 0) {
      for (int j = 0; j < i; ++j) {
        close(fds_[j]);
        fds_[j] = -1;
      }
      return false;
    }
    if (group == -1) group = fds_[0];
  }
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  running_ = true;
  return true;
}

HwStats HwCounters::Stop() {
  HwStats stats;
  if (!running_) return stats;
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // With PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING} each read returns
  // { value, time_enabled, time_running }.
  std::uint64_t values[kNumEvents] = {};
  bool ok = true;
  for (int i = 0; i < kNumEvents; ++i) {
    std::uint64_t buf[3] = {};
    bool read_ok =
        read(fds_[i], buf, sizeof buf) == static_cast<ssize_t>(sizeof buf);
    ok = ok && read_ok;
    values[i] = buf[0];
    stats.opened[i] = read_ok;
    stats.time_enabled[i] = buf[1];
    stats.time_running[i] = buf[2];
    if (read_ok && buf[2] < buf[1]) stats.multiplexed = true;
    close(fds_[i]);
    fds_[i] = -1;
  }
  running_ = false;
  if (!ok) return stats;
  stats.valid = true;
  stats.cycles = values[0];
  stats.instructions = values[1];
  stats.l1d_loads = values[2];
  stats.l1d_misses = values[3];
  stats.llc_loads = values[4];
  stats.llc_misses = values[5];
  return stats;
}

#else  // !__linux__

HwCounters::~HwCounters() = default;
bool HwCounters::Available() { return false; }
bool HwCounters::Start() { return false; }
HwStats HwCounters::Stop() { return HwStats{}; }

#endif

}  // namespace gorder::cachesim
