#ifndef GORDER_ALGO_ALGORITHMS_H_
#define GORDER_ALGO_ALGORITHMS_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo {

/// The nine benchmark workloads of the paper (replication §2.1), untraced
/// (full speed, used for all timing experiments).
///
/// Determinism: every function is a pure function of the graph and its
/// explicit arguments — ties always break by ascending node id, so a run
/// is exactly reproducible. Functions that take node arguments interpret
/// them in the graph's *current* numbering; when comparing across
/// orderings, map logical sources through the ordering permutation.
///
/// Threading: the heavy kernels (BFS, SP, PageRank; plus WCC and triangle
/// counting in extra.h) run on the shared pool (util/parallel.h) when the
/// global thread budget exceeds one, and are *bit-identical* to their
/// serial counterparts at every thread count — the same contract the CSR
/// pipeline keeps, enforced by tests/parallel_algo_test.cpp. The
/// cache-traced variants (traced.h) always execute serially: the
/// simulator models one ordered access stream.

NqResult Nq(const Graph& graph);

BfsResult Bfs(const Graph& graph, NodeId source);
BfsResult BfsForest(const Graph& graph);

DfsResult DfsForest(const Graph& graph);

SccResult Scc(const Graph& graph);

SpResult Sp(const Graph& graph, NodeId source);

PageRankResult PageRank(const Graph& graph, int iterations = 100,
                        double damping = 0.85);

DominatingSetResult DominatingSet(const Graph& graph);

KCoreResult KCore(const Graph& graph);

DiameterResult Diameter(const Graph& graph,
                        const std::vector<NodeId>& sources);

/// Checks that `ds` covers every node of `graph` (self or an undirected
/// neighbour in the set). Exposed for tests and examples.
bool IsDominatingSet(const Graph& graph, const std::vector<bool>& in_set);

}  // namespace gorder::algo

#endif  // GORDER_ALGO_ALGORITHMS_H_
