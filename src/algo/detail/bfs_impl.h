#ifndef GORDER_ALGO_DETAIL_BFS_IMPL_H_
#define GORDER_ALGO_DETAIL_BFS_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"
#include "util/logging.h"

namespace gorder::algo::detail {

/// Expands one BFS tree rooted at `src` into `result` (levels relative to
/// the root). Nodes already levelled are skipped, so repeated calls build
/// a forest. `queue` is caller-provided scratch to avoid reallocation.
template <class Tracer>
void BfsFromImpl(const Graph& graph, NodeId src, Tracer& tracer,
                 BfsResult& result, std::vector<NodeId>& queue) {
  auto& level = result.level;
  GORDER_DCHECK(level.size() == graph.NumNodes());
  if (level[src] != kInfDistance) return;
  const auto& off = graph.out_offsets();
  queue.clear();
  queue.push_back(src);
  level[src] = 0;
  tracer.Touch(&level[src]);
  ++result.num_reached;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    tracer.Touch(&queue[head]);
    tracer.Touch(&off[u], 2);
    std::uint32_t next_level = level[u] + 1;
    auto nbrs = graph.OutNeighbors(u);
    if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
    for (NodeId v : nbrs) {
      tracer.Touch(&level[v]);
      if (level[v] == kInfDistance) {
        level[v] = next_level;
        result.sum_levels += next_level;
        ++result.num_reached;
        queue.push_back(v);
      }
    }
  }
}

/// Single-source BFS.
template <class Tracer>
BfsResult BfsImpl(const Graph& graph, NodeId src, Tracer& tracer) {
  BfsResult result;
  result.level.assign(graph.NumNodes(), kInfDistance);
  std::vector<NodeId> queue;
  queue.reserve(graph.NumNodes());
  BfsFromImpl(graph, src, tracer, result, queue);
  return result;
}

/// Full-coverage BFS forest: roots are taken in ascending node-id order
/// ("lexicographic", replication §2.1), so every node and edge is
/// processed exactly once regardless of the graph's numbering.
template <class Tracer>
BfsResult BfsForestImpl(const Graph& graph, Tracer& tracer) {
  BfsResult result;
  result.level.assign(graph.NumNodes(), kInfDistance);
  std::vector<NodeId> queue;
  queue.reserve(graph.NumNodes());
  for (NodeId src = 0; src < graph.NumNodes(); ++src) {
    BfsFromImpl(graph, src, tracer, result, queue);
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_BFS_IMPL_H_
