#ifndef GORDER_ALGO_DETAIL_BFS_IMPL_H_
#define GORDER_ALGO_DETAIL_BFS_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gorder::algo::detail {

/// Reusable scratch for the parallel level-synchronous BFS: the frontier
/// double-buffer plus per-chunk candidate lists, allocated once per
/// traversal (or forest) instead of once per level.
struct BfsParallelScratch {
  std::vector<NodeId> frontier;
  std::vector<NodeId> next;
  std::vector<std::vector<NodeId>> candidates;
};

/// Level-synchronous parallel BFS from `src`, bit-identical to the serial
/// FIFO-queue kernel below. A serial FIFO queue visits nodes level by
/// level, appending level-(L+1) nodes in (frontier scan order, adjacency
/// order); here each level runs as:
///  1. scan phase (parallel, read-only on `level`): fixed-size frontier
///     chunks collect still-unvisited out-neighbours into per-chunk
///     buffers;
///  2. merge phase (serial, chunk order): first claim of a node wins,
///     assigns its level and appends it to the next frontier.
/// Chunk boundaries depend only on the frontier size, and merge order is
/// (chunk index, within-chunk scan order) — exactly the serial discovery
/// order — so `level`, `num_reached` and `sum_levels` match the serial
/// kernel bit for bit at every thread count.
inline void BfsFromParallelImpl(const Graph& graph, NodeId src,
                                BfsResult& result,
                                BfsParallelScratch& scratch) {
  auto& level = result.level;
  GORDER_DCHECK(level.size() == graph.NumNodes());
  if (level[src] != kInfDistance) return;
  level[src] = 0;
  ++result.num_reached;
  auto& frontier = scratch.frontier;
  auto& next = scratch.next;
  frontier.assign(1, src);
  constexpr std::size_t kGrain = 1 << 9;
  std::uint32_t next_level = 1;
  while (!frontier.empty()) {
    const std::size_t fsize = frontier.size();
    next.clear();
    if (fsize <= kGrain) {
      // Single-chunk level: run the scan+merge fused and serially. Same
      // scan order, so the result is unchanged; this keeps tiny levels
      // (and whole tiny components in a forest) off the pool.
      for (std::size_t i = 0; i < fsize; ++i) {
        for (NodeId v : graph.OutNeighbors(frontier[i])) {
          if (level[v] == kInfDistance) {
            level[v] = next_level;
            result.sum_levels += next_level;
            ++result.num_reached;
            next.push_back(v);
          }
        }
      }
    } else {
      const std::size_t num_chunks = (fsize + kGrain - 1) / kGrain;
      auto& cand = scratch.candidates;
      if (cand.size() < num_chunks) cand.resize(num_chunks);
      ParallelFor(0, fsize, kGrain, [&](std::size_t b, std::size_t e) {
        auto& out = cand[b / kGrain];
        out.clear();
        for (std::size_t i = b; i < e; ++i) {
          for (NodeId v : graph.OutNeighbors(frontier[i])) {
            // Read-only pre-filter: `level` is stable during the scan,
            // so this drops everything but fresh nodes (plus cross-chunk
            // duplicates, which the merge dedups).
            if (level[v] == kInfDistance) out.push_back(v);
          }
        }
      });
      for (std::size_t c = 0; c < num_chunks; ++c) {
        for (NodeId v : cand[c]) {
          if (level[v] == kInfDistance) {
            level[v] = next_level;
            result.sum_levels += next_level;
            ++result.num_reached;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
    ++next_level;
  }
}

/// Expands one BFS tree rooted at `src` into `result` (levels relative to
/// the root). Nodes already levelled are skipped, so repeated calls build
/// a forest. `queue` is caller-provided scratch to avoid reallocation.
template <class Tracer>
void BfsFromImpl(const Graph& graph, NodeId src, Tracer& tracer,
                 BfsResult& result, std::vector<NodeId>& queue) {
  auto& level = result.level;
  GORDER_DCHECK(level.size() == graph.NumNodes());
  if (level[src] != kInfDistance) return;
  const auto& off = graph.out_offsets();
  queue.clear();
  queue.push_back(src);
  level[src] = 0;
  tracer.Touch(&level[src]);
  ++result.num_reached;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    tracer.Touch(&queue[head]);
    tracer.Touch(&off[u], 2);
    std::uint32_t next_level = level[u] + 1;
    auto nbrs = graph.OutNeighbors(u);
    if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
    for (NodeId v : nbrs) {
      tracer.Touch(&level[v]);
      if (level[v] == kInfDistance) {
        level[v] = next_level;
        result.sum_levels += next_level;
        ++result.num_reached;
        queue.push_back(v);
      }
    }
  }
}

/// Single-source BFS. Untraced instantiations run level-synchronous and
/// parallel when the thread budget exceeds one; the cache-traced path is
/// always the serial queue (one simulated access stream).
template <class Tracer>
BfsResult BfsImpl(const Graph& graph, NodeId src, Tracer& tracer) {
  BfsResult result;
  result.level.assign(graph.NumNodes(), kInfDistance);
  if constexpr (!Tracer::kEnabled) {
    if (NumThreads() > 1) {
      BfsParallelScratch scratch;
      scratch.frontier.reserve(graph.NumNodes());
      scratch.next.reserve(graph.NumNodes());
      BfsFromParallelImpl(graph, src, result, scratch);
      return result;
    }
  }
  std::vector<NodeId> queue;
  queue.reserve(graph.NumNodes());
  BfsFromImpl(graph, src, tracer, result, queue);
  return result;
}

/// Full-coverage BFS forest: roots are taken in ascending node-id order
/// ("lexicographic", replication §2.1), so every node and edge is
/// processed exactly once regardless of the graph's numbering.
template <class Tracer>
BfsResult BfsForestImpl(const Graph& graph, Tracer& tracer) {
  BfsResult result;
  result.level.assign(graph.NumNodes(), kInfDistance);
  if constexpr (!Tracer::kEnabled) {
    if (NumThreads() > 1) {
      BfsParallelScratch scratch;
      scratch.frontier.reserve(graph.NumNodes());
      scratch.next.reserve(graph.NumNodes());
      for (NodeId src = 0; src < graph.NumNodes(); ++src) {
        BfsFromParallelImpl(graph, src, result, scratch);
      }
      return result;
    }
  }
  std::vector<NodeId> queue;
  queue.reserve(graph.NumNodes());
  for (NodeId src = 0; src < graph.NumNodes(); ++src) {
    BfsFromImpl(graph, src, tracer, result, queue);
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_BFS_IMPL_H_
