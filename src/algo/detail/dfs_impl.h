#ifndef GORDER_ALGO_DETAIL_DFS_IMPL_H_
#define GORDER_ALGO_DETAIL_DFS_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Iterative depth-first search. Children are explored in ascending
/// neighbour-id order (CSR lists are sorted), matching the replication's
/// "lexicographic" selection. Roots in ascending id order form a forest.
template <class Tracer>
DfsResult DfsForestImpl(const Graph& graph, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  const auto& off = graph.out_offsets();
  const auto& nbr = graph.out_neighbors();
  DfsResult result;
  result.discovery.assign(n, kInvalidNode);
  NodeId clock = 0;

  struct Frame {
    NodeId node;
    EdgeId cursor;
  };
  std::vector<Frame> stack;
  stack.reserve(1024);

  for (NodeId root = 0; root < n; ++root) {
    tracer.Touch(&result.discovery[root]);
    if (result.discovery[root] != kInvalidNode) continue;
    result.discovery[root] = clock++;
    ++result.num_reached;
    tracer.Touch(&off[root], 2);
    stack.push_back({root, off[root]});
    while (!stack.empty()) {
      Frame& top = stack.back();
      tracer.Touch(&top);
      if (top.cursor == off[top.node + 1]) {
        // Postorder event: fold the node into the finish checksum.
        result.finish_checksum =
            result.finish_checksum * 1099511628211ULL + top.node;
        stack.pop_back();
        continue;
      }
      NodeId v = nbr[top.cursor++];
      tracer.Touch(&nbr[top.cursor - 1]);
      tracer.Touch(&result.discovery[v]);
      if (result.discovery[v] == kInvalidNode) {
        result.discovery[v] = clock++;
        ++result.num_reached;
        tracer.Touch(&off[v], 2);
        stack.push_back({v, off[v]});
      }
    }
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_DFS_IMPL_H_
