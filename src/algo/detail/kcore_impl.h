#ifndef GORDER_ALGO_DETAIL_KCORE_IMPL_H_
#define GORDER_ALGO_DETAIL_KCORE_IMPL_H_

#include <algorithm>
#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Core decomposition by the O(m) bucket-peeling algorithm of Batagelj &
/// Zaversnik (the paper's cited method): repeatedly remove the node of
/// minimum remaining degree; its degree at removal is its core number.
/// Degrees are over the undirected multiset view (out + in), consistent
/// with the other symmetric workloads in this repo.
template <class Tracer>
KCoreResult KCoreImpl(const Graph& graph, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  KCoreResult result;
  result.core.assign(n, 0);
  if (n == 0) return result;

  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = graph.UndirectedDegree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // bin[d] = start index in `vert` of the block of nodes with degree d.
  std::vector<NodeId> bin(max_deg + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (NodeId d = 0; d <= max_deg; ++d) bin[d + 1] += bin[d];
  std::vector<NodeId> vert(n);   // nodes sorted by current degree
  std::vector<NodeId> pos(n);    // position of each node in `vert`
  {
    std::vector<NodeId> cursor(bin.begin(), bin.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      vert[pos[v]] = v;
    }
  }

  auto decrease_degree = [&](NodeId u) {
    // Swap u with the first node of its degree block, then shrink the
    // block boundary: u is now filed under degree deg[u] - 1.
    NodeId du = deg[u];
    NodeId pu = pos[u];
    NodeId pw = bin[du];
    NodeId w = vert[pw];
    if (u != w) {
      std::swap(vert[pu], vert[pw]);
      pos[u] = pw;
      pos[w] = pu;
    }
    ++bin[du];
    --deg[u];
    tracer.Touch(&deg[u]);
    tracer.Touch(&pos[u]);
  };

  for (NodeId i = 0; i < n; ++i) {
    NodeId v = vert[i];
    tracer.Touch(&vert[i]);
    result.core[v] = deg[v];
    tracer.Touch(&result.core[v]);
    result.max_core = std::max(result.max_core, deg[v]);
    auto peel = [&](std::span<const NodeId> nbrs) {
      if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
      for (NodeId u : nbrs) {
        tracer.Touch(&deg[u]);
        if (deg[u] > deg[v]) decrease_degree(u);
      }
    };
    peel(graph.OutNeighbors(v));
    peel(graph.InNeighbors(v));
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_KCORE_IMPL_H_
