#ifndef GORDER_ALGO_DETAIL_SP_IMPL_H_
#define GORDER_ALGO_DETAIL_SP_IMPL_H_

#include <utility>
#include <vector>

#include "algo/results.h"
#include "graph/graph.h"
#include "util/parallel.h"

namespace gorder::algo::detail {

/// Round-parallel Bellman-Ford, bit-identical to the serial kernel below.
/// Each round:
///  1. relax phase (parallel, read-only on `dist`): fixed-size chunks of
///     the active list scan their out-edges and record improving
///     proposals (v, dist[u] + 1) into per-chunk buffers;
///  2. commit phase (serial, chunk order): proposals apply in (chunk
///     index, within-chunk scan order) — the serial kernel's exact scan
///     order — updating `dist`, `num_reached`, `max_dist` and the next
///     active list with identical side effects.
/// The read-only relax phase is safe because with unit weights from a
/// single source every active node of round r has dist r-1 and every
/// value assigned in round r is exactly r, so the serial kernel never
/// observes an in-round write either — round-snapshot semantics and the
/// serial semantics coincide, which the differential tests pin down.
inline SpResult SpParallelImpl(const Graph& graph, NodeId src) {
  const NodeId n = graph.NumNodes();
  SpResult result;
  result.dist.assign(n, kInfDistance);
  result.dist[src] = 0;
  result.num_reached = 1;

  std::vector<NodeId> active{src};
  std::vector<NodeId> next_active;
  std::vector<bool> in_next(n, false);
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> proposals;
  auto& dist = result.dist;
  constexpr std::size_t kGrain = 1 << 9;
  while (!active.empty()) {
    ++result.num_rounds;
    const std::size_t asize = active.size();
    const std::size_t num_chunks = (asize + kGrain - 1) / kGrain;
    if (proposals.size() < num_chunks) proposals.resize(num_chunks);
    ParallelFor(0, asize, kGrain, [&](std::size_t b, std::size_t e) {
      auto& out = proposals[b / kGrain];
      out.clear();
      for (std::size_t i = b; i < e; ++i) {
        NodeId u = active[i];
        std::uint32_t du = dist[u];
        for (NodeId v : graph.OutNeighbors(u)) {
          if (dist[v] > du + 1) out.push_back({v, du + 1});
        }
      }
    });
    next_active.clear();
    for (std::size_t c = 0; c < num_chunks; ++c) {
      for (const auto& [v, d] : proposals[c]) {
        if (dist[v] > d) {
          if (dist[v] == kInfDistance) ++result.num_reached;
          dist[v] = d;
          result.max_dist = std::max(result.max_dist, d);
          if (!in_next[v]) {
            in_next[v] = true;
            next_active.push_back(v);
          }
        }
      }
    }
    active.swap(next_active);
    for (NodeId v : active) in_next[v] = false;
  }
  return result;
}

/// Bellman-Ford single-source shortest paths with unit edge weights and
/// the "simple optimisation" of only relaxing out of nodes whose distance
/// changed in the previous round (replication §2.1). Complexity
/// O(delta * m) where delta is the source's eccentricity. The paper keeps
/// Bellman-Ford (rather than BFS) deliberately, as a representative
/// relaxation workload; so do we.
///
/// Untraced instantiations relax round-parallel when the thread budget
/// exceeds one; the cache-traced path always runs this serial body.
template <class Tracer>
SpResult SpImpl(const Graph& graph, NodeId src, Tracer& tracer) {
  if constexpr (!Tracer::kEnabled) {
    if (NumThreads() > 1) return SpParallelImpl(graph, src);
  }
  const NodeId n = graph.NumNodes();
  const auto& off = graph.out_offsets();
  SpResult result;
  result.dist.assign(n, kInfDistance);
  result.dist[src] = 0;
  result.num_reached = 1;

  std::vector<NodeId> active{src};
  std::vector<NodeId> next_active;
  std::vector<bool> in_next(n, false);
  auto& dist = result.dist;
  while (!active.empty()) {
    ++result.num_rounds;
    next_active.clear();
    for (NodeId u : active) {
      tracer.Touch(&u);
      tracer.Touch(&off[u], 2);
      std::uint32_t du = dist[u];
      tracer.Touch(&dist[u]);
      auto nbrs = graph.OutNeighbors(u);
      if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
      for (NodeId v : nbrs) {
        tracer.Touch(&dist[v]);
        if (dist[v] > du + 1) {
          if (dist[v] == kInfDistance) ++result.num_reached;
          dist[v] = du + 1;
          result.max_dist = std::max(result.max_dist, du + 1);
          if (!in_next[v]) {
            in_next[v] = true;
            next_active.push_back(v);
          }
        }
      }
    }
    active.swap(next_active);
    for (NodeId v : active) in_next[v] = false;
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_SP_IMPL_H_
