#ifndef GORDER_ALGO_DETAIL_SP_IMPL_H_
#define GORDER_ALGO_DETAIL_SP_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Bellman-Ford single-source shortest paths with unit edge weights and
/// the "simple optimisation" of only relaxing out of nodes whose distance
/// changed in the previous round (replication §2.1). Complexity
/// O(delta * m) where delta is the source's eccentricity. The paper keeps
/// Bellman-Ford (rather than BFS) deliberately, as a representative
/// relaxation workload; so do we.
template <class Tracer>
SpResult SpImpl(const Graph& graph, NodeId src, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  const auto& off = graph.out_offsets();
  SpResult result;
  result.dist.assign(n, kInfDistance);
  result.dist[src] = 0;
  result.num_reached = 1;

  std::vector<NodeId> active{src};
  std::vector<NodeId> next_active;
  std::vector<bool> in_next(n, false);
  auto& dist = result.dist;
  while (!active.empty()) {
    ++result.num_rounds;
    next_active.clear();
    for (NodeId u : active) {
      tracer.Touch(&u);
      tracer.Touch(&off[u], 2);
      std::uint32_t du = dist[u];
      tracer.Touch(&dist[u]);
      auto nbrs = graph.OutNeighbors(u);
      if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
      for (NodeId v : nbrs) {
        tracer.Touch(&dist[v]);
        if (dist[v] > du + 1) {
          if (dist[v] == kInfDistance) ++result.num_reached;
          dist[v] = du + 1;
          result.max_dist = std::max(result.max_dist, du + 1);
          if (!in_next[v]) {
            in_next[v] = true;
            next_active.push_back(v);
          }
        }
      }
    }
    active.swap(next_active);
    for (NodeId v : active) in_next[v] = false;
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_SP_IMPL_H_
