#ifndef GORDER_ALGO_DETAIL_DOMSET_IMPL_H_
#define GORDER_ALGO_DETAIL_DOMSET_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"
#include "util/logging.h"

namespace gorder::algo::detail {

/// Greedy dominating set (replication §2.1): repeatedly select the node
/// whose closed undirected neighbourhood covers the most still-uncovered
/// nodes, then mark that neighbourhood covered. Implemented with a lazy
/// bucket queue: gains only decrease, so a popped node whose recorded
/// gain is stale is re-filed at its true (lower) gain. The undirected
/// neighbourhood is out(v) + in(v); a reciprocal neighbour appearing in
/// both lists only counts once for coverage (gain recount dedups via the
/// covered bit check on each occurrence at most adds per uncovered node
/// twice, which only perturbs tie-breaking, never validity).
template <class Tracer>
DominatingSetResult DomSetImpl(const Graph& graph, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  DominatingSetResult result;
  result.in_set.assign(n, false);
  if (n == 0) return result;

  std::vector<std::uint8_t> covered(n, 0);
  NodeId num_covered = 0;

  // Recomputes the exact number of uncovered nodes in v's closed
  // neighbourhood (self + out + in, deduplicated via a scratch mark).
  std::vector<NodeId> scratch;
  std::vector<std::uint8_t> marked(n, 0);
  auto gain_of = [&](NodeId v) -> NodeId {
    NodeId gain = 0;
    scratch.clear();
    auto consider = [&](NodeId w) {
      tracer.Touch(&marked[w]);
      if (marked[w]) return;
      marked[w] = 1;
      scratch.push_back(w);
      tracer.Touch(&covered[w]);
      if (!covered[w]) ++gain;
    };
    consider(v);
    auto outs = graph.OutNeighbors(v);
    if (!outs.empty()) tracer.Touch(outs.data(), outs.size());
    for (NodeId w : outs) consider(w);
    auto ins = graph.InNeighbors(v);
    if (!ins.empty()) tracer.Touch(ins.data(), ins.size());
    for (NodeId w : ins) consider(w);
    for (NodeId w : scratch) marked[w] = 0;
    return gain;
  };

  NodeId max_gain = 0;
  std::vector<NodeId> initial_gain(n);
  for (NodeId v = 0; v < n; ++v) {
    // Initial gain = closed-neighbourhood size; exact dedup not needed
    // here because the lazy pop recomputes exactly before selecting.
    initial_gain[v] = 1 + graph.UndirectedDegree(v);
    if (initial_gain[v] > max_gain) max_gain = initial_gain[v];
  }
  std::vector<std::vector<NodeId>> buckets(max_gain + 1);
  for (NodeId v = 0; v < n; ++v) buckets[initial_gain[v]].push_back(v);

  NodeId cur = max_gain;
  while (num_covered < n) {
    while (cur > 0 && buckets[cur].empty()) --cur;
    GORDER_DCHECK(cur > 0);
    NodeId v = buckets[cur].back();
    buckets[cur].pop_back();
    tracer.Touch(&v);
    NodeId g = gain_of(v);
    if (g < cur) {
      // Stale entry: re-file at the true gain (never selects gain-0).
      if (g > 0) buckets[g].push_back(v);
      continue;
    }
    // Select v: cover its closed neighbourhood.
    result.in_set[v] = true;
    ++result.set_size;
    auto cover = [&](NodeId w) {
      tracer.Touch(&covered[w]);
      if (!covered[w]) {
        covered[w] = 1;
        ++num_covered;
      }
    };
    cover(v);
    for (NodeId w : graph.OutNeighbors(v)) cover(w);
    for (NodeId w : graph.InNeighbors(v)) cover(w);
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_DOMSET_IMPL_H_
