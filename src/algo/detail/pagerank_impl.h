#ifndef GORDER_ALGO_DETAIL_PAGERANK_IMPL_H_
#define GORDER_ALGO_DETAIL_PAGERANK_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// PageRank by power iteration (Page et al. 1999), pull formulation:
/// each node gathers `rank[u] / outdeg(u)` from its in-neighbours. The
/// gather loop's random reads of `contrib[u]` are the cache-critical
/// pattern of the whole benchmark suite (paper Tables 3/4 measure this
/// workload). Dangling-node mass is redistributed uniformly so total
/// mass stays 1.
template <class Tracer>
PageRankResult PageRankImpl(const Graph& graph, int iterations,
                            double damping, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  const auto& out_off = graph.out_offsets();
  const auto& in_off = graph.in_offsets();
  PageRankResult result;
  result.iterations = iterations;
  if (n == 0) return result;

  auto& rank = result.rank;
  rank.assign(n, 1.0 / n);
  std::vector<double> contrib(n, 0.0);

  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      tracer.Touch(&out_off[u], 2);
      EdgeId deg = out_off[u + 1] - out_off[u];
      tracer.Touch(&rank[u]);
      if (deg == 0) {
        dangling += rank[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank[u] / static_cast<double>(deg);
      }
      tracer.Touch(&contrib[u]);
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (NodeId v = 0; v < n; ++v) {
      tracer.Touch(&in_off[v], 2);
      double sum = 0.0;
      auto nbrs = graph.InNeighbors(v);
      if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
      for (NodeId u : nbrs) {
        tracer.Touch(&contrib[u]);
        sum += contrib[u];
      }
      rank[v] = base + damping * sum;
      tracer.Touch(&rank[v]);
    }
  }
  for (double r : rank) result.total_mass += r;
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_PAGERANK_IMPL_H_
