#ifndef GORDER_ALGO_DETAIL_PAGERANK_IMPL_H_
#define GORDER_ALGO_DETAIL_PAGERANK_IMPL_H_

#include <vector>

#include "algo/results.h"
#include "graph/graph.h"
#include "util/parallel.h"

namespace gorder::algo::detail {

/// Parallel pull PageRank on the shared pool. Bit-identical to the serial
/// kernel below at any thread count:
///  - `contrib[u]` and `rank[v]` writes are range-disjoint (one owner per
///    node slot), and each node's in-neighbour sum keeps the serial
///    left-to-right association because a node is gathered by exactly one
///    chunk.
///  - The only cross-node floating-point reduction, the dangling mass, is
///    summed serially over a precomputed ascending list of zero-out-degree
///    nodes — the exact addition sequence of the serial loop, so no
///    chunk-combining reassociation can perturb the low bits.
inline PageRankResult PageRankParallelImpl(const Graph& graph, int iterations,
                                           double damping) {
  const NodeId n = graph.NumNodes();
  const auto& out_off = graph.out_offsets();
  PageRankResult result;
  result.iterations = iterations;
  if (n == 0) return result;

  auto& rank = result.rank;
  rank.assign(n, 1.0 / n);
  std::vector<double> contrib(n, 0.0);
  std::vector<NodeId> dangling_nodes;
  for (NodeId u = 0; u < n; ++u) {
    if (out_off[u + 1] == out_off[u]) dangling_nodes.push_back(u);
  }

  constexpr std::size_t kGrain = 1 << 11;
  for (int it = 0; it < iterations; ++it) {
    ParallelFor(0, n, kGrain, [&](std::size_t b, std::size_t e) {
      for (std::size_t u = b; u < e; ++u) {
        EdgeId deg = out_off[u + 1] - out_off[u];
        contrib[u] =
            deg == 0 ? 0.0 : rank[u] / static_cast<double>(deg);
      }
    });
    double dangling = 0.0;
    for (NodeId u : dangling_nodes) dangling += rank[u];
    const double base = (1.0 - damping) / n + damping * dangling / n;
    ParallelFor(0, n, kGrain, [&](std::size_t b, std::size_t e) {
      for (std::size_t v = b; v < e; ++v) {
        double sum = 0.0;
        for (NodeId u : graph.InNeighbors(static_cast<NodeId>(v))) {
          sum += contrib[u];
        }
        rank[v] = base + damping * sum;
      }
    });
  }
  for (double r : rank) result.total_mass += r;
  return result;
}

/// PageRank by power iteration (Page et al. 1999), pull formulation:
/// each node gathers `rank[u] / outdeg(u)` from its in-neighbours. The
/// gather loop's random reads of `contrib[u]` are the cache-critical
/// pattern of the whole benchmark suite (paper Tables 3/4 measure this
/// workload). Dangling-node mass is redistributed uniformly so total
/// mass stays 1.
///
/// The untraced (timing) instantiation runs the parallel kernel above
/// whenever the thread budget exceeds one; the cache-traced path is
/// inherently sequential (one simulated access stream) and always takes
/// the serial body.
template <class Tracer>
PageRankResult PageRankImpl(const Graph& graph, int iterations,
                            double damping, Tracer& tracer) {
  if constexpr (!Tracer::kEnabled) {
    if (NumThreads() > 1) {
      return PageRankParallelImpl(graph, iterations, damping);
    }
  }
  const NodeId n = graph.NumNodes();
  const auto& out_off = graph.out_offsets();
  const auto& in_off = graph.in_offsets();
  PageRankResult result;
  result.iterations = iterations;
  if (n == 0) return result;

  auto& rank = result.rank;
  rank.assign(n, 1.0 / n);
  std::vector<double> contrib(n, 0.0);

  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      tracer.Touch(&out_off[u], 2);
      EdgeId deg = out_off[u + 1] - out_off[u];
      tracer.Touch(&rank[u]);
      if (deg == 0) {
        dangling += rank[u];
        contrib[u] = 0.0;
      } else {
        contrib[u] = rank[u] / static_cast<double>(deg);
      }
      tracer.Touch(&contrib[u]);
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (NodeId v = 0; v < n; ++v) {
      tracer.Touch(&in_off[v], 2);
      double sum = 0.0;
      auto nbrs = graph.InNeighbors(v);
      if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
      for (NodeId u : nbrs) {
        tracer.Touch(&contrib[u]);
        sum += contrib[u];
      }
      rank[v] = base + damping * sum;
      tracer.Touch(&rank[v]);
    }
  }
  for (double r : rank) result.total_mass += r;
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_PAGERANK_IMPL_H_
