#ifndef GORDER_ALGO_DETAIL_SCC_IMPL_H_
#define GORDER_ALGO_DETAIL_SCC_IMPL_H_

#include <algorithm>
#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Tarjan's strongly-connected-components algorithm (SICOMP 1972),
/// iterative formulation with an explicit call stack so million-node
/// graphs cannot overflow the native stack.
template <class Tracer>
SccResult SccImpl(const Graph& graph, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  const auto& off = graph.out_offsets();
  const auto& nbr = graph.out_neighbors();

  constexpr NodeId kUnvisited = kInvalidNode;
  std::vector<NodeId> index(n, kUnvisited);
  std::vector<NodeId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  scc_stack.reserve(1024);

  SccResult result;
  result.component.assign(n, kInvalidNode);
  NodeId next_index = 0;
  std::vector<NodeId> component_size;

  struct Frame {
    NodeId node;
    EdgeId cursor;
  };
  std::vector<Frame> call_stack;
  call_stack.reserve(1024);

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, off[root]});
    index[root] = lowlink[root] = next_index++;
    tracer.Touch(&index[root]);
    tracer.Touch(&lowlink[root]);
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& top = call_stack.back();
      NodeId u = top.node;
      tracer.Touch(&top);
      if (top.cursor < off[u + 1]) {
        NodeId v = nbr[top.cursor++];
        tracer.Touch(&nbr[top.cursor - 1]);
        tracer.Touch(&index[v]);
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          tracer.Touch(&lowlink[v]);
          scc_stack.push_back(v);
          on_stack[v] = true;
          tracer.Touch(&off[v], 2);
          call_stack.push_back({v, off[v]});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      // All children explored: maybe emit a component, then return to
      // the parent, propagating the lowlink.
      if (lowlink[u] == index[u]) {
        NodeId comp = result.num_components++;
        NodeId size = 0;
        NodeId w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.component[w] = comp;
          tracer.Touch(&result.component[w]);
          ++size;
        } while (w != u);
        component_size.push_back(size);
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        NodeId parent = call_stack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        tracer.Touch(&lowlink[parent]);
      }
    }
  }
  if (!component_size.empty()) {
    result.largest_component =
        *std::max_element(component_size.begin(), component_size.end());
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_SCC_IMPL_H_
