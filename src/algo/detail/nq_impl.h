#ifndef GORDER_ALGO_DETAIL_NQ_IMPL_H_
#define GORDER_ALGO_DETAIL_NQ_IMPL_H_

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Neighbour Query: q_u = sum of out-degrees of u's out-neighbours.
/// The degree lookup `off[v+1] - off[v]` is a random access keyed by the
/// neighbour id — the access pattern graph ordering optimises.
template <class Tracer>
NqResult NqImpl(const Graph& graph, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  const auto& off = graph.out_offsets();
  NqResult result;
  result.q.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    tracer.Touch(&off[u], 2);
    auto nbrs = graph.OutNeighbors(u);
    if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
    std::uint64_t sum = 0;
    for (NodeId v : nbrs) {
      tracer.Touch(&off[v], 2);
      sum += off[v + 1] - off[v];
    }
    result.q[u] = sum;
    tracer.Touch(&result.q[u]);
    result.checksum += sum;
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_NQ_IMPL_H_
