#ifndef GORDER_ALGO_DETAIL_EXTRA_IMPL_H_
#define GORDER_ALGO_DETAIL_EXTRA_IMPL_H_

#include <algorithm>
#include <vector>

#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Triangle counting over the undirected simple view, node-iterator
/// style with sorted-merge intersections. The inner merge reads two
/// neighbour lists whose *contents* are node ids used to index further
/// lists — a heavily ordering-sensitive workload, added as an extension
/// ("its consistent efficiency ... suggests it could speed up other
/// graph algorithms as well", replication §4).
///
/// To avoid materialising an undirected CSR, each directed edge (u, v)
/// is treated as the unordered pair {u, v} and deduplicated by only
/// counting pairs u < v; a triangle {a < b < c} is counted once.
template <class Tracer>
std::uint64_t TriangleCountImpl(const Graph& graph, Tracer& tracer,
                                std::vector<std::vector<NodeId>>* scratch) {
  const NodeId n = graph.NumNodes();
  // Build per-node sorted lists of *higher-id* undirected neighbours.
  std::vector<std::vector<NodeId>>& up = *scratch;
  up.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto add = [&](NodeId w) {
      if (w > v) up[v].push_back(w);
    };
    for (NodeId w : graph.OutNeighbors(v)) add(w);
    for (NodeId w : graph.InNeighbors(v)) add(w);
    std::sort(up[v].begin(), up[v].end());
    up[v].erase(std::unique(up[v].begin(), up[v].end()), up[v].end());
  }
  std::uint64_t triangles = 0;
  for (NodeId a = 0; a < n; ++a) {
    const auto& na = up[a];
    if (!na.empty()) tracer.Touch(na.data(), na.size());
    for (NodeId b : na) {
      const auto& nb = up[b];
      if (!nb.empty()) tracer.Touch(nb.data(), nb.size());
      // |up[a] ∩ up[b]| counts c with a < b < c adjacent to both.
      auto ia = na.begin();
      auto ib = nb.begin();
      while (ia != na.end() && ib != nb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          ++triangles;
          ++ia;
          ++ib;
        }
      }
    }
  }
  return triangles;
}

/// Weakly connected components via breadth-first label flooding over
/// the undirected view. Returns component ids (dense, by discovery).
template <class Tracer>
SccResult WccImpl(const Graph& graph, Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  SccResult result;
  result.component.assign(n, kInvalidNode);
  std::vector<NodeId> queue;
  queue.reserve(n);
  NodeId largest = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (result.component[root] != kInvalidNode) continue;
    NodeId comp = result.num_components++;
    NodeId size = 0;
    queue.clear();
    queue.push_back(root);
    result.component[root] = comp;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      NodeId v = queue[head];
      tracer.Touch(&queue[head]);
      ++size;
      auto visit = [&](std::span<const NodeId> nbrs) {
        if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
        for (NodeId w : nbrs) {
          tracer.Touch(&result.component[w]);
          if (result.component[w] == kInvalidNode) {
            result.component[w] = comp;
            queue.push_back(w);
          }
        }
      };
      visit(graph.OutNeighbors(v));
      visit(graph.InNeighbors(v));
    }
    largest = std::max(largest, size);
  }
  result.largest_component = largest;
  return result;
}

/// Synchronous label propagation community detection (Raghavan et al.):
/// each round every node adopts the most frequent label among its
/// undirected neighbours (ties: smallest label). Stops after
/// `max_rounds` or when no label changes. The per-neighbour label
/// lookups are random accesses keyed by node id — another
/// ordering-sensitive iterative workload.
template <class Tracer>
SccResult LabelPropagationImpl(const Graph& graph, int max_rounds,
                               Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> label(n);
  for (NodeId v = 0; v < n; ++v) label[v] = v;
  std::vector<NodeId> count(n, 0);
  std::vector<NodeId> touched;
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (NodeId v = 0; v < n; ++v) {
      touched.clear();
      auto tally = [&](std::span<const NodeId> nbrs) {
        if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
        for (NodeId w : nbrs) {
          tracer.Touch(&label[w]);
          NodeId l = label[w];
          if (count[l] == 0) touched.push_back(l);
          ++count[l];
        }
      };
      tally(graph.OutNeighbors(v));
      tally(graph.InNeighbors(v));
      if (touched.empty()) continue;
      NodeId best = label[v];
      NodeId best_count = 0;
      for (NodeId l : touched) {
        if (count[l] > best_count ||
            (count[l] == best_count && l < best)) {
          best = l;
          best_count = count[l];
        }
        count[l] = 0;
      }
      tracer.Touch(&label[v]);
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Compact labels to dense component ids.
  SccResult result;
  result.component.assign(n, kInvalidNode);
  std::vector<NodeId> remap(n, kInvalidNode);
  std::vector<NodeId> sizes;
  for (NodeId v = 0; v < n; ++v) {
    NodeId l = label[v];
    if (remap[l] == kInvalidNode) {
      remap[l] = result.num_components++;
      sizes.push_back(0);
    }
    result.component[v] = remap[l];
    ++sizes[remap[l]];
  }
  for (NodeId s : sizes) {
    result.largest_component = std::max(result.largest_component, s);
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_EXTRA_IMPL_H_
