#ifndef GORDER_ALGO_DETAIL_EXTRA_IMPL_H_
#define GORDER_ALGO_DETAIL_EXTRA_IMPL_H_

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "algo/results.h"
#include "graph/graph.h"
#include "util/parallel.h"

namespace gorder::algo::detail {

/// Builds the per-node sorted lists of higher-id undirected neighbours
/// shared by the serial and parallel triangle kernels. Writes to `up[v]`
/// are range-disjoint (one owner per node), so the parallel fill is
/// bit-identical to a serial one.
inline void BuildUpLists(const Graph& graph,
                         std::vector<std::vector<NodeId>>& up) {
  const NodeId n = graph.NumNodes();
  up.assign(n, {});
  ParallelFor(0, n, 1 << 11, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      NodeId v = static_cast<NodeId>(i);
      auto add = [&](NodeId w) {
        if (w > v) up[v].push_back(w);
      };
      for (NodeId w : graph.OutNeighbors(v)) add(w);
      for (NodeId w : graph.InNeighbors(v)) add(w);
      std::sort(up[v].begin(), up[v].end());
      up[v].erase(std::unique(up[v].begin(), up[v].end()), up[v].end());
    }
  });
}

/// Parallel triangle count: after the parallel up-list build, node chunks
/// count into per-chunk partials combined in chunk order. The total is an
/// integer sum, so it is identical to the serial kernel regardless of
/// chunking.
inline std::uint64_t TriangleCountParallelImpl(
    const Graph& graph, std::vector<std::vector<NodeId>>* scratch) {
  const NodeId n = graph.NumNodes();
  std::vector<std::vector<NodeId>>& up = *scratch;
  BuildUpLists(graph, up);
  constexpr std::size_t kGrain = 1 << 8;
  const std::size_t num_chunks = n == 0 ? 0 : (n + kGrain - 1) / kGrain;
  std::vector<std::uint64_t> partial(num_chunks, 0);
  ParallelFor(0, n, kGrain, [&](std::size_t b, std::size_t e) {
    std::uint64_t triangles = 0;
    for (std::size_t i = b; i < e; ++i) {
      const auto& na = up[i];
      for (NodeId bb : na) {
        const auto& nb = up[bb];
        auto ia = na.begin();
        auto ib = nb.begin();
        while (ia != na.end() && ib != nb.end()) {
          if (*ia < *ib) {
            ++ia;
          } else if (*ib < *ia) {
            ++ib;
          } else {
            ++triangles;
            ++ia;
            ++ib;
          }
        }
      }
    }
    partial[b / kGrain] = triangles;
  });
  return std::accumulate(partial.begin(), partial.end(),
                         std::uint64_t{0});
}

/// Parallel weakly connected components by deterministic min-hooking plus
/// pointer jumping (Shiloach-Vishkin style). Every phase computes its new
/// state from a snapshot of the old (double-buffered, range-disjoint
/// writes), and `min` is order-independent, so `parent` converges to the
/// minimum node id of each component identically at every thread count.
/// The final serial compaction scans nodes ascending and assigns dense
/// component ids in first-seen order — a component is first seen at its
/// minimum node, which is exactly the discovery order of the serial BFS
/// flooding kernel, so the output is bit-identical to it.
inline SccResult WccParallelImpl(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  SccResult result;
  result.component.assign(n, kInvalidNode);
  if (n == 0) return result;

  constexpr std::size_t kGrain = 1 << 11;
  std::vector<NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), NodeId{0});
  std::vector<NodeId> next(n);
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    // Hook: next[v] = min parent over v's closed undirected neighbourhood,
    // all reads from the stable `parent` snapshot.
    changed.store(false, std::memory_order_relaxed);
    ParallelFor(0, n, kGrain, [&](std::size_t b, std::size_t e) {
      bool local_changed = false;
      for (std::size_t i = b; i < e; ++i) {
        NodeId v = static_cast<NodeId>(i);
        NodeId m = parent[v];
        for (NodeId u : graph.OutNeighbors(v)) m = std::min(m, parent[u]);
        for (NodeId u : graph.InNeighbors(v)) m = std::min(m, parent[u]);
        next[v] = m;
        if (m != parent[v]) local_changed = true;
      }
      if (local_changed) changed.store(true, std::memory_order_relaxed);
    });
    parent.swap(next);
    // Jump: shortcut parent chains to their roots (each pass halves the
    // chain depth; `parent[x] <= x` always, so passes strictly decrease).
    std::atomic<bool> jumped{true};
    while (jumped.load(std::memory_order_relaxed)) {
      jumped.store(false, std::memory_order_relaxed);
      ParallelFor(0, n, kGrain, [&](std::size_t b, std::size_t e) {
        bool local_jumped = false;
        for (std::size_t i = b; i < e; ++i) {
          NodeId p = parent[i];
          NodeId pp = parent[p];
          next[i] = pp;
          if (pp != p) local_jumped = true;
        }
        if (local_jumped) jumped.store(true, std::memory_order_relaxed);
      });
      parent.swap(next);
    }
  }

  // Compact min-labels to dense ids in ascending first-seen order.
  std::vector<NodeId> remap(n, kInvalidNode);
  std::vector<NodeId> sizes;
  for (NodeId v = 0; v < n; ++v) {
    NodeId p = parent[v];
    if (remap[p] == kInvalidNode) {
      remap[p] = result.num_components++;
      sizes.push_back(0);
    }
    result.component[v] = remap[p];
    ++sizes[remap[p]];
  }
  for (NodeId s : sizes) {
    result.largest_component = std::max(result.largest_component, s);
  }
  return result;
}

/// Triangle counting over the undirected simple view, node-iterator
/// style with sorted-merge intersections. The inner merge reads two
/// neighbour lists whose *contents* are node ids used to index further
/// lists — a heavily ordering-sensitive workload, added as an extension
/// ("its consistent efficiency ... suggests it could speed up other
/// graph algorithms as well", replication §4).
///
/// To avoid materialising an undirected CSR, each directed edge (u, v)
/// is treated as the unordered pair {u, v} and deduplicated by only
/// counting pairs u < v; a triangle {a < b < c} is counted once.
///
/// Untraced instantiations count chunk-parallel when the thread budget
/// exceeds one; the cache-traced path keeps the serial scan (one
/// simulated access stream). The up-list build is untraced either way.
template <class Tracer>
std::uint64_t TriangleCountImpl(const Graph& graph, Tracer& tracer,
                                std::vector<std::vector<NodeId>>* scratch) {
  if constexpr (!Tracer::kEnabled) {
    if (NumThreads() > 1) return TriangleCountParallelImpl(graph, scratch);
  }
  const NodeId n = graph.NumNodes();
  // Build per-node sorted lists of *higher-id* undirected neighbours.
  std::vector<std::vector<NodeId>>& up = *scratch;
  BuildUpLists(graph, up);
  std::uint64_t triangles = 0;
  for (NodeId a = 0; a < n; ++a) {
    const auto& na = up[a];
    if (!na.empty()) tracer.Touch(na.data(), na.size());
    for (NodeId b : na) {
      const auto& nb = up[b];
      if (!nb.empty()) tracer.Touch(nb.data(), nb.size());
      // |up[a] ∩ up[b]| counts c with a < b < c adjacent to both.
      auto ia = na.begin();
      auto ib = nb.begin();
      while (ia != na.end() && ib != nb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          ++triangles;
          ++ia;
          ++ib;
        }
      }
    }
  }
  return triangles;
}

/// Weakly connected components via breadth-first label flooding over
/// the undirected view. Returns component ids (dense, by discovery;
/// equivalently ordered by each component's minimum node id, since the
/// ascending root scan discovers a component at its smallest node).
///
/// Untraced instantiations run the hooking/pointer-jumping kernel when
/// the thread budget exceeds one; the cache-traced path always floods
/// serially.
template <class Tracer>
SccResult WccImpl(const Graph& graph, Tracer& tracer) {
  if constexpr (!Tracer::kEnabled) {
    if (NumThreads() > 1) return WccParallelImpl(graph);
  }
  const NodeId n = graph.NumNodes();
  SccResult result;
  result.component.assign(n, kInvalidNode);
  std::vector<NodeId> queue;
  queue.reserve(n);
  NodeId largest = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (result.component[root] != kInvalidNode) continue;
    NodeId comp = result.num_components++;
    NodeId size = 0;
    queue.clear();
    queue.push_back(root);
    result.component[root] = comp;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      NodeId v = queue[head];
      tracer.Touch(&queue[head]);
      ++size;
      auto visit = [&](std::span<const NodeId> nbrs) {
        if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
        for (NodeId w : nbrs) {
          tracer.Touch(&result.component[w]);
          if (result.component[w] == kInvalidNode) {
            result.component[w] = comp;
            queue.push_back(w);
          }
        }
      };
      visit(graph.OutNeighbors(v));
      visit(graph.InNeighbors(v));
    }
    largest = std::max(largest, size);
  }
  result.largest_component = largest;
  return result;
}

/// Synchronous label propagation community detection (Raghavan et al.):
/// each round every node adopts the most frequent label among its
/// undirected neighbours (ties: smallest label). Stops after
/// `max_rounds` or when no label changes. The per-neighbour label
/// lookups are random accesses keyed by node id — another
/// ordering-sensitive iterative workload.
template <class Tracer>
SccResult LabelPropagationImpl(const Graph& graph, int max_rounds,
                               Tracer& tracer) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> label(n);
  for (NodeId v = 0; v < n; ++v) label[v] = v;
  std::vector<NodeId> count(n, 0);
  std::vector<NodeId> touched;
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (NodeId v = 0; v < n; ++v) {
      touched.clear();
      auto tally = [&](std::span<const NodeId> nbrs) {
        if (!nbrs.empty()) tracer.Touch(nbrs.data(), nbrs.size());
        for (NodeId w : nbrs) {
          tracer.Touch(&label[w]);
          NodeId l = label[w];
          if (count[l] == 0) touched.push_back(l);
          ++count[l];
        }
      };
      tally(graph.OutNeighbors(v));
      tally(graph.InNeighbors(v));
      if (touched.empty()) continue;
      NodeId best = label[v];
      NodeId best_count = 0;
      for (NodeId l : touched) {
        if (count[l] > best_count ||
            (count[l] == best_count && l < best)) {
          best = l;
          best_count = count[l];
        }
        count[l] = 0;
      }
      tracer.Touch(&label[v]);
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Compact labels to dense component ids.
  SccResult result;
  result.component.assign(n, kInvalidNode);
  std::vector<NodeId> remap(n, kInvalidNode);
  std::vector<NodeId> sizes;
  for (NodeId v = 0; v < n; ++v) {
    NodeId l = label[v];
    if (remap[l] == kInvalidNode) {
      remap[l] = result.num_components++;
      sizes.push_back(0);
    }
    result.component[v] = remap[l];
    ++sizes[remap[l]];
  }
  for (NodeId s : sizes) {
    result.largest_component = std::max(result.largest_component, s);
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_EXTRA_IMPL_H_
