#ifndef GORDER_ALGO_DETAIL_DIAMETER_IMPL_H_
#define GORDER_ALGO_DETAIL_DIAMETER_IMPL_H_

#include <algorithm>
#include <vector>

#include "algo/detail/sp_impl.h"
#include "algo/results.h"
#include "graph/graph.h"

namespace gorder::algo::detail {

/// Diameter lower bound exactly as the paper runs it: repeat the SP
/// (Bellman-Ford) workload from each given source and report the largest
/// finite distance seen. The paper uses 5000 random sources on its
/// testbed; source count is a parameter here because, per the
/// replication, "accuracy and efficiency of the algorithm are not key" —
/// the workload's memory behaviour is.
template <class Tracer>
DiameterResult DiameterImpl(const Graph& graph,
                            const std::vector<NodeId>& sources,
                            Tracer& tracer) {
  DiameterResult result;
  for (NodeId src : sources) {
    SpResult sp = SpImpl(graph, src, tracer);
    result.diameter_estimate =
        std::max(result.diameter_estimate, sp.max_dist);
    ++result.sources_used;
  }
  return result;
}

}  // namespace gorder::algo::detail

#endif  // GORDER_ALGO_DETAIL_DIAMETER_IMPL_H_
