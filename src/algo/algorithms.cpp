#include "algo/algorithms.h"

#include "algo/detail/bfs_impl.h"
#include "algo/detail/diameter_impl.h"
#include "algo/detail/dfs_impl.h"
#include "algo/detail/domset_impl.h"
#include "algo/detail/kcore_impl.h"
#include "algo/detail/nq_impl.h"
#include "algo/detail/pagerank_impl.h"
#include "algo/detail/scc_impl.h"
#include "algo/detail/sp_impl.h"
#include "cachesim/cache.h"

namespace gorder::algo {

namespace {
cachesim::NullTracer& NoTrace() {
  static cachesim::NullTracer tracer;
  return tracer;
}
}  // namespace

NqResult Nq(const Graph& graph) { return detail::NqImpl(graph, NoTrace()); }

BfsResult Bfs(const Graph& graph, NodeId source) {
  return detail::BfsImpl(graph, source, NoTrace());
}

BfsResult BfsForest(const Graph& graph) {
  return detail::BfsForestImpl(graph, NoTrace());
}

DfsResult DfsForest(const Graph& graph) {
  return detail::DfsForestImpl(graph, NoTrace());
}

SccResult Scc(const Graph& graph) { return detail::SccImpl(graph, NoTrace()); }

SpResult Sp(const Graph& graph, NodeId source) {
  return detail::SpImpl(graph, source, NoTrace());
}

PageRankResult PageRank(const Graph& graph, int iterations, double damping) {
  return detail::PageRankImpl(graph, iterations, damping, NoTrace());
}

DominatingSetResult DominatingSet(const Graph& graph) {
  return detail::DomSetImpl(graph, NoTrace());
}

KCoreResult KCore(const Graph& graph) {
  return detail::KCoreImpl(graph, NoTrace());
}

DiameterResult Diameter(const Graph& graph,
                        const std::vector<NodeId>& sources) {
  return detail::DiameterImpl(graph, sources, NoTrace());
}

bool IsDominatingSet(const Graph& graph, const std::vector<bool>& in_set) {
  if (in_set.size() != graph.NumNodes()) return false;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (in_set[v]) continue;
    bool covered = false;
    for (NodeId w : graph.OutNeighbors(v)) {
      if (in_set[w]) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      for (NodeId w : graph.InNeighbors(v)) {
        if (in_set[w]) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace gorder::algo
