#include "algo/extra.h"

#include <algorithm>

#include "algo/detail/extra_impl.h"

namespace gorder::algo {

std::uint64_t TriangleCount(const Graph& graph) {
  cachesim::NullTracer tracer;
  std::vector<std::vector<NodeId>> scratch;
  return detail::TriangleCountImpl(graph, tracer, &scratch);
}

std::uint64_t TriangleCountTraced(const Graph& graph,
                                  cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  std::vector<std::vector<NodeId>> scratch;
  return detail::TriangleCountImpl(graph, tracer, &scratch);
}

SccResult Wcc(const Graph& graph) {
  cachesim::NullTracer tracer;
  return detail::WccImpl(graph, tracer);
}

SccResult WccTraced(const Graph& graph, cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::WccImpl(graph, tracer);
}

SccResult LabelPropagation(const Graph& graph, int max_rounds) {
  cachesim::NullTracer tracer;
  return detail::LabelPropagationImpl(graph, max_rounds, tracer);
}

SccResult LabelPropagationTraced(const Graph& graph, int max_rounds,
                                 cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::LabelPropagationImpl(graph, max_rounds, tracer);
}

}  // namespace gorder::algo
