#ifndef GORDER_ALGO_TRACED_H_
#define GORDER_ALGO_TRACED_H_

#include <vector>

#include "algo/results.h"
#include "cachesim/cache.h"
#include "graph/graph.h"

namespace gorder::algo {

/// Cache-traced variants of the nine workloads: functionally identical to
/// the plain functions in algorithms.h (same template body), but every
/// data-structure access is replayed through `caches`, the repo's
/// substitute for the paper's hardware performance counters. The caller
/// owns flushing/reading `caches.stats()`.
NqResult NqTraced(const Graph& graph, cachesim::CacheHierarchy& caches);
BfsResult BfsTraced(const Graph& graph, NodeId source,
                    cachesim::CacheHierarchy& caches);
BfsResult BfsForestTraced(const Graph& graph,
                          cachesim::CacheHierarchy& caches);
DfsResult DfsForestTraced(const Graph& graph,
                          cachesim::CacheHierarchy& caches);
SccResult SccTraced(const Graph& graph, cachesim::CacheHierarchy& caches);
SpResult SpTraced(const Graph& graph, NodeId source,
                  cachesim::CacheHierarchy& caches);
PageRankResult PageRankTraced(const Graph& graph, int iterations,
                              double damping,
                              cachesim::CacheHierarchy& caches);
DominatingSetResult DominatingSetTraced(const Graph& graph,
                                        cachesim::CacheHierarchy& caches);
KCoreResult KCoreTraced(const Graph& graph,
                        cachesim::CacheHierarchy& caches);
DiameterResult DiameterTraced(const Graph& graph,
                              const std::vector<NodeId>& sources,
                              cachesim::CacheHierarchy& caches);

}  // namespace gorder::algo

#endif  // GORDER_ALGO_TRACED_H_
