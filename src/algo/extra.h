#ifndef GORDER_ALGO_EXTRA_H_
#define GORDER_ALGO_EXTRA_H_

#include <cstdint>

#include "algo/results.h"
#include "cachesim/cache.h"
#include "graph/graph.h"

namespace gorder::algo {

/// Extension workloads beyond the paper's nine (replication §4: "its
/// consistent efficiency on all algorithms and datasets suggests that it
/// could speed up other graph algorithms as well" — these test that
/// suggestion; see bench/ext_workloads).
///
/// TriangleCount and Wcc parallelize on the shared pool when the thread
/// budget exceeds one, bit-identically to their serial paths (see
/// algorithms.h for the contract); the traced variants stay serial.

/// Number of triangles in the undirected simple view.
std::uint64_t TriangleCount(const Graph& graph);
std::uint64_t TriangleCountTraced(const Graph& graph,
                                  cachesim::CacheHierarchy& caches);

/// Weakly connected components (undirected BFS flooding).
SccResult Wcc(const Graph& graph);
SccResult WccTraced(const Graph& graph, cachesim::CacheHierarchy& caches);

/// Synchronous label-propagation community detection; returns the final
/// labelling as a component partition (dense ids).
SccResult LabelPropagation(const Graph& graph, int max_rounds = 10);
SccResult LabelPropagationTraced(const Graph& graph, int max_rounds,
                                 cachesim::CacheHierarchy& caches);

}  // namespace gorder::algo

#endif  // GORDER_ALGO_EXTRA_H_
