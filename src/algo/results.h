#ifndef GORDER_ALGO_RESULTS_H_
#define GORDER_ALGO_RESULTS_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace gorder::algo {

/// Neighbour Query (NQ): for every node u, q_u = sum of out-degrees of
/// u's out-neighbours (replication §2.1). `checksum` = sum of all q_u.
struct NqResult {
  std::vector<std::uint64_t> q;
  std::uint64_t checksum = 0;
};

/// Breadth-first search levels. `level[v] == kInfDistance` if unreached.
struct BfsResult {
  std::vector<std::uint32_t> level;
  NodeId num_reached = 0;
  std::uint64_t sum_levels = 0;
};

/// Depth-first search forest. `discovery[v]` is the preorder index;
/// `finish_checksum` folds the postorder sequence so two runs over the
/// same numbering are comparable.
struct DfsResult {
  std::vector<NodeId> discovery;
  NodeId num_reached = 0;
  std::uint64_t finish_checksum = 0;
};

/// Strongly connected components (Tarjan). Component ids are dense in
/// [0, num_components), assigned in order of completion.
struct SccResult {
  std::vector<NodeId> component;
  NodeId num_components = 0;
  NodeId largest_component = 0;
};

/// Single-source shortest paths (Bellman-Ford, unit weights).
struct SpResult {
  std::vector<std::uint32_t> dist;
  NodeId num_reached = 0;
  std::uint32_t max_dist = 0;  // eccentricity of the source
  std::uint32_t num_rounds = 0;
};

/// PageRank scores after a fixed number of power iterations.
struct PageRankResult {
  std::vector<double> rank;
  int iterations = 0;
  double total_mass = 0.0;  // should be ~1.0
};

/// Greedy dominating set over the undirected view.
struct DominatingSetResult {
  std::vector<bool> in_set;
  NodeId set_size = 0;
};

/// K-core decomposition (Batagelj-Zaversnik) over the undirected view.
struct KCoreResult {
  std::vector<NodeId> core;
  NodeId max_core = 0;
};

/// Diameter lower bound from repeated SP runs (paper's Diam workload).
struct DiameterResult {
  std::uint32_t diameter_estimate = 0;
  NodeId sources_used = 0;
};

}  // namespace gorder::algo

#endif  // GORDER_ALGO_RESULTS_H_
