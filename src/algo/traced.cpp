#include "algo/traced.h"

#include "algo/detail/bfs_impl.h"
#include "algo/detail/diameter_impl.h"
#include "algo/detail/dfs_impl.h"
#include "algo/detail/domset_impl.h"
#include "algo/detail/kcore_impl.h"
#include "algo/detail/nq_impl.h"
#include "algo/detail/pagerank_impl.h"
#include "algo/detail/scc_impl.h"
#include "algo/detail/sp_impl.h"

namespace gorder::algo {

NqResult NqTraced(const Graph& graph, cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::NqImpl(graph, tracer);
}

BfsResult BfsTraced(const Graph& graph, NodeId source,
                    cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::BfsImpl(graph, source, tracer);
}

BfsResult BfsForestTraced(const Graph& graph,
                          cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::BfsForestImpl(graph, tracer);
}

DfsResult DfsForestTraced(const Graph& graph,
                          cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::DfsForestImpl(graph, tracer);
}

SccResult SccTraced(const Graph& graph, cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::SccImpl(graph, tracer);
}

SpResult SpTraced(const Graph& graph, NodeId source,
                  cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::SpImpl(graph, source, tracer);
}

PageRankResult PageRankTraced(const Graph& graph, int iterations,
                              double damping,
                              cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::PageRankImpl(graph, iterations, damping, tracer);
}

DominatingSetResult DominatingSetTraced(const Graph& graph,
                                        cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::DomSetImpl(graph, tracer);
}

KCoreResult KCoreTraced(const Graph& graph,
                        cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::KCoreImpl(graph, tracer);
}

DiameterResult DiameterTraced(const Graph& graph,
                              const std::vector<NodeId>& sources,
                              cachesim::CacheHierarchy& caches) {
  cachesim::CacheTracer tracer(&caches);
  return detail::DiameterImpl(graph, sources, tracer);
}

}  // namespace gorder::algo
