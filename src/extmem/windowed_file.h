#ifndef GORDER_EXTMEM_WINDOWED_FILE_H_
#define GORDER_EXTMEM_WINDOWED_FILE_H_

/// Windowed mmap writer (DESIGN.md §18).
///
/// Writes into a pre-sized file through a bounded, sliding memory-mapped
/// window: the file is created at its final size up front (a sparse
/// ftruncate — untouched ranges read back as zeros, exactly the padding
/// bytes the in-memory pack writer emits), and WriteAt() copies through
/// a MAP_SHARED window that is remapped as the write cursor leaves it.
/// Address-space use is bounded by the window size regardless of file
/// size, which is what lets the external CSR build run under a hard
/// `ulimit -v` cap that the whole file would bust.
///
/// On platforms without mmap the same interface falls back to
/// positioned stdio writes.

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/io_result.h"

namespace gorder::extmem {

class WindowedWriter {
 public:
  WindowedWriter() = default;
  ~WindowedWriter();
  WindowedWriter(const WindowedWriter&) = delete;
  WindowedWriter& operator=(const WindowedWriter&) = delete;

  /// Creates (truncating) `path` at exactly `file_bytes` and prepares a
  /// write window of ~`window_bytes` (rounded to whole pages, min one).
  IoResult Create(const std::string& path, std::uint64_t file_bytes,
                  std::size_t window_bytes);

  /// Copies `bytes` to absolute file offset `offset`. Any offset within
  /// the file is valid; sequential writes advance the window without
  /// thrashing. Writes crossing the window edge are split.
  IoResult WriteAt(std::uint64_t offset, const void* data, std::size_t bytes);

  /// Flushes the current window and fsyncs the file to stable storage.
  IoResult Sync();

  /// Unmaps and closes (without syncing).
  void Close();

  std::uint64_t window_remaps() const { return remaps_; }
  std::uint64_t file_bytes() const { return file_bytes_; }

 private:
  IoResult MapWindow(std::uint64_t offset);
  void UnmapWindow();

  std::string path_;
  int fd_ = -1;
  void* window_ = nullptr;        // nullptr: no window mapped
  std::uint64_t win_start_ = 0;   // file offset of window_[0]
  std::size_t win_len_ = 0;       // mapped length
  std::size_t window_bytes_ = 0;  // configured window size (page-rounded)
  std::uint64_t file_bytes_ = 0;
  std::uint64_t remaps_ = 0;
  std::FILE* fallback_ = nullptr;  // non-mmap platforms
};

}  // namespace gorder::extmem

#endif  // GORDER_EXTMEM_WINDOWED_FILE_H_
