#include "extmem/ext_csr.h"

#include <algorithm>
#include <filesystem>
#include <new>

#include "extmem/windowed_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fingerprint.h"
#include "store/gpack.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace gorder::extmem {

namespace {

GORDER_FAILPOINT_DEFINE(fp_csr_alloc, "extmem.csr.alloc");

GORDER_OBS_COUNTER(c_ext_builds, "extmem.pack_builds");
GORDER_OBS_COUNTER(c_ext_edges, "extmem.edges_ingested");

/// Streams one neighbor section: pulls edges off `merge`, emits
/// `pick(edge)` as the next NodeId at `section_offset`, updating the
/// running CRC and (optionally) the content fingerprint.
template <typename Pick>
IoResult StreamNeighborSection(MergeStream* merge, WindowedWriter* writer,
                               std::uint64_t section_offset, Pick pick,
                               std::uint32_t* crc, store::Hash64* fingerprint,
                               std::uint64_t* count) {
  std::vector<NodeId> buf;
  buf.reserve(1u << 16);
  std::uint64_t written = 0;
  auto flush = [&]() -> IoResult {
    if (buf.empty()) return IoResult::Ok();
    const std::uint64_t bytes = buf.size() * sizeof(NodeId);
    IoResult r = writer->WriteAt(section_offset + written * sizeof(NodeId),
                                 buf.data(), static_cast<std::size_t>(bytes));
    if (!r.ok) return r;
    *crc = Crc32(buf.data(), static_cast<std::size_t>(bytes), *crc);
    if (fingerprint != nullptr) {
      for (NodeId v : buf) fingerprint->Mix(v);
    }
    written += buf.size();
    buf.clear();
    return IoResult::Ok();
  };
  while (true) {
    Edge e;
    bool eof = false;
    if (IoResult r = merge->Next(&e, &eof); !r.ok) return r;
    if (eof) break;
    if (e.src == e.dst) continue;  // self-loops dropped, as in Builder
    buf.push_back(pick(e));
    if (buf.size() == buf.capacity()) {
      if (IoResult r = flush(); !r.ok) return r;
    }
  }
  if (IoResult r = flush(); !r.ok) return r;
  if (count != nullptr) *count = written;
  return IoResult::Ok();
}

}  // namespace

ExtPackBuilder::ExtPackBuilder(const ExtmemOptions& options)
    : options_(options), forward_(options) {}

IoResult ExtPackBuilder::Begin(const std::string& pack_path) {
  pack_path_ = pack_path;
  scratch_prefix_ =
      options_.scratch_dir.empty()
          ? pack_path
          : options_.scratch_dir + "/" +
                std::filesystem::path(pack_path).filename().string();
  std::error_code ec;
  const std::filesystem::path target(pack_path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  if (!options_.scratch_dir.empty()) {
    std::filesystem::create_directories(options_.scratch_dir, ec);
  }
  if (IoResult r = forward_.Create(scratch_prefix_ + ".fwd"); !r.ok) return r;
  begun_ = true;
  return IoResult::Ok();
}

void ExtPackBuilder::ReserveNodes(NodeId n) {
  reserved_nodes_ = std::max(reserved_nodes_, n);
}

IoResult ExtPackBuilder::Add(NodeId src, NodeId dst) {
  // Track n over *all* ingested edges — Graph::Builder grows the node
  // count before it strips self-loops, and bit-identity depends on it.
  const NodeId hi = std::max(src, dst);
  if (!saw_node_ || hi > max_node_) max_node_ = hi;
  saw_node_ = true;
  ++stats_.edges_ingested;
  if (src == dst) return IoResult::Ok();  // dropped, like Builder::Build()
  return forward_.Add({src, dst});
}

IoResult ExtPackBuilder::AddBatch(const Edge* edges, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (IoResult r = Add(edges[i].src, edges[i].dst); !r.ok) return r;
  }
  return IoResult::Ok();
}

IoResult ExtPackBuilder::Finish() {
  IoResult r = FinishImpl();
  forward_.ReleaseScratch();
  return r;
}

IoResult ExtPackBuilder::FinishImpl() {
  GORDER_OBS_SPAN(span, "extmem.pack_build");
  if (!begun_) return IoResult::Error("ExtPackBuilder::Begin was not called");
  const std::uint64_t n =
      std::max<std::uint64_t>(saw_node_ ? std::uint64_t{max_node_} + 1 : 0,
                              reserved_nodes_);

  if (IoResult r = forward_.Finish(&stats_); !r.ok) return r;

  // --- Pass A: count degrees, spill the transposed stream. -------------
  std::vector<EdgeId> out_off, in_off;
  try {
    GORDER_FAULT_ALLOC(fp_csr_alloc);
    out_off.assign(static_cast<std::size_t>(n) + 1, 0);
    in_off.assign(static_cast<std::size_t>(n) + 1, 0);
  } catch (const std::bad_alloc&) {
    return IoResult::Error("cannot allocate offset arrays for " +
                           std::to_string(n) + " nodes");
  }
  ExternalEdgeSorter transposed(options_);
  if (IoResult r = transposed.Create(scratch_prefix_ + ".rev"); !r.ok) {
    return r;
  }
  std::uint64_t m = 0;
  {
    MergeStream merge;
    if (IoResult r = forward_.OpenMerge(&merge); !r.ok) return r;
    while (true) {
      Edge e;
      bool eof = false;
      if (IoResult r = merge.Next(&e, &eof); !r.ok) return r;
      if (eof) break;
      ++m;
      ++out_off[static_cast<std::size_t>(e.src) + 1];
      ++in_off[static_cast<std::size_t>(e.dst) + 1];
      if (IoResult r = transposed.Add({e.dst, e.src}); !r.ok) return r;
    }
  }
  if (IoResult r = transposed.Finish(&stats_); !r.ok) return r;
  stats_.edges_final = m;

  // --- Pass B: prefix sums, stream the four sections into the pack. ----
  for (std::size_t v = 0; v < n; ++v) out_off[v + 1] += out_off[v];
  for (std::size_t v = 0; v < n; ++v) in_off[v + 1] += in_off[v];

  store::Hash64 fingerprint;
  fingerprint.Mix(n);
  fingerprint.Mix(m);
  for (EdgeId off : out_off) fingerprint.Mix(off);

  const store::GpackLayout layout = store::ComputeGpackLayout(n, m);
  const std::size_t window = std::clamp<std::size_t>(
      static_cast<std::size_t>(options_.mem_budget_bytes / 4), 1u << 20,
      256u << 20);
  const std::string tmp = util::StagingPath(pack_path_);
  WindowedWriter writer;
  auto fail = [&](IoResult r) {
    writer.Close();
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return r;
  };
  if (IoResult r = writer.Create(tmp, layout.file_bytes, window); !r.ok) {
    return fail(r);
  }

  std::uint32_t crcs[4] = {};
  const std::uint64_t off_bytes = (n + 1) * sizeof(EdgeId);
  crcs[0] = Crc32(out_off.data(), static_cast<std::size_t>(off_bytes));
  crcs[2] = Crc32(in_off.data(), static_cast<std::size_t>(off_bytes));
  if (IoResult r = writer.WriteAt(layout.out_offsets, out_off.data(),
                                  static_cast<std::size_t>(off_bytes));
      !r.ok) {
    return fail(r);
  }
  if (IoResult r = writer.WriteAt(layout.in_offsets, in_off.data(),
                                  static_cast<std::size_t>(off_bytes));
      !r.ok) {
    return fail(r);
  }

  std::uint64_t out_count = 0, in_count = 0;
  {
    MergeStream merge;
    if (IoResult r = forward_.OpenMerge(&merge); !r.ok) return fail(r);
    if (IoResult r = StreamNeighborSection(
            &merge, &writer, layout.out_neighbors,
            [](const Edge& e) { return e.dst; }, &crcs[1], &fingerprint,
            &out_count);
        !r.ok) {
      return fail(r);
    }
  }
  {
    MergeStream merge;
    if (IoResult r = transposed.OpenMerge(&merge); !r.ok) return fail(r);
    // Transposed edges are (dst, src): sorted by dst then src, so the
    // second component streams exactly the in-neighbor lists.
    if (IoResult r = StreamNeighborSection(
            &merge, &writer, layout.in_neighbors,
            [](const Edge& e) { return e.dst; }, &crcs[3], nullptr,
            &in_count);
        !r.ok) {
      return fail(r);
    }
  }
  transposed.ReleaseScratch();
  if (out_count != m || in_count != m) {
    return fail(IoResult::Error("merge replay disagreed on edge count (" +
                                std::to_string(out_count) + "/" +
                                std::to_string(in_count) + " vs " +
                                std::to_string(m) + ")"));
  }

  const std::string header =
      store::SerializeGpackHeader(n, m, fingerprint.Digest(), crcs);
  if (IoResult r = writer.WriteAt(0, header.data(), header.size()); !r.ok) {
    return fail(r);
  }
  if (IoResult r = writer.Sync(); !r.ok) return fail(r);
  writer.Close();
  if (IoResult r = util::CommitStagedFile(tmp, pack_path_); !r.ok) return r;
  stats_.window_remaps = writer.window_remaps();
  GORDER_OBS_INC(c_ext_builds);
  GORDER_OBS_ADD(c_ext_edges, stats_.edges_ingested);
  return IoResult::Ok();
}

IoResult StreamEdgeListToPack(const std::string& edge_path,
                              const std::string& pack_path,
                              const ExtmemOptions& options,
                              ExtBuildStats* stats) {
  ExtPackBuilder builder(options);
  if (IoResult r = builder.Begin(pack_path); !r.ok) return r;
  IoResult r = EdgeListStreamer::Stream(
      edge_path, [&](const Edge* edges, std::size_t count) {
        return builder.AddBatch(edges, count);
      });
  if (!r.ok) return r;
  if (r = builder.Finish(); !r.ok) return r;
  if (stats != nullptr) *stats = builder.stats();
  return IoResult::Ok();
}

IoResult BuildPackFromEdgeStream(const EdgeStreamFn& stream,
                                 NodeId reserve_nodes,
                                 const std::string& pack_path,
                                 const ExtmemOptions& options,
                                 ExtBuildStats* stats) {
  ExtPackBuilder builder(options);
  if (IoResult r = builder.Begin(pack_path); !r.ok) return r;
  if (reserve_nodes > 0) builder.ReserveNodes(reserve_nodes);
  IoResult r = stream([&](const Edge* edges, std::size_t count) {
    return builder.AddBatch(edges, count);
  });
  if (!r.ok) return r;
  if (r = builder.Finish(); !r.ok) return r;
  if (stats != nullptr) *stats = builder.stats();
  return IoResult::Ok();
}

MemoryEstimates EstimateMemory(std::uint64_t num_nodes,
                               std::uint64_t num_edges,
                               const ExtmemOptions& options) {
  const std::uint64_t n = num_nodes, m = num_edges;
  MemoryEstimates est;
  est.pack_file_bytes = store::ComputeGpackLayout(n, m).file_bytes;
  est.copy_load_bytes = 2 * (n + 1) * sizeof(EdgeId) + 2 * m * sizeof(NodeId);
  // FromEdges holds the edge list plus both CSRs plus counting arrays at
  // its peak.
  est.inmem_build_peak_bytes =
      m * sizeof(Edge) + est.copy_load_bytes + 2 * (n + 1) * sizeof(EdgeId);
  // Extmem build: two offset arrays plus the streaming budget.
  est.extmem_build_bytes =
      2 * (n + 1) * sizeof(EdgeId) + options.mem_budget_bytes;
  // Semi-external Gorder: packed unit heap (16 B/slot), permutation,
  // window bookkeeping — the adjacency itself stays on disk.
  est.gorder_state_bytes = n * 16 + 2 * n * sizeof(NodeId);
  return est;
}

}  // namespace gorder::extmem
