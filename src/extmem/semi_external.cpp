#include "extmem/semi_external.h"

#include <cstdint>

#include "obs/trace.h"
#include "store/gpack.h"

#if defined(__linux__) || defined(__APPLE__)
#define GORDER_EXTMEM_HAS_MADVISE 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace gorder::extmem {

namespace {

#ifdef GORDER_EXTMEM_HAS_MADVISE
/// Advises the kernel about the access pattern of one mapped CSR array.
/// Purely advisory: failures (e.g. heap-backed fallback arrays) are
/// ignored.
void Advise(const void* data, std::size_t bytes, int advice) {
  if (data == nullptr || bytes == 0) return;
  const long ps = ::sysconf(_SC_PAGESIZE);
  const std::uintptr_t page = ps > 0 ? static_cast<std::uintptr_t>(ps) : 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t start = addr / page * page;
  (void)::posix_madvise(reinterpret_cast<void*>(start),
                        bytes + (addr - start), advice);
}
#endif

/// Single-pass streaming methods read the CSR front to back; everything
/// else (Gorder's sliding window above all) touches neighbourhoods on
/// demand.
bool IsSequentialMethod(order::Method method) {
  switch (method) {
    case order::Method::kOriginal:
    case order::Method::kBoba:
    case order::Method::kInDegSort:
    case order::Method::kOutDegSort:
      return true;
    default:
      return false;
  }
}

}  // namespace

IoResult SemiExternalOrder(const std::string& pack_path, order::Method method,
                           const order::OrderingParams& params,
                           std::vector<NodeId>* perm,
                           SemiExternalInfo* info) {
  GORDER_OBS_SPAN(span, "extmem.semi_external_order");
  Graph graph;
  if (IoResult r = store::LoadPack(pack_path, &graph, store::LoadMode::kMmap);
      !r.ok) {
    return r;
  }
#ifdef GORDER_EXTMEM_HAS_MADVISE
  const int advice = IsSequentialMethod(method) ? POSIX_MADV_SEQUENTIAL
                                                : POSIX_MADV_NORMAL;
  Advise(graph.out_offsets().data(),
         graph.out_offsets().size() * sizeof(EdgeId), advice);
  Advise(graph.out_neighbors().data(),
         graph.out_neighbors().size() * sizeof(NodeId), advice);
  Advise(graph.in_offsets().data(),
         graph.in_offsets().size() * sizeof(EdgeId), advice);
  Advise(graph.in_neighbors().data(),
         graph.in_neighbors().size() * sizeof(NodeId), advice);
#endif
  if (info != nullptr) {
    info->pack_bytes = graph.MemoryBytes();
    info->zero_copy = graph.IsMapped();
  }
  *perm = order::ComputeOrdering(graph, method, params);
  return IoResult::Ok();
}

}  // namespace gorder::extmem
