#ifndef GORDER_EXTMEM_EXT_CSR_H_
#define GORDER_EXTMEM_EXT_CSR_H_

/// External-memory CSR build (DESIGN.md §18).
///
/// ExtPackBuilder turns an unbounded edge stream into a finished .gpack
/// without ever materialising a global edge list or CSR in RAM:
///
///   ingest     Add() feeds an ExternalEdgeSorter (bounded buffer,
///              sorted runs on disk). Self-loops are dropped here but
///              still grow the node count, matching Graph::Builder.
///   pass A     k-way merge replay #1: counts m and the out-/in-degrees
///              (O(n) RAM) and spills the transposed edges (dst, src)
///              into a second sorter for the in-CSR.
///   pass B     degrees prefix-sum into offsets; the pack file is
///              created at its exact final size (store::ComputeGpackLayout)
///              and merge replay #2 streams out_neighbors — then the
///              transposed merge streams in_neighbors — through a
///              bounded windowed mmap (WindowedWriter). Section CRCs
///              and the content fingerprint accumulate incrementally.
///   commit     header written last, fsync, atomic rename
///              (util::CommitStagedFile).
///
/// The result is byte-identical to store::WritePack of the equivalent
/// in-memory graph (same layout math, same dedup/sort semantics), which
/// the differential test asserts file-for-file.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "extmem/edge_stream.h"
#include "graph/graph.h"
#include "util/io_result.h"

namespace gorder::extmem {

class ExtPackBuilder {
 public:
  explicit ExtPackBuilder(const ExtmemOptions& options = {});

  /// Starts a build targeting `pack_path`. Scratch directories are
  /// created next to it (or in options.scratch_dir when set).
  IoResult Begin(const std::string& pack_path);

  /// Ensures the graph has at least `n` nodes (isolated nodes allowed).
  void ReserveNodes(NodeId n);

  /// Adds one directed edge. Node ids grow the graph like
  /// Graph::Builder::AddEdge (self-loops count toward n, then drop).
  IoResult Add(NodeId src, NodeId dst);
  IoResult AddBatch(const Edge* edges, std::size_t count);

  /// Runs the merge passes, writes and commits the pack. After Finish()
  /// the builder is spent; stats() reports what happened.
  IoResult Finish();

  const ExtBuildStats& stats() const { return stats_; }

 private:
  IoResult FinishImpl();

  ExtmemOptions options_;
  std::string pack_path_;
  std::string scratch_prefix_;
  ExternalEdgeSorter forward_;
  ExtBuildStats stats_;
  NodeId reserved_nodes_ = 0;
  NodeId max_node_ = 0;
  bool saw_node_ = false;
  bool begun_ = false;
};

/// One-call ingest: streams a text edge list (ReadEdgeList grammar)
/// into an extmem pack build. The bounded-memory replacement for
/// ReadEdgeList + WritePack.
IoResult StreamEdgeListToPack(const std::string& edge_path,
                              const std::string& pack_path,
                              const ExtmemOptions& options = {},
                              ExtBuildStats* stats = nullptr);

/// An edge-producing stream: invoked once with a sink, pushes every
/// edge chunk through it, propagating the first sink error. The chunked
/// generators (gen/chunked.h) curry into this shape:
///   [&](const auto& sink) { return gen::StreamRmat(p, seed, opt, sink); }
using EdgeStreamFn = std::function<IoResult(
    const std::function<IoResult(const Edge*, std::size_t)>&)>;

/// Sink adapter from any edge stream to a finished pack: begins an
/// external build, reserves `reserve_nodes`, feeds every chunk the
/// stream produces into the builder, then merges and commits. A
/// 10^9-edge generator output packs to .gpack through this without a
/// global edge list ever existing in RAM.
IoResult BuildPackFromEdgeStream(const EdgeStreamFn& stream,
                                 NodeId reserve_nodes,
                                 const std::string& pack_path,
                                 const ExtmemOptions& options = {},
                                 ExtBuildStats* stats = nullptr);

/// Peak-memory estimates for a graph of the given size, used by
/// `gorder_cli --cmd=info` to tell users when `--extmem` is warranted.
/// All figures are estimates of the dominant terms, not guarantees.
struct MemoryEstimates {
  std::uint64_t pack_file_bytes = 0;  // mmap address space of a mapped load
  std::uint64_t copy_load_bytes = 0;  // heap for LoadMode::kCopy
  std::uint64_t inmem_build_peak_bytes = 0;  // edge list + CSR (FromEdges)
  std::uint64_t extmem_build_bytes = 0;      // vertex state + stream budget
  std::uint64_t gorder_state_bytes = 0;      // semi-external Gorder RAM
};
MemoryEstimates EstimateMemory(std::uint64_t num_nodes,
                               std::uint64_t num_edges,
                               const ExtmemOptions& options = {});

}  // namespace gorder::extmem

#endif  // GORDER_EXTMEM_EXT_CSR_H_
