#include "extmem/edge_stream.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"

namespace gorder::extmem {

namespace {

GORDER_FAILPOINT_DEFINE(fp_run_mkdir, "extmem.run.mkdir");
GORDER_FAILPOINT_DEFINE(fp_run_open, "extmem.run.open");
GORDER_FAILPOINT_DEFINE(fp_run_write, "extmem.run.write");
GORDER_FAILPOINT_DEFINE(fp_merge_open, "extmem.merge.open");
GORDER_FAILPOINT_DEFINE(fp_merge_read, "extmem.merge.read");
GORDER_FAILPOINT_DEFINE(fp_ingest_open, "extmem.ingest.open");
GORDER_FAILPOINT_DEFINE(fp_ingest_read, "extmem.ingest.read");
GORDER_FAILPOINT_DEFINE(fp_ingest_alloc, "extmem.ingest.alloc");

GORDER_OBS_COUNTER(c_runs_written, "extmem.runs_written");
GORDER_OBS_COUNTER(c_run_bytes, "extmem.run_bytes");
GORDER_OBS_COUNTER(c_merge_passes, "extmem.merge_passes");

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline bool EdgeLess(const Edge& a, const Edge& b) {
  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
}

/// Streams `count` edges to `f` in large fwrite chunks.
bool WriteEdgesBuffered(std::FILE* f, const Edge* edges, std::size_t count) {
  constexpr std::size_t kChunk = (8u << 20) / sizeof(Edge);
  while (count > 0) {
    const std::size_t step = std::min(count, kChunk);
    if (GORDER_FAULT_IO(fp_run_write, step,
                        std::fwrite(edges, sizeof(Edge), step, f)) != step) {
      return false;
    }
    edges += step;
    count -= step;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// RunSet

IoResult RunSet::Create(const std::string& prefix) {
  // The staging-infix name keeps the scratch directory inside the
  // no-`.tmp.`-debris contract checked by the fault sweep.
  dir_ = util::StagingPath(prefix + ".runs");
  std::error_code ec;
  if (GORDER_FAILPOINT(fp_run_mkdir) != util::FaultKind::kNone ||
      !std::filesystem::create_directories(dir_, ec)) {
    const std::string d = dir_;
    dir_.clear();
    return IoResult::Error("cannot create scratch directory " + d);
  }
  return IoResult::Ok();
}

IoResult RunSet::WriteRun(const Edge* edges, std::size_t count) {
  const std::string path =
      dir_ + "/run-" + std::to_string(next_id_++) + ".edges";
  if (GORDER_FAILPOINT(fp_run_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open run file " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoResult::Error("cannot open run file " + path);
  if (!WriteEdgesBuffered(f.get(), edges, count)) {
    f.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return IoResult::Error("short write to run file " + path);
  }
  // Scratch runs are intentionally not fsynced: they never outlive the
  // build, and a crash aborts the whole build anyway.
  runs_.push_back({path, count});
  runs_written_ += 1;
  bytes_written_ += count * sizeof(Edge);
  GORDER_OBS_INC(c_runs_written);
  GORDER_OBS_ADD(c_run_bytes, count * sizeof(Edge));
  return IoResult::Ok();
}

IoResult RunSet::WriteMerged(MergeStream* merge, std::size_t buffer_edges) {
  const std::string path =
      dir_ + "/run-" + std::to_string(next_id_++) + ".edges";
  if (GORDER_FAILPOINT(fp_run_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open run file " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoResult::Error("cannot open run file " + path);
  auto fail = [&](IoResult r) {
    f.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return r;
  };
  std::vector<Edge> buf;
  buf.reserve(std::max<std::size_t>(buffer_edges, 1));
  std::uint64_t total = 0;
  while (true) {
    Edge e;
    bool eof = false;
    if (IoResult r = merge->Next(&e, &eof); !r.ok) return fail(r);
    if (!eof) buf.push_back(e);
    if (buf.size() >= buf.capacity() || (eof && !buf.empty())) {
      if (!WriteEdgesBuffered(f.get(), buf.data(), buf.size())) {
        return fail(IoResult::Error("short write to run file " + path));
      }
      total += buf.size();
      buf.clear();
    }
    if (eof) break;
  }
  runs_.push_back({path, total});
  runs_written_ += 1;
  bytes_written_ += total * sizeof(Edge);
  GORDER_OBS_INC(c_runs_written);
  GORDER_OBS_ADD(c_run_bytes, total * sizeof(Edge));
  return IoResult::Ok();
}

std::uint64_t RunSet::TotalEdges() const {
  std::uint64_t total = 0;
  for (const Run& r : runs_) total += r.edges;
  return total;
}

void RunSet::DropRuns(std::size_t count) {
  count = std::min(count, runs_.size());
  std::error_code ec;
  for (std::size_t i = 0; i < count; ++i) {
    std::filesystem::remove(runs_[i].path, ec);
  }
  runs_.erase(runs_.begin(),
              runs_.begin() + static_cast<std::ptrdiff_t>(count));
}

void RunSet::Remove() {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);  // best-effort
  dir_.clear();
  runs_.clear();
}

// ---------------------------------------------------------------------------
// MergeStream

struct MergeStream::Source {
  FilePtr file;
  std::string path;
  std::vector<Edge> buffer;
  std::size_t pos = 0;    // next unread edge in buffer
  std::size_t filled = 0; // valid edges in buffer
  std::uint64_t remaining = 0;  // edges left in the file
};

MergeStream::MergeStream() = default;

MergeStream::~MergeStream() { Close(); }

void MergeStream::Close() {
  sources_.clear();
  heap_.clear();
  have_last_ = false;
}

IoResult MergeStream::Refill(Source& src) {
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(src.buffer.capacity(), src.remaining));
  src.buffer.resize(want);
  if (want > 0 &&
      GORDER_FAULT_IO(fp_merge_read, want,
                      std::fread(src.buffer.data(), sizeof(Edge), want,
                                 src.file.get())) != want) {
    return IoResult::Error("short read from run file " + src.path);
  }
  src.pos = 0;
  src.filled = want;
  src.remaining -= want;
  return IoResult::Ok();
}

bool MergeStream::SourceLess(std::uint32_t a, std::uint32_t b) const {
  const Edge& ea = sources_[a]->buffer[sources_[a]->pos];
  const Edge& eb = sources_[b]->buffer[sources_[b]->pos];
  if (ea.src != eb.src) return ea.src < eb.src;
  if (ea.dst != eb.dst) return ea.dst < eb.dst;
  return a < b;  // deterministic tie-break across runs
}

void MergeStream::HeapSiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && SourceLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && SourceLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

IoResult MergeStream::Open(const RunSet& runs, std::size_t first,
                           std::size_t count, std::size_t buffer_edges) {
  Close();
  buffer_edges = std::max<std::size_t>(buffer_edges, 64);
  for (std::size_t i = 0; i < count; ++i) {
    auto src = std::make_unique<Source>();
    src->path = runs.RunPath(first + i);
    src->remaining = runs.RunEdges(first + i);
    if (src->remaining == 0) continue;  // empty run: nothing to merge
    if (GORDER_FAILPOINT(fp_merge_open) != util::FaultKind::kNone) {
      return IoResult::Error("cannot open run file " + src->path);
    }
    src->file.reset(std::fopen(src->path.c_str(), "rb"));
    if (!src->file) {
      return IoResult::Error("cannot open run file " + src->path);
    }
    src->buffer.reserve(buffer_edges);
    if (IoResult r = Refill(*src); !r.ok) return r;
    sources_.push_back(std::move(src));
    heap_.push_back(static_cast<std::uint32_t>(sources_.size() - 1));
  }
  // Heapify (sift down from the last parent).
  for (std::size_t i = heap_.size() / 2; i-- > 0;) HeapSiftDown(i);
  return IoResult::Ok();
}

IoResult MergeStream::Next(Edge* edge, bool* eof) {
  while (!heap_.empty()) {
    const std::uint32_t top = heap_[0];
    Source& src = *sources_[top];
    const Edge e = src.buffer[src.pos++];
    if (src.pos == src.filled) {
      if (src.remaining > 0) {
        if (IoResult r = Refill(src); !r.ok) return r;
      }
      if (src.pos == src.filled) {
        // Source exhausted: remove from the heap.
        heap_[0] = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) HeapSiftDown(0);
      } else {
        HeapSiftDown(0);
      }
    } else {
      HeapSiftDown(0);
    }
    if (have_last_ && e == last_) continue;  // duplicate: emit once
    last_ = e;
    have_last_ = true;
    *edge = e;
    *eof = false;
    return IoResult::Ok();
  }
  *eof = true;
  return IoResult::Ok();
}

// ---------------------------------------------------------------------------
// ExternalEdgeSorter

ExternalEdgeSorter::ExternalEdgeSorter(const ExtmemOptions& options)
    : options_(options) {
  // The explicit override is honoured down to 2 edges so tests can force
  // run boundaries anywhere; the derived default keeps a sane floor.
  buffer_capacity_ =
      options.run_buffer_edges != 0
          ? std::max<std::size_t>(options.run_buffer_edges, 2)
          : std::max<std::size_t>(
                4096, static_cast<std::size_t>(options.mem_budget_bytes / 2 /
                                               sizeof(Edge)));
  const std::size_t fanin = std::max<std::size_t>(options.merge_fanin, 2);
  options_.merge_fanin = fanin;
  // A quarter of the budget split across the merge read buffers.
  merge_buffer_edges_ = std::clamp<std::size_t>(
      static_cast<std::size_t>(options.mem_budget_bytes / 4 / fanin /
                               sizeof(Edge)),
      1024, 1u << 20);
}

IoResult ExternalEdgeSorter::Create(const std::string& prefix) {
  buffer_.reserve(std::min<std::size_t>(buffer_capacity_, 1u << 16));
  return runs_.Create(prefix);
}

IoResult ExternalEdgeSorter::SpillBuffer() {
  if (buffer_.empty()) return IoResult::Ok();
  std::sort(buffer_.begin(), buffer_.end(), EdgeLess);
  IoResult r = runs_.WriteRun(buffer_.data(), buffer_.size());
  buffer_.clear();
  return r;
}

IoResult ExternalEdgeSorter::Add(Edge e) {
  buffer_.push_back(e);
  ++edges_added_;
  if (buffer_.size() >= buffer_capacity_) return SpillBuffer();
  return IoResult::Ok();
}

IoResult ExternalEdgeSorter::AddBatch(const Edge* edges, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (IoResult r = Add(edges[i]); !r.ok) return r;
  }
  return IoResult::Ok();
}

IoResult ExternalEdgeSorter::Finish(ExtBuildStats* stats) {
  if (IoResult r = SpillBuffer(); !r.ok) return r;
  buffer_.shrink_to_fit();  // release the run buffer before merge phases
  // Compact until one merge pass can cover everything.
  while (runs_.NumRuns() > options_.merge_fanin) {
    MergeStream merge;
    if (IoResult r = merge.Open(runs_, 0, options_.merge_fanin,
                                merge_buffer_edges_);
        !r.ok) {
      return r;
    }
    if (IoResult r = runs_.WriteMerged(&merge, merge_buffer_edges_); !r.ok) {
      return r;
    }
    merge.Close();
    runs_.DropRuns(options_.merge_fanin);
    if (stats != nullptr) stats->merge_passes += 1;
    GORDER_OBS_INC(c_merge_passes);
  }
  finished_ = true;
  if (stats != nullptr) {
    stats->runs_written += runs_.runs_written();
    stats->run_bytes += runs_.bytes_written();
  }
  return IoResult::Ok();
}

IoResult ExternalEdgeSorter::OpenMerge(MergeStream* merge) const {
  return merge->Open(runs_, 0, runs_.NumRuns(), merge_buffer_edges_);
}

// ---------------------------------------------------------------------------
// EdgeListStreamer

namespace internal {

namespace {

/// Parses complete lines in data[0, end). Grammar identical to
/// ReadEdgeList (edgelist_io.cpp): leading blanks, '#'/'%' comments,
/// two decimal ids, arbitrary trailing junk. On error returns the byte
/// offset of the offending line and a message; otherwise fills `edges`.
struct RegionParse {
  std::size_t error_offset = static_cast<std::size_t>(-1);
  const char* error_kind = nullptr;
  bool ok() const { return error_kind == nullptr; }
};

RegionParse ParseRegion(const char* data, std::size_t end,
                        std::vector<Edge>* edges, NodeId* max_node,
                        bool* saw_node) {
  RegionParse out;
  std::size_t p = 0;
  while (p < end) {
    const std::size_t line_start = p;
    while (p < end && (data[p] == ' ' || data[p] == '\t')) ++p;
    if (p < end && (data[p] == '#' || data[p] == '%' || data[p] == '\n' ||
                    data[p] == '\0' || data[p] == '\r')) {
      while (p < end && data[p] != '\n') ++p;
      if (p < end) ++p;
      continue;
    }
    if (p >= end) break;  // trailing blanks with no newline
    std::uint64_t ids[2];
    bool field_ok = true;
    for (int k = 0; k < 2 && field_ok; ++k) {
      while (p < end && (data[p] == ' ' || data[p] == '\t')) ++p;
      if (p >= end || data[p] < '0' || data[p] > '9') {
        field_ok = false;
        break;
      }
      std::uint64_t value = 0;
      while (p < end && data[p] >= '0' && data[p] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(data[p] - '0');
        if (value > 0xFFFFFFFFFULL) value = 0xFFFFFFFFFULL;  // clamp, reject
        ++p;
      }
      ids[k] = value;
    }
    if (!field_ok) {
      out.error_offset = line_start;
      out.error_kind = "malformed edge line";
      return out;
    }
    if (ids[0] > 0xFFFFFFFEULL || ids[1] > 0xFFFFFFFEULL) {
      out.error_offset = line_start;
      out.error_kind = "node id out of 32-bit range";
      return out;
    }
    const NodeId src = static_cast<NodeId>(ids[0]);
    const NodeId dst = static_cast<NodeId>(ids[1]);
    edges->push_back({src, dst});
    const NodeId hi = std::max(src, dst);
    if (!*saw_node || hi > *max_node) *max_node = hi;
    *saw_node = true;
    while (p < end && data[p] != '\n') ++p;
    if (p < end) ++p;
  }
  return out;
}

}  // namespace

IoResult StreamEdgeListImpl(const std::string& path,
                            IoResult (*emit)(void* ctx, const Edge* edges,
                                             std::size_t count),
                            void* ctx, NodeId* max_node, bool* saw_node) {
  if (GORDER_FAILPOINT(fp_ingest_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot open " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Error("cannot open " + path);

  NodeId local_max = 0;
  bool local_saw = false;
  std::vector<char> buf;
  std::vector<Edge> edges;
  constexpr std::size_t kMaxLine = 64u << 20;  // pathological-line ceiling
  try {
    GORDER_FAULT_ALLOC(fp_ingest_alloc);
    buf.resize(1u << 20);
  } catch (const std::bad_alloc&) {
    return IoResult::Error("cannot allocate read buffer for " + path);
  }
  std::size_t carry = 0;       // bytes held over from the previous read
  std::size_t line_base = 1;   // line number of the first carried byte
  while (true) {
    const std::size_t want = buf.size() - carry;
    // A short count here is legitimate (EOF), so a real error is only
    // detectable via ferror — and an injected fault via the mismatch
    // between the real transfer and the faulted one.
    const std::size_t real = std::fread(buf.data() + carry, 1, want, f.get());
    const std::size_t got = GORDER_FAULT_IO(fp_ingest_read, want, real);
    if (got != real || std::ferror(f.get())) {
      return IoResult::Error("short read from " + path);
    }
    const std::size_t filled = carry + got;
    const bool eof = got < want;
    // Parse up to the last complete line (or everything at EOF).
    std::size_t region = filled;
    if (!eof) {
      while (region > 0 && buf[region - 1] != '\n') --region;
      if (region == 0) {
        // No newline in the whole buffer: an over-long line. Grow (rare)
        // up to the ceiling rather than splitting a token.
        if (filled == buf.size()) {
          if (buf.size() >= kMaxLine) {
            return IoResult::Error(path + ": line exceeds " +
                                   std::to_string(kMaxLine) + " bytes");
          }
          try {
            GORDER_FAULT_ALLOC(fp_ingest_alloc);
            buf.resize(buf.size() * 2);
          } catch (const std::bad_alloc&) {
            return IoResult::Error("cannot allocate read buffer for " + path);
          }
        }
        carry = filled;
        continue;
      }
    }
    edges.clear();
    RegionParse parse =
        ParseRegion(buf.data(), region, &edges, &local_max, &local_saw);
    if (!parse.ok()) {
      std::size_t line = line_base;
      for (std::size_t i = 0; i < parse.error_offset; ++i) {
        if (buf[i] == '\n') ++line;
      }
      return IoResult::Error(path + ":" + std::to_string(line) + ": " +
                             parse.error_kind);
    }
    if (!edges.empty()) {
      if (IoResult r = emit(ctx, edges.data(), edges.size()); !r.ok) return r;
    }
    for (std::size_t i = 0; i < region; ++i) {
      if (buf[i] == '\n') ++line_base;
    }
    carry = filled - region;
    if (carry > 0) std::memmove(buf.data(), buf.data() + region, carry);
    if (eof) break;
  }
  if (max_node != nullptr) *max_node = local_max;
  if (saw_node != nullptr) *saw_node = local_saw;
  return IoResult::Ok();
}

}  // namespace internal

}  // namespace gorder::extmem
