#ifndef GORDER_EXTMEM_EDGE_STREAM_H_
#define GORDER_EXTMEM_EDGE_STREAM_H_

/// Out-of-core edge streaming (DESIGN.md §18).
///
/// The building block of the external-memory pipeline: an
/// `ExternalEdgeSorter` accepts an unbounded stream of edges through a
/// bounded in-RAM buffer, spills sorted *runs* to a scratch directory,
/// and afterwards replays the whole stream in globally sorted (src, dst)
/// order — as many times as needed — through a bounded k-way
/// `MergeStream`. Runs beyond the merge fan-in are compacted by extra
/// merge passes, so RAM stays bounded no matter how many times the
/// buffer spilled.
///
/// Scratch files live in a directory whose name carries the `.tmp.`
/// staging infix (util::StagingPath convention), so the fault-sweep
/// debris check covers them: any failure path must leave nothing behind,
/// and the RunSet destructor removes the directory best-effort.
///
/// Every IO site carries a named `extmem.*` failpoint (DESIGN.md §14).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/io_result.h"

namespace gorder::extmem {

/// Knobs for the out-of-core pipeline. The memory budget governs the
/// streaming state (run buffer, merge read buffers, pack write window) —
/// the semi-external model additionally keeps O(n) vertex state in RAM,
/// which is reported by EstimateMemory (ext_csr.h), not bounded here.
struct ExtmemOptions {
  /// Target for the streaming buffers. Default 256 MB.
  std::uint64_t mem_budget_bytes = 256ull << 20;
  /// Max runs merged in one pass; more runs trigger compaction passes.
  std::size_t merge_fanin = 64;
  /// Scratch directory for run files. Empty: next to the output pack.
  std::string scratch_dir;
  /// Edges buffered in RAM before a run is spilled. 0 = derive from
  /// mem_budget_bytes. Tests set a small value to force many runs.
  std::size_t run_buffer_edges = 0;
};

/// Counters filled by the external build, reported by the CLI and bench.
struct ExtBuildStats {
  std::uint64_t edges_ingested = 0;  // as given (before dedup/loop strip)
  std::uint64_t edges_final = 0;     // m of the finished pack
  std::uint64_t runs_written = 0;    // run files spilled (incl. compaction)
  std::uint64_t run_bytes = 0;       // bytes spilled to scratch
  std::uint64_t merge_passes = 0;    // compaction passes beyond the final
  std::uint64_t window_remaps = 0;   // pack write-window advances
};

class MergeStream;

/// A scratch directory of sorted run files. Created under a `.tmp.`
/// staging name; Remove() (and the destructor, best-effort) deletes the
/// whole directory so no debris survives success *or* failure.
class RunSet {
 public:
  RunSet() = default;
  ~RunSet() { Remove(); }
  RunSet(const RunSet&) = delete;
  RunSet& operator=(const RunSet&) = delete;

  /// Creates the scratch directory. `prefix` is the path the directory
  /// name is derived from (typically the target pack path).
  IoResult Create(const std::string& prefix);

  /// Writes `count` sorted edges as one run file.
  IoResult WriteRun(const Edge* edges, std::size_t count);

  /// Drains `merge` into a new run file through a bounded buffer —
  /// the compaction step when the run count exceeds the merge fan-in.
  IoResult WriteMerged(MergeStream* merge, std::size_t buffer_edges);

  std::size_t NumRuns() const { return runs_.size(); }
  const std::string& RunPath(std::size_t i) const { return runs_[i].path; }
  std::uint64_t RunEdges(std::size_t i) const { return runs_[i].edges; }
  std::uint64_t TotalEdges() const;

  /// Drops the first `count` runs (deleting their files) — used by
  /// compaction after it merged them into a new run.
  void DropRuns(std::size_t count);

  /// Removes the scratch directory and every run in it.
  void Remove();

  std::uint64_t runs_written() const { return runs_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct Run {
    std::string path;
    std::uint64_t edges = 0;
  };
  std::string dir_;
  std::vector<Run> runs_;
  std::uint64_t next_id_ = 0;
  std::uint64_t runs_written_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Streams the edges of a set of sorted runs in globally sorted
/// (src, dst) order via a binary-heap k-way merge with bounded per-run
/// read buffers. Duplicate edges (within or across runs) are emitted
/// once. The run set must hold at most `merge_fanin` runs — callers go
/// through ExternalEdgeSorter, which compacts first.
class MergeStream {
 public:
  MergeStream();  // out-of-line: Source is incomplete here
  ~MergeStream();
  MergeStream(const MergeStream&) = delete;
  MergeStream& operator=(const MergeStream&) = delete;

  /// Opens every run of `runs` (indices [first, first+count)).
  /// `buffer_edges` bounds each run's read buffer.
  IoResult Open(const RunSet& runs, std::size_t first, std::size_t count,
                std::size_t buffer_edges);

  /// Fetches the next deduplicated edge. Sets `*eof` when exhausted.
  IoResult Next(Edge* edge, bool* eof);

  void Close();

 private:
  struct Source;
  IoResult Refill(Source& src);

  std::vector<std::unique_ptr<Source>> sources_;
  std::vector<std::uint32_t> heap_;  // indices into sources_
  Edge last_{};
  bool have_last_ = false;

  void HeapSiftDown(std::size_t i);
  bool SourceLess(std::uint32_t a, std::uint32_t b) const;
};

/// Bounded-memory external sorter: Add() buffers edges, spilling sorted
/// runs; Finish() flushes and compacts to at most `merge_fanin` runs;
/// afterwards OpenMerge() replays the sorted, deduplicated stream (and
/// can be called repeatedly — the degree-counting and neighbor-writing
/// passes of the CSR build each replay it once).
///
/// Self-loops are *kept* here (they sort like any edge); the CSR builder
/// strips them at its level, mirroring Graph::Builder.
class ExternalEdgeSorter {
 public:
  explicit ExternalEdgeSorter(const ExtmemOptions& options);
  ~ExternalEdgeSorter() = default;

  /// Creates the scratch run directory (named after `prefix`).
  IoResult Create(const std::string& prefix);

  IoResult Add(Edge e);
  IoResult AddBatch(const Edge* edges, std::size_t count);

  /// Flushes the tail buffer and compacts to <= merge_fanin runs.
  IoResult Finish(ExtBuildStats* stats);

  /// Opens a merge over the finished runs. Valid after Finish(); may be
  /// called multiple times. An empty sorter yields an immediate EOF.
  IoResult OpenMerge(MergeStream* merge) const;

  std::uint64_t edges_added() const { return edges_added_; }

  /// Releases scratch space early (destructor also does this).
  void ReleaseScratch() { runs_.Remove(); }

 private:
  IoResult SpillBuffer();

  ExtmemOptions options_;
  std::size_t buffer_capacity_ = 0;
  std::size_t merge_buffer_edges_ = 0;
  std::vector<Edge> buffer_;
  RunSet runs_;
  std::uint64_t edges_added_ = 0;
  bool finished_ = false;
};

/// Streams a whitespace-separated edge list ("src dst" per line, '#'/'%'
/// comments — the same grammar as ReadEdgeList) through a bounded read
/// buffer, never materialising the file or the edge list. Calls `sink`
/// for each parsed chunk. Used by the `--extmem` CLI ingest path.
class EdgeListStreamer {
 public:
  /// Parses `path`, feeding chunks of edges to `sink(edges, count)`.
  /// Stops and propagates the first sink error. `max_node` receives the
  /// maximum node id seen (only meaningful when `*saw_node`).
  template <typename Sink>
  static IoResult Stream(const std::string& path, Sink&& sink,
                         NodeId* max_node = nullptr, bool* saw_node = nullptr);
};

namespace internal {

/// Non-template core of EdgeListStreamer: reads `path` in bounded
/// chunks, parses complete lines, and invokes `emit(ctx, edges, count)`.
IoResult StreamEdgeListImpl(const std::string& path,
                            IoResult (*emit)(void* ctx, const Edge* edges,
                                             std::size_t count),
                            void* ctx, NodeId* max_node, bool* saw_node);

}  // namespace internal

template <typename Sink>
IoResult EdgeListStreamer::Stream(const std::string& path, Sink&& sink,
                                  NodeId* max_node, bool* saw_node) {
  auto thunk = [](void* ctx, const Edge* edges, std::size_t count) {
    return (*static_cast<Sink*>(ctx))(edges, count);
  };
  return internal::StreamEdgeListImpl(path, thunk, &sink, max_node, saw_node);
}

}  // namespace gorder::extmem

#endif  // GORDER_EXTMEM_EDGE_STREAM_H_
