#ifndef GORDER_EXTMEM_SEMI_EXTERNAL_H_
#define GORDER_EXTMEM_SEMI_EXTERNAL_H_

/// Semi-external ordering (DESIGN.md §18).
///
/// Gorder's greedy window algorithm only needs O(n) vertex state in RAM
/// — the packed unit heap, the permutation, and per-vertex scores — while
/// the adjacency is read through whatever backs the CSR arrays. Running
/// the unchanged kernels over a zero-copy mapped .gpack therefore *is*
/// the semi-external algorithm: the OS pages adjacency windows in and
/// out on demand, RAM holds only vertex state, and the output is
/// bit-identical to the in-memory run by construction (same code, same
/// values). This header packages that as a one-call API with
/// method-appropriate paging advice (sequential for the single-pass
/// BOBA/degree methods, on-demand for Gorder's windowed access).

#include <string>
#include <vector>

#include "graph/graph.h"
#include "order/ordering.h"
#include "util/io_result.h"

namespace gorder::extmem {

struct SemiExternalInfo {
  std::uint64_t pack_bytes = 0;  // mapped pack size (address space, not RSS)
  bool zero_copy = false;        // true when a real mmap backed the run
};

/// Computes `perm[old] = new` for the graph stored at `pack_path`,
/// keeping only vertex state in RAM. Bit-identical to ComputeOrdering on
/// the same graph loaded in memory (the differential test asserts it).
IoResult SemiExternalOrder(const std::string& pack_path, order::Method method,
                           const order::OrderingParams& params,
                           std::vector<NodeId>* perm,
                           SemiExternalInfo* info = nullptr);

}  // namespace gorder::extmem

#endif  // GORDER_EXTMEM_SEMI_EXTERNAL_H_
