#include "extmem/windowed_file.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"

#if defined(__linux__) || defined(__APPLE__)
#define GORDER_EXTMEM_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace gorder::extmem {

namespace {

GORDER_FAILPOINT_DEFINE(fp_pack_open, "extmem.pack.open");
GORDER_FAILPOINT_DEFINE(fp_pack_map, "extmem.pack.map");
GORDER_FAILPOINT_DEFINE(fp_pack_write, "extmem.pack.write");
GORDER_FAILPOINT_DEFINE(fp_pack_sync, "extmem.pack.sync");

std::size_t PageSize() {
#ifdef GORDER_EXTMEM_HAS_MMAP
  const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<std::size_t>(ps) : 4096;
#else
  return 4096;
#endif
}

}  // namespace

WindowedWriter::~WindowedWriter() { Close(); }

void WindowedWriter::UnmapWindow() {
#ifdef GORDER_EXTMEM_HAS_MMAP
  if (window_ != nullptr) {
    ::munmap(window_, win_len_);
    window_ = nullptr;
    win_len_ = 0;
  }
#endif
}

void WindowedWriter::Close() {
  UnmapWindow();
#ifdef GORDER_EXTMEM_HAS_MMAP
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
  if (fallback_ != nullptr) {
    std::fclose(fallback_);
    fallback_ = nullptr;
  }
}

IoResult WindowedWriter::Create(const std::string& path,
                                std::uint64_t file_bytes,
                                std::size_t window_bytes) {
  Close();
  path_ = path;
  file_bytes_ = file_bytes;
  const std::size_t page = PageSize();
  window_bytes_ = std::max<std::size_t>(window_bytes / page, 1) * page;
#ifdef GORDER_EXTMEM_HAS_MMAP
  if (GORDER_FAILPOINT(fp_pack_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot create " + path);
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return IoResult::Error("cannot create " + path);
  // Pre-size sparsely: untouched ranges read back as zeros, which is
  // byte-identical to the padding the in-memory writer emits.
  if (file_bytes > 0 &&
      ::ftruncate(fd_, static_cast<off_t>(file_bytes)) != 0) {
    return IoResult::Error("cannot size " + path + " to " +
                           std::to_string(file_bytes) + " bytes");
  }
#else
  if (GORDER_FAILPOINT(fp_pack_open) != util::FaultKind::kNone) {
    return IoResult::Error("cannot create " + path);
  }
  fallback_ = std::fopen(path.c_str(), "wb+");
  if (fallback_ == nullptr) return IoResult::Error("cannot create " + path);
  if (file_bytes > 0) {
    // Extend by writing the last byte; the gaps read back as zeros on
    // every mainstream filesystem.
    if (std::fseek(fallback_, static_cast<long>(file_bytes - 1), SEEK_SET) !=
            0 ||
        std::fputc(0, fallback_) == EOF) {
      return IoResult::Error("cannot size " + path);
    }
  }
#endif
  return IoResult::Ok();
}

IoResult WindowedWriter::MapWindow(std::uint64_t offset) {
#ifdef GORDER_EXTMEM_HAS_MMAP
  UnmapWindow();
  const std::size_t page = PageSize();
  const std::uint64_t start = offset / page * page;
  const std::size_t len = static_cast<std::size_t>(
      std::min<std::uint64_t>(window_bytes_, file_bytes_ - start));
  if (GORDER_FAILPOINT(fp_pack_map) != util::FaultKind::kNone) {
    return IoResult::Error("cannot map write window of " + path_);
  }
  void* mem = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                     static_cast<off_t>(start));
  if (mem == MAP_FAILED) {
    return IoResult::Error("cannot map write window of " + path_);
  }
  window_ = mem;
  win_start_ = start;
  win_len_ = len;
  ++remaps_;
  return IoResult::Ok();
#else
  (void)offset;
  return IoResult::Ok();
#endif
}

IoResult WindowedWriter::WriteAt(std::uint64_t offset, const void* data,
                                 std::size_t bytes) {
  if (offset + bytes > file_bytes_) {
    return IoResult::Error("write past end of " + path_);
  }
  if (GORDER_FAILPOINT(fp_pack_write) != util::FaultKind::kNone) {
    return IoResult::Error("short write to " + path_);
  }
#ifdef GORDER_EXTMEM_HAS_MMAP
  const char* src = static_cast<const char*>(data);
  while (bytes > 0) {
    if (window_ == nullptr || offset < win_start_ ||
        offset >= win_start_ + win_len_) {
      if (IoResult r = MapWindow(offset); !r.ok) return r;
    }
    const std::size_t in_window = static_cast<std::size_t>(
        std::min<std::uint64_t>(bytes, win_start_ + win_len_ - offset));
    std::memcpy(static_cast<char*>(window_) + (offset - win_start_), src,
                in_window);
    src += in_window;
    offset += in_window;
    bytes -= in_window;
  }
  return IoResult::Ok();
#else
  if (std::fseek(fallback_, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(data, 1, bytes, fallback_) != bytes) {
    return IoResult::Error("short write to " + path_);
  }
  return IoResult::Ok();
#endif
}

IoResult WindowedWriter::Sync() {
#ifdef GORDER_EXTMEM_HAS_MMAP
  bool ok = true;
  if (window_ != nullptr && ::msync(window_, win_len_, MS_SYNC) != 0) {
    ok = false;
  }
  if (ok && fd_ >= 0 && ::fsync(fd_) != 0) ok = false;
  if (!GORDER_FAULT_OK(fp_pack_sync, ok)) {
    return IoResult::Error("cannot sync " + path_);
  }
  return IoResult::Ok();
#else
  const bool ok = fallback_ != nullptr && std::fflush(fallback_) == 0;
  if (!GORDER_FAULT_OK(fp_pack_sync, ok)) {
    return IoResult::Error("cannot sync " + path_);
  }
  return IoResult::Ok();
#endif
}

}  // namespace gorder::extmem
