// Reproduces Figure 5 of the replication (Figure 9 of the paper): for
// every algorithm and dataset, the runtime of every ordering relative to
// Gorder. The paper's headline result: Gorder is fastest or near-fastest
// everywhere, 10-50% faster than Original, with Random/LDG the slowest.
//
//   --group-by-ordering   prints the supplementary Figure S1 layout
//                         (one table per ordering instead of per
//                         algorithm).
//   --extended            also measures this repo's extension orderings
//                         (Metis, OutDegSort, HubSort, HubCluster, DBG,
//                         BOBA); ratios stay relative to Gorder.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.4);
  Flags flags(argc, argv);
  const bool by_ordering = flags.GetBool("group-by-ordering", false);
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 10));
  const auto diam_sources =
      static_cast<NodeId>(flags.GetInt("diam-sources", 6));

  const auto metric = bench::MetricFromFlags(flags);
  const bool wall = metric == bench::GridMetric::kWallSeconds;
  std::printf(
      "Figure 5: workload cost relative to Gorder "
      "(scale=%.2f, metric=%s, PR iters=%d, Diam sources=%u)\n\n",
      opt.scale, wall ? "wall-clock" : "modelled cycles", pr_iters,
      diam_sources);

  auto grid = bench::RunSpeedupGrid(opt, pr_iters, diam_sources,
                                    /*progress=*/!opt.csv, metric,
                                    bench::CacheConfigFromFlags(flags),
                                    flags.GetBool("extended", false));
  auto method_index = [&grid](order::Method m) {
    for (std::size_t mi = 0; mi < grid.methods.size(); ++mi) {
      if (grid.methods[mi] == m) return mi;
    }
    GORDER_CHECK(false && "method missing from speedup grid");
    __builtin_unreachable();
  };
  const std::size_t gorder_idx = method_index(order::Method::kGorder);

  if (!by_ordering) {
    // One table per workload: rows = orderings, columns = datasets,
    // cell = time / time(Gorder); first row shows Gorder's absolute time.
    for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi) {
      std::printf("-- %s --\n",
                  harness::WorkloadName(grid.workloads[wi]).c_str());
      std::vector<std::string> header = {"Ordering"};
      for (const auto& d : grid.datasets) header.push_back(d);
      TablePrinter table(header);
      std::vector<std::string> abs_row = {"Gorder(abs)"};
      for (std::size_t d = 0; d < grid.datasets.size(); ++d) {
        double v = grid.times[d][wi][gorder_idx];
        abs_row.push_back(wall ? TablePrinter::Duration(v)
                               : TablePrinter::Count(v) + "cy");
      }
      table.AddRow(abs_row);
      for (std::size_t mi = 0; mi < grid.methods.size(); ++mi) {
        std::vector<std::string> row = {order::MethodName(grid.methods[mi])};
        for (std::size_t d = 0; d < grid.datasets.size(); ++d) {
          double ratio =
              grid.times[d][wi][mi] /
              std::max(grid.times[d][wi][gorder_idx], 1e-12);
          row.push_back(TablePrinter::Num(ratio, 2));
        }
        table.AddRow(row);
      }
      if (opt.csv) {
        table.PrintCsv();
      } else {
        table.Print();
      }
      std::printf("\n");
    }
  } else {
    // Figure S1 layout: one table per ordering, columns = datasets,
    // rows = workloads, cell = time / time(Gorder).
    for (std::size_t mi = 0; mi < grid.methods.size(); ++mi) {
      std::printf("-- %s (relative to Gorder) --\n",
                  order::MethodName(grid.methods[mi]).c_str());
      std::vector<std::string> header = {"Workload"};
      for (const auto& d : grid.datasets) header.push_back(d);
      TablePrinter table(header);
      for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi) {
        std::vector<std::string> row = {
            harness::WorkloadName(grid.workloads[wi])};
        for (std::size_t d = 0; d < grid.datasets.size(); ++d) {
          double ratio =
              grid.times[d][wi][mi] /
              std::max(grid.times[d][wi][gorder_idx], 1e-12);
          row.push_back(TablePrinter::Num(ratio, 2));
        }
        table.AddRow(row);
      }
      if (opt.csv) {
        table.PrintCsv();
      } else {
        table.Print();
      }
      std::printf("\n");
    }
  }

  // Headline summary: where does Gorder rank, and typical speedups.
  int series = 0, gorder_best = 0, gorder_top2 = 0;
  double speedup_vs_original = 0.0, speedup_vs_random = 0.0;
  const std::size_t original_idx = method_index(order::Method::kOriginal);
  const std::size_t random_idx = method_index(order::Method::kRandom);
  for (std::size_t d = 0; d < grid.datasets.size(); ++d) {
    for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi) {
      const auto& row = grid.times[d][wi];
      ++series;
      int better = 0;
      for (std::size_t mi = 0; mi < row.size(); ++mi) {
        if (mi != gorder_idx && row[mi] < row[gorder_idx]) ++better;
      }
      if (better == 0) ++gorder_best;
      if (better <= 1) ++gorder_top2;
      speedup_vs_original += row[original_idx] / row[gorder_idx];
      speedup_vs_random += row[random_idx] / row[gorder_idx];
    }
  }
  std::printf(
      "Summary: Gorder fastest in %d/%d series, top-2 in %d/%d;\n"
      "mean speedup vs Original %.2fx, vs Random %.2fx.\n"
      "Expected shape (paper): fastest or second in most series; 1.1-1.5x\n"
      "vs Original, up to ~2-3.7x vs Random on the web graphs.\n",
      gorder_best, series, gorder_top2, series,
      speedup_vs_original / series, speedup_vs_random / series);
  return 0;
}
