// Microbenchmarks for CSR construction, relabelling and generators.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace gorder {
namespace {

void BM_CsrBuild(benchmark::State& state) {
  Rng rng(1);
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g0 = gen::ErdosRenyi(n, static_cast<EdgeId>(n) * 8, rng);
  auto edges = g0.ToEdges();
  for (auto _ : state) {
    Graph g = Graph::FromEdges(n, edges, true, true);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CsrBuild)->Arg(1 << 12)->Arg(1 << 15);

void BM_Relabel(benchmark::State& state) {
  Rng rng(2);
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::ErdosRenyi(n, static_cast<EdgeId>(n) * 8, rng);
  auto perm = IdentityPermutation(n);
  rng.Shuffle(perm);
  for (auto _ : state) {
    Graph h = g.Relabel(perm);
    benchmark::DoNotOptimize(h.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_Relabel)->Arg(1 << 12)->Arg(1 << 15);

void BM_NeighborScan(benchmark::State& state) {
  Rng rng(3);
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::Rmat({.scale = 14, .num_edges = static_cast<EdgeId>(n) * 8},
                      rng);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      for (NodeId w : g.OutNeighbors(v)) sum += w;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_NeighborScan)->Arg(1 << 14);

void BM_GenerateRmat(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(4);
    Graph g = gen::Rmat({.scale = 13, .num_edges = 100000}, rng);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_GenerateRmat);

void BM_GenerateCopying(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(5);
    Graph g = gen::CopyingModel(10000, 8, 0.6, rng);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * 80000);
}
BENCHMARK(BM_GenerateCopying);

}  // namespace
}  // namespace gorder
