// loadgen_serve — open-loop load generator for a live gorderd.
//
// Drives a heavy-tailed request mix (point lookups dominate, a trickle
// of full-kernel and ordering work) at a fixed offered rate, split
// across independent connections. The load is OPEN-LOOP: every request
// has a scheduled send time drawn from exponential inter-arrivals, and
// its latency is measured from that *scheduled* time — a slow server
// cannot slow the arrival process down, so coordinated omission does not
// hide queueing delay (Tene, "How NOT to Measure Latency").
//
// Usage:
//   loadgen_serve --target=unix:/tmp/gorderd.sock
//                 [--qps=2000] [--seconds=5] [--connections=8]
//                 [--seed=42] [--topk=8] [--pr-iters=5]
//                 [--max-overloaded=N] (exit 1 if more responses were
//                  kOverloaded — CI smoke asserts 0 at smoke rates)
//                 [--shutdown-after] (send kShutdown once done, so a
//                  scripted daemon drains, writes its report and exits)
//                 [--json-out=f] [--quiet]
//
// Reports sustained QPS and p50/p99/p999 latency on stdout and, via
// --json-out, as loadgen.* metrics in the standard run-report schema:
// counters loadgen.sent/ok/overloaded/errors, gauges loadgen.qps_x1000
// and loadgen.{p50,p99,p999,max}_us.
//
// Request mix (per arrival, before node sampling):
//   55% neighbors   20% degree   10% bfs   10% sp   4% pagerank-topk
//    1% order (a small generated edge list, BOBA — streaming-speed)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

struct WorkerStats {
  std::vector<std::uint64_t> latencies_us;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;  // any non-kOk, non-kOverloaded outcome
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Exponential inter-arrival with rate `per_conn_qps`, via inverse CDF.
double NextGap(Rng& rng, double per_conn_qps) {
  double u = rng.UniformDouble();
  if (u >= 1.0) u = 0.999999;
  return -std::log1p(-u) / per_conn_qps;
}

/// One connection's open loop: its own Poisson arrival process at
/// qps/connections, blocking round trips, latency from scheduled send.
void RunWorker(const util::NetAddress& target, double per_conn_qps,
               double seconds, std::uint64_t seed, NodeId num_nodes,
               std::uint32_t topk, std::uint32_t pr_iters, WorkerStats* stats,
               std::atomic<bool>* failed) {
  serve::Client client;
  IoResult c = client.Connect(target, 30.0);
  if (!c.ok) {
    std::fprintf(stderr, "loadgen: connect: %s\n", c.error.c_str());
    failed->store(true);
    return;
  }
  Rng rng(seed);
  // A tiny fixed edge list for the kOrder trickle (the point is protocol
  // + scheduling coverage, not ordering throughput).
  std::vector<Edge> upload;
  for (NodeId v = 1; v < 64; ++v) upload.push_back({v / 2, v});

  const double start = NowSeconds();
  const double deadline = start + seconds;
  double scheduled = start + NextGap(rng, per_conn_qps);
  while (scheduled < deadline) {
    const double now = NowSeconds();
    if (scheduled > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(scheduled - now));
    }
    const std::uint64_t die = rng.Uniform(100);
    const NodeId node = static_cast<NodeId>(rng.Uniform(num_nodes));
    ++stats->sent;
    serve::Status status;
    if (die < 55) {
      status = client.Neighbors(node).status;
    } else if (die < 75) {
      status = client.Degree(node).status;
    } else if (die < 85) {
      status = client.Bfs(node).status;
    } else if (die < 95) {
      status = client.Sp(node).status;
    } else if (die < 99) {
      status = client.PageRankTopK(topk, pr_iters).status;
    } else {
      status = client.Order("BOBA", 42, 64, upload).status;
    }
    const double done = NowSeconds();
    stats->latencies_us.push_back(
        static_cast<std::uint64_t>((done - scheduled) * 1e6));
    if (status == serve::Status::kOk) {
      ++stats->ok;
    } else if (status == serve::Status::kOverloaded) {
      ++stats->overloaded;
    } else {
      ++stats->errors;
      if (!client.connected()) {
        // Transport death ends this worker; the run reports the errors.
        failed->store(true);
        return;
      }
    }
    scheduled += NextGap(rng, per_conn_qps);
  }
}

std::uint64_t Percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("quiet", false)) SetLogLevel(LogLevel::kQuiet);
  obs::RunOptions run;
  run.bench = "loadgen_serve";
  run.flags = flags.Raw();
  run.json_out = flags.GetString("json-out", "");
  run.trace_out = flags.GetString("trace-out", "");
  obs::StartRun(run);

  util::NetAddress target;
  std::string parse_error;
  const std::string spec = flags.GetString("target", "");
  if (spec.empty() || !util::ParseNetAddress(spec, &target, &parse_error)) {
    std::fprintf(stderr,
                 "usage: loadgen_serve --target=unix:/path|tcp:HOST:PORT "
                 "[--qps --seconds --connections]\n%s\n",
                 parse_error.c_str());
    return 2;
  }
  const double qps = flags.GetDouble("qps", 2000.0);
  const double seconds = flags.GetDouble("seconds", 5.0);
  const int connections = static_cast<int>(flags.GetInt("connections", 8));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto topk = static_cast<std::uint32_t>(flags.GetInt("topk", 8));
  const auto pr_iters = static_cast<std::uint32_t>(flags.GetInt("pr-iters", 5));
  const std::int64_t max_overloaded = flags.GetInt("max-overloaded", -1);
  if (qps <= 0 || seconds <= 0 || connections < 1) {
    std::fprintf(stderr,
                 "error: --qps and --seconds must be positive, "
                 "--connections >= 1\n");
    return 2;
  }

  // One probe connection learns the graph size for node sampling.
  serve::Client probe;
  IoResult c = probe.Connect(target, 30.0);
  if (!c.ok) {
    std::fprintf(stderr, "loadgen: connect %s: %s\n", spec.c_str(),
                 c.error.c_str());
    return 1;
  }
  serve::InfoReply info = probe.Info();
  if (!info.ok() || info.num_nodes == 0) {
    std::fprintf(stderr, "loadgen: info failed: %s\n", info.error.c_str());
    return 1;
  }
  probe.Close();
  const auto num_nodes = static_cast<NodeId>(info.num_nodes);

  std::vector<WorkerStats> stats(connections);
  std::atomic<bool> failed{false};
  Timer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (int i = 0; i < connections; ++i) {
      threads.emplace_back(RunWorker, target, qps / connections, seconds,
                           seed + static_cast<std::uint64_t>(i) * 7919,
                           num_nodes, topk, pr_iters, &stats[i], &failed);
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed = wall.Seconds();

  std::vector<std::uint64_t> lat;
  std::uint64_t sent = 0, ok = 0, overloaded = 0, errors = 0;
  for (const auto& s : stats) {
    lat.insert(lat.end(), s.latencies_us.begin(), s.latencies_us.end());
    sent += s.sent;
    ok += s.ok;
    overloaded += s.overloaded;
    errors += s.errors;
  }
  std::sort(lat.begin(), lat.end());
  const double sustained = static_cast<double>(lat.size()) / elapsed;
  const std::uint64_t p50 = Percentile(lat, 0.50);
  const std::uint64_t p99 = Percentile(lat, 0.99);
  const std::uint64_t p999 = Percentile(lat, 0.999);
  const std::uint64_t max_us = lat.empty() ? 0 : lat.back();

  obs::GetCounter("loadgen.sent").Add(sent);
  obs::GetCounter("loadgen.ok").Add(ok);
  obs::GetCounter("loadgen.overloaded").Add(overloaded);
  obs::GetCounter("loadgen.errors").Add(errors);
  obs::GetGauge("loadgen.qps_x1000")
      .Set(static_cast<std::int64_t>(sustained * 1000.0));
  obs::GetGauge("loadgen.p50_us").Set(static_cast<std::int64_t>(p50));
  obs::GetGauge("loadgen.p99_us").Set(static_cast<std::int64_t>(p99));
  obs::GetGauge("loadgen.p999_us").Set(static_cast<std::int64_t>(p999));
  obs::GetGauge("loadgen.max_us").Set(static_cast<std::int64_t>(max_us));

  std::printf("target:      %s (n=%llu, m=%llu, %u serve threads)\n",
              spec.c_str(), static_cast<unsigned long long>(info.num_nodes),
              static_cast<unsigned long long>(info.num_edges),
              info.serve_threads);
  std::printf("offered:     %.0f qps x %.1fs over %d connections\n", qps,
              seconds, connections);
  std::printf("completed:   %llu (%llu ok, %llu overloaded, %llu errors)\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(overloaded),
              static_cast<unsigned long long>(errors));
  std::printf("sustained:   %.0f qps\n", sustained);
  std::printf("latency_us:  p50=%llu p99=%llu p999=%llu max=%llu\n",
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(p999),
              static_cast<unsigned long long>(max_us));

  if (flags.GetBool("shutdown-after", false)) {
    serve::Client admin;
    if (admin.Connect(target, 30.0).ok) {
      serve::Reply reply = admin.Shutdown();
      if (!reply.ok()) {
        std::fprintf(stderr, "loadgen: shutdown request failed: %s\n",
                     reply.error.c_str());
      }
    }
  }

  if (failed.load()) {
    std::fprintf(stderr, "loadgen: FAILED (a worker lost its connection)\n");
    return 1;
  }
  if (errors > 0) {
    std::fprintf(stderr, "loadgen: FAILED (%llu error responses)\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (max_overloaded >= 0 &&
      overloaded > static_cast<std::uint64_t>(max_overloaded)) {
    std::fprintf(stderr,
                 "loadgen: FAILED (%llu overloaded > --max-overloaded=%lld)\n",
                 static_cast<unsigned long long>(overloaded),
                 static_cast<long long>(max_overloaded));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
