// Microbenchmarks: throughput of each ordering method on a mid-size
// R-MAT graph (edges/second is the figure of merit; compare Table 2).

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "order/gorder.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

const Graph& SharedGraph() {
  static const Graph* kGraph = [] {
    Rng rng(7);
    return new Graph(gen::Rmat({.scale = 14, .num_edges = 200000}, rng));
  }();
  return *kGraph;
}

void RunMethod(benchmark::State& state, Method method) {
  const Graph& g = SharedGraph();
  OrderingParams params;
  params.sa_steps = g.NumEdges() / 4;  // keep annealing iterations bounded
  for (auto _ : state) {
    auto perm = ComputeOrdering(g, method, params);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}

void BM_OrderRandom(benchmark::State& s) { RunMethod(s, Method::kRandom); }
void BM_OrderInDegSort(benchmark::State& s) {
  RunMethod(s, Method::kInDegSort);
}
void BM_OrderChDfs(benchmark::State& s) { RunMethod(s, Method::kChDfs); }
void BM_OrderRcm(benchmark::State& s) { RunMethod(s, Method::kRcm); }
void BM_OrderSlashBurn(benchmark::State& s) {
  RunMethod(s, Method::kSlashBurn);
}
void BM_OrderLdg(benchmark::State& s) { RunMethod(s, Method::kLdg); }
void BM_OrderMinLa(benchmark::State& s) { RunMethod(s, Method::kMinLa); }
void BM_OrderGorder(benchmark::State& s) { RunMethod(s, Method::kGorder); }
void BM_OrderBoba(benchmark::State& s) { RunMethod(s, Method::kBoba); }

BENCHMARK(BM_OrderRandom);
BENCHMARK(BM_OrderInDegSort);
BENCHMARK(BM_OrderChDfs);
BENCHMARK(BM_OrderRcm);
BENCHMARK(BM_OrderSlashBurn);
BENCHMARK(BM_OrderLdg);
BENCHMARK(BM_OrderMinLa);
BENCHMARK(BM_OrderGorder);
BENCHMARK(BM_OrderBoba);

void BM_GorderWindow(benchmark::State& state) {
  const Graph& g = SharedGraph();
  OrderingParams params;
  params.window = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    auto perm = GorderOrder(g, params);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_GorderWindow)->Arg(1)->Arg(5)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace gorder::order
