// Extension experiment: ordering maintenance on an evolving graph — the
// adaptation the paper's discussion calls for. A social graph grows by
// streamed node arrivals (each new node links to a few preferentially
// chosen targets); we compare three maintenance policies at checkpoints:
//
//   append       new nodes get the next free id (no maintenance),
//   incremental  IncrementalGorder splices arrivals next to their
//                cluster (O(degree) per update),
//   rebuild      full Gorder recomputation at every checkpoint (upper
//                bound on quality, and on cost).
//
// Reported: PageRank modelled cycles on the current snapshot under each
// policy's arrangement, plus cumulative maintenance seconds.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.4);
  Flags flags(argc, argv);
  const int arrivals = static_cast<int>(flags.GetInt("arrivals", 4000));
  const int checkpoints = static_cast<int>(flags.GetInt("checkpoints", 4));
  const int links = static_cast<int>(flags.GetInt("links", 4));
  const auto geometry = bench::CacheConfigFromFlags(flags);

  Graph base = bench::MakeDataset(opt, "flickr");
  bench::PrintHeader("Extension: dynamic-graph ordering maintenance", base,
                     "flickr");
  std::printf("%d arrivals, %d links each, %d checkpoints\n\n", arrivals,
              links, checkpoints);

  order::IncrementalGorder inc(base);
  DynamicGraph append(base);
  Rng rng(opt.seed);
  double incremental_cost = 0.0;
  double rebuild_cost = 0.0;

  // Preferential anchors: sample from a degree-weighted pool; the
  // remaining links close triangles around the anchor (triadic closure,
  // how social graphs actually grow) so arrivals join real communities.
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < base.NumNodes(); ++v) {
    for (NodeId i = 0; i < 1 + base.InDegree(v); ++i) pool.push_back(v);
  }

  TablePrinter table({"checkpoint", "nodes", "edges", "PR append",
                      "PR incremental", "PR rebuild", "incr cost(s)",
                      "rebuild cost(s)", "staleness"});
  auto pr_cycles = [&](const Graph& g, const std::vector<NodeId>& perm) {
    harness::WorkloadConfig config;
    config.pagerank_iterations = 5;
    config.sp_source_logical = 0;
    return harness::ModelWorkloadCycles(g.Relabel(perm),
                                        harness::Workload::kPr, config,
                                        perm, geometry);
  };

  for (int cp = 1; cp <= checkpoints; ++cp) {
    for (int i = 0; i < arrivals / checkpoints; ++i) {
      Timer t;
      NodeId v = inc.AddNode();
      NodeId va = append.AddNode();
      GORDER_CHECK(v == va);
      NodeId anchor = pool[rng.Uniform(pool.size())];
      for (int e = 0; e < links; ++e) {
        NodeId u = anchor;
        if (e > 0) {
          // Friend-of-friend: link to one of the anchor's neighbours.
          const auto& fof = append.OutNeighbors(anchor);
          const auto& fof_in = append.InNeighbors(anchor);
          std::size_t total = fof.size() + fof_in.size();
          if (total > 0) {
            std::size_t pick = rng.Uniform(total);
            u = pick < fof.size() ? fof[pick]
                                  : fof_in[pick - fof.size()];
          }
        }
        if (u == v) continue;
        Timer ti;
        inc.AddEdge(v, u);
        incremental_cost += ti.Seconds();
        append.AddEdge(v, u);
        pool.push_back(u);
      }
      pool.push_back(v);
      (void)t;
    }
    Graph snapshot = append.ToCsr();
    auto append_perm = IdentityPermutation(snapshot.NumNodes());
    auto inc_perm = inc.CurrentPermutation();
    Timer tr;
    auto rebuilt_perm = order::GorderOrder(snapshot, {});
    rebuild_cost += tr.Seconds();
    table.AddRow(
        {std::to_string(cp), TablePrinter::Count(snapshot.NumNodes()),
         TablePrinter::Count(static_cast<double>(snapshot.NumEdges())),
         TablePrinter::Count(pr_cycles(snapshot, append_perm)),
         TablePrinter::Count(pr_cycles(snapshot, inc_perm)),
         TablePrinter::Count(pr_cycles(snapshot, rebuilt_perm)),
         TablePrinter::Num(incremental_cost, 3),
         TablePrinter::Num(rebuild_cost, 3),
         TablePrinter::Num(inc.StalenessRatio(), 3)});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nExpected shape: incremental maintenance recovers most of the\n"
        "gap between append order and a fresh Gorder at a tiny fraction\n"
        "of the rebuild cost; its advantage decays as staleness grows —\n"
        "quantifying when the paper's \"recompute from scratch\" is\n"
        "actually worth it.\n");
  }
  return 0;
}
