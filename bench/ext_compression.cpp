// Extension experiment: orderings as compression boosters (replication
// §4 points at WebGraph/Boldi-Vigna). Uses the real gap+varint encoder
// in src/compress to measure bits/edge for every ordering on the web
// datasets, and verifies decompression round-trips.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.3);
  Flags flags(argc, argv);
  std::vector<std::string> datasets = {"wiki", "pldarc", "sdarc"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "wiki")};

  std::vector<std::string> header = {"Ordering"};
  for (const auto& d : datasets) header.push_back(d + " bits/edge");
  TablePrinter table(header);

  std::vector<Graph> graphs;
  for (const auto& name : datasets) {
    graphs.push_back(bench::MakeDataset(opt, name));
    std::printf("%s: n=%s m=%s csr=%s\n", name.c_str(),
                TablePrinter::Count(graphs.back().NumNodes()).c_str(),
                TablePrinter::Count(
                    static_cast<double>(graphs.back().NumEdges()))
                    .c_str(),
                TablePrinter::Count(
                    static_cast<double>(graphs.back().MemoryBytes()))
                    .c_str());
  }
  std::printf("\n");

  for (order::Method m : order::AllMethodsExtended()) {
    std::vector<std::string> row = {order::MethodName(m)};
    for (auto& g : graphs) {
      order::OrderingParams params;
      params.seed = opt.seed;
      auto perm = order::ComputeOrdering(g, m, params);
      Graph h = g.Relabel(perm);
      auto cg = compress::CompressedGraph::FromGraph(h);
      GORDER_CHECK(cg.NumEdges() == h.NumEdges());
      row.push_back(TablePrinter::Num(cg.BitsPerEdge(), 2));
    }
    table.AddRow(row);
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nReading: CSR costs 32 bits/edge; gap coding under a random\n"
        "ordering saves little, while locality orderings cut the encoded\n"
        "size substantially — the cache-miss objective and the\n"
        "compression objective reward the same permutations.\n");
  }
  return 0;
}
