// Reproduces Table 3 of the replication (Tables 3 and 4 of the paper):
// cache statistics for the PageRank workload under every ordering, on the
// flickr-like and sdarc-like datasets. Columns mirror the paper:
// L1 references, L1 miss rate, last-level references, last-level ratio
// (share of all references that consulted L3), and the overall cache
// miss rate (share served by main memory).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.6);
  Flags flags(argc, argv);
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 4));
  const auto cache_config = bench::CacheConfigFromFlags(flags);
  std::vector<std::string> datasets = {"flickr", "sdarc"};
  if (flags.Has("dataset")) {
    datasets = {flags.GetString("dataset", "flickr")};
  }

  for (const auto& name : datasets) {
    Graph g = bench::MakeDataset(opt, name);
    bench::PrintHeader("Table 3: PageRank cache statistics", g, name);
    auto config = harness::MakeDefaultConfig(g, 3, opt.seed);
    config.pagerank_iterations = pr_iters;

    TablePrinter table({"Order", "L1-ref", "L1-mr", "L3-ref", "L3-r",
                        "Cache-mr", "Stall%"});
    for (order::Method m : order::AllMethods()) {
      order::OrderingParams params;
      params.seed = opt.seed;
      auto perm = order::ComputeOrdering(g, m, params);
      Graph h = g.Relabel(perm);
      cachesim::CacheHierarchy caches(cache_config);
      harness::RunWorkloadTraced(h, harness::Workload::kPr, config, perm,
                                 caches);
      const auto& s = caches.stats();
      table.AddRow(
          {order::MethodName(m),
           TablePrinter::Count(static_cast<double>(s.l1_refs)),
           TablePrinter::Num(100 * s.L1MissRate(), 1) + "%",
           TablePrinter::Count(static_cast<double>(s.l3_refs)),
           TablePrinter::Num(100 * s.L3Ratio(), 1) + "%",
           TablePrinter::Num(100 * s.OverallMissRate(), 2) + "%",
           TablePrinter::Num(100 * s.StallFraction(), 1) + "%"});
    }
    if (opt.csv) {
      table.PrintCsv();
    } else {
      table.Print();
    }
    std::printf("\n");
  }
  if (!opt.csv) {
    std::printf(
        "Expected shape (paper Tables 3/4): L1-refs nearly constant across\n"
        "orderings (same logical work); Gorder has the lowest miss rates,\n"
        "RCM/ChDFS close behind, Random and LDG the highest (2-3x Gorder).\n");
  }
  return 0;
}
