// Extension experiment: real hardware counters next to the simulator.
// Runs PageRank under Original/Random/Gorder while sampling Linux
// perf_event counters (the papers' own measurement channel). On kernels
// or containers where perf_event_open is blocked the bench degrades to
// a notice — the simulated tables (table3_cache_stats) remain the
// deterministic source of truth.

#include "bench/bench_common.h"
#include "cachesim/hw_counters.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/1.0);
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "sdarc");
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 20));

  if (!cachesim::HwCounters::Available()) {
    std::printf(
        "hardware counters unavailable (perf_event_open blocked in this\n"
        "environment) — skipping; see table3_cache_stats for the\n"
        "simulated equivalent.\n");
    return 0;
  }

  Graph g = bench::MakeDataset(opt, dataset);
  bench::PrintHeader("Extension: hardware counters (PageRank)", g, dataset);
  TablePrinter table({"Ordering", "cycles", "IPC", "L1-mr", "LLC-mr",
                      "wall(s)", "mux"});
  for (order::Method m : {order::Method::kOriginal, order::Method::kRandom,
                          order::Method::kRcm, order::Method::kGorder}) {
    order::OrderingParams params;
    params.seed = opt.seed;
    auto perm = order::ComputeOrdering(g, m, params);
    Graph h = g.Relabel(perm);
    cachesim::HwCounters counters;
    Timer timer;
    bool started = counters.Start();
    auto pr = algo::PageRank(h, pr_iters);
    double wall = timer.Seconds();
    auto stats = counters.Stop();
    volatile double sink = pr.total_mass;
    (void)sink;
    if (!started || !stats.valid) {
      table.AddRow({order::MethodName(m), "n/a", "n/a", "n/a", "n/a",
                    TablePrinter::Num(wall, 3), "n/a"});
      continue;
    }
    // "mux" flags runs where the kernel time-sliced the event group:
    // counts are then scaled estimates, not exact (HwStats::Clean()).
    std::string mux =
        stats.multiplexed
            ? TablePrinter::Num(100 * stats.MinRunningFraction(), 0) + "%"
            : "clean";
    table.AddRow({order::MethodName(m),
                  TablePrinter::Count(static_cast<double>(stats.cycles)),
                  TablePrinter::Num(stats.Ipc(), 2),
                  TablePrinter::Num(100 * stats.L1MissRate(), 1) + "%",
                  TablePrinter::Num(100 * stats.LlcMissRate(), 1) + "%",
                  TablePrinter::Num(wall, 3), mux});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nNote: at laptop --scale the graph may fit in the physical\n"
        "caches; increase --scale until CSR size exceeds your LLC to see\n"
        "the paper's separation on real hardware.\n");
  }
  return 0;
}
