// Reproduces Figure 4 of the replication (Figure 8 of the paper): the
// effect of Gorder's window size w on PageRank runtime over the
// flickr-like dataset, for w = 1 .. 2^20 (clamped to n). The paper picks
// w = 5 and the replication finds a shallow plateau around w = 64..2048,
// with total variation of only a few percent. We report wall-clock PR
// time, the simulated L1 miss rate, and the time to compute the ordering
// itself (which is what makes small w attractive).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.2);
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "flickr");
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 5));

  Graph g = bench::MakeDataset(opt, dataset);
  bench::PrintHeader("Figure 4: Gorder window-size tuning (PageRank)", g,
                     dataset);
  auto config = harness::MakeDefaultConfig(g, 3, opt.seed);
  config.pagerank_iterations = pr_iters;

  std::vector<NodeId> windows;
  for (NodeId w = 1; w <= (1u << 20); w *= 4) windows.push_back(w);
  windows.insert(windows.begin() + 2, 5);  // the paper's default

  // Cost metric: modelled cycles through the scaled hierarchy (wall
  // clock at this dataset scale is timer noise; see DESIGN.md §4).
  TablePrinter table({"w", "order time", "PR cycles", "PR vs w=5",
                      "L1 miss rate", "F(pi,5)"});
  double pr_at_5 = 0.0;
  std::vector<std::tuple<NodeId, double, double, double, std::uint64_t>>
      rows;
  const auto geometry = bench::CacheConfigFromFlags(flags);
  for (NodeId w : windows) {
    order::OrderingParams params;
    params.seed = opt.seed;
    params.window = std::min<NodeId>(w, g.NumNodes());
    auto timed =
        bench::ComputeOrderingTimed(g, order::Method::kGorder, params);
    Graph h = g.Relabel(timed.perm);
    cachesim::CacheHierarchy caches(geometry);
    harness::RunWorkloadTraced(h, harness::Workload::kPr, config,
                               timed.perm, caches);
    double pr_cycles =
        caches.stats().compute_cycles + caches.stats().stall_cycles;
    std::uint64_t f5 = GorderScoreUnderPermutation(g, timed.perm, 5);
    if (w == 5) pr_at_5 = pr_cycles;
    rows.emplace_back(w, timed.seconds, pr_cycles,
                      caches.stats().L1MissRate(), f5);
  }
  for (const auto& [w, order_s, pr_cycles, mr, f5] : rows) {
    table.AddRow({std::to_string(w), TablePrinter::Num(order_s, 3),
                  TablePrinter::Count(pr_cycles),
                  TablePrinter::Num(pr_cycles / pr_at_5, 3),
                  TablePrinter::Num(100 * mr, 2) + "%",
                  TablePrinter::Count(static_cast<double>(f5))});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nExpected shape (replication Fig 4 / paper Fig 8): runtime\n"
        "varies only a few percent across w; a shallow optimum sits at\n"
        "moderate windows; w=5 is within ~3%% of the plateau while being\n"
        "cheap to compute.\n");
  }
  return 0;
}
