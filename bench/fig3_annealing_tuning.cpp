// Reproduces Figure 3 of the replication: the simulated-annealing tuning
// grid for MinLA on the epinion dataset. Steps S range from n to
// m*log2(n) and the standard energy k from ~1/(mn) to ~mn (both log
// scale). The replication's findings, which this harness reprints as a
// heat table of final energies:
//   (a) more steps -> lower energy;
//   (b) very large k accepts every swap -> random arrangement (max
//       energy);
//   (c) any small k behaves like k = 0 (pure local search), which is
//       never beaten.

#include <cmath>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.3);
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "epinion");
  const int steps_points = static_cast<int>(flags.GetInt("steps-points", 5));
  const int k_points = static_cast<int>(flags.GetInt("k-points", 7));

  Graph g = bench::MakeDataset(opt, dataset);
  bench::PrintHeader("Figure 3: simulated annealing tuning (MinLA)", g,
                     dataset);
  const double n = g.NumNodes();
  const double m = static_cast<double>(g.NumEdges());
  const double identity_energy =
      order::ArrangementEnergyOf(g, order::ArrangementEnergy::kLinear);
  std::printf("identity-arrangement energy: %.3g\n\n", identity_energy);

  // Step counts: geometric from n to m*log2(n).
  std::vector<std::uint64_t> steps;
  {
    double lo = n, hi = m * std::log2(n);
    for (int i = 0; i < steps_points; ++i) {
      double t = steps_points == 1
                     ? 0.0
                     : static_cast<double>(i) / (steps_points - 1);
      steps.push_back(static_cast<std::uint64_t>(lo * std::pow(hi / lo, t)));
    }
  }
  // Standard energies: k = 0 (local search) plus geometric 1/(mn) .. mn.
  std::vector<double> ks = {0.0};
  {
    double lo = 1.0 / (m * n), hi = m * n;
    for (int i = 0; i < k_points; ++i) {
      double t =
          k_points == 1 ? 0.0 : static_cast<double>(i) / (k_points - 1);
      ks.push_back(lo * std::pow(hi / lo, t));
    }
  }

  std::vector<std::string> header = {"k \\ S"};
  for (auto s : steps) {
    header.push_back(TablePrinter::Count(static_cast<double>(s)));
  }
  TablePrinter table(header);
  double best_local_search = 0.0;
  double worst = 0.0;
  for (double k : ks) {
    std::vector<std::string> row = {k == 0.0 ? "0 (local)"
                                             : TablePrinter::Num(
                                                   std::log10(k), 1) +
                                                   " (log10)"};
    for (auto s : steps) {
      Rng rng(opt.seed);
      auto r = order::AnnealArrangement(
          g, order::ArrangementEnergy::kLinear, s, k, rng);
      row.push_back(TablePrinter::Num(r.final_energy / identity_energy, 3));
      if (k == 0.0 && s == steps.back()) best_local_search = r.final_energy;
      worst = std::max(worst, r.final_energy);
    }
    table.AddRow(row);
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nCells: final energy relative to the identity arrangement\n"
        "(lower is better). Expected shape (replication): rows with huge\n"
        "k stay near/above 1.0 (random walk); small-k rows match the\n"
        "k=0 local-search row; energy falls monotonically with S.\n"
        "Local search best: %.3g, grid worst: %.3g.\n",
        best_local_search, worst);
  }
  return 0;
}
