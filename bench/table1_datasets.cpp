// Reproduces Table 1 of the replication (Table 1 of the paper): the
// dataset inventory. For each of the nine datasets we print the paper's
// reported size next to the synthetic stand-in actually generated at the
// chosen --scale, plus its structural features.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.25);

  std::printf("Table 1: dataset inventory (stand-ins at scale=%.2f)\n\n",
              opt.scale);
  TablePrinter table({"Dataset", "Category", "Generator", "Paper n(M)",
                      "Paper m(M)", "Sim n", "Sim m", "MaxOutDeg",
                      "MaxInDeg", "AvgDeg", "CSR bytes"});
  for (const auto& name : opt.datasets) {
    const auto& spec = gen::GetDatasetSpec(name);
    Graph g = bench::MakeDataset(opt, name);
    GraphStats s = ComputeStats(g);
    table.AddRow({spec.name, spec.category, spec.generator,
                  TablePrinter::Num(spec.paper_nodes_m, 2),
                  TablePrinter::Num(spec.paper_edges_m, 1),
                  TablePrinter::Count(s.num_nodes),
                  TablePrinter::Count(static_cast<double>(s.num_edges)),
                  TablePrinter::Count(s.max_out_degree),
                  TablePrinter::Count(s.max_in_degree),
                  TablePrinter::Num(s.avg_degree, 1),
                  TablePrinter::Count(static_cast<double>(s.memory_bytes))});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return 0;
}
