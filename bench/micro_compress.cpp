// Microbenchmarks: gap+varint encode/decode throughput and the effect of
// ordering on decode speed (better locality -> smaller varints -> fewer
// bytes to chew through).

#include <benchmark/benchmark.h>

#include "compress/compressed_graph.h"
#include "gen/datasets.h"
#include "order/ordering.h"

namespace gorder::compress {
namespace {

const Graph& BaseGraph() {
  static const Graph* kGraph =
      new Graph(gen::MakeDataset("sdarc", 0.15));
  return *kGraph;
}

void BM_Encode(benchmark::State& state) {
  const Graph& g = BaseGraph();
  for (auto _ : state) {
    auto cg = CompressedGraph::FromGraph(g);
    benchmark::DoNotOptimize(cg.PayloadBytes());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_Encode);

void BM_DecodeScan(benchmark::State& state) {
  // Ordering affects the decode stream length: compare Random vs Gorder.
  const Graph& g = BaseGraph();
  order::OrderingParams params;
  auto method = state.range(0) == 0 ? order::Method::kRandom
                                    : order::Method::kGorder;
  auto perm = order::ComputeOrdering(g, method, params);
  Graph h = g.Relabel(perm);
  auto cg = CompressedGraph::FromGraph(h);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (NodeId v = 0; v < cg.NumNodes(); ++v) {
      cg.ForEachOutNeighbor(v, [&](NodeId w) { sum += w; });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * cg.NumEdges());
  state.SetLabel(method == order::Method::kRandom ? "Random" : "Gorder");
}
BENCHMARK(BM_DecodeScan)->Arg(0)->Arg(1);

void BM_DecompressFull(benchmark::State& state) {
  const Graph& g = BaseGraph();
  auto cg = CompressedGraph::FromGraph(g);
  for (auto _ : state) {
    Graph back = cg.Decompress();
    benchmark::DoNotOptimize(back.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_DecompressFull);

}  // namespace
}  // namespace gorder::compress
