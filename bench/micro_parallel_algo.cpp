// micro_parallel_algo — per-thread-count speedup of the parallel
// algorithm kernels (PageRank, BFS forest, SP, WCC, triangle count) on an
// R-MAT graph, with bit-identity verification against the first (usually
// serial) thread count baked in: a run that produced different results
// would be reporting a meaningless speedup, so it aborts instead.
//
//   micro_parallel_algo [--edges=1000000] [--repeats=3] [--threads=1,2,4]
//                       [--pr-iters=100] [--seed=42] [--csv] [--quiet]
//                       [--json-out=<f>] [--trace-out=<f>]
//
// Speedups are relative to the first entry of --threads (use
// "--threads=1,N" for the classic serial-vs-N comparison). The headline
// line reports PageRank at the best thread count — the kernel the
// paper's tables are built around.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

double MedianSeconds(int repeats, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    fn();
    times.push_back(timer.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct Reference {
  algo::PageRankResult pr;
  algo::BfsResult bfs;
  algo::SpResult sp;
  algo::SccResult wcc;
  std::uint64_t triangles = 0;
};

struct KernelResult {
  std::string kernel;
  int threads;
  double seconds;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto num_edges = static_cast<EdgeId>(flags.GetInt("edges", 1000000));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 100));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const bool csv = flags.GetBool("csv", false);
  if (flags.GetBool("quiet", false)) SetLogLevel(LogLevel::kQuiet);
  obs::RunOptions run;
  run.bench = "micro_parallel_algo";
  run.flags = flags.Raw();
  run.json_out = flags.GetString("json-out", "");
  run.trace_out = flags.GetString("trace-out", "");
  obs::StartRun(run);
  std::vector<int> thread_counts = flags.GetIntList("threads", {1, 2, 4});
  if (thread_counts.empty()) {
    std::fprintf(stderr, "--threads must name at least one thread count\n");
    return 2;
  }

  // R-MAT sized for ~8 edges per node, the benchmark suite's usual skew.
  gen::RmatParams params;
  params.num_edges = num_edges;
  params.scale = 1;
  while ((NodeId{1} << params.scale) < num_edges / 8) ++params.scale;
  Rng rng(seed);
  GORDER_LOG_INFO("generating R-MAT(scale=%d, m=%llu)...\n", params.scale,
                  static_cast<unsigned long long>(params.num_edges));
  Graph g = gen::Rmat(params, rng);
  NodeId src = 0;
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(src)) src = v;
  }

  // Reference results at the baseline thread count; every other thread
  // count must reproduce them bit for bit.
  SetNumThreads(thread_counts.front());
  Reference ref;
  ref.pr = algo::PageRank(g, pr_iters);
  ref.bfs = algo::BfsForest(g);
  ref.sp = algo::Sp(g, src);
  ref.wcc = algo::Wcc(g);
  ref.triangles = algo::TriangleCount(g);

  std::vector<KernelResult> results;
  for (int t : thread_counts) {
    SetNumThreads(t);
    if (!BitEqual(algo::PageRank(g, pr_iters).rank, ref.pr.rank) ||
        algo::BfsForest(g).level != ref.bfs.level ||
        algo::Sp(g, src).dist != ref.sp.dist ||
        algo::Wcc(g).component != ref.wcc.component ||
        algo::TriangleCount(g) != ref.triangles) {
      std::fprintf(stderr,
                   "determinism violation at %d threads: results differ "
                   "from %d-thread reference\n",
                   t, thread_counts.front());
      return 1;
    }
    results.push_back({"PageRank", t, MedianSeconds(repeats, [&] {
                         if (algo::PageRank(g, pr_iters).rank.empty())
                           std::abort();
                       })});
    results.push_back({"BFSForest", t, MedianSeconds(repeats, [&] {
                         if (algo::BfsForest(g).num_reached == 0)
                           std::abort();
                       })});
    results.push_back({"SP", t, MedianSeconds(repeats, [&] {
                         if (algo::Sp(g, src).num_reached == 0) std::abort();
                       })});
    results.push_back({"WCC", t, MedianSeconds(repeats, [&] {
                         if (algo::Wcc(g).num_components == 0) std::abort();
                       })});
    results.push_back({"Triangles", t, MedianSeconds(repeats, [&] {
                         volatile std::uint64_t sink = algo::TriangleCount(g);
                         (void)sink;
                       })});
  }
  SetNumThreads(0);

  auto baseline = [&](const std::string& kernel) {
    for (const auto& r : results) {
      if (r.kernel == kernel && r.threads == thread_counts.front()) {
        return r.seconds;
      }
    }
    return 0.0;
  };
  const double m = static_cast<double>(g.NumEdges());
  if (csv) {
    std::printf("kernel,threads,seconds,edges_per_sec,speedup\n");
    for (const auto& r : results) {
      std::printf("%s,%d,%.6f,%.3e,%.2f\n", r.kernel.c_str(), r.threads,
                  r.seconds, m / r.seconds, baseline(r.kernel) / r.seconds);
    }
  } else {
    std::printf("%-12s %8s %10s %14s %8s\n", "kernel", "threads", "sec",
                "edges/s", "speedup");
    for (const auto& r : results) {
      std::printf("%-12s %8d %10.4f %14.3e %7.2fx\n", r.kernel.c_str(),
                  r.threads, r.seconds, m / r.seconds,
                  baseline(r.kernel) / r.seconds);
    }
  }
  double best_pr = baseline("PageRank");
  int best_threads = thread_counts.front();
  for (const auto& r : results) {
    if (r.kernel == "PageRank" && r.seconds < best_pr) {
      best_pr = r.seconds;
      best_threads = r.threads;
    }
  }
  std::printf("PageRank(%d iters): %.2fx speedup at %d threads vs %d "
              "(bit-identical ranks)\n",
              pr_iters, baseline("PageRank") / best_pr, best_threads,
              thread_counts.front());
  return 0;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
