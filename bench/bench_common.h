#ifndef GORDER_BENCH_BENCH_COMMON_H_
#define GORDER_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/gorder_lib.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace gorder::bench {

/// Arms fault-injection points from a --failpoints=<spec> flag value.
/// In a -DGORDER_FAILPOINTS=ON build a bad spec (syntax error, unknown
/// point name) is fatal; in a normal build the flag itself is fatal, so
/// a fault-injection experiment can never silently run fault-free.
inline void ArmFailpointsFlag(const std::string& spec) {
  if (spec.empty()) return;
#if defined(GORDER_FAILPOINTS_ENABLED)
  std::string error;
  if (!util::ArmFailpointsFromSpec(spec, &error)) {
    std::fprintf(stderr, "--failpoints: %s\n", error.c_str());
    std::exit(2);
  }
#else
  std::fprintf(stderr,
               "--failpoints requires a -DGORDER_FAILPOINTS=ON build; "
               "this binary has fault injection compiled out\n");
  std::exit(2);
#endif
}

/// Process-wide artifact store, configured once by `--store-dir` at
/// flag-parse time. Null when the run is storeless (the default); all
/// store-aware helpers below degrade to the direct compute path then.
inline store::Store*& ActiveStoreSlot() {
  static store::Store* active = nullptr;
  return active;
}
inline store::Store* ActiveStore() { return ActiveStoreSlot(); }
inline void SetActiveStore(const std::string& dir) {
  ActiveStoreSlot() = new store::Store(dir);  // lives for the process
}

/// Deterministic latency-bound calibration kernel: one Sattolo cycle
/// over 2 MiB of indices (out-sizes L2 on anything this repo targets),
/// chased for a fixed step count. Best-of-three wall time is the
/// machine-speed unit recorded in every perf snapshot;
/// tools/compare_bench.py compares calibration-normalised seconds so a
/// slower CI host does not read as a regression (and a faster one does
/// not mask a real one).
inline double CalibrationSeconds() {
  const std::uint32_t n = 1u << 19;
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(12345);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::uint32_t j = static_cast<std::uint32_t>(rng.Uniform(i));
    std::swap(order[i], order[j]);
  }
  std::vector<std::uint32_t> next(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    next[order[i]] = order[(i + 1 == n) ? 0 : i + 1];
  }
  double best = 1e100;
  std::uint32_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    std::uint32_t cursor = order[0];
    Timer timer;
    for (std::uint32_t step = 0; step < (1u << 21); ++step) {
      cursor = next[cursor];
    }
    best = std::min(best, timer.Seconds());
    sink ^= cursor;
  }
  // Defeat dead-code elimination of the chase loop.
  if (sink == 0xdeadbeef) std::fprintf(stderr, "calibration sink\n");
  return best;
}

/// Options shared by all paper-reproduction binaries.
///   --scale=<f>      multiplies every dataset's node/edge budget
///   --tier=std|huge  dataset registry tier: "std" (default) is the nine
///                    in-memory paper stand-ins; "huge" switches
///                    --datasets validation and the default list to the
///                    chunked-streaming registry (gen::HugeDatasets)
///   --datasets=a,b   comma-separated subset (default: the whole tier)
///   --repeats=<n>    timing repetitions (median reported)
///   --csv            machine-readable output
///   --seed=<s>       RNG seed for generation and randomised orderings
///   --threads=<n>    global thread budget for the shared pool (graph
///                    build/relabel and the untraced algorithm kernels;
///                    results are bit-identical at any value). 0 keeps
///                    the GORDER_THREADS/hardware default. For a full
///                    per-thread-count speedup sweep see
///                    bench/micro_parallel_algo.
///   --quiet          suppress progress narration on stderr
///   --json-out=<f>   write a machine-readable run report at exit
///   --trace-out=<f>  write a Chrome trace (Perfetto-loadable) at exit
///   --store-dir=<d>  on-disk artifact store (src/store): datasets are
///                    resolved to binary gpacks (generate+pack on miss,
///                    zero-copy mmap on hit) and computed orderings are
///                    cached as .gperm artifacts keyed by graph
///                    fingerprint + params, so repeat runs skip both
///                    generation and Gorder recomputation
///   --failpoints=<s> arm fault-injection points (DESIGN.md §14); only
///                    valid in a -DGORDER_FAILPOINTS=ON build
///   --help           print this option summary and exit
struct BenchOptions {
  double scale = 1.0;
  gen::DatasetTier tier = gen::DatasetTier::kStandard;
  std::vector<std::string> datasets;
  int repeats = 1;
  bool csv = false;
  std::uint64_t seed = 42;
  int threads = 0;
  bool quiet = false;
  std::string json_out;
  std::string trace_out;
  std::string store_dir;

  static void PrintHelp(const char* argv0) {
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Options shared by all paper-reproduction binaries:\n"
        "  --scale=<f>      multiplies every dataset's node/edge budget\n"
        "  --tier=std|huge  dataset registry tier (huge = the chunked\n"
        "                   streaming registry, stream-only datasets)\n"
        "  --datasets=a,b   comma-separated subset (default: whole tier)\n"
        "  --repeats=<n>    timing repetitions (median reported)\n"
        "  --csv            machine-readable output\n"
        "  --seed=<s>       RNG seed for generation and randomised "
        "orderings\n"
        "  --threads=<n>    thread budget for the shared pool "
        "(bit-identical at any value)\n"
        "  --quiet          suppress progress narration on stderr\n"
        "  --json-out=<f>   write a machine-readable run report at exit\n"
        "  --trace-out=<f>  write a Chrome trace (Perfetto) at exit\n"
        "  --store-dir=<d>  on-disk artifact store: datasets load from\n"
        "                   binary gpacks (generated+packed on first use,\n"
        "                   zero-copy mmap'ed afterwards) and orderings\n"
        "                   are cached per graph fingerprint, so warm\n"
        "                   runs skip generation and ordering "
        "computation\n"
        "  --failpoints=<s> arm fault-injection points, e.g.\n"
        "                   store.pack_write.write=err@2 (needs a\n"
        "                   -DGORDER_FAILPOINTS=ON build)\n"
        "  --help           print this summary and exit\n"
        "\n"
        "Individual binaries accept extra flags; see the header comment\n"
        "of the corresponding bench/*.cpp.\n",
        argv0);
  }

  static BenchOptions Parse(int argc, char** argv, double default_scale) {
    Flags flags(argc, argv);
    if (flags.GetBool("help", false)) {
      PrintHelp(BinaryName(argv[0]).c_str());
      std::exit(0);
    }
    BenchOptions opt;
    opt.scale = flags.GetDouble("scale", default_scale);
    opt.repeats = static_cast<int>(flags.GetInt("repeats", 1));
    opt.csv = flags.GetBool("csv", false);
    opt.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
    opt.threads = static_cast<int>(flags.GetInt("threads", 0));
    if (opt.threads > 0) SetNumThreads(opt.threads);
    opt.quiet = flags.GetBool("quiet", false);
    if (opt.quiet) SetLogLevel(LogLevel::kQuiet);
    opt.json_out = flags.GetString("json-out", "");
    opt.trace_out = flags.GetString("trace-out", "");
    opt.store_dir = flags.GetString("store-dir", "");
    if (!opt.store_dir.empty()) SetActiveStore(opt.store_dir);
    ArmFailpointsFlag(flags.GetString("failpoints", ""));
    const std::string tier_name = flags.GetString("tier", "std");
    if (tier_name != "std" && tier_name != "huge") {
      std::fprintf(stderr, "error: --tier must be std or huge (got '%s')\n",
                   tier_name.c_str());
      std::exit(2);
    }
    opt.tier = tier_name == "huge" ? gen::DatasetTier::kHuge
                                   : gen::DatasetTier::kStandard;
    const auto& registry = opt.tier == gen::DatasetTier::kHuge
                               ? gen::HugeDatasets()
                               : gen::AllDatasets();
    std::string names = flags.GetString("datasets", "");
    if (names.empty()) {
      for (const auto& spec : registry) {
        opt.datasets.push_back(spec.name);
      }
    } else {
      // Strict subset selection: every name must match the registry
      // exactly, otherwise a typo silently benches the wrong thing.
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        std::size_t comma = names.find(',', pos);
        opt.datasets.push_back(names.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
      std::vector<std::string> valid;
      for (const auto& spec : registry) valid.push_back(spec.name);
      for (const auto& name : opt.datasets) {
        if (std::find(valid.begin(), valid.end(), name) != valid.end()) {
          continue;
        }
        std::string all;
        for (const auto& v : valid) {
          if (!all.empty()) all += ", ";
          all += v;
        }
        std::fprintf(stderr,
                     "error: unknown dataset '%s' in --datasets\n"
                     "valid names: %s\n",
                     name.c_str(), all.c_str());
        std::exit(2);
      }
    }
    obs::RunOptions run;
    run.bench = BinaryName(argv[0]);
    run.flags = flags.Raw();
    run.json_out = opt.json_out;
    run.trace_out = opt.trace_out;
    obs::StartRun(run);
    return opt;
  }

  static std::string BinaryName(const char* argv0) {
    std::string name = argv0 != nullptr ? argv0 : "bench";
    std::size_t slash = name.find_last_of('/');
    return slash == std::string::npos ? name : name.substr(slash + 1);
  }
};

/// Selects the traced-cache geometry from --cache=scaled|xeon. "scaled"
/// (default) shrinks the hierarchy to match the scaled-down datasets so
/// the working-set-to-cache ratio — and hence the paper's miss-rate
/// regime — is preserved; "xeon" is the replication's literal geometry
/// (appropriate when running with --scale large enough to spill a 20 MiB
/// L3).
inline cachesim::CacheHierarchyConfig CacheConfigFromFlags(
    const Flags& flags) {
  std::string kind = flags.GetString("cache", "scaled");
  if (kind == "xeon") {
    return cachesim::CacheHierarchyConfig::ReplicationXeon();
  }
  return cachesim::CacheHierarchyConfig::ScaledBench();
}

/// Resolves a benchmark dataset, through the artifact store when one is
/// active (--store-dir): zero-copy mmap of the pack on hit, generate +
/// pack on miss. Storeless runs generate in memory, exactly as before.
inline Graph MakeDataset(const BenchOptions& opt, const std::string& name) {
  if (store::Store* s = ActiveStore()) {
    return s->GetDataset(name, opt.scale, opt.seed);
  }
  return gen::MakeDataset(name, opt.scale, opt.seed);
}

/// Computes an ordering and reports how long it took. With an active
/// store, `seconds` is the observed setup cost of this run (load on a
/// hit, compute on a miss) and `cold_seconds` what the ordering cost —
/// or would have cost — to compute, so callers can report the amortised
/// speedup.
struct TimedOrdering {
  std::vector<NodeId> perm;
  double seconds = 0.0;
  bool cache_hit = false;
  double cold_seconds = 0.0;
};

inline TimedOrdering ComputeOrderingTimed(const Graph& graph,
                                          order::Method method,
                                          const order::OrderingParams& params) {
  Timer timer;
  TimedOrdering result;
  store::Store* s = ActiveStore();
  std::uint64_t fp = 0;
  if (s != nullptr) {
    fp = store::GraphFingerprint(graph);
    store::Store::CachedOrdering cached;
    if (s->LoadOrdering(fp, method, params, graph.NumNodes(), &cached)) {
      result.perm = std::move(cached.perm);
      result.cache_hit = true;
      result.cold_seconds = cached.compute_seconds;
      result.seconds = timer.Seconds();
      GORDER_LOG_INFO("store: ordering hit %s/%s (loaded %.3fs, saved "
                      "%.2fs)\n",
                      order::MethodName(method).c_str(),
                      store::FingerprintHex(fp).c_str(), result.seconds,
                      cached.compute_seconds - result.seconds);
      return result;
    }
  }
  result.perm = order::ComputeOrdering(graph, method, params);
  result.seconds = timer.Seconds();
  result.cold_seconds = result.seconds;
  if (s != nullptr) {
    s->SaveOrdering(fp, method, params, result.perm, result.seconds);
    GORDER_LOG_INFO("store: ordering miss %s/%s — computed %.2fs, cached\n",
                    order::MethodName(method).c_str(),
                    store::FingerprintHex(fp).c_str(), result.seconds);
  }
  return result;
}

/// Running tally of ordering-cache effectiveness for a bench run; feeds
/// the one-line summary the warm-store benches print.
struct StoreSetupStats {
  int hits = 0;
  int misses = 0;
  double setup_seconds = 0.0;  // what this run actually spent
  double cold_seconds = 0.0;   // what a storeless run would have spent

  void Observe(const TimedOrdering& timed) {
    (timed.cache_hit ? hits : misses)++;
    setup_seconds += timed.seconds;
    cold_seconds += timed.cold_seconds;
  }

  /// Narrates the summary on stderr when a store is active (no-op
  /// otherwise). Stderr, not stdout: warm and cold runs must produce
  /// bit-identical tables/CSV, which CI diffs.
  void Print() const {
    if (ActiveStore() == nullptr) return;
    GORDER_LOG_INFO(
        "store: %d ordering cache hit%s, %d miss%s; ordering setup %.2fs "
        "vs %.2fs cold (%.1fx)\n",
        hits, hits == 1 ? "" : "s", misses, misses == 1 ? "" : "es",
        setup_seconds, cold_seconds,
        cold_seconds / std::max(setup_seconds, 1e-9));
  }
};

inline void PrintHeader(const std::string& title, const Graph& g,
                        const std::string& dataset) {
  std::printf("## %s — %s (n=%s, m=%s)\n", title.c_str(), dataset.c_str(),
              TablePrinter::Count(g.NumNodes()).c_str(),
              TablePrinter::Count(static_cast<double>(g.NumEdges())).c_str());
}

/// The full (dataset x workload x ordering) runtime grid behind Figure 5,
/// Figure S1 and Figure 6 (original paper's Figure 9).
struct SpeedupGrid {
  std::vector<std::string> datasets;
  std::vector<order::Method> methods;
  std::vector<harness::Workload> workloads;
  /// times[d][w][m]: median seconds of workload w on dataset d under
  /// ordering m.
  std::vector<std::vector<std::vector<double>>> times;
  /// order_seconds[d][m]: time to compute ordering m on dataset d.
  std::vector<std::vector<double>> order_seconds;
};

/// Cost metric for the grid: deterministic modelled cycles through the
/// scaled cache hierarchy (default; see ModelWorkloadCycles for why), or
/// raw wall-clock (meaningful once --scale makes graphs out-size the
/// host's physical caches).
enum class GridMetric { kModelCycles, kWallSeconds };

inline GridMetric MetricFromFlags(const Flags& flags) {
  return flags.GetString("metric", "cycles") == "wall"
             ? GridMetric::kWallSeconds
             : GridMetric::kModelCycles;
}

/// Runs the whole grid. Datasets are processed one at a time; orderings
/// are computed once per dataset and every workload is costed on the
/// relabelled graph (modelled cycles, or median wall time of
/// opt.repeats runs).
inline SpeedupGrid RunSpeedupGrid(const BenchOptions& opt, int pr_iterations,
                                  NodeId diam_sources, bool progress,
                                  GridMetric metric = GridMetric::kModelCycles,
                                  const cachesim::CacheHierarchyConfig&
                                      geometry =
                                          cachesim::CacheHierarchyConfig::
                                              ScaledBench(),
                                  bool extended_methods = false) {
  SpeedupGrid grid;
  grid.datasets = opt.datasets;
  grid.methods = extended_methods ? order::AllMethodsExtended()
                                  : order::AllMethods();
  grid.workloads = harness::AllWorkloads();
  StoreSetupStats store_stats;
  for (const auto& name : opt.datasets) {
    GORDER_OBS_SPAN(dataset_span, "dataset:" + name);
    Graph g = MakeDataset(opt, name);
    auto config = harness::MakeDefaultConfig(g, diam_sources, opt.seed);
    config.pagerank_iterations = pr_iterations;
    std::vector<std::vector<double>> dataset_times(
        grid.workloads.size(), std::vector<double>(grid.methods.size(), 0));
    std::vector<double> dataset_order_seconds(grid.methods.size(), 0);
    for (std::size_t mi = 0; mi < grid.methods.size(); ++mi) {
      GORDER_OBS_SPAN(method_span,
                      "ordering:" + order::MethodName(grid.methods[mi]));
      order::OrderingParams params;
      params.seed = opt.seed;
      auto timed = ComputeOrderingTimed(g, grid.methods[mi], params);
      store_stats.Observe(timed);
      dataset_order_seconds[mi] = timed.seconds;
      Graph h = g.Relabel(timed.perm);
      for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi) {
        dataset_times[wi][mi] =
            metric == GridMetric::kWallSeconds
                ? harness::TimeWorkload(h, grid.workloads[wi], config,
                                        timed.perm, opt.repeats)
                : harness::ModelWorkloadCycles(h, grid.workloads[wi],
                                               config, timed.perm, geometry);
      }
      if (progress) {
        GORDER_LOG_INFO("  %s/%s done (order %.2fs)\n", name.c_str(),
                        order::MethodName(grid.methods[mi]).c_str(),
                        timed.seconds);
      }
    }
    grid.times.push_back(std::move(dataset_times));
    grid.order_seconds.push_back(std::move(dataset_order_seconds));
  }
  store_stats.Print();
  return grid;
}

}  // namespace gorder::bench

#endif  // GORDER_BENCH_BENCH_COMMON_H_
