#ifndef GORDER_BENCH_BENCH_COMMON_H_
#define GORDER_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/gorder_lib.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/timer.h"

namespace gorder::bench {

/// Options shared by all paper-reproduction binaries.
///   --scale=<f>      multiplies every dataset's node/edge budget
///   --datasets=a,b   comma-separated subset (default: all nine)
///   --repeats=<n>    timing repetitions (median reported)
///   --csv            machine-readable output
///   --seed=<s>       RNG seed for generation and randomised orderings
///   --threads=<n>    global thread budget for the shared pool (graph
///                    build/relabel and the untraced algorithm kernels;
///                    results are bit-identical at any value). 0 keeps
///                    the GORDER_THREADS/hardware default. For a full
///                    per-thread-count speedup sweep see
///                    bench/micro_parallel_algo.
///   --quiet          suppress progress narration on stderr
///   --json-out=<f>   write a machine-readable run report at exit
///   --trace-out=<f>  write a Chrome trace (Perfetto-loadable) at exit
struct BenchOptions {
  double scale = 1.0;
  std::vector<std::string> datasets;
  int repeats = 1;
  bool csv = false;
  std::uint64_t seed = 42;
  int threads = 0;
  bool quiet = false;
  std::string json_out;
  std::string trace_out;

  static BenchOptions Parse(int argc, char** argv, double default_scale) {
    Flags flags(argc, argv);
    BenchOptions opt;
    opt.scale = flags.GetDouble("scale", default_scale);
    opt.repeats = static_cast<int>(flags.GetInt("repeats", 1));
    opt.csv = flags.GetBool("csv", false);
    opt.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
    opt.threads = static_cast<int>(flags.GetInt("threads", 0));
    if (opt.threads > 0) SetNumThreads(opt.threads);
    opt.quiet = flags.GetBool("quiet", false);
    if (opt.quiet) SetLogLevel(LogLevel::kQuiet);
    opt.json_out = flags.GetString("json-out", "");
    opt.trace_out = flags.GetString("trace-out", "");
    std::string names = flags.GetString("datasets", "");
    if (names.empty()) {
      for (const auto& spec : gen::AllDatasets()) {
        opt.datasets.push_back(spec.name);
      }
    } else {
      // Strict subset selection: every name must match the registry
      // exactly, otherwise a typo silently benches the wrong thing.
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        std::size_t comma = names.find(',', pos);
        opt.datasets.push_back(names.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
      std::vector<std::string> valid;
      for (const auto& spec : gen::AllDatasets()) valid.push_back(spec.name);
      for (const auto& name : opt.datasets) {
        if (std::find(valid.begin(), valid.end(), name) != valid.end()) {
          continue;
        }
        std::string all;
        for (const auto& v : valid) {
          if (!all.empty()) all += ", ";
          all += v;
        }
        std::fprintf(stderr,
                     "error: unknown dataset '%s' in --datasets\n"
                     "valid names: %s\n",
                     name.c_str(), all.c_str());
        std::exit(2);
      }
    }
    obs::RunOptions run;
    run.bench = BinaryName(argv[0]);
    run.flags = flags.Raw();
    run.json_out = opt.json_out;
    run.trace_out = opt.trace_out;
    obs::StartRun(run);
    return opt;
  }

  static std::string BinaryName(const char* argv0) {
    std::string name = argv0 != nullptr ? argv0 : "bench";
    std::size_t slash = name.find_last_of('/');
    return slash == std::string::npos ? name : name.substr(slash + 1);
  }
};

/// Selects the traced-cache geometry from --cache=scaled|xeon. "scaled"
/// (default) shrinks the hierarchy to match the scaled-down datasets so
/// the working-set-to-cache ratio — and hence the paper's miss-rate
/// regime — is preserved; "xeon" is the replication's literal geometry
/// (appropriate when running with --scale large enough to spill a 20 MiB
/// L3).
inline cachesim::CacheHierarchyConfig CacheConfigFromFlags(
    const Flags& flags) {
  std::string kind = flags.GetString("cache", "scaled");
  if (kind == "xeon") {
    return cachesim::CacheHierarchyConfig::ReplicationXeon();
  }
  return cachesim::CacheHierarchyConfig::ScaledBench();
}

/// Computes an ordering and reports how long it took.
struct TimedOrdering {
  std::vector<NodeId> perm;
  double seconds = 0.0;
};

inline TimedOrdering ComputeOrderingTimed(const Graph& graph,
                                          order::Method method,
                                          const order::OrderingParams& params) {
  Timer timer;
  TimedOrdering result;
  result.perm = order::ComputeOrdering(graph, method, params);
  result.seconds = timer.Seconds();
  return result;
}

inline void PrintHeader(const std::string& title, const Graph& g,
                        const std::string& dataset) {
  std::printf("## %s — %s (n=%s, m=%s)\n", title.c_str(), dataset.c_str(),
              TablePrinter::Count(g.NumNodes()).c_str(),
              TablePrinter::Count(static_cast<double>(g.NumEdges())).c_str());
}

/// The full (dataset x workload x ordering) runtime grid behind Figure 5,
/// Figure S1 and Figure 6 (original paper's Figure 9).
struct SpeedupGrid {
  std::vector<std::string> datasets;
  std::vector<order::Method> methods;
  std::vector<harness::Workload> workloads;
  /// times[d][w][m]: median seconds of workload w on dataset d under
  /// ordering m.
  std::vector<std::vector<std::vector<double>>> times;
  /// order_seconds[d][m]: time to compute ordering m on dataset d.
  std::vector<std::vector<double>> order_seconds;
};

/// Cost metric for the grid: deterministic modelled cycles through the
/// scaled cache hierarchy (default; see ModelWorkloadCycles for why), or
/// raw wall-clock (meaningful once --scale makes graphs out-size the
/// host's physical caches).
enum class GridMetric { kModelCycles, kWallSeconds };

inline GridMetric MetricFromFlags(const Flags& flags) {
  return flags.GetString("metric", "cycles") == "wall"
             ? GridMetric::kWallSeconds
             : GridMetric::kModelCycles;
}

/// Runs the whole grid. Datasets are processed one at a time; orderings
/// are computed once per dataset and every workload is costed on the
/// relabelled graph (modelled cycles, or median wall time of
/// opt.repeats runs).
inline SpeedupGrid RunSpeedupGrid(const BenchOptions& opt, int pr_iterations,
                                  NodeId diam_sources, bool progress,
                                  GridMetric metric = GridMetric::kModelCycles,
                                  const cachesim::CacheHierarchyConfig&
                                      geometry =
                                          cachesim::CacheHierarchyConfig::
                                              ScaledBench(),
                                  bool extended_methods = false) {
  SpeedupGrid grid;
  grid.datasets = opt.datasets;
  grid.methods = extended_methods ? order::AllMethodsExtended()
                                  : order::AllMethods();
  grid.workloads = harness::AllWorkloads();
  for (const auto& name : opt.datasets) {
    GORDER_OBS_SPAN(dataset_span, "dataset:" + name);
    Graph g = gen::MakeDataset(name, opt.scale, opt.seed);
    auto config = harness::MakeDefaultConfig(g, diam_sources, opt.seed);
    config.pagerank_iterations = pr_iterations;
    std::vector<std::vector<double>> dataset_times(
        grid.workloads.size(), std::vector<double>(grid.methods.size(), 0));
    std::vector<double> dataset_order_seconds(grid.methods.size(), 0);
    for (std::size_t mi = 0; mi < grid.methods.size(); ++mi) {
      GORDER_OBS_SPAN(method_span,
                      "ordering:" + order::MethodName(grid.methods[mi]));
      order::OrderingParams params;
      params.seed = opt.seed;
      auto timed = ComputeOrderingTimed(g, grid.methods[mi], params);
      dataset_order_seconds[mi] = timed.seconds;
      Graph h = g.Relabel(timed.perm);
      for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi) {
        dataset_times[wi][mi] =
            metric == GridMetric::kWallSeconds
                ? harness::TimeWorkload(h, grid.workloads[wi], config,
                                        timed.perm, opt.repeats)
                : harness::ModelWorkloadCycles(h, grid.workloads[wi],
                                               config, timed.perm, geometry);
      }
      if (progress) {
        GORDER_LOG_INFO("  %s/%s done (order %.2fs)\n", name.c_str(),
                        order::MethodName(grid.methods[mi]).c_str(),
                        timed.seconds);
      }
    }
    grid.times.push_back(std::move(dataset_times));
    grid.order_seconds.push_back(std::move(dataset_order_seconds));
  }
  return grid;
}

}  // namespace gorder::bench

#endif  // GORDER_BENCH_BENCH_COMMON_H_
