// micro_build — throughput of the CSR pipeline hot path (FromEdges,
// Relabel, edge-list read/write) serial vs parallel, in edges/s.
//
// Every paper experiment pays Relabel once per (dataset, ordering) cell
// and FromEdges once per dataset, and Faldu et al. ("A Closer Look at
// Lightweight Graph Reordering", IISWC 2020) argue reordering cost must be
// amortised against algorithm speedup — so build/relabel throughput is a
// first-class metric, not plumbing. This binary reports it directly.
//
//   micro_build [--edges=2000000] [--repeats=3] [--threads=1,2,4]
//               [--seed=42] [--csv] [--quiet] [--json-out=<f>]
//               [--trace-out=<f>]
//
// Speedups are reported relative to the first entry of --threads (use
// "--threads=1,N" to compare serial vs N-way parallel).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

double MedianSeconds(int repeats, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    fn();
    times.push_back(timer.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct PhaseResult {
  std::string phase;
  int threads;
  double seconds;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto num_edges = static_cast<EdgeId>(flags.GetInt("edges", 2000000));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const bool csv = flags.GetBool("csv", false);
  if (flags.GetBool("quiet", false)) SetLogLevel(LogLevel::kQuiet);
  obs::RunOptions run;
  run.bench = "micro_build";
  run.flags = flags.Raw();
  run.json_out = flags.GetString("json-out", "");
  run.trace_out = flags.GetString("trace-out", "");
  obs::StartRun(run);
  // Strict parse: `--threads=4x` is a hard error, not a silent 4.
  std::vector<int> thread_counts = flags.GetIntList("threads", {1, 2, 4});

  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(num_edges / 8);
  GORDER_LOG_INFO("generating G(n=%u, m=%llu)...\n", n,
                  static_cast<unsigned long long>(num_edges));
  Graph base = gen::ErdosRenyi(n, num_edges, rng);
  std::vector<Edge> edges = base.ToEdges();
  std::vector<NodeId> perm = IdentityPermutation(n);
  rng.Shuffle(perm);
  const auto tmp = std::filesystem::temp_directory_path() / "gorder_micro_build.txt";
  const double m = static_cast<double>(base.NumEdges());

  std::vector<PhaseResult> results;
  for (int t : thread_counts) {
    SetNumThreads(t);
    results.push_back({"FromEdges", t, MedianSeconds(repeats, [&] {
                         auto copy = edges;
                         Graph g = Graph::FromEdges(n, std::move(copy));
                         if (g.NumEdges() == 0) std::abort();
                       })});
    results.push_back({"Relabel", t, MedianSeconds(repeats, [&] {
                         Graph h = base.Relabel(perm);
                         if (h.NumEdges() != base.NumEdges()) std::abort();
                       })});
    results.push_back({"WriteEdgeList", t, MedianSeconds(repeats, [&] {
                         if (!WriteEdgeList(tmp.string(), base).ok)
                           std::abort();
                       })});
    results.push_back({"ReadEdgeList", t, MedianSeconds(repeats, [&] {
                         Graph g;
                         if (!ReadEdgeList(tmp.string(), &g).ok) std::abort();
                         if (g.NumEdges() != base.NumEdges()) std::abort();
                       })});
  }
  SetNumThreads(0);
  std::filesystem::remove(tmp);

  auto baseline = [&](const std::string& phase) {
    for (const auto& r : results) {
      if (r.phase == phase && r.threads == thread_counts.front())
        return r.seconds;
    }
    return 0.0;
  };
  if (csv) {
    std::printf("phase,threads,seconds,edges_per_sec,speedup\n");
    for (const auto& r : results) {
      std::printf("%s,%d,%.6f,%.3e,%.2f\n", r.phase.c_str(), r.threads,
                  r.seconds, m / r.seconds, baseline(r.phase) / r.seconds);
    }
  } else {
    std::printf("%-14s %8s %10s %14s %8s\n", "phase", "threads", "sec",
                "edges/s", "speedup");
    for (const auto& r : results) {
      std::printf("%-14s %8d %10.4f %14.3e %7.2fx\n", r.phase.c_str(),
                  r.threads, r.seconds, m / r.seconds,
                  baseline(r.phase) / r.seconds);
    }
  }
  // The headline number: build+relabel, best thread count vs the baseline.
  double base_build = baseline("FromEdges") + baseline("Relabel");
  double best_build = base_build;
  int best_threads = thread_counts.front();
  for (int t : thread_counts) {
    double total = 0;
    for (const auto& r : results) {
      if (r.threads == t && (r.phase == "FromEdges" || r.phase == "Relabel"))
        total += r.seconds;
    }
    if (total < best_build) {
      best_build = total;
      best_threads = t;
    }
  }
  std::printf("FromEdges+Relabel: %.2fx speedup at %d threads vs %d\n",
              base_build / best_build, best_threads, thread_counts.front());
  return 0;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) { return gorder::Run(argc, argv); }
