// Ablation of Gorder's design choices (DESIGN.md §6), not present in the
// papers but justified by them:
//   1. score terms: full S = Ss + Sn vs sibling-only vs neighbour-only;
//   2. the dense-node (hub) cap on sibling updates: quality vs ordering
//      cost;
//   3. unit-heap greedy vs a naive O(n) argmax selection — the reason the
//      unit heap exists.

#include "bench/bench_common.h"
#include "order/parallel_gorder.h"
#include "order/unit_heap.h"

namespace gorder {
namespace {

// Naive reference greedy: identical objective, but selects each next node
// by scanning an explicit score array. O(n^2) — run on a reduced graph.
std::vector<NodeId> NaiveGorder(const Graph& g, NodeId window) {
  const NodeId n = g.NumNodes();
  std::vector<NodeId> perm(n, kInvalidNode);
  if (n == 0) return perm;
  std::vector<std::int64_t> score(n, 0);
  std::vector<bool> placed(n, false);
  std::vector<NodeId> recent;
  auto apply = [&](NodeId ve, std::int64_t delta) {
    for (NodeId c : g.OutNeighbors(ve)) score[c] += delta;
    for (NodeId u : g.InNeighbors(ve)) {
      score[u] += delta;
      for (NodeId c : g.OutNeighbors(u)) score[c] += delta;
    }
  };
  NodeId seed = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (g.InDegree(v) > g.InDegree(seed)) seed = v;
  }
  NodeId next_rank = 0;
  auto place = [&](NodeId v) {
    placed[v] = true;
    perm[v] = next_rank++;
    apply(v, +1);
    recent.push_back(v);
    if (recent.size() > window) {
      apply(recent.front(), -1);
      recent.erase(recent.begin());
    }
  };
  place(seed);
  while (next_rank < n) {
    NodeId best = kInvalidNode;
    std::int64_t best_score = -1;
    for (NodeId v = 0; v < n; ++v) {
      if (!placed[v] && score[v] > best_score) {
        best = v;
        best_score = score[v];
      }
    }
    place(best);
  }
  return perm;
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.2);
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "wiki");
  const std::string hub_dataset = flags.GetString("hub-dataset", "gplus");
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 3));

  Graph g = bench::MakeDataset(opt, dataset);
  bench::PrintHeader("Ablation: Gorder variants", g, dataset);
  auto config = harness::MakeDefaultConfig(g, 3, opt.seed);
  config.pagerank_iterations = pr_iters;

  struct Variant {
    std::string name;
    order::OrderingParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"full (Ss+Sn, exact)", {}});
  {
    order::OrderingParams p;
    p.gorder_sibling_score = false;
    variants.push_back({"neighbour-only (Sn)", p});
  }
  {
    order::OrderingParams p;
    p.gorder_neighbor_score = false;
    variants.push_back({"sibling-only (Ss)", p});
  }
  {
    order::OrderingParams p;
    p.gorder_hub_cap = 16;
    variants.push_back({"hub cap 16", p});
  }
  {
    order::OrderingParams p;
    p.gorder_hub_cap = 0;
    variants.push_back({"no hub cap (exact)", p});
  }
  {
    order::OrderingParams p;
    p.gorder_lazy_decrements = true;
    variants.push_back({"lazy decrements (GO-PQ)", p});
  }

  TablePrinter table(
      {"Variant", "order time", "F(pi,5)", "PR cycles", "L1-mr"});
  for (auto& v : variants) {
    v.params.seed = opt.seed;
    auto timed =
        bench::ComputeOrderingTimed(g, order::Method::kGorder, v.params);
    Graph h = g.Relabel(timed.perm);
    cachesim::CacheHierarchy caches(bench::CacheConfigFromFlags(flags));
    harness::RunWorkloadTraced(h, harness::Workload::kPr, config,
                               timed.perm, caches);
    double pr_cycles =
        caches.stats().compute_cycles + caches.stats().stall_cycles;
    table.AddRow({v.name, TablePrinter::Num(timed.seconds, 3),
                  TablePrinter::Count(static_cast<double>(
                      GorderScoreUnderPermutation(g, timed.perm, 5))),
                  TablePrinter::Count(pr_cycles),
                  TablePrinter::Num(100 * caches.stats().L1MissRate(), 2) +
                      "%"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }

  // The hub cap only binds on graphs with high out-degree hubs (R-MAT
  // follower graphs); wiki's copying model tops out at ~15 out-edges.
  Graph hub_graph = bench::MakeDataset(opt, hub_dataset);
  std::printf("\nHub-cap sensitivity on %s (max out-degree %u):\n",
              hub_dataset.c_str(), ComputeStats(hub_graph).max_out_degree);
  TablePrinter hub_table({"hub cap", "order time", "F(pi,5)"});
  for (NodeId cap : {8u, 64u, 256u, 2048u, 0u}) {
    order::OrderingParams p;
    p.seed = opt.seed;
    p.gorder_hub_cap = cap;
    auto timed = bench::ComputeOrderingTimed(hub_graph,
                                             order::Method::kGorder, p);
    hub_table.AddRow({cap == 0 ? "none (exact)" : std::to_string(cap),
                      TablePrinter::Num(timed.seconds, 3),
                      TablePrinter::Count(static_cast<double>(
                          GorderScoreUnderPermutation(hub_graph, timed.perm,
                                                      5)))});
  }
  hub_table.Print();

  // Unit heap vs naive argmax, on a reduced slice so O(n^2) stays sane.
  Graph small = gen::MakeDataset(dataset, std::min(opt.scale * 2.5, 0.5),
                                 opt.seed);
  Timer t1;
  auto fast = order::GorderOrder(small, {});
  double fast_s = t1.Seconds();
  Timer t2;
  auto naive = NaiveGorder(small, 5);
  double naive_s = t2.Seconds();
  // Partition-parallel Gorder: construction cost and quality vs the
  // sequential greedy (paper discussion: "a parallel version of Gorder
  // could reduce this problem").
  std::printf("\nPartition-parallel Gorder on %s:\n", dataset.c_str());
  TablePrinter par_table({"parts", "order time", "F(pi,5)"});
  for (int parts : {1, 2, 4, 8}) {
    Timer tp;
    auto pperm = order::ParallelGorderOrder(g, {}, parts);
    double psec = tp.Seconds();
    par_table.AddRow({std::to_string(parts), TablePrinter::Num(psec, 3),
                      TablePrinter::Count(static_cast<double>(
                          GorderScoreUnderPermutation(g, pperm, 5)))});
  }
  par_table.Print();
  std::printf(
      "(single-core machine: partition overhead is visible but the work\n"
      "is embarrassingly parallel across parts on real multicore hosts;\n"
      "quality falls with parts as cross-part edges become invisible)\n");

  std::printf(
      "\nUnit-heap greedy vs naive argmax greedy on n=%u, m=%llu:\n"
      "  unit heap: %.3fs   naive: %.3fs   speedup: %.1fx\n"
      "  F(unit heap)=%llu  F(naive)=%llu (same objective, near-equal)\n",
      small.NumNodes(),
      static_cast<unsigned long long>(small.NumEdges()), fast_s, naive_s,
      naive_s / std::max(fast_s, 1e-9),
      static_cast<unsigned long long>(
          GorderScoreUnderPermutation(small, fast, 5)),
      static_cast<unsigned long long>(
          GorderScoreUnderPermutation(small, naive, 5)));
  return 0;
}
