// Reproduces Figure 1 of both papers: the split of modelled execution
// time into "CPU execute" and "cache stall" for all nine workloads, under
// the Original ordering vs Gorder, on the sdarc-like web graph. The
// paper's point: both orderings execute the same instructions (equal CPU
// share), but Gorder slashes the stall share.
//
// Hardware counters are replaced by the software cache hierarchy
// (replication geometry); stall cycles follow the additive latency model
// documented in cachesim/cache.h.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.5);
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "sdarc");
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 3));
  const auto cache_config = bench::CacheConfigFromFlags(flags);

  Graph g = bench::MakeDataset(opt, dataset);
  bench::PrintHeader("Figure 1: CPU execute vs cache stall", g, dataset);
  auto config = harness::MakeDefaultConfig(g, /*num_diam_sources=*/3,
                                           opt.seed);
  config.pagerank_iterations = pr_iters;

  order::OrderingParams params;
  params.seed = opt.seed;
  auto gorder_perm = order::ComputeOrdering(g, order::Method::kGorder,
                                            params);
  Graph g_gorder = g.Relabel(gorder_perm);
  auto identity = IdentityPermutation(g.NumNodes());

  TablePrinter table({"Workload", "Orig CPU%", "Orig stall%", "Gorder CPU%",
                      "Gorder stall%", "Total cycles ratio (G/O)"});
  for (harness::Workload w : harness::AllWorkloads()) {
    cachesim::CacheHierarchy caches(cache_config);
    harness::RunWorkloadTraced(g, w, config, identity, caches);
    auto orig = caches.stats();
    caches.Flush();
    harness::RunWorkloadTraced(g_gorder, w, config, gorder_perm, caches);
    auto gord = caches.stats();
    double orig_total = orig.compute_cycles + orig.stall_cycles;
    double gord_total = gord.compute_cycles + gord.stall_cycles;
    table.AddRow({harness::WorkloadName(w),
                  TablePrinter::Num(100 * (1 - orig.StallFraction()), 1),
                  TablePrinter::Num(100 * orig.StallFraction(), 1),
                  TablePrinter::Num(100 * (1 - gord.StallFraction()), 1),
                  TablePrinter::Num(100 * gord.StallFraction(), 1),
                  TablePrinter::Num(gord_total / orig_total, 2)});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nExpected shape (paper): cache stall dominates under Original\n"
        "(up to ~70%% of time); Gorder cuts total modelled cycles by\n"
        "15-50%% almost entirely out of the stall share, while the CPU\n"
        "(compute) cycles stay identical.\n");
  }
  return 0;
}
