// Ablation: are the paper's conclusions an artefact of one cache
// geometry? Runs the PageRank miss-rate comparison (Original vs Random vs
// Gorder) across several hierarchies — the replication's Xeon, a smaller
// laptop-like hierarchy, a large-L3 server, and a single-level cache —
// and shows the ordering of orderings is stable.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.5);
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "sdarc");

  Graph g = bench::MakeDataset(opt, dataset);
  bench::PrintHeader("Ablation: cache geometry sensitivity", g, dataset);
  auto config = harness::MakeDefaultConfig(g, 3, opt.seed);
  config.pagerank_iterations = 2;

  struct Geometry {
    std::string name;
    cachesim::CacheHierarchyConfig config;
  };
  std::vector<Geometry> geometries;
  geometries.push_back({"scaled bench (8K/32K/256K)",
                        cachesim::CacheHierarchyConfig::ScaledBench()});
  geometries.push_back(
      {"replication Xeon (32K/256K/20M)",
       cachesim::CacheHierarchyConfig::ReplicationXeon()});
  {
    cachesim::CacheHierarchyConfig c;
    c.levels = {{"L1", 32 * 1024, 8, 4.0}, {"L2", 1024 * 1024, 16, 14.0}};
    c.memory_latency_cycles = 120.0;
    geometries.push_back({"laptop (32K/1M, no L3)", c});
  }
  {
    cachesim::CacheHierarchyConfig c;
    c.levels = {{"L1", 64 * 1024, 8, 5.0},
                {"L2", 512 * 1024, 8, 14.0},
                {"L3", 64 * 1024 * 1024, 16, 50.0}};
    c.memory_latency_cycles = 200.0;
    geometries.push_back({"server (64K/512K/64M)", c});
  }
  {
    cachesim::CacheHierarchyConfig c;
    c.levels = {{"L1", 16 * 1024, 4, 3.0}};
    c.memory_latency_cycles = 80.0;
    geometries.push_back({"tiny single level (16K)", c});
  }

  const std::vector<order::Method> methods = {order::Method::kOriginal,
                                              order::Method::kRandom,
                                              order::Method::kRcm,
                                              order::Method::kGorder};
  std::vector<std::pair<order::Method, std::vector<NodeId>>> perms;
  for (order::Method m : methods) {
    order::OrderingParams params;
    params.seed = opt.seed;
    perms.emplace_back(m, order::ComputeOrdering(g, m, params));
  }

  TablePrinter table({"Geometry", "Ordering", "L1-mr", "Mem-mr", "Stall%"});
  for (const auto& geom : geometries) {
    for (const auto& [m, perm] : perms) {
      Graph h = g.Relabel(perm);
      cachesim::CacheHierarchy caches(geom.config);
      harness::RunWorkloadTraced(h, harness::Workload::kPr, config, perm,
                                 caches);
      const auto& s = caches.stats();
      table.AddRow({geom.name, order::MethodName(m),
                    TablePrinter::Num(100 * s.L1MissRate(), 2) + "%",
                    TablePrinter::Num(100 * s.OverallMissRate(), 2) + "%",
                    TablePrinter::Num(100 * s.StallFraction(), 1) + "%"});
    }
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nExpected shape: Random is the worst ordering under every\n"
        "geometry, and the locality group (Gorder/RCM/crawl-Original)\n"
        "stays ahead of it everywhere — the paper's claim is not an\n"
        "artefact of one machine. The gaps inside the locality group\n"
        "widen with working-set pressure (larger --scale, smaller\n"
        "caches); see examples/cache_explorer for the sweep.\n");
  }
  return 0;
}
