// Reproduces Figure 6 of the replication: for every experiment series
// (one workload on one dataset) the orderings are ranked by runtime; the
// figure reports how often each ordering lands at each rank. Expected
// shape: Gorder collects the most first places, RCM and ChDFS follow,
// Random is last almost everywhere, LDG just above Random.
//
//   --tie-ratio=1.5   applies the paper's "beyond 1.5x of best is equal"
//                     bucketing (0 = exact ranking, the default).
//   --extended        also ranks this repo's extension orderings
//                     (Metis, OutDegSort, HubSort, HubCluster, DBG).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.25);
  Flags flags(argc, argv);
  const double tie_ratio = flags.GetDouble("tie-ratio", 0.0);
  const int pr_iters = static_cast<int>(flags.GetInt("pr-iters", 8));

  std::printf(
      "Figure 6: rank histogram over all (workload x dataset) series "
      "(scale=%.2f, tie-ratio=%.1f)\n\n",
      opt.scale, tie_ratio);

  auto grid = bench::RunSpeedupGrid(opt, pr_iters, /*diam_sources=*/5,
                                    /*progress=*/!opt.csv,
                                    bench::MetricFromFlags(flags),
                                    bench::CacheConfigFromFlags(flags),
                                    flags.GetBool("extended", false));

  // Flatten to series x method.
  std::vector<std::vector<double>> series;
  for (const auto& per_dataset : grid.times) {
    for (const auto& per_workload : per_dataset) {
      series.push_back(per_workload);
    }
  }
  auto table = harness::RankSeries(series, tie_ratio);

  std::vector<std::string> header = {"Ordering"};
  for (std::size_t r = 0; r < grid.methods.size(); ++r) {
    header.push_back("#" + std::to_string(r + 1));
  }
  header.push_back("MeanRank");
  TablePrinter out(header);
  for (std::size_t mi = 0; mi < grid.methods.size(); ++mi) {
    std::vector<std::string> row = {order::MethodName(grid.methods[mi])};
    for (std::size_t r = 0; r < grid.methods.size(); ++r) {
      row.push_back(std::to_string(table.counts[mi][r]));
    }
    row.push_back(TablePrinter::Num(table.MeanRank(mi) + 1, 2));
    out.AddRow(row);
  }
  if (opt.csv) {
    out.PrintCsv();
  } else {
    out.Print();
    std::printf(
        "\n%d series total. Expected shape (paper): Gorder has the most\n"
        "first places and the best mean rank; RCM/ChDFS follow; Random\n"
        "ranks last, LDG second-to-last.\n",
        table.num_series);
  }
  return 0;
}
