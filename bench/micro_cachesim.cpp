// Microbenchmarks: overhead of the software cache hierarchy per access,
// for sequential and random streams — documents the cost of the traced
// workload variants.

#include <benchmark/benchmark.h>

#include <vector>

#include "cachesim/cache.h"
#include "util/rng.h"

namespace gorder::cachesim {
namespace {

void BM_SequentialAccess(benchmark::State& state) {
  CacheHierarchy h;
  std::uint64_t line = 0;
  for (auto _ : state) {
    h.AccessLine(line++ & 0xFFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialAccess);

void BM_RandomAccess(benchmark::State& state) {
  CacheHierarchy h;
  Rng rng(1);
  std::vector<std::uint64_t> lines(1 << 16);
  for (auto& l : lines) l = rng.Uniform(1 << 22);
  std::size_t i = 0;
  for (auto _ : state) {
    h.AccessLine(lines[i++ & (lines.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomAccess);

void BM_TracerTouchSpan(benchmark::State& state) {
  CacheHierarchy h;
  CacheTracer t(&h);
  std::vector<std::uint32_t> data(1 << 14);
  for (auto _ : state) {
    t.Touch(data.data(), data.size());
  }
  state.SetItemsProcessed(state.iterations() * (data.size() * 4 / 64));
}
BENCHMARK(BM_TracerTouchSpan);

}  // namespace
}  // namespace gorder::cachesim
