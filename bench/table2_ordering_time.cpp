// Reproduces Table 2 of the replication (Table 9 of the paper): the time
// to *compute* each ordering on each dataset. The paper's headline here
// is scalability: traversal/degree orderings are near-instant, MinLA /
// MinLogA / Gorder are orders of magnitude slower, and Gorder's edge
// throughput degrades as graphs grow.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.25);

  // The paper's Table 2 rows (Original/Random are free and omitted
  // there), plus BOBA as the streaming-speed floor for comparison.
  const std::vector<order::Method> methods = {
      order::Method::kMinLa,     order::Method::kMinLogA,
      order::Method::kRcm,       order::Method::kInDegSort,
      order::Method::kChDfs,     order::Method::kSlashBurn,
      order::Method::kLdg,       order::Method::kGorder,
      order::Method::kBoba,
  };

  std::printf(
      "Table 2: ordering computation time in seconds (scale=%.2f)\n\n",
      opt.scale);
  std::vector<std::string> header = {"Ordering"};
  for (const auto& name : opt.datasets) header.push_back(name);
  TablePrinter table(header);

  std::vector<Graph> graphs;
  std::vector<std::string> mrow = {"Edges m"};
  for (const auto& name : opt.datasets) {
    graphs.push_back(bench::MakeDataset(opt, name));
    mrow.push_back(TablePrinter::Count(
        static_cast<double>(graphs.back().NumEdges())));
  }

  bench::StoreSetupStats store_stats;
  std::vector<std::string> gorder_eps = {"Gorder edges/s"};
  for (order::Method m : methods) {
    std::vector<std::string> row = {order::MethodName(m)};
    for (std::size_t d = 0; d < graphs.size(); ++d) {
      order::OrderingParams params;
      params.seed = opt.seed;
      auto timed = bench::ComputeOrderingTimed(graphs[d], m, params);
      store_stats.Observe(timed);
      row.push_back(TablePrinter::Num(timed.seconds, 3));
      if (m == order::Method::kGorder) {
        double eps = static_cast<double>(graphs[d].NumEdges()) /
                     std::max(timed.seconds, 1e-9);
        gorder_eps.push_back(TablePrinter::Count(eps));
      }
    }
    table.AddRow(row);
  }
  table.AddRow(mrow);
  table.AddRow(gorder_eps);
  store_stats.Print();
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\nExpected shape (paper): RCM/InDegSort/ChDFS/SlashBurn/LDG are\n"
        "orders of magnitude cheaper than MinLA/MinLogA/Gorder, and\n"
        "Gorder's edges/s falls as datasets grow (non-linear scaling).\n");
  }
  return 0;
}
