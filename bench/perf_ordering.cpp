// Raw-speed trajectory bench for the ordering hot paths (ROADMAP item 4):
// times ordering *computation* per (dataset, method), reports the achieved
// locality score and a permutation fingerprint, and writes a snapshot
// entry in the `gorder-bench-ordering` schema — the format of the
// repo-root BENCH_ordering.json perf trajectory. Compare or merge
// snapshots with tools/compare_bench.py.
//
// Timing is always the direct compute path: an active --store-dir only
// accelerates dataset loading, never substitutes a cached ordering, so
// entries are comparable across runs regardless of store warmth.
//
// Cross-machine comparability: every snapshot carries the wall time of a
// fixed pointer-chase calibration kernel; tools/compare_bench.py compares
// calibration-normalised seconds, so a slower CI host does not read as a
// regression (and a faster one does not mask a real one).
//
// Extra flags beyond the shared set (see --help):
//   --methods=a,b     orderings to time (default: Gorder,BOBA; any
//                     registry name works)
//   --window=<w>      Gorder window and the locality-score window
//                     (default 5)
//   --lazy            time Gorder with lazy decrements
//   --label=<s>       label recorded in the snapshot entry (default
//                     "dev")
//   --bench-json=<f>  write the snapshot (single-entry trajectory
//                     document) to <f>
//   --extmem          time the out-of-core pipeline instead: one
//                     "extpack-build" run per dataset (external CSR
//                     build to a scratch .gpack) plus each method as
//                     "<Method>+extmem" (semi-external over the mapped
//                     pack). Permutation fingerprints stay comparable
//                     with the in-memory rows — the semi-external runs
//                     are bit-identical by contract.
//   --mem-budget=<MB> extmem streaming budget (default 256)

#include <ctime>
#include <filesystem>

#include "bench/bench_common.h"
#include "graph/stats.h"
#include "obs/json.h"
#include "obs/report.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace gorder {
namespace {

// FNV-1a over the permutation words: a stable fingerprint proving two
// builds produced bit-identical orderings (the refactor contract).
std::uint64_t PermFingerprint(const std::vector<NodeId>& perm) {
  std::uint64_t h = 1469598103934665603ULL;
  for (NodeId v : perm) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunResult {
  std::string dataset;
  std::string method;
  NodeId nodes = 0;
  EdgeId edges = 0;
  double seconds_median = 0.0;
  double seconds_min = 0.0;
  std::uint64_t locality_score = 0;
  std::uint64_t perm_fnv1a = 0;
  cachesim::HwStats hw;  // from the last repeat; valid only if clean
};

void WriteBenchJson(const std::string& path, const std::string& label,
                    const bench::BenchOptions& opt, NodeId window, bool lazy,
                    double calibration_seconds,
                    const std::vector<RunResult>& runs) {
  obs::EnvFingerprint env = obs::CollectEnvFingerprint();
  obs::JsonWriter json;
  json.BeginObject();
  json.KV("schema", "gorder-bench-ordering");
  json.KV("schema_version", static_cast<std::int64_t>(1));
  json.Key("entries");
  json.BeginArray();
  json.BeginObject();
  json.KV("label", label);
  json.KV("timestamp_unix",
          static_cast<std::int64_t>(std::time(nullptr)));
  json.KV("git_sha", env.git_sha);
  json.KV("cpu_model", env.cpu_model);
  json.KV("threads", static_cast<std::int64_t>(env.threads));
  json.KV("calibration_seconds", calibration_seconds);
  json.Key("runs");
  json.BeginArray();
  for (const auto& r : runs) {
    json.BeginObject();
    json.KV("dataset", r.dataset);
    json.KV("method", r.method);
    json.KV("scale", opt.scale);
    json.KV("seed", static_cast<std::int64_t>(opt.seed));
    json.KV("window", static_cast<std::int64_t>(window));
    json.KV("lazy", lazy);
    json.KV("repeats", static_cast<std::int64_t>(opt.repeats));
    json.KV("nodes", static_cast<std::int64_t>(r.nodes));
    json.KV("edges", static_cast<std::int64_t>(r.edges));
    json.KV("seconds_median", r.seconds_median);
    json.KV("seconds_min", r.seconds_min);
    json.KV("locality_score",
            static_cast<std::int64_t>(r.locality_score));
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(r.perm_fnv1a));
    json.KV("perm_fnv1a", hex);
    if (r.hw.Clean()) {
      json.Key("hw");
      json.BeginObject();
      json.KV("cycles", static_cast<std::int64_t>(r.hw.cycles));
      json.KV("instructions",
              static_cast<std::int64_t>(r.hw.instructions));
      json.KV("ipc", r.hw.Ipc());
      json.KV("l1_miss_rate", r.hw.L1MissRate());
      json.KV("llc_miss_rate", r.hw.LlcMissRate());
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  std::string body = json.TakeString();
  body += '\n';
  if (!util::WriteFileAtomic(path, body.data(), body.size()).ok) {
    std::fprintf(stderr, "perf_ordering: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  GORDER_LOG_INFO("perf_ordering: snapshot written to %s\n", path.c_str());
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.5);
  Flags flags(argc, argv);
  const NodeId window =
      static_cast<NodeId>(flags.GetInt("window", 5));
  const bool lazy = flags.GetBool("lazy", false);
  const bool use_extmem = flags.GetBool("extmem", false);
  extmem::ExtmemOptions ext_options;
  ext_options.mem_budget_bytes =
      static_cast<std::uint64_t>(flags.GetInt("mem-budget", 256)) << 20;
  const std::string label = flags.GetString("label", "dev");
  const std::string bench_json = flags.GetString("bench-json", "");
  std::vector<std::string> method_names;
  {
    std::string names = flags.GetString("methods", "Gorder,BOBA");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      std::size_t comma = names.find(',', pos);
      method_names.push_back(names.substr(
          pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  std::printf(
      "Ordering raw-speed trajectory (scale=%.2f, window=%u, lazy=%d, "
      "repeats=%d, label=%s)\n\n",
      opt.scale, static_cast<unsigned>(window), lazy ? 1 : 0, opt.repeats,
      label.c_str());

  GORDER_LOG_INFO("calibrating machine speed...\n");
  const double calibration = bench::CalibrationSeconds();
  GORDER_LOG_INFO("calibration kernel: %.4fs\n", calibration);

  TablePrinter table({"Dataset", "Method", "Median s", "Min s", "MEdges/s",
                      "F(score)", "PermHash", "L1 miss"});
  std::vector<RunResult> results;
  const bool hw_ok = cachesim::HwCounters::Available();
  for (const auto& name : opt.datasets) {
    GORDER_OBS_SPAN(dataset_span, "dataset:" + name);
    Graph g = bench::MakeDataset(opt, name);
    std::string pack_path;
    if (use_extmem) {
      pack_path = (std::filesystem::temp_directory_path() /
                   ("gorder_perf_" + name + ".gpack"))
                      .string();
      // External CSR build, timed as its own trajectory row. The edges
      // are replayed from the already-generated graph, so the row times
      // the sort/merge/windowed-write pipeline alone.
      const std::vector<Edge> edges = g.ToEdges();
      Timer timer;
      extmem::ExtPackBuilder builder(ext_options);
      bool ok = builder.Begin(pack_path).ok;
      if (ok) {
        builder.ReserveNodes(g.NumNodes());
        ok = builder.AddBatch(edges.data(), edges.size()).ok &&
             builder.Finish().ok;
      }
      if (!ok) {
        std::fprintf(stderr, "perf_ordering: extmem build failed for %s\n",
                     name.c_str());
        return 1;
      }
      RunResult b;
      b.dataset = name;
      b.method = "extpack-build";
      b.nodes = g.NumNodes();
      b.edges = g.NumEdges();
      b.seconds_median = b.seconds_min = timer.Seconds();
      table.AddRow({name, b.method, TablePrinter::Num(b.seconds_median, 4),
                    TablePrinter::Num(b.seconds_min, 4),
                    TablePrinter::Num(static_cast<double>(b.edges) /
                                          std::max(b.seconds_median, 1e-9) /
                                          1e6,
                                      2),
                    "-", "-", "n/a"});
      results.push_back(std::move(b));
    }
    for (const auto& mname : method_names) {
      order::Method method = order::MethodFromName(mname);
      order::OrderingParams params;
      params.seed = opt.seed;
      params.window = window;
      params.gorder_lazy_decrements = lazy;
      RunResult r;
      r.dataset = name;
      r.method = use_extmem ? mname + "+extmem" : mname;
      r.nodes = g.NumNodes();
      r.edges = g.NumEdges();
      std::vector<double> times;
      std::vector<NodeId> perm;
      for (int rep = 0; rep < opt.repeats; ++rep) {
        cachesim::HwCounters hw;
        const bool last = rep + 1 == opt.repeats;
        if (last && hw_ok) hw.Start();
        Timer timer;
        if (use_extmem) {
          IoResult sr =
              extmem::SemiExternalOrder(pack_path, method, params, &perm);
          if (!sr.ok) {
            std::fprintf(stderr, "perf_ordering: %s\n", sr.error.c_str());
            return 1;
          }
        } else {
          perm = order::ComputeOrdering(g, method, params);
        }
        times.push_back(timer.Seconds());
        if (last && hw_ok) r.hw = hw.Stop();
      }
      std::sort(times.begin(), times.end());
      r.seconds_median = times[times.size() / 2];
      r.seconds_min = times.front();
      r.locality_score = GorderScoreUnderPermutation(g, perm, window);
      r.perm_fnv1a = PermFingerprint(perm);
      char hex[32];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(r.perm_fnv1a));
      table.AddRow(
          {name, r.method, TablePrinter::Num(r.seconds_median, 4),
           TablePrinter::Num(r.seconds_min, 4),
           TablePrinter::Num(static_cast<double>(r.edges) /
                                 std::max(r.seconds_median, 1e-9) / 1e6,
                             2),
           TablePrinter::Count(static_cast<double>(r.locality_score)), hex,
           r.hw.Clean() ? TablePrinter::Num(r.hw.L1MissRate() * 100, 1) + "%"
                        : std::string("n/a")});
      results.push_back(std::move(r));
      GORDER_LOG_INFO("  %s/%s done (%.3fs)\n", name.c_str(), mname.c_str(),
                      results.back().seconds_median);
    }
    if (use_extmem) {
      std::error_code ec;
      std::filesystem::remove(pack_path, ec);
    }
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\ncalibration kernel: %.4fs (pointer chase; normalise seconds by\n"
        "this before comparing entries across machines)\n",
        calibration);
  }
  if (!bench_json.empty()) {
    WriteBenchJson(bench_json, label, opt, window, lazy, calibration,
                   results);
  }
  return 0;
}
