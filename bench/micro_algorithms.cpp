// Microbenchmarks: the nine workloads on a fixed mid-size graph, under
// Original vs Gorder numbering — the per-workload view of the paper's
// speedup claim, in google-benchmark form.

#include <benchmark/benchmark.h>

#include "algo/algorithms.h"
#include "gen/datasets.h"
#include "harness/experiment.h"
#include "order/ordering.h"

namespace gorder {
namespace {

struct Setup {
  Graph original;
  Graph reordered;
  std::vector<NodeId> identity;
  std::vector<NodeId> perm;
  harness::WorkloadConfig config;
};

const Setup& SharedSetup() {
  static const Setup* kSetup = [] {
    auto* s = new Setup();
    s->original = gen::MakeDataset("wiki", 0.15);
    s->identity = IdentityPermutation(s->original.NumNodes());
    s->perm = order::ComputeOrdering(s->original, order::Method::kGorder, {});
    s->reordered = s->original.Relabel(s->perm);
    s->config = harness::MakeDefaultConfig(s->original, 3);
    s->config.pagerank_iterations = 10;
    return s;
  }();
  return *kSetup;
}

void RunWorkloadBench(benchmark::State& state, harness::Workload w,
                      bool gorder) {
  const Setup& s = SharedSetup();
  const Graph& g = gorder ? s.reordered : s.original;
  const auto& perm = gorder ? s.perm : s.identity;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::RunWorkload(g, w, s.config, perm));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}

#define GORDER_WORKLOAD_BENCH(name, workload)                       \
  void BM_##name##_Original(benchmark::State& s) {                  \
    RunWorkloadBench(s, harness::Workload::workload, false);        \
  }                                                                 \
  void BM_##name##_Gorder(benchmark::State& s) {                    \
    RunWorkloadBench(s, harness::Workload::workload, true);         \
  }                                                                 \
  BENCHMARK(BM_##name##_Original);                                  \
  BENCHMARK(BM_##name##_Gorder)

GORDER_WORKLOAD_BENCH(Nq, kNq);
GORDER_WORKLOAD_BENCH(Bfs, kBfs);
GORDER_WORKLOAD_BENCH(Dfs, kDfs);
GORDER_WORKLOAD_BENCH(Scc, kScc);
GORDER_WORKLOAD_BENCH(Sp, kSp);
GORDER_WORKLOAD_BENCH(Pr, kPr);
GORDER_WORKLOAD_BENCH(Ds, kDs);
GORDER_WORKLOAD_BENCH(Kcore, kKcore);
GORDER_WORKLOAD_BENCH(Diam, kDiam);

}  // namespace
}  // namespace gorder
