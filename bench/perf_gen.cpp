// Generation throughput bench for the chunked streaming generators
// (DESIGN.md §19): times chunk-parallel edge production per generator
// family, reports attempts/s, the stream fingerprint (the bit-identity
// contract across thread counts) and peak RSS, and writes a snapshot in
// the `gorder-bench-gen` schema — the format of the repo-root
// BENCH_gen.json trajectory. Compare or merge snapshots with
// tools/compare_bench.py (same tool as the ordering trajectory; the two
// schemas share structure and the calibration-normalised comparison).
//
// Two modes:
//   --mode=count   drain the stream into a fingerprinting sink — pure
//                  generation speed, no I/O.
//   --mode=pack    stream into extmem::BuildPackFromEdgeStream — the
//                  full generate-to-.gpack pipeline (external sort,
//                  merge, windowed write) under --mem-budget. Peak RSS
//                  of this mode is the headline out-of-core claim: a
//                  10^9-edge graph packs without a global edge list.
//
// Extra flags beyond the shared set (see --help):
//   --gens=a,b        generator subset: rmat, er, ba (default rmat)
//   --gen-scale=<S>   log2 node count (default 20)
//   --gen-edge-factor=<k>  R-MAT/ER: edge attempts = k << S;
//                     BA: out_k = k (attempts = k << S too) (default 16)
//   --mode=count|pack (default count)
//   --chunk-edges=<c> edge attempts per chunk (determinism key;
//                     default 2^18)
//   --mem-budget=<MB> extmem streaming budget for --mode=pack
//   --pack-out=<f>    keep the pack at <f.gpack> (default: temp file,
//                     removed after timing)
//   --label=<s>       label recorded in the snapshot (default "dev")
//   --bench-json=<f>  write the snapshot to <f>

#include <sys/resource.h>

#include <ctime>
#include <filesystem>
#include <functional>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "obs/report.h"
#include "util/atomic_file.h"

namespace gorder {
namespace {

/// Peak RSS of this process so far, in MiB. A high-water mark: in a
/// multi-run invocation every run reports the max over all runs so far,
/// so single out a run with its own invocation when the number matters
/// (the CI memory claim does exactly that via ulimit anyway).
double PeakRssMb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// FNV-1a over the delivered edge words in stream order. Equal
/// fingerprints at different --threads prove the delivered stream — not
/// just the packed graph — is bit-identical.
struct StreamFingerprint {
  std::uint64_t hash = 1469598103934665603ULL;
  std::uint64_t edges = 0;

  void Mix(const Edge* e, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      hash ^= e[i].src;
      hash *= 1099511628211ULL;
      hash ^= e[i].dst;
      hash *= 1099511628211ULL;
    }
    edges += count;
  }
};

struct GenSpec {
  std::string name;     // snapshot dataset name, e.g. "rmat-s20"
  NodeId num_nodes = 0;
  std::uint64_t attempts = 0;
  std::function<IoResult(const gen::EdgeSink&)> stream;
};

struct GenResult {
  std::string dataset;
  std::string method;  // "gen-count" | "gen-pack"
  NodeId nodes = 0;
  std::uint64_t attempts = 0;
  std::uint64_t edges_final = 0;  // pack mode: post-dedup edge count
  double seconds_median = 0.0;
  double seconds_min = 0.0;
  std::uint64_t stream_fnv1a = 0;
  double peak_rss_mb = 0.0;
};

void WriteBenchJson(const std::string& path, const std::string& label,
                    const bench::BenchOptions& opt, int gen_scale,
                    int edge_factor, std::size_t chunk_edges,
                    double calibration_seconds,
                    const std::vector<GenResult>& runs) {
  obs::EnvFingerprint env = obs::CollectEnvFingerprint();
  obs::JsonWriter json;
  json.BeginObject();
  json.KV("schema", "gorder-bench-gen");
  json.KV("schema_version", static_cast<std::int64_t>(1));
  json.Key("entries");
  json.BeginArray();
  json.BeginObject();
  json.KV("label", label);
  json.KV("timestamp_unix", static_cast<std::int64_t>(std::time(nullptr)));
  json.KV("git_sha", env.git_sha);
  json.KV("cpu_model", env.cpu_model);
  json.KV("threads", static_cast<std::int64_t>(env.threads));
  json.KV("calibration_seconds", calibration_seconds);
  json.Key("runs");
  json.BeginArray();
  for (const auto& r : runs) {
    json.BeginObject();
    // The first six keys mirror the ordering schema's match tuple
    // (tools/compare_bench.py MATCH_KEYS); "threads" joins the tuple so
    // runs at different thread counts stay separate trajectory series.
    json.KV("dataset", r.dataset);
    json.KV("method", r.method);
    json.KV("scale", static_cast<std::int64_t>(gen_scale));
    json.KV("seed", static_cast<std::int64_t>(opt.seed));
    json.KV("window", static_cast<std::int64_t>(0));
    json.KV("lazy", false);
    json.KV("threads", static_cast<std::int64_t>(NumThreads()));
    json.KV("repeats", static_cast<std::int64_t>(opt.repeats));
    json.KV("edge_factor", static_cast<std::int64_t>(edge_factor));
    json.KV("chunk_edges", static_cast<std::int64_t>(chunk_edges));
    json.KV("nodes", static_cast<std::int64_t>(r.nodes));
    json.KV("edges", static_cast<std::int64_t>(r.attempts));
    json.KV("edges_final", static_cast<std::int64_t>(r.edges_final));
    json.KV("seconds_median", r.seconds_median);
    json.KV("seconds_min", r.seconds_min);
    json.KV("locality_score", static_cast<std::int64_t>(0));
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(r.stream_fnv1a));
    json.KV("perm_fnv1a", hex);  // the stream fingerprint, same role
    json.KV("peak_rss_mb", r.peak_rss_mb);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  std::string body = json.TakeString();
  body += '\n';
  if (!util::WriteFileAtomic(path, body.data(), body.size()).ok) {
    std::fprintf(stderr, "perf_gen: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  GORDER_LOG_INFO("perf_gen: snapshot written to %s\n", path.c_str());
}

}  // namespace
}  // namespace gorder

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/1.0);
  Flags flags(argc, argv);
  const int gen_scale = static_cast<int>(flags.GetInt("gen-scale", 20));
  const int edge_factor =
      static_cast<int>(flags.GetInt("gen-edge-factor", 16));
  const std::string mode = flags.GetString("mode", "count");
  if (mode != "count" && mode != "pack") {
    std::fprintf(stderr, "error: --mode must be count or pack (got '%s')\n",
                 mode.c_str());
    return 2;
  }
  if (gen_scale < 1 || gen_scale > 31 || edge_factor < 1) {
    std::fprintf(stderr, "error: need 1 <= --gen-scale <= 31 and "
                         "--gen-edge-factor >= 1\n");
    return 2;
  }
  gen::ChunkedOptions chunked;
  chunked.chunk_edges =
      static_cast<std::size_t>(flags.GetInt("chunk-edges", 1u << 18));
  extmem::ExtmemOptions ext_options;
  ext_options.mem_budget_bytes =
      static_cast<std::uint64_t>(flags.GetInt("mem-budget", 256)) << 20;
  ext_options.scratch_dir = flags.GetString("scratch-dir", "");
  const std::string label = flags.GetString("label", "dev");
  const std::string bench_json = flags.GetString("bench-json", "");
  const std::string pack_out = flags.GetString("pack-out", "");

  const auto n = static_cast<NodeId>(NodeId{1} << gen_scale);
  const std::uint64_t attempts = std::uint64_t{edge_factor} << gen_scale;
  std::vector<GenSpec> specs;
  {
    std::string names = flags.GetString("gens", "rmat");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      std::size_t comma = names.find(',', pos);
      const std::string g = names.substr(
          pos, comma == std::string::npos ? comma : comma - pos);
      pos = comma == std::string::npos ? comma : comma + 1;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s-s%d", g.c_str(), gen_scale);
      GenSpec spec;
      spec.name = buf;
      spec.num_nodes = n;
      spec.attempts = attempts;
      const std::uint64_t seed = opt.seed;
      if (g == "rmat") {
        gen::RmatParams p;
        p.scale = gen_scale;
        p.num_edges = attempts;
        spec.stream = [p, seed, chunked](const gen::EdgeSink& sink) {
          return gen::StreamRmat(p, seed, chunked, sink);
        };
      } else if (g == "er") {
        spec.stream = [n, attempts, seed, chunked](
                          const gen::EdgeSink& sink) {
          return gen::StreamErdosRenyi(n, attempts, seed, chunked, sink);
        };
      } else if (g == "ba") {
        const auto out_k = static_cast<NodeId>(edge_factor);
        spec.stream = [n, out_k, seed, chunked](const gen::EdgeSink& sink) {
          return gen::StreamBarabasiAlbert(n, out_k, seed, chunked, sink);
        };
      } else {
        std::fprintf(stderr,
                     "error: unknown generator '%s' in --gens "
                     "(valid: rmat, er, ba)\n",
                     g.c_str());
        return 2;
      }
      specs.push_back(std::move(spec));
    }
  }

  std::printf(
      "Chunked generation throughput (gen-scale=%d, edge-factor=%d, "
      "mode=%s, chunk-edges=%zu, repeats=%d, threads=%d, label=%s)\n\n",
      gen_scale, edge_factor, mode.c_str(), chunked.chunk_edges, opt.repeats,
      NumThreads(), label.c_str());

  GORDER_LOG_INFO("calibrating machine speed...\n");
  const double calibration = bench::CalibrationSeconds();
  GORDER_LOG_INFO("calibration kernel: %.4fs\n", calibration);

  TablePrinter table({"Gen", "Mode", "Median s", "Min s", "MEdges/s",
                      "StreamHash", "Final m", "RSS MB"});
  std::vector<GenResult> results;
  for (const auto& spec : specs) {
    GORDER_OBS_SPAN(span, "gen:" + spec.name);
    GenResult r;
    r.dataset = spec.name;
    r.method = "gen-" + mode;
    r.nodes = spec.num_nodes;
    r.attempts = spec.attempts;
    std::vector<double> times;
    for (int rep = 0; rep < opt.repeats; ++rep) {
      StreamFingerprint fp;
      Timer timer;
      IoResult io = IoResult::Ok();
      if (mode == "count") {
        io = spec.stream([&](const Edge* e, std::size_t count) {
          fp.Mix(e, count);
          return IoResult::Ok();
        });
      } else {
        const std::string pack_path =
            !pack_out.empty()
                ? pack_out
                : (std::filesystem::temp_directory_path() /
                   ("gorder_perf_gen_" + spec.name + ".gpack"))
                      .string();
        extmem::ExtBuildStats stats;
        io = extmem::BuildPackFromEdgeStream(
            [&](const gen::EdgeSink& builder_sink) {
              return spec.stream([&](const Edge* e, std::size_t count) {
                fp.Mix(e, count);
                return builder_sink(e, count);
              });
            },
            spec.num_nodes, pack_path, ext_options, &stats);
        r.edges_final = stats.edges_final;
        if (pack_out.empty()) {
          std::error_code ec;
          std::filesystem::remove(pack_path, ec);
        }
      }
      if (!io.ok) {
        std::fprintf(stderr, "perf_gen: %s: %s\n", spec.name.c_str(),
                     io.error.c_str());
        return 1;
      }
      times.push_back(timer.Seconds());
      if (rep == 0) {
        r.stream_fnv1a = fp.hash;
      } else if (r.stream_fnv1a != fp.hash) {
        // Same process, same params: a fingerprint change across repeats
        // means the generator is not a pure function of its seed.
        std::fprintf(stderr, "perf_gen: %s: stream fingerprint unstable "
                             "across repeats\n",
                     spec.name.c_str());
        return 1;
      }
      GORDER_CHECK(fp.edges <= spec.attempts);
    }
    std::sort(times.begin(), times.end());
    r.seconds_median = times[times.size() / 2];
    r.seconds_min = times.front();
    r.peak_rss_mb = PeakRssMb();
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(r.stream_fnv1a));
    table.AddRow(
        {spec.name, mode, TablePrinter::Num(r.seconds_median, 3),
         TablePrinter::Num(r.seconds_min, 3),
         TablePrinter::Num(static_cast<double>(r.attempts) /
                               std::max(r.seconds_median, 1e-9) / 1e6,
                           2),
         hex,
         mode == "pack"
             ? TablePrinter::Count(static_cast<double>(r.edges_final))
             : std::string("-"),
         TablePrinter::Num(r.peak_rss_mb, 1)});
    results.push_back(std::move(r));
    GORDER_LOG_INFO("  %s done (%.3fs median)\n", spec.name.c_str(),
                    results.back().seconds_median);
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\ncalibration kernel: %.4fs (pointer chase; normalise seconds by\n"
        "this before comparing entries across machines)\n",
        calibration);
  }
  if (!bench_json.empty()) {
    WriteBenchJson(bench_json, label, opt, gen_scale, edge_factor,
                   chunked.chunk_edges, calibration, results);
  }
  return 0;
}
