// Extension experiment: does the paper's conclusion transfer to
// workloads outside its nine? (Replication §4: "its consistent
// efficiency on all algorithms and datasets suggests that it could
// speed up other graph algorithms as well".) Tests triangle counting
// and weakly-connected components under every ordering, including this
// repo's extension methods (Metis-like, HubSort/HubCluster/DBG).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace gorder;
  auto opt = bench::BenchOptions::Parse(argc, argv, /*default_scale=*/0.25);
  Flags flags(argc, argv);
  const auto geometry = bench::CacheConfigFromFlags(flags);
  std::vector<std::string> datasets = {"flickr", "wiki"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "wiki")};

  for (const auto& name : datasets) {
    Graph g = bench::MakeDataset(opt, name);
    bench::PrintHeader("Extension workloads: Triangles, WCC, LabelProp", g,
                       name);
    TablePrinter table({"Ordering", "Tri cycles", "Tri vs Gorder",
                        "WCC cycles", "WCC vs Gorder", "LP cycles",
                        "LP vs Gorder"});
    double tri_gorder = 0.0, wcc_gorder = 0.0, lp_gorder = 0.0;
    struct Row {
      std::string name;
      double tri, wcc, lp;
    };
    std::vector<Row> rows;
    for (order::Method m : order::AllMethodsExtended()) {
      order::OrderingParams params;
      params.seed = opt.seed;
      auto perm = order::ComputeOrdering(g, m, params);
      Graph h = g.Relabel(perm);
      cachesim::CacheHierarchy caches(geometry);
      algo::TriangleCountTraced(h, caches);
      double tri =
          caches.stats().compute_cycles + caches.stats().stall_cycles;
      caches.Flush();
      algo::WccTraced(h, caches);
      double wcc =
          caches.stats().compute_cycles + caches.stats().stall_cycles;
      caches.Flush();
      algo::LabelPropagationTraced(h, /*max_rounds=*/4, caches);
      double lp =
          caches.stats().compute_cycles + caches.stats().stall_cycles;
      if (m == order::Method::kGorder) {
        tri_gorder = tri;
        wcc_gorder = wcc;
        lp_gorder = lp;
      }
      rows.push_back({order::MethodName(m), tri, wcc, lp});
    }
    for (const auto& r : rows) {
      table.AddRow({r.name, TablePrinter::Count(r.tri),
                    TablePrinter::Num(r.tri / tri_gorder, 2),
                    TablePrinter::Count(r.wcc),
                    TablePrinter::Num(r.wcc / wcc_gorder, 2),
                    TablePrinter::Count(r.lp),
                    TablePrinter::Num(r.lp / lp_gorder, 2)});
    }
    if (opt.csv) {
      table.PrintCsv();
    } else {
      table.Print();
    }
    std::printf("\n");
  }
  if (!opt.csv) {
    std::printf(
        "Expected shape: the ordering ranking from the paper's nine\n"
        "workloads carries over — Random/LDG slowest, the locality group\n"
        "(Gorder/RCM/ChDFS/Metis) fastest — supporting the replication's\n"
        "transfer conjecture.\n");
  }
  return 0;
}
