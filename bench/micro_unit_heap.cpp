// Microbenchmarks for the unit heap, the data structure at the core of
// Gorder's near-linear greedy.

#include <benchmark/benchmark.h>

#include "order/unit_heap.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

void BM_UnitHeapIncrement(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  UnitHeap heap(n);
  Rng rng(1);
  std::vector<NodeId> targets(1 << 12);
  for (auto& t : targets) t = static_cast<NodeId>(rng.Uniform(n));
  std::size_t i = 0;
  for (auto _ : state) {
    heap.Increment(targets[i++ & (targets.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnitHeapIncrement)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_UnitHeapMixedOps(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    UnitHeap heap(n);
    state.ResumeTiming();
    // Increment a random walk of keys, then drain by ExtractMax —
    // Gorder's exact op mix.
    for (NodeId i = 0; i < n; ++i) {
      heap.Increment(static_cast<NodeId>(rng.Uniform(n)));
      heap.Increment(static_cast<NodeId>(rng.Uniform(n)));
    }
    NodeId drained = 0;
    while (heap.ExtractMax() != kInvalidNode) ++drained;
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
}
BENCHMARK(BM_UnitHeapMixedOps)->Arg(1 << 10)->Arg(1 << 14);

void BM_UnitHeapLazyRefileStorm(benchmark::State& state) {
  // The lazy-decrement path: window exits bank debt via AddDebtBy
  // instead of moving the node, and an extracted node with outstanding
  // debt is settled and re-filed lower. Increment-heavy churn followed
  // by a drain full of refile storms — the settle loop's worst case.
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    UnitHeap heap(n);
    state.ResumeTiming();
    for (NodeId i = 0; i < 4 * n; ++i) {
      heap.BumpBy(static_cast<NodeId>(rng.Uniform(n)), +1);
    }
    // Bank debt wherever the greedy's invariant (debt <= key) allows,
    // as window exits do.
    for (NodeId i = 0; i < 4 * n; ++i) {
      NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (heap.DebtOf(v) < heap.KeyOf(v)) heap.AddDebtBy(v, 1);
    }
    // Drain with the greedy's settle loop.
    NodeId drained = 0;
    std::uint64_t refiles = 0;
    while (true) {
      NodeId v = heap.ExtractMax();
      if (v == kInvalidNode) break;
      while (heap.DebtOf(v) > 0) {
        ++refiles;
        std::int32_t true_key = heap.KeyOf(v) - heap.DebtOf(v);
        heap.ClearDebt(v);
        heap.Insert(v, true_key);
        v = heap.ExtractMax();
      }
      ++drained;
    }
    benchmark::DoNotOptimize(drained);
    benchmark::DoNotOptimize(refiles);
  }
  state.SetItemsProcessed(state.iterations() * n * 9);
}
BENCHMARK(BM_UnitHeapLazyRefileStorm)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace gorder::order
