// Microbenchmarks for the unit heap, the data structure at the core of
// Gorder's near-linear greedy.

#include <benchmark/benchmark.h>

#include "order/unit_heap.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

void BM_UnitHeapIncrement(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  UnitHeap heap(n);
  Rng rng(1);
  std::vector<NodeId> targets(1 << 12);
  for (auto& t : targets) t = static_cast<NodeId>(rng.Uniform(n));
  std::size_t i = 0;
  for (auto _ : state) {
    heap.Increment(targets[i++ & (targets.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnitHeapIncrement)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_UnitHeapMixedOps(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    UnitHeap heap(n);
    state.ResumeTiming();
    // Increment a random walk of keys, then drain by ExtractMax —
    // Gorder's exact op mix.
    for (NodeId i = 0; i < n; ++i) {
      heap.Increment(static_cast<NodeId>(rng.Uniform(n)));
      heap.Increment(static_cast<NodeId>(rng.Uniform(n)));
    }
    NodeId drained = 0;
    while (heap.ExtractMax() != kInvalidNode) ++drained;
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
}
BENCHMARK(BM_UnitHeapMixedOps)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace gorder::order
