# Empty compiler generated dependencies file for gorder_cli.
# This may be replaced when dependencies are built.
