file(REMOVE_RECURSE
  "CMakeFiles/gorder_cli.dir/gorder_cli.cpp.o"
  "CMakeFiles/gorder_cli.dir/gorder_cli.cpp.o.d"
  "gorder_cli"
  "gorder_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
