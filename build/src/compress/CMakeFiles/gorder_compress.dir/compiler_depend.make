# Empty compiler generated dependencies file for gorder_compress.
# This may be replaced when dependencies are built.
