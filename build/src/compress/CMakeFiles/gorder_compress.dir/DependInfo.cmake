
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressed_graph.cpp" "src/compress/CMakeFiles/gorder_compress.dir/compressed_graph.cpp.o" "gcc" "src/compress/CMakeFiles/gorder_compress.dir/compressed_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gorder_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
