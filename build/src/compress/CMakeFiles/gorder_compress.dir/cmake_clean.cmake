file(REMOVE_RECURSE
  "CMakeFiles/gorder_compress.dir/compressed_graph.cpp.o"
  "CMakeFiles/gorder_compress.dir/compressed_graph.cpp.o.d"
  "libgorder_compress.a"
  "libgorder_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
