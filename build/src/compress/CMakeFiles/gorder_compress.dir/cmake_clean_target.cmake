file(REMOVE_RECURSE
  "libgorder_compress.a"
)
