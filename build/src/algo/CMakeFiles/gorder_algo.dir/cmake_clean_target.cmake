file(REMOVE_RECURSE
  "libgorder_algo.a"
)
