file(REMOVE_RECURSE
  "CMakeFiles/gorder_algo.dir/algorithms.cpp.o"
  "CMakeFiles/gorder_algo.dir/algorithms.cpp.o.d"
  "CMakeFiles/gorder_algo.dir/extra.cpp.o"
  "CMakeFiles/gorder_algo.dir/extra.cpp.o.d"
  "CMakeFiles/gorder_algo.dir/traced.cpp.o"
  "CMakeFiles/gorder_algo.dir/traced.cpp.o.d"
  "libgorder_algo.a"
  "libgorder_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
