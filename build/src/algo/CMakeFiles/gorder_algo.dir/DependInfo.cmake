
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/algorithms.cpp" "src/algo/CMakeFiles/gorder_algo.dir/algorithms.cpp.o" "gcc" "src/algo/CMakeFiles/gorder_algo.dir/algorithms.cpp.o.d"
  "/root/repo/src/algo/extra.cpp" "src/algo/CMakeFiles/gorder_algo.dir/extra.cpp.o" "gcc" "src/algo/CMakeFiles/gorder_algo.dir/extra.cpp.o.d"
  "/root/repo/src/algo/traced.cpp" "src/algo/CMakeFiles/gorder_algo.dir/traced.cpp.o" "gcc" "src/algo/CMakeFiles/gorder_algo.dir/traced.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gorder_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/gorder_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
