# Empty dependencies file for gorder_algo.
# This may be replaced when dependencies are built.
