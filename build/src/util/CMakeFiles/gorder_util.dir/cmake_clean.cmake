file(REMOVE_RECURSE
  "CMakeFiles/gorder_util.dir/flags.cpp.o"
  "CMakeFiles/gorder_util.dir/flags.cpp.o.d"
  "CMakeFiles/gorder_util.dir/table.cpp.o"
  "CMakeFiles/gorder_util.dir/table.cpp.o.d"
  "libgorder_util.a"
  "libgorder_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
