file(REMOVE_RECURSE
  "libgorder_util.a"
)
