# Empty compiler generated dependencies file for gorder_util.
# This may be replaced when dependencies are built.
