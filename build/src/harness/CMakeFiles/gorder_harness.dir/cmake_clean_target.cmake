file(REMOVE_RECURSE
  "libgorder_harness.a"
)
