file(REMOVE_RECURSE
  "CMakeFiles/gorder_harness.dir/experiment.cpp.o"
  "CMakeFiles/gorder_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/gorder_harness.dir/ranking.cpp.o"
  "CMakeFiles/gorder_harness.dir/ranking.cpp.o.d"
  "libgorder_harness.a"
  "libgorder_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
