# Empty compiler generated dependencies file for gorder_harness.
# This may be replaced when dependencies are built.
