file(REMOVE_RECURSE
  "libgorder_gen.a"
)
