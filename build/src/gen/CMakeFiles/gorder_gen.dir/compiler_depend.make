# Empty compiler generated dependencies file for gorder_gen.
# This may be replaced when dependencies are built.
