file(REMOVE_RECURSE
  "CMakeFiles/gorder_gen.dir/crawl_order.cpp.o"
  "CMakeFiles/gorder_gen.dir/crawl_order.cpp.o.d"
  "CMakeFiles/gorder_gen.dir/datasets.cpp.o"
  "CMakeFiles/gorder_gen.dir/datasets.cpp.o.d"
  "CMakeFiles/gorder_gen.dir/generators.cpp.o"
  "CMakeFiles/gorder_gen.dir/generators.cpp.o.d"
  "libgorder_gen.a"
  "libgorder_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
