
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/crawl_order.cpp" "src/gen/CMakeFiles/gorder_gen.dir/crawl_order.cpp.o" "gcc" "src/gen/CMakeFiles/gorder_gen.dir/crawl_order.cpp.o.d"
  "/root/repo/src/gen/datasets.cpp" "src/gen/CMakeFiles/gorder_gen.dir/datasets.cpp.o" "gcc" "src/gen/CMakeFiles/gorder_gen.dir/datasets.cpp.o.d"
  "/root/repo/src/gen/generators.cpp" "src/gen/CMakeFiles/gorder_gen.dir/generators.cpp.o" "gcc" "src/gen/CMakeFiles/gorder_gen.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gorder_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
