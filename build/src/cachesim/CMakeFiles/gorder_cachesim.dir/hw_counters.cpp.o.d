src/cachesim/CMakeFiles/gorder_cachesim.dir/hw_counters.cpp.o: \
 /root/repo/src/cachesim/hw_counters.cpp /usr/include/stdc-predef.h \
 /root/repo/src/cachesim/hw_counters.h /usr/include/c++/12/cstdint \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /usr/include/linux/perf_event.h /usr/include/linux/types.h \
 /usr/include/x86_64-linux-gnu/asm/types.h \
 /usr/include/asm-generic/types.h /usr/include/asm-generic/int-ll64.h \
 /usr/include/x86_64-linux-gnu/asm/bitsperlong.h \
 /usr/include/asm-generic/bitsperlong.h /usr/include/linux/posix_types.h \
 /usr/include/linux/stddef.h \
 /usr/include/x86_64-linux-gnu/asm/posix_types.h \
 /usr/include/x86_64-linux-gnu/asm/posix_types_64.h \
 /usr/include/asm-generic/posix_types.h /usr/include/linux/ioctl.h \
 /usr/include/x86_64-linux-gnu/asm/ioctl.h \
 /usr/include/asm-generic/ioctl.h \
 /usr/include/x86_64-linux-gnu/asm/byteorder.h \
 /usr/include/linux/byteorder/little_endian.h /usr/include/linux/swab.h \
 /usr/include/x86_64-linux-gnu/asm/swab.h \
 /usr/include/x86_64-linux-gnu/sys/ioctl.h \
 /usr/include/x86_64-linux-gnu/bits/ioctls.h \
 /usr/include/x86_64-linux-gnu/asm/ioctls.h \
 /usr/include/asm-generic/ioctls.h \
 /usr/include/x86_64-linux-gnu/bits/ioctl-types.h \
 /usr/include/x86_64-linux-gnu/sys/ttydefaults.h \
 /usr/include/x86_64-linux-gnu/sys/syscall.h \
 /usr/include/x86_64-linux-gnu/asm/unistd.h \
 /usr/include/x86_64-linux-gnu/asm/unistd_64.h \
 /usr/include/x86_64-linux-gnu/bits/syscall.h /usr/include/unistd.h \
 /usr/include/x86_64-linux-gnu/bits/posix_opt.h \
 /usr/include/x86_64-linux-gnu/bits/environments.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/x86_64-linux-gnu/bits/confname.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_posix.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_core.h \
 /usr/include/x86_64-linux-gnu/bits/unistd_ext.h \
 /usr/include/linux/close_range.h /usr/include/c++/12/cstring \
 /usr/include/string.h \
 /usr/include/x86_64-linux-gnu/bits/types/locale_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__locale_t.h \
 /usr/include/strings.h
