# Empty dependencies file for gorder_cachesim.
# This may be replaced when dependencies are built.
