file(REMOVE_RECURSE
  "libgorder_cachesim.a"
)
