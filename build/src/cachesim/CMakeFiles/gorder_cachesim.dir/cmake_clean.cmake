file(REMOVE_RECURSE
  "CMakeFiles/gorder_cachesim.dir/cache.cpp.o"
  "CMakeFiles/gorder_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/gorder_cachesim.dir/hw_counters.cpp.o"
  "CMakeFiles/gorder_cachesim.dir/hw_counters.cpp.o.d"
  "libgorder_cachesim.a"
  "libgorder_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
