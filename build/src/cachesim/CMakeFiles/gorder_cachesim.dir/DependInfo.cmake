
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache.cpp" "src/cachesim/CMakeFiles/gorder_cachesim.dir/cache.cpp.o" "gcc" "src/cachesim/CMakeFiles/gorder_cachesim.dir/cache.cpp.o.d"
  "/root/repo/src/cachesim/hw_counters.cpp" "src/cachesim/CMakeFiles/gorder_cachesim.dir/hw_counters.cpp.o" "gcc" "src/cachesim/CMakeFiles/gorder_cachesim.dir/hw_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
