
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/annealing.cpp" "src/order/CMakeFiles/gorder_order.dir/annealing.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/annealing.cpp.o.d"
  "/root/repo/src/order/basic.cpp" "src/order/CMakeFiles/gorder_order.dir/basic.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/basic.cpp.o.d"
  "/root/repo/src/order/degree_grouping.cpp" "src/order/CMakeFiles/gorder_order.dir/degree_grouping.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/degree_grouping.cpp.o.d"
  "/root/repo/src/order/exact.cpp" "src/order/CMakeFiles/gorder_order.dir/exact.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/exact.cpp.o.d"
  "/root/repo/src/order/gorder.cpp" "src/order/CMakeFiles/gorder_order.dir/gorder.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/gorder.cpp.o.d"
  "/root/repo/src/order/incremental_gorder.cpp" "src/order/CMakeFiles/gorder_order.dir/incremental_gorder.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/incremental_gorder.cpp.o.d"
  "/root/repo/src/order/ldg.cpp" "src/order/CMakeFiles/gorder_order.dir/ldg.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/ldg.cpp.o.d"
  "/root/repo/src/order/metis_like.cpp" "src/order/CMakeFiles/gorder_order.dir/metis_like.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/metis_like.cpp.o.d"
  "/root/repo/src/order/ordering.cpp" "src/order/CMakeFiles/gorder_order.dir/ordering.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/ordering.cpp.o.d"
  "/root/repo/src/order/parallel_gorder.cpp" "src/order/CMakeFiles/gorder_order.dir/parallel_gorder.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/parallel_gorder.cpp.o.d"
  "/root/repo/src/order/rcm.cpp" "src/order/CMakeFiles/gorder_order.dir/rcm.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/rcm.cpp.o.d"
  "/root/repo/src/order/slashburn.cpp" "src/order/CMakeFiles/gorder_order.dir/slashburn.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/slashburn.cpp.o.d"
  "/root/repo/src/order/unit_heap.cpp" "src/order/CMakeFiles/gorder_order.dir/unit_heap.cpp.o" "gcc" "src/order/CMakeFiles/gorder_order.dir/unit_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gorder_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
