# Empty dependencies file for gorder_order.
# This may be replaced when dependencies are built.
