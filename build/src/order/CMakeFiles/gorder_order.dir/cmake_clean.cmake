file(REMOVE_RECURSE
  "CMakeFiles/gorder_order.dir/annealing.cpp.o"
  "CMakeFiles/gorder_order.dir/annealing.cpp.o.d"
  "CMakeFiles/gorder_order.dir/basic.cpp.o"
  "CMakeFiles/gorder_order.dir/basic.cpp.o.d"
  "CMakeFiles/gorder_order.dir/degree_grouping.cpp.o"
  "CMakeFiles/gorder_order.dir/degree_grouping.cpp.o.d"
  "CMakeFiles/gorder_order.dir/exact.cpp.o"
  "CMakeFiles/gorder_order.dir/exact.cpp.o.d"
  "CMakeFiles/gorder_order.dir/gorder.cpp.o"
  "CMakeFiles/gorder_order.dir/gorder.cpp.o.d"
  "CMakeFiles/gorder_order.dir/incremental_gorder.cpp.o"
  "CMakeFiles/gorder_order.dir/incremental_gorder.cpp.o.d"
  "CMakeFiles/gorder_order.dir/ldg.cpp.o"
  "CMakeFiles/gorder_order.dir/ldg.cpp.o.d"
  "CMakeFiles/gorder_order.dir/metis_like.cpp.o"
  "CMakeFiles/gorder_order.dir/metis_like.cpp.o.d"
  "CMakeFiles/gorder_order.dir/ordering.cpp.o"
  "CMakeFiles/gorder_order.dir/ordering.cpp.o.d"
  "CMakeFiles/gorder_order.dir/parallel_gorder.cpp.o"
  "CMakeFiles/gorder_order.dir/parallel_gorder.cpp.o.d"
  "CMakeFiles/gorder_order.dir/rcm.cpp.o"
  "CMakeFiles/gorder_order.dir/rcm.cpp.o.d"
  "CMakeFiles/gorder_order.dir/slashburn.cpp.o"
  "CMakeFiles/gorder_order.dir/slashburn.cpp.o.d"
  "CMakeFiles/gorder_order.dir/unit_heap.cpp.o"
  "CMakeFiles/gorder_order.dir/unit_heap.cpp.o.d"
  "libgorder_order.a"
  "libgorder_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
