file(REMOVE_RECURSE
  "libgorder_order.a"
)
