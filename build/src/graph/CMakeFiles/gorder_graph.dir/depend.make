# Empty dependencies file for gorder_graph.
# This may be replaced when dependencies are built.
