file(REMOVE_RECURSE
  "CMakeFiles/gorder_graph.dir/dynamic_graph.cpp.o"
  "CMakeFiles/gorder_graph.dir/dynamic_graph.cpp.o.d"
  "CMakeFiles/gorder_graph.dir/edgelist_io.cpp.o"
  "CMakeFiles/gorder_graph.dir/edgelist_io.cpp.o.d"
  "CMakeFiles/gorder_graph.dir/graph.cpp.o"
  "CMakeFiles/gorder_graph.dir/graph.cpp.o.d"
  "CMakeFiles/gorder_graph.dir/locality_profile.cpp.o"
  "CMakeFiles/gorder_graph.dir/locality_profile.cpp.o.d"
  "CMakeFiles/gorder_graph.dir/stats.cpp.o"
  "CMakeFiles/gorder_graph.dir/stats.cpp.o.d"
  "CMakeFiles/gorder_graph.dir/subgraph.cpp.o"
  "CMakeFiles/gorder_graph.dir/subgraph.cpp.o.d"
  "libgorder_graph.a"
  "libgorder_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
