
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dynamic_graph.cpp" "src/graph/CMakeFiles/gorder_graph.dir/dynamic_graph.cpp.o" "gcc" "src/graph/CMakeFiles/gorder_graph.dir/dynamic_graph.cpp.o.d"
  "/root/repo/src/graph/edgelist_io.cpp" "src/graph/CMakeFiles/gorder_graph.dir/edgelist_io.cpp.o" "gcc" "src/graph/CMakeFiles/gorder_graph.dir/edgelist_io.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/gorder_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/gorder_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/locality_profile.cpp" "src/graph/CMakeFiles/gorder_graph.dir/locality_profile.cpp.o" "gcc" "src/graph/CMakeFiles/gorder_graph.dir/locality_profile.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/gorder_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/gorder_graph.dir/stats.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/gorder_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/gorder_graph.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
