file(REMOVE_RECURSE
  "libgorder_graph.a"
)
