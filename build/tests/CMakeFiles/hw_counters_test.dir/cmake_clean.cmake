file(REMOVE_RECURSE
  "CMakeFiles/hw_counters_test.dir/hw_counters_test.cpp.o"
  "CMakeFiles/hw_counters_test.dir/hw_counters_test.cpp.o.d"
  "hw_counters_test"
  "hw_counters_test.pdb"
  "hw_counters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
