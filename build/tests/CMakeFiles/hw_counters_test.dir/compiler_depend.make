# Empty compiler generated dependencies file for hw_counters_test.
# This may be replaced when dependencies are built.
