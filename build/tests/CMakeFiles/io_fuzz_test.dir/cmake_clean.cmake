file(REMOVE_RECURSE
  "CMakeFiles/io_fuzz_test.dir/io_fuzz_test.cpp.o"
  "CMakeFiles/io_fuzz_test.dir/io_fuzz_test.cpp.o.d"
  "io_fuzz_test"
  "io_fuzz_test.pdb"
  "io_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
