# Empty compiler generated dependencies file for io_fuzz_test.
# This may be replaced when dependencies are built.
