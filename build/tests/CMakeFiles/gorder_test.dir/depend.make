# Empty dependencies file for gorder_test.
# This may be replaced when dependencies are built.
