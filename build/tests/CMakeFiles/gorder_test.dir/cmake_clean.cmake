file(REMOVE_RECURSE
  "CMakeFiles/gorder_test.dir/gorder_test.cpp.o"
  "CMakeFiles/gorder_test.dir/gorder_test.cpp.o.d"
  "gorder_test"
  "gorder_test.pdb"
  "gorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
