file(REMOVE_RECURSE
  "CMakeFiles/degree_grouping_test.dir/degree_grouping_test.cpp.o"
  "CMakeFiles/degree_grouping_test.dir/degree_grouping_test.cpp.o.d"
  "degree_grouping_test"
  "degree_grouping_test.pdb"
  "degree_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
