# Empty dependencies file for degree_grouping_test.
# This may be replaced when dependencies are built.
