file(REMOVE_RECURSE
  "CMakeFiles/unit_heap_test.dir/unit_heap_test.cpp.o"
  "CMakeFiles/unit_heap_test.dir/unit_heap_test.cpp.o.d"
  "unit_heap_test"
  "unit_heap_test.pdb"
  "unit_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
