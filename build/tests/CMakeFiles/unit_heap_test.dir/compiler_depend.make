# Empty compiler generated dependencies file for unit_heap_test.
# This may be replaced when dependencies are built.
