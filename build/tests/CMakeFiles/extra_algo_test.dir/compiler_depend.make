# Empty compiler generated dependencies file for extra_algo_test.
# This may be replaced when dependencies are built.
