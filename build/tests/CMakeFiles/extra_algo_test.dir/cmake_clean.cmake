file(REMOVE_RECURSE
  "CMakeFiles/extra_algo_test.dir/extra_algo_test.cpp.o"
  "CMakeFiles/extra_algo_test.dir/extra_algo_test.cpp.o.d"
  "extra_algo_test"
  "extra_algo_test.pdb"
  "extra_algo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_algo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
