file(REMOVE_RECURSE
  "CMakeFiles/dynamic_test.dir/dynamic_test.cpp.o"
  "CMakeFiles/dynamic_test.dir/dynamic_test.cpp.o.d"
  "dynamic_test"
  "dynamic_test.pdb"
  "dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
