file(REMOVE_RECURSE
  "CMakeFiles/subgraph_test.dir/subgraph_test.cpp.o"
  "CMakeFiles/subgraph_test.dir/subgraph_test.cpp.o.d"
  "subgraph_test"
  "subgraph_test.pdb"
  "subgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
