# Empty dependencies file for order_property_test.
# This may be replaced when dependencies are built.
