file(REMOVE_RECURSE
  "CMakeFiles/order_property_test.dir/order_property_test.cpp.o"
  "CMakeFiles/order_property_test.dir/order_property_test.cpp.o.d"
  "order_property_test"
  "order_property_test.pdb"
  "order_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
