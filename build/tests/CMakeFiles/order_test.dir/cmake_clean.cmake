file(REMOVE_RECURSE
  "CMakeFiles/order_test.dir/order_test.cpp.o"
  "CMakeFiles/order_test.dir/order_test.cpp.o.d"
  "order_test"
  "order_test.pdb"
  "order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
