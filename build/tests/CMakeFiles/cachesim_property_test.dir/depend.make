# Empty dependencies file for cachesim_property_test.
# This may be replaced when dependencies are built.
