file(REMOVE_RECURSE
  "CMakeFiles/cachesim_property_test.dir/cachesim_property_test.cpp.o"
  "CMakeFiles/cachesim_property_test.dir/cachesim_property_test.cpp.o.d"
  "cachesim_property_test"
  "cachesim_property_test.pdb"
  "cachesim_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
