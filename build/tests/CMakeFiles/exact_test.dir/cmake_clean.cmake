file(REMOVE_RECURSE
  "CMakeFiles/exact_test.dir/exact_test.cpp.o"
  "CMakeFiles/exact_test.dir/exact_test.cpp.o.d"
  "exact_test"
  "exact_test.pdb"
  "exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
