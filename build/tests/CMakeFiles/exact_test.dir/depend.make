# Empty dependencies file for exact_test.
# This may be replaced when dependencies are built.
