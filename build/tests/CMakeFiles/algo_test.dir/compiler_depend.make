# Empty compiler generated dependencies file for algo_test.
# This may be replaced when dependencies are built.
