file(REMOVE_RECURSE
  "CMakeFiles/table_print_test.dir/table_print_test.cpp.o"
  "CMakeFiles/table_print_test.dir/table_print_test.cpp.o.d"
  "table_print_test"
  "table_print_test.pdb"
  "table_print_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_print_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
