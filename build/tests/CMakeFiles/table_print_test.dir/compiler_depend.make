# Empty compiler generated dependencies file for table_print_test.
# This may be replaced when dependencies are built.
