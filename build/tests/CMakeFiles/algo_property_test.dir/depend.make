# Empty dependencies file for algo_property_test.
# This may be replaced when dependencies are built.
