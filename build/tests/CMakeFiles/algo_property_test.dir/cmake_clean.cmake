file(REMOVE_RECURSE
  "CMakeFiles/algo_property_test.dir/algo_property_test.cpp.o"
  "CMakeFiles/algo_property_test.dir/algo_property_test.cpp.o.d"
  "algo_property_test"
  "algo_property_test.pdb"
  "algo_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
