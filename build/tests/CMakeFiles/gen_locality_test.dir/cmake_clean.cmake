file(REMOVE_RECURSE
  "CMakeFiles/gen_locality_test.dir/gen_locality_test.cpp.o"
  "CMakeFiles/gen_locality_test.dir/gen_locality_test.cpp.o.d"
  "gen_locality_test"
  "gen_locality_test.pdb"
  "gen_locality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
