# Empty dependencies file for gen_locality_test.
# This may be replaced when dependencies are built.
