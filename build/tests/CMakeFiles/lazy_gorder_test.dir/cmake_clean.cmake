file(REMOVE_RECURSE
  "CMakeFiles/lazy_gorder_test.dir/lazy_gorder_test.cpp.o"
  "CMakeFiles/lazy_gorder_test.dir/lazy_gorder_test.cpp.o.d"
  "lazy_gorder_test"
  "lazy_gorder_test.pdb"
  "lazy_gorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_gorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
