# Empty dependencies file for lazy_gorder_test.
# This may be replaced when dependencies are built.
