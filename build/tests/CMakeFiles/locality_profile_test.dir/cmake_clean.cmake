file(REMOVE_RECURSE
  "CMakeFiles/locality_profile_test.dir/locality_profile_test.cpp.o"
  "CMakeFiles/locality_profile_test.dir/locality_profile_test.cpp.o.d"
  "locality_profile_test"
  "locality_profile_test.pdb"
  "locality_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
