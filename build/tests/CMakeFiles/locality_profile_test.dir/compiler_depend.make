# Empty compiler generated dependencies file for locality_profile_test.
# This may be replaced when dependencies are built.
