# Empty compiler generated dependencies file for edgelist_io_test.
# This may be replaced when dependencies are built.
