file(REMOVE_RECURSE
  "CMakeFiles/edgelist_io_test.dir/edgelist_io_test.cpp.o"
  "CMakeFiles/edgelist_io_test.dir/edgelist_io_test.cpp.o.d"
  "edgelist_io_test"
  "edgelist_io_test.pdb"
  "edgelist_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelist_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
