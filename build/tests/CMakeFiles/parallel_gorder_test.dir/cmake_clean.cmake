file(REMOVE_RECURSE
  "CMakeFiles/parallel_gorder_test.dir/parallel_gorder_test.cpp.o"
  "CMakeFiles/parallel_gorder_test.dir/parallel_gorder_test.cpp.o.d"
  "parallel_gorder_test"
  "parallel_gorder_test.pdb"
  "parallel_gorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_gorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
