# Empty dependencies file for parallel_gorder_test.
# This may be replaced when dependencies are built.
