# Empty compiler generated dependencies file for metis_like_test.
# This may be replaced when dependencies are built.
