file(REMOVE_RECURSE
  "CMakeFiles/metis_like_test.dir/metis_like_test.cpp.o"
  "CMakeFiles/metis_like_test.dir/metis_like_test.cpp.o.d"
  "metis_like_test"
  "metis_like_test.pdb"
  "metis_like_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metis_like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
