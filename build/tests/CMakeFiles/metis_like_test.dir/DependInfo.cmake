
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metis_like_test.cpp" "tests/CMakeFiles/metis_like_test.dir/metis_like_test.cpp.o" "gcc" "tests/CMakeFiles/metis_like_test.dir/metis_like_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gorder_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gorder_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/gorder_order.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/gorder_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gorder_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/gorder_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gorder_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorder_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
