# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/edgelist_io_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/unit_heap_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/gorder_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/metis_like_test[1]_include.cmake")
include("/root/repo/build/tests/degree_grouping_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/extra_algo_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_property_test[1]_include.cmake")
include("/root/repo/build/tests/hw_counters_test[1]_include.cmake")
include("/root/repo/build/tests/locality_profile_test[1]_include.cmake")
include("/root/repo/build/tests/lazy_gorder_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_gorder_test[1]_include.cmake")
include("/root/repo/build/tests/subgraph_test[1]_include.cmake")
include("/root/repo/build/tests/order_property_test[1]_include.cmake")
include("/root/repo/build/tests/algo_property_test[1]_include.cmake")
include("/root/repo/build/tests/exact_test[1]_include.cmake")
include("/root/repo/build/tests/table_print_test[1]_include.cmake")
include("/root/repo/build/tests/io_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/gen_locality_test[1]_include.cmake")
