file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_geometry.dir/ablation_cache_geometry.cpp.o"
  "CMakeFiles/ablation_cache_geometry.dir/ablation_cache_geometry.cpp.o.d"
  "ablation_cache_geometry"
  "ablation_cache_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
