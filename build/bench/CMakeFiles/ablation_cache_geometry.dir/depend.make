# Empty dependencies file for ablation_cache_geometry.
# This may be replaced when dependencies are built.
