file(REMOVE_RECURSE
  "CMakeFiles/ext_compression.dir/ext_compression.cpp.o"
  "CMakeFiles/ext_compression.dir/ext_compression.cpp.o.d"
  "ext_compression"
  "ext_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
