# Empty dependencies file for ext_compression.
# This may be replaced when dependencies are built.
