# Empty dependencies file for fig1_cache_stall.
# This may be replaced when dependencies are built.
