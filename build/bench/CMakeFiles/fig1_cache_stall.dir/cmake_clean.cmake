file(REMOVE_RECURSE
  "CMakeFiles/fig1_cache_stall.dir/fig1_cache_stall.cpp.o"
  "CMakeFiles/fig1_cache_stall.dir/fig1_cache_stall.cpp.o.d"
  "fig1_cache_stall"
  "fig1_cache_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cache_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
