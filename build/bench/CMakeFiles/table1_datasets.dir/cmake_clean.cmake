file(REMOVE_RECURSE
  "CMakeFiles/table1_datasets.dir/table1_datasets.cpp.o"
  "CMakeFiles/table1_datasets.dir/table1_datasets.cpp.o.d"
  "table1_datasets"
  "table1_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
