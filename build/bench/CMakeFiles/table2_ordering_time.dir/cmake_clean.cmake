file(REMOVE_RECURSE
  "CMakeFiles/table2_ordering_time.dir/table2_ordering_time.cpp.o"
  "CMakeFiles/table2_ordering_time.dir/table2_ordering_time.cpp.o.d"
  "table2_ordering_time"
  "table2_ordering_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ordering_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
