# Empty compiler generated dependencies file for table2_ordering_time.
# This may be replaced when dependencies are built.
