# Empty dependencies file for table3_cache_stats.
# This may be replaced when dependencies are built.
