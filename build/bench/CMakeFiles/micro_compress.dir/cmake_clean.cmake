file(REMOVE_RECURSE
  "CMakeFiles/micro_compress.dir/micro_compress.cpp.o"
  "CMakeFiles/micro_compress.dir/micro_compress.cpp.o.d"
  "micro_compress"
  "micro_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
