# Empty dependencies file for micro_compress.
# This may be replaced when dependencies are built.
