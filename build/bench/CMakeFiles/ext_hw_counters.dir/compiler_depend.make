# Empty compiler generated dependencies file for ext_hw_counters.
# This may be replaced when dependencies are built.
