file(REMOVE_RECURSE
  "CMakeFiles/ext_hw_counters.dir/ext_hw_counters.cpp.o"
  "CMakeFiles/ext_hw_counters.dir/ext_hw_counters.cpp.o.d"
  "ext_hw_counters"
  "ext_hw_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hw_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
