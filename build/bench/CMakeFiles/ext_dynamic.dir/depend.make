# Empty dependencies file for ext_dynamic.
# This may be replaced when dependencies are built.
