file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic.dir/ext_dynamic.cpp.o"
  "CMakeFiles/ext_dynamic.dir/ext_dynamic.cpp.o.d"
  "ext_dynamic"
  "ext_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
