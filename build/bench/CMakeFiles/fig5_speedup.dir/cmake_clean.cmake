file(REMOVE_RECURSE
  "CMakeFiles/fig5_speedup.dir/fig5_speedup.cpp.o"
  "CMakeFiles/fig5_speedup.dir/fig5_speedup.cpp.o.d"
  "fig5_speedup"
  "fig5_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
