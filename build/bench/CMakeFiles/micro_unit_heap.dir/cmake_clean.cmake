file(REMOVE_RECURSE
  "CMakeFiles/micro_unit_heap.dir/micro_unit_heap.cpp.o"
  "CMakeFiles/micro_unit_heap.dir/micro_unit_heap.cpp.o.d"
  "micro_unit_heap"
  "micro_unit_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_unit_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
