# Empty compiler generated dependencies file for micro_unit_heap.
# This may be replaced when dependencies are built.
