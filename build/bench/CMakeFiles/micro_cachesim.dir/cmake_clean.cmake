file(REMOVE_RECURSE
  "CMakeFiles/micro_cachesim.dir/micro_cachesim.cpp.o"
  "CMakeFiles/micro_cachesim.dir/micro_cachesim.cpp.o.d"
  "micro_cachesim"
  "micro_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
