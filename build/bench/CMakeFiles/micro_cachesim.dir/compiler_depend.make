# Empty compiler generated dependencies file for micro_cachesim.
# This may be replaced when dependencies are built.
