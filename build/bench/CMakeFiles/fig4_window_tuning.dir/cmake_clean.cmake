file(REMOVE_RECURSE
  "CMakeFiles/fig4_window_tuning.dir/fig4_window_tuning.cpp.o"
  "CMakeFiles/fig4_window_tuning.dir/fig4_window_tuning.cpp.o.d"
  "fig4_window_tuning"
  "fig4_window_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_window_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
