# Empty compiler generated dependencies file for fig4_window_tuning.
# This may be replaced when dependencies are built.
