# Empty dependencies file for ext_workloads.
# This may be replaced when dependencies are built.
