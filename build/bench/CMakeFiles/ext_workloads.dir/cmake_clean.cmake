file(REMOVE_RECURSE
  "CMakeFiles/ext_workloads.dir/ext_workloads.cpp.o"
  "CMakeFiles/ext_workloads.dir/ext_workloads.cpp.o.d"
  "ext_workloads"
  "ext_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
