file(REMOVE_RECURSE
  "CMakeFiles/micro_orderings.dir/micro_orderings.cpp.o"
  "CMakeFiles/micro_orderings.dir/micro_orderings.cpp.o.d"
  "micro_orderings"
  "micro_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
