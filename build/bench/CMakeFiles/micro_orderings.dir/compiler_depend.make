# Empty compiler generated dependencies file for micro_orderings.
# This may be replaced when dependencies are built.
