# Empty compiler generated dependencies file for ablation_gorder_variants.
# This may be replaced when dependencies are built.
