file(REMOVE_RECURSE
  "CMakeFiles/ablation_gorder_variants.dir/ablation_gorder_variants.cpp.o"
  "CMakeFiles/ablation_gorder_variants.dir/ablation_gorder_variants.cpp.o.d"
  "ablation_gorder_variants"
  "ablation_gorder_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gorder_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
