# Empty dependencies file for fig6_ranking.
# This may be replaced when dependencies are built.
