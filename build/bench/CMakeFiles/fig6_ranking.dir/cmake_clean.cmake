file(REMOVE_RECURSE
  "CMakeFiles/fig6_ranking.dir/fig6_ranking.cpp.o"
  "CMakeFiles/fig6_ranking.dir/fig6_ranking.cpp.o.d"
  "fig6_ranking"
  "fig6_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
