file(REMOVE_RECURSE
  "CMakeFiles/fig3_annealing_tuning.dir/fig3_annealing_tuning.cpp.o"
  "CMakeFiles/fig3_annealing_tuning.dir/fig3_annealing_tuning.cpp.o.d"
  "fig3_annealing_tuning"
  "fig3_annealing_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_annealing_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
