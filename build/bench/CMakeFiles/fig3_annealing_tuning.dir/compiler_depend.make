# Empty compiler generated dependencies file for fig3_annealing_tuning.
# This may be replaced when dependencies are built.
