# Empty compiler generated dependencies file for cache_explorer.
# This may be replaced when dependencies are built.
