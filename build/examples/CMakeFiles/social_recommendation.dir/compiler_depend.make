# Empty compiler generated dependencies file for social_recommendation.
# This may be replaced when dependencies are built.
