file(REMOVE_RECURSE
  "CMakeFiles/social_recommendation.dir/social_recommendation.cpp.o"
  "CMakeFiles/social_recommendation.dir/social_recommendation.cpp.o.d"
  "social_recommendation"
  "social_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
