# Empty compiler generated dependencies file for web_graph_compression.
# This may be replaced when dependencies are built.
