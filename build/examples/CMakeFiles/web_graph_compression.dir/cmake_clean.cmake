file(REMOVE_RECURSE
  "CMakeFiles/web_graph_compression.dir/web_graph_compression.cpp.o"
  "CMakeFiles/web_graph_compression.dir/web_graph_compression.cpp.o.d"
  "web_graph_compression"
  "web_graph_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_graph_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
