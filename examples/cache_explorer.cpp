// Scenario: capacity planning with the cache simulator.
//
// Given a workload and a graph, at what size does ordering start to
// matter, and how big a cache do you need before it stops mattering?
// This example sweeps dataset scale against the simulated hierarchy and
// prints the PageRank miss-rate gap between Random and Gorder — the
// "ordering opportunity" — at each point. It reproduces, in one table,
// the intuition behind the paper: the opportunity appears exactly when
// per-node state outgrows the caches.

#include <cstdio>

#include "core/gorder_lib.h"

int main(int argc, char** argv) {
  using namespace gorder;
  Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "wiki");

  std::printf(
      "cache explorer: PageRank miss rates, Random vs Gorder, dataset=%s\n"
      "(simulated hierarchy: L1 8K / L2 32K / L3 256K, 64B lines)\n\n",
      dataset.c_str());
  std::printf("%8s %8s %10s | %8s %8s | %8s %8s | %12s\n", "scale", "nodes",
              "state(KB)", "rnd L1mr", "go L1mr", "rnd mem%", "go mem%",
              "opportunity");

  for (double scale : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6}) {
    Graph g = gen::MakeDataset(dataset, scale);
    auto run = [&](order::Method m) {
      auto perm = order::ComputeOrdering(g, m, {});
      Graph h = g.Relabel(perm);
      cachesim::CacheHierarchy caches(
          cachesim::CacheHierarchyConfig::ScaledBench());
      algo::PageRankTraced(h, 2, 0.85, caches);
      return caches.stats();
    };
    auto random = run(order::Method::kRandom);
    auto gorder = run(order::Method::kGorder);
    double state_kb = g.NumNodes() * 8.0 / 1024.0;  // one contrib array
    double opportunity =
        (random.stall_cycles - gorder.stall_cycles) /
        (random.compute_cycles + random.stall_cycles);
    std::printf("%8.2f %8u %10.0f | %7.1f%% %7.1f%% | %7.2f%% %7.2f%% | "
                "%10.1f%%\n",
                scale, g.NumNodes(), state_kb,
                100 * random.L1MissRate(), 100 * gorder.L1MissRate(),
                100 * random.OverallMissRate(),
                100 * gorder.OverallMissRate(), 100 * opportunity);
  }
  std::printf(
      "\nReading: while per-node state fits in L1/L2 the two orderings\n"
      "are indistinguishable; once it spills L3 the stall-cycle gap\n"
      "(\"opportunity\") opens — that is the regime the paper's datasets\n"
      "occupy on real hardware, and where Gorder pays off.\n");
  return 0;
}
