// Scenario: node orderings as a preprocessing step for graph compression.
//
// The paper's discussion (§4 of the replication) points out that gap-based
// compression schemes (WebGraph, Boldi & Vigna 2004) store each adjacency
// list as deltas between consecutive neighbour ids, so an ordering that
// gives neighbours nearby ids directly shrinks the encoding. A good proxy
// for the encoded size is sum(log2 gap) over edges — exactly the MinLogA
// energy this library computes.
//
// This example estimates bits-per-edge for a web graph under every
// ordering and shows which orderings double as compression boosters.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/gorder_lib.h"

namespace {

// Elias-gamma-style cost model: encoding a gap g >= 1 costs about
// 2*floor(log2 g) + 1 bits; the first neighbour of each list is encoded
// against the source id.
double EstimateBitsPerEdge(const gorder::Graph& g) {
  using gorder::NodeId;
  double bits = 0.0;
  std::uint64_t edges = 0;
  std::vector<NodeId> nbrs;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    auto span = g.OutNeighbors(v);
    if (span.empty()) continue;
    nbrs.assign(span.begin(), span.end());
    std::sort(nbrs.begin(), nbrs.end());
    NodeId prev = v;
    for (NodeId w : nbrs) {
      std::uint64_t gap =
          1 + (w > prev ? w - prev : prev - w);  // signed-gap magnitude
      bits += 2 * std::floor(std::log2(static_cast<double>(gap))) + 2;
      prev = w;
      ++edges;
    }
  }
  return edges == 0 ? 0.0 : bits / static_cast<double>(edges);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gorder;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const std::string dataset = flags.GetString("dataset", "sdarc");

  Graph g = gen::MakeDataset(dataset, scale);
  std::printf("web graph '%s': %u nodes, %llu edges\n", dataset.c_str(),
              g.NumNodes(), static_cast<unsigned long long>(g.NumEdges()));
  std::printf("%-12s %14s %16s %14s\n", "ordering", "bits/edge",
              "sum log2 gaps", "order time");

  for (order::Method m : order::AllMethods()) {
    order::OrderingParams params;
    Timer t;
    auto perm = order::ComputeOrdering(g, m, params);
    double order_s = t.Seconds();
    Graph h = g.Relabel(perm);
    std::printf("%-12s %14.2f %16.3g %13.2fs\n",
                order::MethodName(m).c_str(), EstimateBitsPerEdge(h),
                LogArrangementCost(h), order_s);
  }
  std::printf(
      "\nReading: lower bits/edge = better compression. Locality-seeking\n"
      "orderings (Gorder, RCM, MinLogA) compress far better than Random;\n"
      "the same property that reduces cache misses reduces gap entropy.\n");
  return 0;
}
