// Scenario: an online social-recommendation service.
//
// A "people you may know" backend runs the same primitives over and over:
// friends-of-friends expansions (the NQ access pattern), influence scores
// (PageRank) and community cores (K-core). Reordering the graph once
// makes every subsequent query cheaper — but computing a good ordering
// costs time. This example quantifies the trade-off the paper's §4
// discussion (and Balaji & Lucia, IISWC 2018) raises: after how many
// query batches does each ordering pay for itself?

#include <cstdio>

#include "core/gorder_lib.h"

namespace {

// One service "batch": a FoF expansion over all users, one PR refresh,
// one K-core refresh. Cost is the modelled execution time (simulated
// cache cycles at 2.6 GHz): at this demo scale the graph fits in the
// host's physical caches, so wall-clock cannot show the effect that
// dominates at production scale — the simulator restores that regime
// (see cache_explorer for the sweep that demonstrates the crossover).
double RunBatch(const gorder::Graph& g) {
  gorder::cachesim::CacheHierarchy caches(
      gorder::cachesim::CacheHierarchyConfig::ScaledBench());
  auto nq = gorder::algo::NqTraced(g, caches);
  auto pr = gorder::algo::PageRankTraced(g, 10, 0.85, caches);
  auto core = gorder::algo::KCoreTraced(g, caches);
  volatile double sink =
      static_cast<double>(nq.checksum) + pr.total_mass + core.max_core;
  (void)sink;
  const double kHz = 2.6e9;
  return (caches.stats().compute_cycles + caches.stats().stall_cycles) /
         kHz;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gorder;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int batches = static_cast<int>(flags.GetInt("batches", 5));

  Graph g = gen::MakeDataset("pokec", scale);
  std::printf("social graph: %u users, %llu follows\n", g.NumNodes(),
              static_cast<unsigned long long>(g.NumEdges()));

  double baseline = 0.0;
  for (int b = 0; b < batches; ++b) baseline += RunBatch(g);
  baseline /= batches;
  std::printf("baseline batch time (original order, modelled): %.1fms\n\n",
              baseline * 1e3);

  std::printf("%-12s %12s %12s %10s %18s\n", "ordering", "order cost",
              "batch time", "speedup", "break-even batches");
  for (order::Method m :
       {order::Method::kInDegSort, order::Method::kRcm,
        order::Method::kChDfs, order::Method::kSlashBurn,
        order::Method::kGorder}) {
    Timer t;
    auto perm = order::ComputeOrdering(g, m, {});
    double order_cost = t.Seconds();
    Graph h = g.Relabel(perm);
    double batch = 0.0;
    for (int b = 0; b < batches; ++b) batch += RunBatch(h);
    batch /= batches;
    double saved = baseline - batch;
    std::string break_even =
        saved > 1e-6
            ? std::to_string(static_cast<long>(order_cost / saved) + 1)
            : "never";
    std::printf("%-12s %11.2fs %10.1fms %9.2fx %18s\n",
                order::MethodName(m).c_str(), order_cost, batch * 1e3,
                baseline / batch, break_even.c_str());
  }
  std::printf(
      "\nReading: traversal orderings (RCM, ChDFS) are free and pay back\n"
      "immediately; pure degree sorts can even hurt on community-heavy\n"
      "social graphs; Gorder gives the largest per-batch speedup but\n"
      "needs a longer-lived service to amortise its construction — the\n"
      "paper's own caveat (\"only amortised if algorithms run thousands\n"
      "of times\" at full scale).\n");
  return 0;
}
