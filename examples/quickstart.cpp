// Quickstart: the 60-second tour of the library.
//
//   1. obtain a graph (generate one here; ReadEdgeList works for files),
//   2. compute the Gorder permutation,
//   3. relabel the graph,
//   4. run an algorithm and see the speedup + cache effect.
//
// Build & run:  ./examples/quickstart [--edges=<path>]

#include <cstdio>

#include "core/gorder_lib.h"

int main(int argc, char** argv) {
  using namespace gorder;
  Flags flags(argc, argv);

  // 1. A graph: from file if given, otherwise a synthetic social network.
  Graph graph;
  std::string path = flags.GetString("edges", "");
  if (!path.empty()) {
    IoResult r = ReadEdgeList(path, &graph);
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
  } else {
    graph = gen::MakeDataset("flickr", 0.5);
  }
  std::printf("graph: %u nodes, %llu edges\n", graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // 2. Compute the Gorder permutation (window w = 5, the paper default).
  order::OrderingParams params;
  params.window = 5;
  Timer order_timer;
  std::vector<NodeId> perm =
      order::ComputeOrdering(graph, order::Method::kGorder, params);
  std::printf("gorder computed in %.3fs\n", order_timer.Seconds());

  // 3. Relabel: node v of the input becomes node perm[v].
  Graph fast = graph.Relabel(perm);

  // 4. PageRank on both versions.
  const int iters = 30;
  Timer t_before;
  auto pr_before = algo::PageRank(graph, iters);
  double before = t_before.Seconds();
  Timer t_after;
  auto pr_after = algo::PageRank(fast, iters);
  double after = t_after.Seconds();
  std::printf("PageRank(%d iters): original order %.3fs, Gorder %.3fs "
              "(%.0f%% faster)\n",
              iters, before, after, 100.0 * (1.0 - after / before));

  // Scores are the same ranking, just permuted.
  NodeId top_before = 0, top_after = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (pr_before.rank[v] > pr_before.rank[top_before]) top_before = v;
    if (pr_after.rank[v] > pr_after.rank[top_after]) top_after = v;
  }
  std::printf("top-ranked node: %u (maps to %u after relabel) — %s\n",
              top_before, perm[top_before],
              perm[top_before] == top_after ? "consistent" : "INCONSISTENT");

  // Why it is faster: replay the same workload through the simulated
  // cache hierarchy and compare miss rates.
  auto trace = [&](const Graph& g) {
    cachesim::CacheHierarchy caches(
        cachesim::CacheHierarchyConfig::ScaledBench());
    algo::PageRankTraced(g, 2, 0.85, caches);
    return caches.stats();
  };
  auto s_before = trace(graph);
  auto s_after = trace(fast);
  std::printf("simulated L1 miss rate: %.1f%% -> %.1f%%; "
              "memory miss rate: %.2f%% -> %.2f%%\n",
              100 * s_before.L1MissRate(), 100 * s_after.L1MissRate(),
              100 * s_before.OverallMissRate(),
              100 * s_after.OverallMissRate());
  return 0;
}
