// Concurrency differential: N concurrent clients hammering a live
// server must receive results BIT-IDENTICAL to direct library calls —
// at 1, 2 and 8 server threads, and across an artifact hot-swap that
// republishes a different graph mid-stream.
//
// Every response is validated against the graph snapshot selected by
// the *response's* epoch tag (never by wall-clock guesses about when
// the swap landed), so the test is immune to scheduling races while
// still proving that no response ever mixes snapshots.
//
// Each client thread additionally folds the deterministic phases of its
// reply stream into a fingerprint; fingerprints must be identical
// across the three server-thread configurations — the "server
// parallelism is unobservable" claim in one comparison.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder::serve {
namespace {

constexpr int kClientThreads = 8;
constexpr int kPhase1Queries = 30;  // before the swap is even scheduled
constexpr int kPhase2Queries = 30;  // racing the swap
constexpr int kPhase3Queries = 5;   // provably after the swap

struct SharedState {
  const Graph* epoch1 = nullptr;
  const Graph* epoch2 = nullptr;
  std::atomic<int> ready{0};
  std::atomic<bool> swapped{false};
  std::atomic<bool> failed{false};
};

const Graph* GraphForEpoch(const SharedState& state, std::uint64_t epoch) {
  if (epoch == 1) return state.epoch1;
  if (epoch == 2) return state.epoch2;
  return nullptr;
}

/// Issues one rng-driven query, validates the reply bit-exactly against
/// a direct library call on the snapshot named by the reply's epoch,
/// and (when `blob` is non-null) appends the reply bytes to the
/// fingerprint stream.
void OneQuery(Client& client, Rng& rng, const SharedState& state,
              std::string* blob) {
  const std::uint64_t die = rng.Uniform(6);
  // Sample nodes valid in both snapshots so a reply is never a
  // kBadRequest just because the swap landed between send and execute.
  const NodeId max_node =
      std::min(state.epoch1->NumNodes(), state.epoch2->NumNodes());
  const NodeId node = static_cast<NodeId>(rng.Uniform(max_node));

  if (die == 0) {
    DegreeReply r = client.Degree(node);
    ASSERT_TRUE(r.ok()) << r.error;
    const Graph* g = GraphForEpoch(state, r.epoch);
    ASSERT_NE(g, nullptr) << "epoch " << r.epoch;
    EXPECT_EQ(r.out_degree, g->OutDegree(node));
    EXPECT_EQ(r.in_degree, g->InDegree(node));
    if (blob) {
      PutU32(blob, r.out_degree);
      PutU32(blob, r.in_degree);
    }
  } else if (die == 1) {
    NeighborsReply r = client.Neighbors(node);
    ASSERT_TRUE(r.ok()) << r.error;
    const Graph* g = GraphForEpoch(state, r.epoch);
    ASSERT_NE(g, nullptr) << "epoch " << r.epoch;
    auto expect = g->OutNeighbors(node);
    ASSERT_EQ(r.neighbors.size(), expect.size());
    EXPECT_TRUE(
        std::equal(expect.begin(), expect.end(), r.neighbors.begin()));
    if (blob) blob->append(reinterpret_cast<const char*>(r.neighbors.data()),
                           r.neighbors.size() * sizeof(NodeId));
  } else if (die == 2) {
    BfsReply r = client.Bfs(node);
    ASSERT_TRUE(r.ok()) << r.error;
    const Graph* g = GraphForEpoch(state, r.epoch);
    ASSERT_NE(g, nullptr) << "epoch " << r.epoch;
    algo::BfsResult local = algo::Bfs(*g, node);
    EXPECT_EQ(r.num_reached, local.num_reached);
    EXPECT_EQ(r.sum_levels, local.sum_levels);
    EXPECT_EQ(r.level_hash, HashVector64(local.level));
    if (blob) PutU64(blob, r.level_hash);
  } else if (die == 3) {
    SpReply r = client.Sp(node);
    ASSERT_TRUE(r.ok()) << r.error;
    const Graph* g = GraphForEpoch(state, r.epoch);
    ASSERT_NE(g, nullptr) << "epoch " << r.epoch;
    algo::SpResult local = algo::Sp(*g, node);
    EXPECT_EQ(r.num_reached, local.num_reached);
    EXPECT_EQ(r.max_dist, local.max_dist);
    EXPECT_EQ(r.num_rounds, local.num_rounds);
    EXPECT_EQ(r.dist_hash, HashVector64(local.dist));
    if (blob) PutU64(blob, r.dist_hash);
  } else if (die == 4) {
    PageRankTopKReply r = client.PageRankTopK(5, 3);
    ASSERT_TRUE(r.ok()) << r.error;
    const Graph* g = GraphForEpoch(state, r.epoch);
    ASSERT_NE(g, nullptr) << "epoch " << r.epoch;
    algo::PageRankResult local = algo::PageRank(*g, 3);
    EXPECT_EQ(r.total_mass, local.total_mass);  // bit-identical
    for (const auto& [v, rank] : r.top) {
      EXPECT_EQ(rank, local.rank[v]) << "node " << v;
    }
    if (blob) {
      for (const auto& [v, rank] : r.top) {
        PutU32(blob, v);
        PutF64(blob, rank);
      }
    }
  } else {
    // kOrder runs on the *uploaded* graph — epoch-independent, so the
    // expected permutation is fixed regardless of swap timing.
    const NodeId n = 24;
    std::vector<Edge> edges;
    for (NodeId v = 1; v < n; ++v) edges.push_back({v / 2, v});
    edges.push_back({static_cast<NodeId>(rng.Uniform(n)),
                     static_cast<NodeId>(rng.Uniform(n))});
    const std::uint64_t seed = rng.NextU64();
    OrderReply r = client.Order("BOBA", seed, n, edges);
    ASSERT_TRUE(r.ok()) << r.error;
    order::Method method{};
    for (order::Method m : order::AllMethodsExtended()) {
      if (std::string(order::MethodName(m)) == "BOBA") method = m;
    }
    Graph uploaded = Graph::FromEdges(n, edges);
    order::OrderingParams params;
    params.seed = seed;
    EXPECT_EQ(r.perm, order::ComputeOrdering(uploaded, method, params));
    if (blob) blob->append(reinterpret_cast<const char*>(r.perm.data()),
                           r.perm.size() * sizeof(NodeId));
  }
}

void ClientThread(const util::NetAddress& addr, int index,
                  SharedState* state, std::uint64_t* fingerprint) {
  Client client;
  IoResult c = client.Connect(addr, 60.0);
  if (!c.ok) {
    ADD_FAILURE() << "connect: " << c.error;
    state->failed.store(true);
    return;
  }
  // Seeded by thread index ONLY (not by server-thread count), so all
  // three configurations issue identical query streams.
  Rng rng(0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(index));
  std::string blob;

  for (int q = 0; q < kPhase1Queries; ++q) {
    OneQuery(client, rng, *state, &blob);
    if (::testing::Test::HasFatalFailure()) {
      state->failed.store(true);
      return;
    }
  }
  state->ready.fetch_add(1);
  // Phase 2 races the publish; replies may carry either epoch and the
  // epoch tag decides what they are checked against.
  for (int q = 0; q < kPhase2Queries; ++q) {
    OneQuery(client, rng, *state, nullptr);
    if (::testing::Test::HasFatalFailure()) {
      state->failed.store(true);
      return;
    }
  }
  while (!state->swapped.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: the publish happened-before `swapped`, so every further
  // reply must be served by (and tagged with) epoch 2.
  for (int q = 0; q < kPhase3Queries; ++q) {
    Reply probe = client.Ping();
    ASSERT_TRUE(probe.ok()) << probe.error;
    EXPECT_EQ(probe.epoch, 2u);
    OneQuery(client, rng, *state, &blob);
    if (::testing::Test::HasFatalFailure()) {
      state->failed.store(true);
      return;
    }
  }
  *fingerprint = HashBytes64(blob.data(), blob.size());
}

/// Runs the full differential battery at `serve_threads`; returns the
/// per-client fingerprints of the deterministic phases.
std::vector<std::uint64_t> RunConfig(int serve_threads, const Graph& a,
                                     const Graph& b) {
  const std::string sock = "/tmp/gorder_serve_diff_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(serve_threads) + ".sock";
  util::NetAddress addr;
  addr.is_unix = true;
  addr.path = sock;
  ServerOptions opts;
  opts.listen = addr;
  opts.serve_threads = serve_threads;
  opts.queue_capacity = 256;
  Server server(a.Clone(), opts);
  IoResult r = server.Start();
  EXPECT_TRUE(r.ok) << r.error;
  if (!r.ok) return {};

  SharedState state;
  state.epoch1 = &a;
  state.epoch2 = &b;
  std::vector<std::uint64_t> fingerprints(kClientThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClientThreads);
    for (int i = 0; i < kClientThreads; ++i) {
      threads.emplace_back(ClientThread, addr, i, &state, &fingerprints[i]);
    }
    // Hot-swap once every client is provably mid-stream.
    while (state.ready.load() < kClientThreads && !state.failed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::uint64_t epoch = server.Publish(b.Clone());
    EXPECT_EQ(epoch, 2u);
    state.swapped.store(true);
    for (auto& t : threads) t.join();
  }
  server.Stop();
  EXPECT_FALSE(state.failed.load());
  return fingerprints;
}

TEST(ServeDifferential, BitIdenticalAcrossThreadsAndHotSwap) {
  // Two same-sized but differently-wired snapshots: a swap that went
  // unnoticed would immediately produce wrong neighbours/hashes.
  Graph a = gen::MakeDataset("epinion", 0.05, 1);
  Graph b = gen::MakeDataset("epinion", 0.05, 2);
  ASSERT_GT(a.NumNodes(), 0u);
  ASSERT_GT(b.NumNodes(), 0u);

  const std::vector<std::uint64_t> at1 = RunConfig(1, a, b);
  const std::vector<std::uint64_t> at2 = RunConfig(2, a, b);
  const std::vector<std::uint64_t> at8 = RunConfig(8, a, b);
  ASSERT_EQ(at1.size(), static_cast<std::size_t>(kClientThreads));

  // Server parallelism must be unobservable in the results.
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

}  // namespace
}  // namespace gorder::serve
