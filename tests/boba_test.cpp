#include "order/boba.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/datasets.h"
#include "graph/graph.h"
#include "util/parallel.h"

namespace gorder::order {
namespace {

/// The ordering BOBA promises: read the CSR out-edge list as a flat
/// stream of (source, destination) pairs and rank nodes by first
/// appearance, isolated nodes last in ascending id.
std::vector<NodeId> ReferenceFirstAppearance(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<NodeId> perm(n, kInvalidNode);
  NodeId rank = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w : g.OutNeighbors(u)) {
      if (perm[u] == kInvalidNode) perm[u] = rank++;
      if (perm[w] == kInvalidNode) perm[w] = rank++;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (perm[v] == kInvalidNode) perm[v] = rank++;
  }
  return perm;
}

TEST(BobaTest, MatchesSerialStreamScan) {
  // The parallel min-reduction must reproduce the serial stream scan
  // exactly — the positions it minimises are the stream positions.
  for (const char* name : {"epinion", "wiki", "flickr"}) {
    Graph g = gen::MakeDataset(name, 0.1);
    EXPECT_EQ(BobaOrder(g), ReferenceFirstAppearance(g)) << name;
  }
}

TEST(BobaTest, ValidPermutationWithIsolatedNodesLast) {
  Graph::Builder b;
  b.AddEdge(3, 5);
  b.AddEdge(5, 3);
  b.AddEdge(7, 2);
  b.ReserveNodes(10);
  Graph g = b.Build();
  auto perm = BobaOrder(g);
  CheckPermutation(perm, g.NumNodes());
  // Stream: (3,5) (5,3) (7,2) -> first appearances 3, 5, 7, 2; the
  // untouched nodes follow in ascending id.
  EXPECT_EQ(perm[3], 0u);
  EXPECT_EQ(perm[5], 1u);
  EXPECT_EQ(perm[7], 2u);
  EXPECT_EQ(perm[2], 3u);
  EXPECT_EQ(perm[0], 4u);
  EXPECT_EQ(perm[1], 5u);
  EXPECT_EQ(perm[4], 6u);
  EXPECT_EQ(perm[6], 7u);
  EXPECT_EQ(perm[8], 8u);
  EXPECT_EQ(perm[9], 9u);
}

TEST(BobaTest, EmptyGraphSafe) {
  Graph empty;
  EXPECT_TRUE(BobaOrder(empty).empty());
}

TEST(BobaTest, BitIdenticalAcrossThreadCounts) {
  Graph g = gen::MakeDataset("wiki", 0.1);
  const int prev = NumThreads();
  SetNumThreads(1);
  auto one = BobaOrder(g);
  SetNumThreads(2);
  auto two = BobaOrder(g);
  SetNumThreads(8);
  auto eight = BobaOrder(g);
  SetNumThreads(prev);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace gorder::order
