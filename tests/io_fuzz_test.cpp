// Randomised robustness tests: malformed edge-list inputs must produce
// clean errors (never crashes), and DynamicGraph must agree with a naive
// reference under random mutation sequences.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "graph/dynamic_graph.h"
#include "graph/edgelist_io.h"
#include "util/rng.h"

namespace gorder {
namespace {

class MalformedInputTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedInputTest, RejectedWithoutCrashing) {
  auto path = std::filesystem::temp_directory_path() / "gorder_fuzz.txt";
  {
    std::ofstream out(path);
    out << GetParam();
  }
  Graph g;
  IoResult r = ReadEdgeList(path.string(), &g);
  // Some inputs are legal-but-weird (accepted); the property under test
  // is: no crash, and on failure a nonempty error message.
  if (!r.ok) {
    EXPECT_FALSE(r.error.empty());
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedInputTest,
    ::testing::Values("garbage\n",                       // no numbers
                      "1\n",                             // one endpoint
                      "1 2 3\n",                         // extra column OK
                      "-5 3\n",                          // negative id
                      "999999999999999999 1\n",          // overflow id
                      "3.14 2\n",                        // float id
                      "1 2\x01\x02\n",                   // binary junk
                      "",                                // empty file
                      "# only a comment\n",              // comments only
                      "1 2\n\n\n3 4\n"));                // blank lines

TEST(RandomByteStreamTest, BinaryReaderNeverCrashes) {
  Rng rng(77);
  auto path = std::filesystem::temp_directory_path() / "gorder_fuzz.bin";
  for (int trial = 0; trial < 20; ++trial) {
    std::ofstream out(path, std::ios::binary);
    int len = 1 + static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < len; ++i) {
      char c = static_cast<char>(rng.NextU32() & 0xFF);
      out.write(&c, 1);
    }
    out.close();
    Graph g;
    IoResult r = ReadBinary(path.string(), &g);
    EXPECT_FALSE(r.ok);  // random bytes can't be a valid graph
    EXPECT_FALSE(r.error.empty());
  }
  std::filesystem::remove(path);
}

TEST(DynamicGraphFuzzTest, MatchesSetReferenceUnderRandomOps) {
  Rng rng(78);
  const NodeId max_nodes = 60;
  DynamicGraph dyn;
  std::set<std::pair<NodeId, NodeId>> ref;
  NodeId nodes = 0;
  for (int step = 0; step < 5000; ++step) {
    if (nodes < 2 || rng.Uniform(10) == 0) {
      if (nodes < max_nodes) {
        dyn.AddNode();
        ++nodes;
      }
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Uniform(nodes));
    NodeId v = static_cast<NodeId>(rng.Uniform(nodes));
    bool added = dyn.AddEdge(u, v);
    bool ref_added = u != v && ref.insert({u, v}).second;
    ASSERT_EQ(added, ref_added) << u << "->" << v << " step " << step;
  }
  EXPECT_EQ(dyn.NumEdges(), ref.size());
  // Snapshot agrees edge-for-edge.
  Graph g = dyn.ToCsr();
  EXPECT_EQ(g.NumEdges(), ref.size());
  for (const auto& [u, v] : ref) {
    EXPECT_TRUE(g.HasEdge(u, v));
  }
}

}  // namespace
}  // namespace gorder
