// Property tests: the optimised CacheLevel against a straightforward
// reference LRU model, over random and adversarial address streams.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "cachesim/cache.h"
#include "util/rng.h"

namespace gorder::cachesim {
namespace {

/// Obviously-correct set-associative LRU: one std::list per set, most
/// recently used at the front.
class ReferenceCache {
 public:
  ReferenceCache(std::uint64_t num_sets, std::uint32_t ways)
      : sets_(num_sets), ways_(ways) {}

  bool Access(std::uint64_t line) {
    auto& lru = sets_[line % sets_.size()];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == line) {
        lru.erase(it);
        lru.push_front(line);
        return true;
      }
    }
    lru.push_front(line);
    if (lru.size() > ways_) lru.pop_back();
    return false;
  }

 private:
  std::vector<std::list<std::uint64_t>> sets_;
  std::uint32_t ways_;
};

class CacheVsReferenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CacheVsReferenceTest, HitMissSequencesMatch) {
  auto [sets, ways, seed] = GetParam();
  CacheLevel cache({"L", static_cast<std::uint64_t>(sets) * ways * 64,
                    static_cast<std::uint32_t>(ways), 1.0},
                   64);
  ReferenceCache ref(sets, ways);
  Rng rng(seed);
  // Mix of uniform-random lines, hot lines, and sequential runs.
  std::uint64_t seq = 0;
  for (int i = 0; i < 30000; ++i) {
    std::uint64_t line;
    switch (rng.Uniform(3)) {
      case 0:
        line = rng.Uniform(sets * ways * 4);
        break;
      case 1:
        line = rng.Uniform(8);  // hot set
        break;
      default:
        line = seq++;
        break;
    }
    ASSERT_EQ(cache.Access(line), ref.Access(line))
        << "step " << i << " line " << line;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReferenceTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 4, 2),
                      std::make_tuple(4, 2, 3), std::make_tuple(16, 8, 4),
                      std::make_tuple(64, 16, 5)));

TEST(CacheHierarchyPropertyTest, MissesMonotoneInCacheSize) {
  // A bigger cache never misses more on the same trace.
  Rng rng(9);
  std::vector<std::uint64_t> trace(50000);
  for (auto& l : trace) l = rng.Uniform(4096);
  std::uint64_t prev_misses = ~0ULL;
  for (std::uint64_t kb : {4, 16, 64, 256}) {
    CacheHierarchyConfig c;
    c.levels = {{"L1", kb * 1024, 8, 1.0}};
    c.memory_latency_cycles = 10;
    CacheHierarchy h(c);
    for (auto l : trace) h.AccessLine(l);
    EXPECT_LE(h.stats().l1_misses, prev_misses) << kb << "KB";
    prev_misses = h.stats().l1_misses;
  }
}

TEST(CacheHierarchyPropertyTest, InclusionHoldsOnRandomTrace) {
  // After any trace, an immediate re-access of the most recent line
  // hits L1 (trivially), and total L2 hits never exceed L1 misses.
  CacheHierarchy h(CacheHierarchyConfig::TestTiny());
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) {
    h.AccessLine(rng.Uniform(256));
  }
  const auto& s = h.stats();
  EXPECT_LE(s.l3_refs, s.l1_misses);
  EXPECT_LE(s.l3_misses, s.l3_refs);
  EXPECT_EQ(s.l1_refs, 20000u);
}

TEST(CacheHierarchyPropertyTest, StallAccountingConsistent) {
  CacheHierarchy h;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) h.AccessLine(rng.Uniform(1 << 20));
  const auto& s = h.stats();
  // Every memory access stalls >= the L3-hit latency share implied by
  // counts; weak sanity: stall > misses * min-latency.
  EXPECT_GE(s.stall_cycles, s.l3_misses * 161.0);
  EXPECT_GT(s.StallFraction(), 0.0);
  EXPECT_LT(s.StallFraction(), 1.0);
}

}  // namespace
}  // namespace gorder::cachesim
