#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace gorder {
namespace {

Graph Diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
  Graph::Builder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 0);
  return b.Build();
}

TEST(GraphTest, BasicCounts) {
  Graph g = Diamond();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 5u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.UndirectedDegree(0), 3u);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g = Diamond();
  auto n0 = g.OutNeighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  auto in3 = g.InNeighbors(3);
  ASSERT_EQ(in3.size(), 2u);
  EXPECT_EQ(in3[0], 1u);
  EXPECT_EQ(in3[1], 2u);
}

TEST(GraphTest, SelfLoopsAndDuplicatesStripped) {
  Graph::Builder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphTest, SelfLoopsKeptWhenRequested) {
  Graph g = Graph::FromEdges(2, {{0, 0}, {0, 1}}, /*keep_self_loops=*/true);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(GraphTest, IsolatedNodesAllowed) {
  Graph::Builder b;
  b.AddEdge(0, 1);
  b.ReserveNodes(10);
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.OutDegree(9), 0u);
  EXPECT_EQ(g.InDegree(9), 0u);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, RelabelPreservesStructure) {
  Graph g = Diamond();
  std::vector<NodeId> perm = {3, 2, 1, 0};  // reverse
  Graph h = g.Relabel(perm);
  EXPECT_EQ(h.NumNodes(), g.NumNodes());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  // Edge (u, v) in g iff (perm[u], perm[v]) in h.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(g.HasEdge(u, v), h.HasEdge(perm[u], perm[v]))
          << u << "->" << v;
    }
  }
}

TEST(GraphTest, RelabelRoundTripsThroughInverse) {
  Rng rng(21);
  Graph g = gen::ErdosRenyi(120, 900, rng);
  std::vector<NodeId> perm = IdentityPermutation(g.NumNodes());
  rng.Shuffle(perm);
  Graph back = g.Relabel(perm).Relabel(InvertPermutation(perm));
  EXPECT_EQ(back.out_offsets(), g.out_offsets());
  EXPECT_EQ(back.out_neighbors(), g.out_neighbors());
  EXPECT_EQ(back.in_offsets(), g.in_offsets());
  EXPECT_EQ(back.in_neighbors(), g.in_neighbors());
}

TEST(GraphTest, RelabelIdentityIsNoop) {
  Graph g = Diamond();
  Graph h = g.Relabel(IdentityPermutation(g.NumNodes()));
  EXPECT_EQ(g.ToEdges(), h.ToEdges());
}

TEST(GraphTest, CloneIsDeepEqual) {
  Graph g = Diamond();
  Graph h = g.Clone();
  EXPECT_EQ(g.ToEdges(), h.ToEdges());
}

TEST(PermutationTest, InvertRoundTrips) {
  std::vector<NodeId> perm = {2, 0, 3, 1};
  auto inv = InvertPermutation(perm);
  EXPECT_EQ(inv, (std::vector<NodeId>{1, 3, 0, 2}));
  EXPECT_EQ(InvertPermutation(inv), perm);
}

TEST(PermutationTest, ComposeAppliesSecondAfterFirst) {
  std::vector<NodeId> first = {1, 2, 0};
  std::vector<NodeId> second = {2, 0, 1};
  auto composed = ComposePermutations(first, second);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(composed[v], second[first[v]]);
  }
}

TEST(PermutationTest, IdentityIsIdentity) {
  auto id = IdentityPermutation(5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(id[v], v);
}

TEST(StatsTest, DiamondStats) {
  Graph g = Diamond();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 5u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.25);
}

TEST(StatsTest, BandwidthAndArrangementCosts) {
  // Path 0 -> 1 -> 2: gaps are 1 and 1.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(Bandwidth(g), 1u);
  EXPECT_DOUBLE_EQ(LinearArrangementCost(g), 2.0);
  EXPECT_DOUBLE_EQ(LogArrangementCost(g), 0.0);  // log2(1) twice

  Graph far = Graph::FromEdges(8, {{0, 7}});
  EXPECT_EQ(Bandwidth(far), 7u);
  EXPECT_DOUBLE_EQ(LinearArrangementCost(far), 7.0);
  EXPECT_NEAR(LogArrangementCost(far), std::log2(7.0), 1e-12);
}

TEST(StatsTest, GorderScoreCountsNeighborsAndSiblings) {
  // 0 -> 2, 1 -> 2, 0 -> 1: with window 1, consecutive pairs are (0,1)
  // and (1,2). S(0,1): edge 0->1 => Sn=1; no common in-neighbour.
  // S(1,2): edge 1->2 => Sn=1; common in-neighbour 0 => Ss=1.
  Graph g = Graph::FromEdges(3, {{0, 2}, {1, 2}, {0, 1}});
  EXPECT_EQ(GorderScore(g, 1), 3u);
  // Window 2 adds pair (0,2): edge 0->2 => +1. Total 4.
  EXPECT_EQ(GorderScore(g, 2), 4u);
}

TEST(StatsTest, GorderScoreUnderPermutationMatchesRelabel) {
  Graph g = Graph::FromEdges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}, {1, 3}, {4, 0}});
  std::vector<NodeId> perm = {4, 2, 0, 3, 1};
  Graph h = g.Relabel(perm);
  for (NodeId w = 1; w <= 4; ++w) {
    EXPECT_EQ(GorderScoreUnderPermutation(g, perm, w), GorderScore(h, w))
        << "window " << w;
  }
}

TEST(DegreeHistogramTest, CountsMatch) {
  Graph g = Diamond();
  auto hist = OutDegreeHistogram(g);
  // Degrees: 2, 1, 1, 1.
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 1u);
}

}  // namespace
}  // namespace gorder
