#include "algo/extra.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "util/rng.h"

namespace gorder::algo {
namespace {

TEST(TriangleCountTest, TriangleAndSquare) {
  // Directed triangle 0->1->2->0 is one undirected triangle.
  Graph tri = Graph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(TriangleCount(tri), 1u);
  // A 4-cycle has none.
  Graph square = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(TriangleCount(square), 0u);
}

TEST(TriangleCountTest, CliqueFormula) {
  // K6 has C(6,3) = 20 triangles; reciprocal edges must not double count.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  Graph k6 = Graph::FromEdges(6, std::move(edges));
  EXPECT_EQ(TriangleCount(k6), 20u);
}

TEST(TriangleCountTest, InvariantUnderRelabel) {
  Rng rng(5);
  Graph g = gen::PlantedPartition({600, 12, 10.0, 0.2}, rng);
  auto perm = IdentityPermutation(g.NumNodes());
  rng.Shuffle(perm);
  EXPECT_EQ(TriangleCount(g), TriangleCount(g.Relabel(perm)));
}

TEST(TriangleCountTest, MatchesBruteForceOnSmallGraph) {
  Rng rng(6);
  Graph g = gen::ErdosRenyi(40, 200, rng);
  // Brute force over node triples on the undirected view.
  auto connected = [&](NodeId a, NodeId b) {
    return g.HasEdge(a, b) || g.HasEdge(b, a);
  };
  std::uint64_t brute = 0;
  for (NodeId a = 0; a < 40; ++a) {
    for (NodeId b = a + 1; b < 40; ++b) {
      if (!connected(a, b)) continue;
      for (NodeId c = b + 1; c < 40; ++c) {
        brute += connected(a, c) && connected(b, c);
      }
    }
  }
  EXPECT_EQ(TriangleCount(g), brute);
}

TEST(WccTest, ComponentsOfForest) {
  Graph::Builder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);  // 0,1,2 weakly connected (direction ignored)
  b.AddEdge(3, 4);
  b.ReserveNodes(6);  // 5 isolated
  Graph g = b.Build();
  auto r = Wcc(g);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_EQ(r.component[3], r.component[4]);
  EXPECT_NE(r.component[0], r.component[3]);
  EXPECT_EQ(r.largest_component, 3u);
}

TEST(WccTest, WeakVsStrongOnDag) {
  // A DAG chain is one weak component but n strong components.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(Wcc(g).num_components, 1u);
}

TEST(WccTest, InvariantUnderRelabel) {
  Rng rng(7);
  Graph g = gen::ErdosRenyi(500, 700, rng);  // sparse: many components
  auto perm = IdentityPermutation(g.NumNodes());
  rng.Shuffle(perm);
  auto a = Wcc(g);
  auto b = Wcc(g.Relabel(perm));
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.largest_component, b.largest_component);
}

TEST(TracedExtraTest, TracedMatchesUntraced) {
  Rng rng(8);
  Graph g = gen::CopyingModel(400, 5, 0.5, rng);
  cachesim::CacheHierarchy caches(cachesim::CacheHierarchyConfig::TestTiny());
  EXPECT_EQ(TriangleCount(g), TriangleCountTraced(g, caches));
  EXPECT_GT(caches.stats().l1_refs, 0u);
  caches.Flush();
  EXPECT_EQ(Wcc(g).num_components, WccTraced(g, caches).num_components);
}

}  // namespace
}  // namespace gorder::algo
