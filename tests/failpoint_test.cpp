// Unit tests for the deterministic fault-injection framework
// (src/util/failpoint.h, DESIGN.md §14): spec-grammar parsing, Nth-hit
// and sticky arming semantics, arm-resets-the-counter, all-or-nothing
// spec application, counter snapshots, and the transfer/bool fault
// adapters. In a default build (failpoints compiled out) everything but
// the macro smoke test skips — and the smoke test doubles as proof that
// instrumented code compiles and behaves identically with the framework
// absent.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <algorithm>
#include <string>
#include <vector>

namespace gorder {
namespace {

// Registers two test-only points at static init, exactly like the
// instrumented IO code does.
GORDER_FAILPOINT_DEFINE(fp_unit_a, "test.failpoint.a");
GORDER_FAILPOINT_DEFINE(fp_unit_b, "test.failpoint.b");

// Compiles in both build modes. With failpoints compiled out the macros
// must pass values through untouched; compiled in but disarmed they must
// do the same.
TEST(FailpointMacros, DisarmedOrCompiledOutArePassThrough) {
  EXPECT_EQ(GORDER_FAILPOINT(fp_unit_a), util::FaultKind::kNone);
  EXPECT_EQ(GORDER_FAULT_IO(fp_unit_a, 8, static_cast<std::size_t>(8)),
            static_cast<std::size_t>(8));
  EXPECT_TRUE(GORDER_FAULT_OK(fp_unit_a, true));
  EXPECT_FALSE(GORDER_FAULT_OK(fp_unit_a, false));
  GORDER_FAULT_ALLOC(fp_unit_a);  // must not throw
}

#if defined(GORDER_FAILPOINTS_ENABLED)

std::uint64_t FiresOf(const std::string& name) {
  for (const auto& info : util::SnapshotFailpoints()) {
    if (info.name == name) return info.fires;
  }
  ADD_FAILURE() << "unregistered failpoint " << name;
  return 0;
}

std::uint64_t HitsOf(const std::string& name) {
  for (const auto& info : util::SnapshotFailpoints()) {
    if (info.name == name) return info.hits;
  }
  ADD_FAILURE() << "unregistered failpoint " << name;
  return 0;
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::DisarmAllFailpoints();
    util::ResetFailpointCounters();
  }
  void TearDown() override { util::DisarmAllFailpoints(); }
};

TEST_F(FailpointTest, StaticInitRegistersNamespaceScopeHandles) {
  std::vector<std::string> names = util::RegisteredFailpoints();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.failpoint.a"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.failpoint.b"),
            names.end());
  // Note: only TUs the linker pulls in register their points — this
  // binary never references the IO surfaces, so store.*/graph.* points
  // are absent here. Binaries that *use* an instrumented surface always
  // link its TU, which is exactly the coverage that matters; the fault
  // sweep asserts it over the full pipeline.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(FailpointTest, FiresOnExactlyTheNthHit) {
  ASSERT_TRUE(
      util::ArmFailpoint("test.failpoint.a", util::FaultKind::kError, 3));
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kError);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);  // not sticky
  EXPECT_EQ(HitsOf("test.failpoint.a"), 4u);
  EXPECT_EQ(FiresOf("test.failpoint.a"), 1u);
}

TEST_F(FailpointTest, StickyFiresOnEveryHitFromTheNth) {
  ASSERT_TRUE(util::ArmFailpoint("test.failpoint.a", util::FaultKind::kShort,
                                 2, /*sticky=*/true));
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kShort);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kShort);
  EXPECT_EQ(FiresOf("test.failpoint.a"), 2u);
}

TEST_F(FailpointTest, ArmingResetsTheHitCounter) {
  fp_unit_a.Check();
  fp_unit_a.Check();
  // @1 counts from the moment of arming, not from process start.
  ASSERT_TRUE(
      util::ArmFailpoint("test.failpoint.a", util::FaultKind::kError, 1));
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kError);
}

TEST_F(FailpointTest, DisarmedPointStillCountsHits) {
  EXPECT_EQ(fp_unit_b.Check(), util::FaultKind::kNone);
  EXPECT_EQ(fp_unit_b.Check(), util::FaultKind::kNone);
  EXPECT_EQ(HitsOf("test.failpoint.b"), 2u);
  EXPECT_EQ(FiresOf("test.failpoint.b"), 0u);
}

TEST_F(FailpointTest, SpecGrammarArmsMultiplePoints) {
  std::string error;
  ASSERT_TRUE(util::ArmFailpointsFromSpec(
      "test.failpoint.a=oom@2;test.failpoint.b=enospc", &error))
      << error;
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kOom);
  EXPECT_EQ(fp_unit_b.Check(), util::FaultKind::kEnospc);  // default @1
}

TEST_F(FailpointTest, SpecAcceptsCommaSeparatorAndStickySuffix) {
  std::string error;
  ASSERT_TRUE(util::ArmFailpointsFromSpec(
      "test.failpoint.a=err@1+,test.failpoint.b=short", &error))
      << error;
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kError);
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kError);  // sticky
  EXPECT_EQ(fp_unit_b.Check(), util::FaultKind::kShort);
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedWithAMessage) {
  std::string error;
  EXPECT_FALSE(util::ArmFailpointsFromSpec("test.failpoint.a", &error));
  EXPECT_NE(error.find("name=kind"), std::string::npos);
  EXPECT_FALSE(
      util::ArmFailpointsFromSpec("test.failpoint.a=frobnicate", &error));
  EXPECT_NE(error.find("unknown kind"), std::string::npos);
  EXPECT_FALSE(util::ArmFailpointsFromSpec("test.failpoint.a=err@0", &error));
  EXPECT_FALSE(util::ArmFailpointsFromSpec("test.failpoint.a=err@x", &error));
}

TEST_F(FailpointTest, SpecApplicationIsAllOrNothing) {
  std::string error;
  EXPECT_FALSE(util::ArmFailpointsFromSpec(
      "test.failpoint.a=err;no.such.point=err", &error));
  EXPECT_NE(error.find("no.such.point"), std::string::npos);
  // The valid half must not have been armed.
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);
}

TEST_F(FailpointTest, UnknownDirectArmFails) {
  EXPECT_FALSE(util::ArmFailpoint("no.such.point", util::FaultKind::kError));
}

TEST_F(FailpointTest, FaultedTransferShapesResultPerKind) {
  ASSERT_TRUE(
      util::ArmFailpoint("test.failpoint.a", util::FaultKind::kShort, 1,
                         /*sticky=*/true));
  EXPECT_EQ(util::FaultedTransfer(fp_unit_a, 10, 10), 5u);

  ASSERT_TRUE(
      util::ArmFailpoint("test.failpoint.a", util::FaultKind::kEnospc, 1,
                         /*sticky=*/true));
  errno = 0;
  EXPECT_LT(util::FaultedTransfer(fp_unit_a, 10, 10), 10u);
  EXPECT_EQ(errno, ENOSPC);

  ASSERT_TRUE(
      util::ArmFailpoint("test.failpoint.a", util::FaultKind::kError, 1,
                         /*sticky=*/true));
  errno = 0;
  EXPECT_EQ(util::FaultedTransfer(fp_unit_a, 10, 10), 0u);
  EXPECT_EQ(errno, EIO);
}

TEST_F(FailpointTest, FaultedOkForcesFailureWhileRealCallRan) {
  bool real_ran = false;
  ASSERT_TRUE(util::ArmFailpoint("test.failpoint.a", util::FaultKind::kError));
  EXPECT_FALSE(GORDER_FAULT_OK(fp_unit_a, (real_ran = true)));
  EXPECT_TRUE(real_ran);  // fclose-style calls must still happen
}

TEST_F(FailpointTest, FaultAllocThrowsBadAlloc) {
  ASSERT_TRUE(util::ArmFailpoint("test.failpoint.a", util::FaultKind::kOom));
  bool caught = false;
  try {
    GORDER_FAULT_ALLOC(fp_unit_a);
  } catch (const std::bad_alloc&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST_F(FailpointTest, DisarmAllStopsFiringAndKeepsCounters) {
  ASSERT_TRUE(util::ArmFailpoint("test.failpoint.a", util::FaultKind::kError,
                                 1, /*sticky=*/true));
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kError);
  util::DisarmAllFailpoints();
  EXPECT_EQ(fp_unit_a.Check(), util::FaultKind::kNone);
  EXPECT_EQ(FiresOf("test.failpoint.a"), 1u);
  EXPECT_EQ(HitsOf("test.failpoint.a"), 2u);
}

TEST_F(FailpointTest, NoPendingSpecsWithoutEnvArming) {
  EXPECT_TRUE(util::PendingFailpointSpecs().empty());
}

#else  // !GORDER_FAILPOINTS_ENABLED

TEST(Failpoint, FrameworkCompiledOut) {
  GTEST_SKIP() << "build with -DGORDER_FAILPOINTS=ON to test the framework";
}

#endif  // GORDER_FAILPOINTS_ENABLED

}  // namespace
}  // namespace gorder
