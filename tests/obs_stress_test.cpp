// Concurrency battery for the live-observability primitives: writers
// hammer obs::Histogram, obs::WindowedHistogram and obs::ReqTraceRing
// while readers snapshot them, from 8 threads, with no synchronisation
// beyond the primitives' own atomics. The point is the TSan CI job: any
// non-atomic access on a hot path is a hard failure there. The
// assertions themselves are deliberately weak — monitoring reads are
// allowed bounded imprecision while racing writers (documented in
// expo.h), but must never tear, go backwards, or crash.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/expo.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"

namespace gorder::obs {
namespace {

constexpr int kWriters = 6;
constexpr int kReaders = 2;
constexpr int kOpsPerWriter = 20000;

TEST(ObsStressTest, HistogramRecordVsSnapshot) {
  Histogram& h = GetHistogram("obs_stress.hist");
  h.Reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&h, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        h.Observe(static_cast<std::uint64_t>(w * 1000 + i % 977));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&h, &stop] {
      std::uint64_t last_count = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t count = h.Count();
        EXPECT_GE(count, last_count) << "histogram count went backwards";
        last_count = count;
        (void)h.Sum();
        (void)h.Buckets();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(ObsStressTest, WindowedRecordVsSnapshot) {
  WindowedHistogram h("obs_stress.windowed");
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&h, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // Writers disagree about the tick now and then, forcing the
        // slot-recycle CAS path to race snapshots and other writers.
        const std::int64_t tick = 1000 + (i % 3 == 0 ? w % 2 : 0) + i / 4096;
        h.RecordAtTick(static_cast<std::uint64_t>(i % 4096), tick);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&h, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        for (int win : {kWindowSecondsShort, kWindowSecondsLong}) {
          const WindowSnapshot snap = h.SnapshotAtTick(win, 1005);
          EXPECT_LE(snap.p50, snap.p99);
          EXPECT_LE(snap.p99, snap.p999);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  // Recycling may drop samples racing a tick flip (documented), but the
  // final read must land in the ballpark and the last slot is stable.
  const WindowSnapshot final_snap = h.SnapshotAtTick(kWindowSecondsLong, 1005);
  EXPECT_GT(final_snap.count, 0u);
  EXPECT_LE(final_snap.count,
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(ObsStressTest, TraceRingPushVsSnapshot) {
  ReqTraceRing ring;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&ring, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ReqTraceRecord rec;
        rec.trace_id = static_cast<std::uint64_t>(w) * kOpsPerWriter +
                       static_cast<std::uint64_t>(i) + 1;
        // Self-consistent payload: a torn read would break the equality
        // the readers check below.
        rec.queue_us = rec.trace_id * 3;
        rec.exec_us = rec.trace_id * 7;
        ring.Push(rec);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&ring, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const ReqTraceRecord& rec : ring.SnapshotRecent(64)) {
          EXPECT_NE(rec.trace_id, 0u) << "snapshot returned a blank slot";
          EXPECT_EQ(rec.queue_us, rec.trace_id * 3) << "torn read";
          EXPECT_EQ(rec.exec_us, rec.trace_id * 7) << "torn read";
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(ring.TotalPushed(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  std::vector<ReqTraceRecord> recent = ring.SnapshotRecent(16);
  ASSERT_EQ(recent.size(), 16u);
  for (const ReqTraceRecord& rec : recent) {
    EXPECT_EQ(rec.queue_us, rec.trace_id * 3);
  }
}

}  // namespace
}  // namespace gorder::obs
