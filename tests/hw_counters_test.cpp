#include "cachesim/hw_counters.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace gorder::cachesim {
namespace {

TEST(HwCountersTest, StopWithoutStartIsInvalid) {
  HwCounters counters;
  HwStats stats = counters.Stop();
  EXPECT_FALSE(stats.valid);
}

TEST(HwCountersTest, DerivedRatiosSafeOnZero) {
  HwStats stats;
  EXPECT_EQ(stats.L1MissRate(), 0.0);
  EXPECT_EQ(stats.LlcMissRate(), 0.0);
  EXPECT_EQ(stats.Ipc(), 0.0);
}

TEST(HwCountersTest, MeasuresWorkWhenAvailable) {
  // Environment-dependent: containers often block perf_event_open.
  // Either outcome must be handled cleanly — that IS the contract.
  if (!HwCounters::Available()) {
    GTEST_SKIP() << "perf_event_open not permitted here";
  }
  HwCounters counters;
  ASSERT_TRUE(counters.Start());
  // Burn some measurable work.
  std::vector<int> data(1 << 18);
  std::iota(data.begin(), data.end(), 0);
  volatile long sum = std::accumulate(data.begin(), data.end(), 0L);
  (void)sum;
  HwStats stats = counters.Stop();
  ASSERT_TRUE(stats.valid);
  EXPECT_GT(stats.instructions, 0u);
  EXPECT_GT(stats.cycles, 0u);
}

TEST(HwCountersTest, DoubleStartRejected) {
  HwCounters counters;
  bool first = counters.Start();
  if (first) {
    EXPECT_FALSE(counters.Start());
    counters.Stop();
  } else {
    EXPECT_FALSE(counters.Start());
  }
}

}  // namespace
}  // namespace gorder::cachesim
