// The out-of-core acceptance differential: for every dataset in the
// registry, at 1/2/8 threads, (a) the external-memory CSR build emits a
// .gpack byte-identical to store::WritePack of the in-memory graph, and
// (b) semi-external Gorder and BOBA over the mapped pack return exactly
// the permutation the in-memory path computes. Edges are fed to the
// extmem builder shuffled and laced with duplicates, so the disk-backed
// sort/merge — not input order — is what produces the CSR.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("gorder_extdiff_") + info->test_suite_name() +
                     "_" + info->name() + "_" + tag;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  return (fs::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

struct ThreadGuard {
  explicit ThreadGuard(int n) : saved(NumThreads()) { SetNumThreads(n); }
  ~ThreadGuard() { SetNumThreads(saved); }
  int saved;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Small-but-representative dataset scale: every registry graph at a
/// few thousand nodes, so the full 9-dataset x 3-thread sweep stays
/// inside test-suite budgets while still exercising hubs, communities
/// and crawl numbering.
constexpr double kScale = 0.12;

class ExtmemDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtmemDifferentialTest, PackAndOrderingsMatchInMemoryPath) {
  ThreadGuard threads(GetParam());
  for (const gen::DatasetSpec& spec : gen::AllDatasets()) {
    SCOPED_TRACE(spec.name);
    const Graph graph = gen::MakeDataset(spec.name, kScale, 42);

    // Shuffle + duplicate the edge stream before feeding the extmem
    // builder: the on-disk sort must reconstruct the canonical CSR.
    std::vector<Edge> edges = graph.ToEdges();
    Rng rng(1234);
    rng.Shuffle(edges);
    const std::size_t original = edges.size();
    for (std::size_t i = 0; i < original; i += 97) edges.push_back(edges[i]);

    TempFile ext_pack(TempPath(spec.name + ".ext.gpack"));
    TempFile mem_pack(TempPath(spec.name + ".mem.gpack"));

    extmem::ExtmemOptions options;
    options.mem_budget_bytes = 8ull << 20;
    options.run_buffer_edges = 4096;  // force several runs per dataset
    extmem::ExtPackBuilder builder(options);
    ASSERT_TRUE(builder.Begin(ext_pack.path).ok);
    builder.ReserveNodes(graph.NumNodes());
    ASSERT_TRUE(builder.AddBatch(edges.data(), edges.size()).ok);
    IoResult r = builder.Finish();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(builder.stats().edges_final, graph.NumEdges());

    ASSERT_TRUE(store::WritePack(mem_pack.path, graph).ok);
    ASSERT_TRUE(ReadAll(ext_pack.path) == ReadAll(mem_pack.path))
        << spec.name << ": extmem pack not byte-identical";

    // Semi-external orderings vs the in-memory kernels.
    for (const order::Method method :
         {order::Method::kGorder, order::Method::kBoba}) {
      SCOPED_TRACE(order::MethodName(method));
      order::OrderingParams params;
      const std::vector<NodeId> expect =
          order::ComputeOrdering(graph, method, params);
      std::vector<NodeId> got;
      extmem::SemiExternalInfo info;
      IoResult sr = extmem::SemiExternalOrder(ext_pack.path, method, params,
                                              &got, &info);
      ASSERT_TRUE(sr.ok) << sr.error;
      EXPECT_TRUE(info.zero_copy);
      EXPECT_GT(info.pack_bytes, 0u);
      ASSERT_EQ(expect.size(), got.size());
      EXPECT_TRUE(expect == got)
          << spec.name << "/" << order::MethodName(method)
          << ": semi-external permutation differs from in-memory";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ExtmemDifferentialTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gorder
