// Tests for the shared parallel runtime and the determinism contract of
// the CSR pipeline: FromEdges / Relabel / ReadEdgeList must produce
// bit-identical CSR arrays at any thread count, and the 1-thread path
// must match a plain serial reference implementation.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <vector>

#include "gen/generators.h"
#include "graph/edgelist_io.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace gorder {
namespace {

/// Restores the global thread budget when a test exits.
class ThreadGuard {
 public:
  ~ThreadGuard() { SetNumThreads(0); }
};

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  ThreadGuard guard;
  SetNumThreads(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  int count = 0;
  // Grain larger than the range: one serial call with the whole range.
  ParallelFor(10, 13, 100, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 10u);
    EXPECT_EQ(e, 13u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, RespectsMaxThreadsOne) {
  ThreadGuard guard;
  SetNumThreads(8);
  // max_threads=1 forces the serial path: the body runs on this thread in
  // one call, so unsynchronised writes are safe.
  std::vector<int> data(10000, 0);
  ParallelFor(
      0, data.size(), 64, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) data[i] = static_cast<int>(i);
      },
      /*max_threads=*/1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, GrainOfOne) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(0, hits.size(), 1, [&](std::size_t b, std::size_t e) {
      // Grain 1 means single-index chunks on the parallel path; the
      // serial fast path (threads=1) hands over the whole range at once.
      if (threads > 1) EXPECT_EQ(e, b + 1);
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, GrainZeroTreatedAsOne) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, hits.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, EmptyRangeAtEveryThreadCount) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    bool called = false;
    ParallelFor(0, 0, 16, [&](std::size_t, std::size_t) { called = true; });
    ParallelFor(7, 7, 16, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called) << threads;
  }
}

// The shape the parallel algorithm kernels produce: a ParallelFor whose
// body forks heterogeneous subtasks via ParallelInvoke, which themselves
// run nested ParallelFors. Help-first nesting must complete every level
// exactly once without deadlock.
TEST(ParallelForTest, InvokeNestedInsideForCompletes) {
  ThreadGuard guard;
  SetNumThreads(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> a(kOuter * kInner);
  std::vector<std::atomic<int>> b(kOuter * kInner);
  ParallelFor(0, kOuter, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      ParallelInvoke(
          [&, o] {
            ParallelFor(0, kInner, 8, [&](std::size_t ib, std::size_t ie) {
              for (std::size_t i = ib; i < ie; ++i) {
                a[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
              }
            });
          },
          [&, o] {
            ParallelFor(0, kInner, 8, [&](std::size_t ib, std::size_t ie) {
              for (std::size_t i = ib; i < ie; ++i) {
                b[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
              }
            });
          });
    }
  });
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].load(), 1) << "a " << i;
    ASSERT_EQ(b[i].load(), 1) << "b " << i;
  }
}

TEST(ParallelInvokeTest, RunsAllTasks) {
  ThreadGuard guard;
  for (int threads : {1, 3}) {
    SetNumThreads(threads);
    std::atomic<int> a{0}, b{0}, c{0};
    ParallelInvoke([&] { a = 1; }, [&] { b = 2; }, [&] { c = 3; });
    EXPECT_EQ(a.load(), 1);
    EXPECT_EQ(b.load(), 2);
    EXPECT_EQ(c.load(), 3);
  }
}

TEST(ParallelInvokeTest, NestedParallelismCompletes) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(2000);
  ParallelInvoke(
      [&] {
        ParallelFor(0, 1000, 16, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
        });
      },
      [&] {
        ParallelFor(1000, 2000, 16, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
        });
      });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelConfigTest, SetAndRestore) {
  ThreadGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(0);  // back to default
  EXPECT_GE(NumThreads(), 1);
}

// ---------------------------------------------------------------------------
// Determinism of the CSR pipeline under the pool.

void ExpectSameCsr(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.out_offsets(), b.out_offsets());
  EXPECT_EQ(a.out_neighbors(), b.out_neighbors());
  EXPECT_EQ(a.in_offsets(), b.in_offsets());
  EXPECT_EQ(a.in_neighbors(), b.in_neighbors());
}

std::vector<Edge> MessyEdges(NodeId n, std::size_t m, Rng& rng) {
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto src = static_cast<NodeId>(rng.Uniform(n));
    // Skew + occasional self-loops and duplicates.
    auto dst = rng.Uniform(4) == 0 ? src : static_cast<NodeId>(rng.Uniform(n));
    edges.push_back({src, dst});
    if (rng.Uniform(8) == 0) edges.push_back({src, dst});
  }
  return edges;
}

TEST(CsrDeterminismTest, FromEdgesIdenticalAtAllThreadCounts) {
  ThreadGuard guard;
  Rng rng(11);
  const NodeId n = 700;
  std::vector<Edge> edges = MessyEdges(n, 20000, rng);
  for (bool keep_loops : {false, true}) {
    for (bool keep_dups : {false, true}) {
      SetNumThreads(1);
      Graph reference = Graph::FromEdges(n, edges, keep_loops, keep_dups);
      for (int threads : {2, 8}) {
        SetNumThreads(threads);
        Graph g = Graph::FromEdges(n, edges, keep_loops, keep_dups);
        ExpectSameCsr(reference, g);
      }
    }
  }
}

TEST(CsrDeterminismTest, RelabelIdenticalAtAllThreadCounts) {
  ThreadGuard guard;
  Rng rng(12);
  Graph g = gen::Rmat({.scale = 10, .num_edges = 30000}, rng);
  std::vector<NodeId> perm = IdentityPermutation(g.NumNodes());
  rng.Shuffle(perm);
  SetNumThreads(1);
  Graph reference = g.Relabel(perm);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    Graph h = g.Relabel(perm);
    ExpectSameCsr(reference, h);
  }
}

TEST(CsrDeterminismTest, ReadEdgeListIdenticalAtAllThreadCounts) {
  ThreadGuard guard;
  Rng rng(13);
  Graph g = gen::BarabasiAlbert(800, 6, rng);
  auto path = std::filesystem::temp_directory_path() / "gorder_par_io.txt";
  ASSERT_TRUE(WriteEdgeList(path.string(), g).ok);
  SetNumThreads(1);
  Graph reference;
  ASSERT_TRUE(ReadEdgeList(path.string(), &reference).ok);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    Graph h;
    ASSERT_TRUE(ReadEdgeList(path.string(), &h).ok);
    ExpectSameCsr(reference, h);
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// 1-thread output must equal the pre-pool serial implementation: global
// sort + dedup of the edge list, then counting-sort CSR fill. The
// reference pipeline below reproduces those semantics naively.

TEST(CsrDeterminismTest, SerialMatchesReferenceImplementation) {
  ThreadGuard guard;
  SetNumThreads(1);
  Rng rng(14);
  const NodeId n = 300;
  std::vector<Edge> edges = MessyEdges(n, 5000, rng);
  for (bool keep_loops : {false, true}) {
    for (bool keep_dups : {false, true}) {
      Graph got = Graph::FromEdges(n, edges, keep_loops, keep_dups);
      std::vector<Edge> clean = edges;
      if (!keep_loops) {
        std::erase_if(clean, [](const Edge& e) { return e.src == e.dst; });
      }
      std::sort(clean.begin(), clean.end(),
                [](const Edge& a, const Edge& b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                });
      if (!keep_dups) {
        clean.erase(std::unique(clean.begin(), clean.end()), clean.end());
      }
      // Out-CSR against ground truth...
      EXPECT_EQ(got.ToEdges(), clean)
          << "loops=" << keep_loops << " dups=" << keep_dups;
      // ...and the in-CSR: per-target buckets of sources, sorted.
      std::vector<std::vector<NodeId>> in_ref(n);
      for (const Edge& e : clean) in_ref[e.dst].push_back(e.src);
      for (NodeId v = 0; v < n; ++v) {
        std::sort(in_ref[v].begin(), in_ref[v].end());
        auto got_in = got.InNeighbors(v);
        ASSERT_EQ(got_in.size(), in_ref[v].size()) << "node " << v;
        EXPECT_TRUE(std::equal(got_in.begin(), got_in.end(),
                               in_ref[v].begin()))
            << "node " << v;
      }
    }
  }
}

}  // namespace
}  // namespace gorder
