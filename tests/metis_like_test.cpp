#include "order/metis_like.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

TEST(EdgeCutTest, CountsCrossingEdges) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(EdgeCut(g, {0, 0, 1, 1}), 2u);  // edges 1->2 and 3->0 cross
  EXPECT_EQ(EdgeCut(g, {0, 0, 0, 0}), 0u);
  EXPECT_EQ(EdgeCut(g, {0, 1, 0, 1}), 4u);
}

TEST(MetisLikeTest, ValidPermutationOnVariousGraphs) {
  Rng rng(1);
  for (auto make : {+[](Rng& r) { return gen::ErdosRenyi(500, 2500, r); },
                    +[](Rng& r) { return gen::CopyingModel(600, 5, 0.5, r); },
                    +[](Rng& r) {
                      return gen::Rmat({10, 5000, 0.57, 0.19, 0.19}, r);
                    }}) {
    Graph g = make(rng);
    auto perm = MetisLikeOrder(g);
    CheckPermutation(perm, g.NumNodes());
  }
}

TEST(MetisLikeTest, TrivialGraphs) {
  Graph empty;
  EXPECT_TRUE(MetisLikeOrder(empty).empty());
  Graph one = Graph::FromEdges(1, {});
  EXPECT_EQ(MetisLikeOrder(one), std::vector<NodeId>{0});
  Graph star = Graph::FromEdges(
      9, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}});
  CheckPermutation(MetisLikeOrder(star), star.NumNodes());
}

TEST(MetisLikeTest, DeterministicInSeed) {
  Rng rng(2);
  Graph g = gen::ErdosRenyi(400, 2000, rng);
  MetisLikeParams p;
  p.seed = 7;
  EXPECT_EQ(MetisLikeOrder(g, p), MetisLikeOrder(g, p));
  MetisLikeParams q;
  q.seed = 8;
  EXPECT_NE(MetisLikeOrder(g, p), MetisLikeOrder(g, q));
}

TEST(MetisLikeTest, SeparatesPlantedCommunities) {
  // Two dense communities bridged by a few edges: the first bisection
  // should essentially recover them, so same-community nodes end up in
  // the same half of the arrangement.
  Rng rng(3);
  std::vector<Edge> edges;
  auto dense = [&](NodeId base, NodeId size) {
    for (NodeId i = 0; i < size * 8; ++i) {
      NodeId u = base + static_cast<NodeId>(rng.Uniform(size));
      NodeId v = base + static_cast<NodeId>(rng.Uniform(size));
      if (u != v) edges.push_back({u, v});
    }
  };
  const NodeId half = 200;
  dense(0, half);
  dense(half, half);
  edges.push_back({0, half});
  edges.push_back({half, 1});
  Graph g = Graph::FromEdges(2 * half, std::move(edges));
  auto perm = MetisLikeOrder(g);
  // Count nodes of community 0 ranked in the first half.
  NodeId community0_in_front = 0;
  for (NodeId v = 0; v < half; ++v) {
    community0_in_front += perm[v] < half;
  }
  // Either nearly all or nearly none (the halves may be swapped).
  NodeId agreement = std::max(community0_in_front,
                              static_cast<NodeId>(half - community0_in_front));
  EXPECT_GE(agreement, half * 9 / 10);
}

TEST(MetisLikeTest, BeatsRandomOnLocalityMetrics) {
  Graph g = gen::MakeDataset("pokec", 0.15);
  auto metis_perm = ComputeOrdering(g, Method::kMetis, {});
  Rng rng(4);
  auto random_perm = RandomOrder(g, rng);
  Graph metis = g.Relabel(metis_perm);
  Graph random = g.Relabel(random_perm);
  EXPECT_LT(LinearArrangementCost(metis), LinearArrangementCost(random));
  EXPECT_GT(GorderScore(metis, 64), GorderScore(random, 64));
}

TEST(MetisLikeTest, LeafSizeControlsGranularity) {
  Rng rng(5);
  Graph g = gen::ErdosRenyi(300, 1500, rng);
  MetisLikeParams coarse;
  coarse.leaf_size = 150;
  MetisLikeParams fine;
  fine.leaf_size = 8;
  CheckPermutation(MetisLikeOrder(g, coarse), g.NumNodes());
  CheckPermutation(MetisLikeOrder(g, fine), g.NumNodes());
}

TEST(RegistryExtensionTest, ExtendedMethodsResolve) {
  EXPECT_EQ(AllMethodsExtended().size(), 16u);
  EXPECT_EQ(AllMethods().size(), 10u);
  EXPECT_EQ(MethodFromName("Metis"), Method::kMetis);
  EXPECT_EQ(MethodFromName("DBG"), Method::kDbg);
  EXPECT_EQ(MethodFromName("BOBA"), Method::kBoba);
  EXPECT_EQ(MethodName(Method::kHubSort), "HubSort");
  // Every extended method yields a valid permutation.
  Graph g = gen::MakeDataset("epinion", 0.05);
  OrderingParams params;
  params.sa_steps = 500;
  for (Method m : AllMethodsExtended()) {
    CheckPermutation(ComputeOrdering(g, m, params), g.NumNodes());
  }
}

}  // namespace
}  // namespace gorder::order
