// Wire-protocol conformance suite (DESIGN.md §16).
//
// Pins the gorderd v1 wire format with byte-level golden vectors: every
// opcode's request frame, the response frame, both handshake directions
// and the error body are asserted against hand-written byte sequences,
// so an accidental layout change (field order, width, endianness) fails
// here before it can ship an incompatible daemon. The decode direction
// covers every DecodeResult and every error class a frame can provoke.

#include <gtest/gtest.h>

#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder::serve {
namespace {

/// Builds a byte string from integer literals (values must fit a byte).
std::string Bytes(std::initializer_list<unsigned> bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (unsigned b : bytes) {
    EXPECT_LT(b, 256u);
    out.push_back(static_cast<char>(static_cast<unsigned char>(b)));
  }
  return out;
}

std::string HexDump(const std::string& s) {
  std::string out;
  char buf[4];
  for (unsigned char c : s) {
    std::snprintf(buf, sizeof(buf), "%02x ", c);
    out += buf;
  }
  return out;
}

/// EXPECT_EQ on byte strings with a hex diff on failure.
void ExpectBytes(const std::string& got, const std::string& want) {
  EXPECT_EQ(HexDump(got), HexDump(want));
}

DecodeResult Decode(const std::string& frame, Request* out,
                    std::string* error = nullptr, std::size_t* consumed_out = nullptr) {
  std::size_t consumed = 0;
  DecodeResult d =
      DecodeRequest(reinterpret_cast<const std::byte*>(frame.data()),
                    frame.size(), &consumed, out, error);
  if (consumed_out != nullptr) *consumed_out = consumed;
  return d;
}

// ---- Handshake golden vectors ----

TEST(ServeProtocol, HandshakeGolden) {
  std::string hello;
  AppendHandshake(&hello);
  // "GRD1" little-endian magic, then version 1.
  ExpectBytes(hello, Bytes({'G', 'R', 'D', '1', 0x01, 0x00, 0x00, 0x00}));
  EXPECT_EQ(hello.size(), kHandshakeBytes);

  std::string accepted, rejected;
  AppendHandshakeAck(&accepted, true);
  AppendHandshakeAck(&rejected, false);
  ExpectBytes(accepted, Bytes({'G', 'R', 'D', '1', 0x01, 0x00, 0x00, 0x00}));
  // A rejection echoes the magic with version 0.
  ExpectBytes(rejected, Bytes({'G', 'R', 'D', '1', 0x00, 0x00, 0x00, 0x00}));
}

// ---- Request golden vectors, one per opcode ----

TEST(ServeProtocol, PingRequestGolden) {
  Request req;
  req.id = 0x0102030405060708ull;
  req.opcode = Opcode::kPing;
  std::string frame;
  AppendRequest(&frame, req);
  ExpectBytes(frame,
              Bytes({0x0c, 0x00, 0x00, 0x00,                    // len = 12
                     0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // id
                     0x01, 0x00,                                // opcode
                     0x00, 0x00}));                             // reserved
  Request back;
  ASSERT_EQ(Decode(frame, &back), DecodeResult::kOk);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.opcode, Opcode::kPing);
}

TEST(ServeProtocol, InfoShutdownAndStatsRequestGolden) {
  for (auto op : {Opcode::kInfo, Opcode::kShutdown, Opcode::kStats}) {
    Request req;
    req.id = 1;
    req.opcode = op;
    std::string frame;
    AppendRequest(&frame, req);
    ExpectBytes(frame,
                Bytes({0x0c, 0x00, 0x00, 0x00,  //
                       0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       static_cast<unsigned>(op), 0x00,  //
                       0x00, 0x00}));
    Request back;
    ASSERT_EQ(Decode(frame, &back), DecodeResult::kOk);
    EXPECT_EQ(back.opcode, op);
  }
}

TEST(ServeProtocol, NodeQueryRequestGolden) {
  // kDegree/kNeighbors/kBfs/kSp share the u32-node body.
  for (auto op :
       {Opcode::kDegree, Opcode::kNeighbors, Opcode::kBfs, Opcode::kSp}) {
    Request req;
    req.id = 0xAB;
    req.opcode = op;
    req.node = 0x00012345;
    std::string frame;
    AppendRequest(&frame, req);
    ExpectBytes(frame,
                Bytes({0x10, 0x00, 0x00, 0x00,  // len = 16
                       0xab, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       static_cast<unsigned>(op), 0x00,  //
                       0x00, 0x00,                       //
                       0x45, 0x23, 0x01, 0x00}));        // node
    Request back;
    ASSERT_EQ(Decode(frame, &back), DecodeResult::kOk);
    EXPECT_EQ(back.opcode, op);
    EXPECT_EQ(back.node, 0x00012345u);
  }
}

TEST(ServeProtocol, PageRankTopKRequestGolden) {
  Request req;
  req.id = 2;
  req.opcode = Opcode::kPageRankTopK;
  req.k = 3;
  req.iterations = 20;
  std::string frame;
  AppendRequest(&frame, req);
  ExpectBytes(frame,
              Bytes({0x14, 0x00, 0x00, 0x00,  // len = 20
                     0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                     0x07, 0x00,               // opcode
                     0x00, 0x00,               //
                     0x03, 0x00, 0x00, 0x00,   // k
                     0x14, 0x00, 0x00, 0x00}));  // iterations
  Request back;
  ASSERT_EQ(Decode(frame, &back), DecodeResult::kOk);
  EXPECT_EQ(back.k, 3u);
  EXPECT_EQ(back.iterations, 20u);
}

TEST(ServeProtocol, OrderRequestGolden) {
  Request req;
  req.id = 7;
  req.opcode = Opcode::kOrder;
  req.method = "BOBA";
  req.seed = 42;
  req.num_nodes = 3;
  req.edges = {{0, 1}, {1, 2}};
  std::string frame;
  AppendRequest(&frame, req);
  ExpectBytes(
      frame,
      Bytes({0x32, 0x00, 0x00, 0x00,  // len = 12 + 38 = 50
             0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // id
             0x08, 0x00,                                      // opcode
             0x00, 0x00,                                      // reserved
             0x04, 0x00,                                      // method_len
             'B', 'O', 'B', 'A',                              //
             0x2a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // seed
             0x03, 0x00, 0x00, 0x00,                          // num_nodes
             0x02, 0x00, 0x00, 0x00,                          // num_edges
             0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,  // edge 0->1
             0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00}));  // edge 1->2
  Request back;
  ASSERT_EQ(Decode(frame, &back), DecodeResult::kOk);
  EXPECT_EQ(back.method, "BOBA");
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.num_nodes, 3u);
  EXPECT_EQ(back.edges, req.edges);
}

TEST(ServeProtocol, SwapPackRequestGolden) {
  Request req;
  req.id = 9;
  req.opcode = Opcode::kSwapPack;
  req.pack_path = "/p.gpack";
  std::string frame;
  AppendRequest(&frame, req);
  ExpectBytes(frame,
              Bytes({0x16, 0x00, 0x00, 0x00,  // len = 12 + 10 = 22
                     0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                     0x09, 0x00,  //
                     0x00, 0x00,  //
                     0x08, 0x00,  // path_len
                     '/', 'p', '.', 'g', 'p', 'a', 'c', 'k'}));
  Request back;
  ASSERT_EQ(Decode(frame, &back), DecodeResult::kOk);
  EXPECT_EQ(back.pack_path, "/p.gpack");
}

// ---- kStats reply body golden vector ----

TEST(ServeProtocol, StatsBodyGolden) {
  // `u32 json_len | json bytes` — the kStats reply body carried inside
  // the standard response frame.
  ExpectBytes(EncodeStatsBody("{\"a\":1}"),
              Bytes({0x07, 0x00, 0x00, 0x00,  // json_len = 7
                     '{', '"', 'a', '"', ':', '1', '}'}));
  std::string body = EncodeStatsBody("{\"a\":1}");
  std::string json;
  ASSERT_TRUE(DecodeStatsBody(reinterpret_cast<const std::byte*>(body.data()),
                              body.size(), &json));
  EXPECT_EQ(json, "{\"a\":1}");
}

TEST(ServeProtocol, StatsBodyDecodeRejectsMalformed) {
  std::string body = EncodeStatsBody("{}");
  std::string json;
  // Truncated length prefix, truncated payload, and trailing garbage.
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, body.size() - 1}) {
    EXPECT_FALSE(
        DecodeStatsBody(reinterpret_cast<const std::byte*>(body.data()), n,
                        &json))
        << "prefix " << n;
  }
  std::string trailing = body + "x";
  EXPECT_FALSE(
      DecodeStatsBody(reinterpret_cast<const std::byte*>(trailing.data()),
                      trailing.size(), &json));
}

// ---- kStats / tracez JSON byte goldens (pure renderers, fixed input) ----

TEST(ServeProtocol, StatsJsonGolden) {
  ServerStatsView view;
  view.epoch = 2;
  view.queue_depth = 3;
  view.in_flight = 1;
  view.connections = 4;
  view.traces_sampled = 7;
  obs::MetricsDump metrics;
  metrics.counters = {{"serve.requests", 100}, {"serve.responses", 99}};
  metrics.gauges = {{"serve.queue_depth", 3}};
  obs::WindowedDump win;
  win.name = "serve.req_us.ping";
  win.short_window = {10, 500, 32, 64, 127};
  win.long_window = {60, 3000, 32, 127, 255};
  EXPECT_EQ(
      RenderStatsJson(view, metrics, {win}),
      "{\"schema\":\"gorder-stats\",\"schema_version\":1,"
      "\"epoch\":2,\"queue_depth\":3,\"in_flight\":1,\"connections\":4,"
      "\"traces_sampled\":7,"
      "\"counters\":{\"serve.requests\":100,\"serve.responses\":99},"
      "\"gauges\":{\"serve.queue_depth\":3},"
      "\"windows\":{\"serve.req_us.ping\":{"
      "\"10s\":{\"count\":10,\"sum\":500,\"p50\":32,\"p99\":64,"
      "\"p999\":127},"
      "\"60s\":{\"count\":60,\"sum\":3000,\"p50\":32,\"p99\":127,"
      "\"p999\":255}}}}");
}

TEST(ServeProtocol, TracezJsonGolden) {
  obs::ReqTraceRecord rec;
  rec.trace_id = 64;
  rec.start_us = 1000;
  rec.queue_us = 5;
  rec.exec_us = 40;
  rec.bytes_in = 16;
  rec.bytes_out = 22;
  rec.epoch = 1;
  rec.opcode = static_cast<std::uint16_t>(Opcode::kBfs);
  rec.status = static_cast<std::uint16_t>(Status::kOk);
  rec.slow = true;
  EXPECT_EQ(RenderTracezJson(3, {rec}),
            "{\"schema\":\"gorder-tracez\",\"total_pushed\":3,"
            "\"records\":[{\"trace_id\":64,\"opcode\":\"bfs\","
            "\"status\":\"ok\",\"start_us\":1000,\"queue_us\":5,"
            "\"exec_us\":40,\"bytes_in\":16,\"bytes_out\":22,"
            "\"epoch\":1,\"slow\":true}]}");
  EXPECT_EQ(RenderTracezJson(0, {}),
            "{\"schema\":\"gorder-tracez\",\"total_pushed\":0,"
            "\"records\":[]}");
}

// ---- Response golden vector ----

TEST(ServeProtocol, ResponseGolden) {
  std::string frame;
  AppendResponse(&frame, {5, Status::kOk, 9}, "hi");
  ExpectBytes(frame,
              Bytes({0x16, 0x00, 0x00, 0x00,  // len = 20 + 2 = 22
                     0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // id
                     0x00, 0x00,                                      // status
                     0x00, 0x00,  // reserved
                     0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // epoch
                     'h', 'i'}));

  std::size_t consumed = 0;
  ResponseHeader header;
  const std::byte* body = nullptr;
  std::size_t body_len = 0;
  std::string error;
  ASSERT_EQ(DecodeResponse(reinterpret_cast<const std::byte*>(frame.data()),
                           frame.size(), &consumed, &header, &body, &body_len,
                           &error),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(header.id, 5u);
  EXPECT_EQ(header.status, Status::kOk);
  EXPECT_EQ(header.epoch, 9u);
  ASSERT_EQ(body_len, 2u);
  EXPECT_EQ(std::memcmp(body, "hi", 2), 0);
}

TEST(ServeProtocol, ErrorBodyGolden) {
  ExpectBytes(ErrorBody("oops"), Bytes({0x04, 0x00, 'o', 'o', 'p', 's'}));
  // Messages are truncated to what u16 can carry.
  std::string huge(100000, 'x');
  std::string body = ErrorBody(huge);
  EXPECT_EQ(body.size(), 2u + 0xFFFF);
}

// ---- Every opcode and status has a stable name ----

TEST(ServeProtocol, NamesAreStableAndTotal) {
  EXPECT_STREQ(OpcodeName(Opcode::kPing), "ping");
  EXPECT_STREQ(OpcodeName(Opcode::kInfo), "info");
  EXPECT_STREQ(OpcodeName(Opcode::kDegree), "degree");
  EXPECT_STREQ(OpcodeName(Opcode::kNeighbors), "neighbors");
  EXPECT_STREQ(OpcodeName(Opcode::kBfs), "bfs");
  EXPECT_STREQ(OpcodeName(Opcode::kSp), "sp");
  EXPECT_STREQ(OpcodeName(Opcode::kPageRankTopK), "pagerank_topk");
  EXPECT_STREQ(OpcodeName(Opcode::kOrder), "order");
  EXPECT_STREQ(OpcodeName(Opcode::kSwapPack), "swap_pack");
  EXPECT_STREQ(OpcodeName(Opcode::kShutdown), "shutdown");
  EXPECT_STREQ(OpcodeName(Opcode::kStats), "stats");
  EXPECT_STREQ(OpcodeName(static_cast<Opcode>(999)), "?");

  EXPECT_STREQ(StatusName(Status::kOk), "ok");
  EXPECT_STREQ(StatusName(Status::kBadFrame), "bad_frame");
  EXPECT_STREQ(StatusName(Status::kBadOpcode), "bad_opcode");
  EXPECT_STREQ(StatusName(Status::kBadRequest), "bad_request");
  EXPECT_STREQ(StatusName(Status::kTooLarge), "too_large");
  EXPECT_STREQ(StatusName(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(StatusName(Status::kInternal), "internal");
  EXPECT_STREQ(StatusName(Status::kShuttingDown), "shutting_down");
  EXPECT_STREQ(StatusName(static_cast<Status>(999)), "?");
}

// ---- Decode error classes ----

TEST(ServeProtocol, NeedMoreDataOnEveryPrefixOfAValidFrame) {
  Request req;
  req.id = 3;
  req.opcode = Opcode::kDegree;
  req.node = 4;
  std::string frame;
  AppendRequest(&frame, req);
  for (std::size_t n = 0; n < frame.size(); ++n) {
    Request back;
    std::size_t consumed = 1;
    EXPECT_EQ(Decode(frame.substr(0, n), &back, nullptr, &consumed),
              DecodeResult::kNeedMoreData)
        << "prefix length " << n;
    EXPECT_EQ(consumed, 0u) << "prefix length " << n;
  }
  Request back;
  EXPECT_EQ(Decode(frame, &back), DecodeResult::kOk);
}

TEST(ServeProtocol, TooLargeRejectsBeforeLookingAtPayload) {
  // Declared length over the cap, no payload behind it: the declaration
  // alone must be rejected (kNeedMoreData would mean "read 4 GiB more").
  std::string frame;
  PutU32(&frame, kMaxPayloadBytes + 1);
  Request back;
  std::string error;
  EXPECT_EQ(Decode(frame, &back, &error), DecodeResult::kTooLarge);
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, BadFrameOnNonzeroReserved) {
  Request req;
  req.id = 3;
  req.opcode = Opcode::kPing;
  std::string frame;
  AppendRequest(&frame, req);
  frame[14] = 0x01;  // reserved lo byte
  Request back;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(Decode(frame, &back, &error, &consumed), DecodeResult::kBadFrame);
  // The whole frame is consumed so the stream can continue, and the id
  // was readable for the error reply.
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(back.id, 3u);
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, BadOpcodeOnUnknownValues) {
  for (unsigned raw : {0u, 12u, 255u, 0xFFFFu}) {
    std::string frame;
    PutU32(&frame, 12);
    PutU64(&frame, 77);                                  // id
    PutU16(&frame, static_cast<std::uint16_t>(raw));     // opcode
    PutU16(&frame, 0);                                   // reserved
    Request back;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(Decode(frame, &back, &error, &consumed), DecodeResult::kBadOpcode)
        << "opcode " << raw;
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(back.id, 77u);
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServeProtocol, BadFrameOnShortBody) {
  // kDegree declares a body one byte short of its u32 node.
  std::string frame;
  PutU32(&frame, 15);
  PutU64(&frame, 1);
  PutU16(&frame, static_cast<std::uint16_t>(Opcode::kDegree));
  PutU16(&frame, 0);
  frame += Bytes({0x01, 0x02, 0x03});
  Request back;
  std::string error;
  EXPECT_EQ(Decode(frame, &back, &error), DecodeResult::kBadFrame);
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, BadFrameOnPayloadShorterThanPrefix) {
  std::string frame;
  PutU32(&frame, 11);  // one byte short of the 12-byte request prefix
  frame.append(11, '\0');
  Request back;
  std::string error;
  EXPECT_EQ(Decode(frame, &back, &error), DecodeResult::kBadFrame);
}

TEST(ServeProtocol, BadFrameOnTrailingBytes) {
  Request req;
  req.id = 3;
  req.opcode = Opcode::kNeighbors;
  req.node = 1;
  std::string frame;
  AppendRequest(&frame, req);
  frame += '\0';
  frame[0] = static_cast<char>(frame.size() - 4);  // fix up the length
  Request back;
  std::string error;
  EXPECT_EQ(Decode(frame, &back, &error), DecodeResult::kBadFrame);
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ServeProtocol, BadFrameOnOrderEdgeCountMismatch) {
  // num_edges claims more data than the payload carries: must be
  // rejected by arithmetic, never by reading out of bounds.
  Request req;
  req.id = 3;
  req.opcode = Opcode::kOrder;
  req.method = "Gorder";
  req.num_nodes = 10;
  req.edges = {{0, 1}};
  std::string frame;
  AppendRequest(&frame, req);
  // Patch num_edges (8 bytes from the end of a 1-edge frame) to 2^28.
  const std::size_t num_edges_at = frame.size() - sizeof(Edge) - 4;
  frame[num_edges_at + 3] = 0x10;
  Request back;
  std::string error;
  EXPECT_EQ(Decode(frame, &back, &error), DecodeResult::kBadFrame);
  EXPECT_NE(error.find("edge count"), std::string::npos);
}

TEST(ServeProtocol, TwoFramesBackToBackDecodeIndependently) {
  Request a, b;
  a.id = 1;
  a.opcode = Opcode::kPing;
  b.id = 2;
  b.opcode = Opcode::kDegree;
  b.node = 6;
  std::string stream;
  AppendRequest(&stream, a);
  const std::size_t first_len = stream.size();
  AppendRequest(&stream, b);

  Request back;
  std::size_t consumed = 0;
  ASSERT_EQ(Decode(stream, &back, nullptr, &consumed), DecodeResult::kOk);
  EXPECT_EQ(consumed, first_len);
  EXPECT_EQ(back.id, 1u);
  ASSERT_EQ(Decode(stream.substr(consumed), &back, nullptr, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(back.id, 2u);
  EXPECT_EQ(back.node, 6u);
}

// ---- Fingerprint hash golden values (FNV-1a 64) ----

TEST(ServeProtocol, HashBytes64Golden) {
  EXPECT_EQ(HashBytes64(nullptr, 0), 0xcbf29ce484222325ull);  // offset basis
  EXPECT_EQ(HashBytes64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(HashBytes64("foobar", 6), 0x85944171f73967e8ull);
  std::vector<std::uint32_t> v = {1, 2, 3};
  EXPECT_EQ(HashVector64(v), HashBytes64(v.data(), 12));
  EXPECT_NE(HashVector64(v), HashVector64(std::vector<std::uint32_t>{1, 2}));
}

TEST(ServeProtocol, WireReaderBoundsAreExact) {
  std::string data = Bytes({0x01, 0x02, 0x03, 0x04, 0x05, 0x06});
  WireReader r(reinterpret_cast<const std::byte*>(data.data()), data.size());
  std::uint32_t u32 = 0;
  ASSERT_TRUE(r.GetU32(&u32));
  EXPECT_EQ(u32, 0x04030201u);
  EXPECT_EQ(r.remaining(), 2u);
  std::uint64_t u64 = 0;
  EXPECT_FALSE(r.GetU64(&u64));  // only 2 bytes left
  std::uint16_t u16 = 0;
  ASSERT_TRUE(r.GetU16(&u16));
  EXPECT_EQ(u16, 0x0605u);
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.GetU16(&u16));
  EXPECT_FALSE(r.Skip(1));
}

}  // namespace
}  // namespace gorder::serve
