#include "graph/edgelist_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/generators.h"
#include "util/rng.h"

namespace gorder {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "gorder_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip) {
  Rng rng(1);
  Graph g = gen::ErdosRenyi(50, 200, rng);
  ASSERT_TRUE(WriteEdgeList(Path("g.txt"), g).ok);
  Graph h;
  ASSERT_TRUE(ReadEdgeList(Path("g.txt"), &h).ok);
  EXPECT_EQ(g.ToEdges(), h.ToEdges());
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  WriteFile("c.txt", "# snap comment\n% konect comment\n\n0 1\n  1 2\n");
  Graph g;
  ASSERT_TRUE(ReadEdgeList(Path("c.txt"), &g).ok);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST_F(IoTest, TabSeparatedAccepted) {
  WriteFile("t.txt", "0\t5\n5\t2\n");
  Graph g;
  ASSERT_TRUE(ReadEdgeList(Path("t.txt"), &g).ok);
  EXPECT_EQ(g.NumNodes(), 6u);
  EXPECT_TRUE(g.HasEdge(0, 5));
}

TEST_F(IoTest, LongLinesParsedCorrectly) {
  // The old fgets(256)-based reader silently split lines longer than 255
  // bytes: the tail of a long comment came back as a second "line" and
  // could be parsed as a bogus edge. Build a file where every failure
  // mode of that reader is present.
  std::string content;
  content += "# long comment " + std::string(300, 'x') + " 7 8\n";
  content += "0" + std::string(300, ' ') + "1\n";      // huge gap
  content += "1 2" + std::string(300, ' ') + "\n";     // long tail
  content += "2 3";                                    // no trailing newline
  WriteFile("long.txt", content);
  Graph g;
  ASSERT_TRUE(ReadEdgeList(Path("long.txt"), &g).ok);
  EXPECT_EQ(g.NumEdges(), 3u);
  // The comment tail (" 7 8") must not have become an edge or grown the
  // node count past the real ids 0..3.
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST_F(IoTest, MalformedLongLineReportsRightLineNumber) {
  std::string content = "0 1\n# " + std::string(500, 'c') + "\nbogus\n";
  WriteFile("longbad.txt", content);
  Graph g;
  IoResult r = ReadEdgeList(Path("longbad.txt"), &g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(":3"), std::string::npos) << r.error;
}

TEST_F(IoTest, MalformedLineRejectedWithLineNumber) {
  WriteFile("bad.txt", "0 1\nnot an edge\n");
  Graph g;
  IoResult r = ReadEdgeList(Path("bad.txt"), &g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(":2"), std::string::npos) << r.error;
}

TEST_F(IoTest, MissingFileRejected) {
  Graph g;
  EXPECT_FALSE(ReadEdgeList(Path("missing.txt"), &g).ok);
}

TEST_F(IoTest, HugeNodeIdRejected) {
  WriteFile("huge.txt", "0 99999999999999\n");
  Graph g;
  IoResult r = ReadEdgeList(Path("huge.txt"), &g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("32-bit"), std::string::npos) << r.error;
}

TEST_F(IoTest, BinaryRoundTrip) {
  Rng rng(2);
  Graph g = gen::BarabasiAlbert(200, 3, rng);
  ASSERT_TRUE(WriteBinary(Path("g.bin"), g).ok);
  Graph h;
  ASSERT_TRUE(ReadBinary(Path("g.bin"), &h).ok);
  EXPECT_EQ(g.ToEdges(), h.ToEdges());
  EXPECT_EQ(g.NumNodes(), h.NumNodes());
}

TEST_F(IoTest, BinaryBadMagicRejected) {
  WriteFile("junk.bin", "this is not a graph file at all");
  Graph g;
  IoResult r = ReadBinary(Path("junk.bin"), &g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
}

TEST_F(IoTest, BinaryTruncatedRejected) {
  Rng rng(3);
  Graph g = gen::ErdosRenyi(100, 500, rng);
  ASSERT_TRUE(WriteBinary(Path("full.bin"), g).ok);
  // Truncate the file to cut into the neighbour array.
  auto size = std::filesystem::file_size(Path("full.bin"));
  std::filesystem::resize_file(Path("full.bin"), size / 2);
  Graph h;
  EXPECT_FALSE(ReadBinary(Path("full.bin"), &h).ok);
}

// Regression: the header's node/edge counts are attacker-controlled and
// used to size allocations. A crafted header with m near 2^62 used to
// ask std::vector for a multi-exabyte buffer before any other check ran
// (bad_alloc at best, OOM-killed test runner at worst); both counts must
// be bounded against the actual file size before anything is allocated.
TEST_F(IoTest, BinaryCraftedHeaderCountsRejectedBeforeAllocating) {
  auto write_header = [&](const std::string& name, std::uint64_t n,
                          std::uint64_t m) {
    std::ofstream out(Path(name), std::ios::binary);
    out.write("GORDER01", 8);
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    out.write(reinterpret_cast<const char*>(&m), sizeof m);
    // A sliver of payload so the file is not just a truncated header.
    const std::uint64_t zero = 0;
    out.write(reinterpret_cast<const char*>(&zero), sizeof zero);
  };
  Graph g;
  write_header("huge_m.bin", 0, std::uint64_t{1} << 61);
  IoResult r = ReadBinary(Path("huge_m.bin"), &g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("implausible"), std::string::npos) << r.error;

  write_header("huge_n.bin", 0xFFFFFFFFULL, 0);
  r = ReadBinary(Path("huge_n.bin"), &g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("implausible"), std::string::npos) << r.error;

  write_header("too_big_n.bin", std::uint64_t{1} << 33, 0);
  EXPECT_FALSE(ReadBinary(Path("too_big_n.bin"), &g).ok);
}

// The writers stage to a temp file and rename into place; a successful
// write must leave exactly the final file, no `.tmp.*` debris.
TEST_F(IoTest, WritersLeaveNoStagingDebris) {
  Rng rng(4);
  Graph g = gen::BarabasiAlbert(50, 2, rng);
  ASSERT_TRUE(WriteEdgeList(Path("clean.txt"), g).ok);
  ASSERT_TRUE(WriteBinary(Path("clean.bin"), g).ok);
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
}

TEST_F(IoTest, EmptyGraphRoundTrips) {
  Graph g;
  ASSERT_TRUE(WriteBinary(Path("empty.bin"), g).ok);
  Graph h = Graph::FromEdges(3, {{0, 1}});  // overwritten below
  ASSERT_TRUE(ReadBinary(Path("empty.bin"), &h).ok);
  EXPECT_EQ(h.NumNodes(), 0u);
  EXPECT_EQ(h.NumEdges(), 0u);
}

}  // namespace
}  // namespace gorder
