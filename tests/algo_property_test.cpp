// Brute-force cross-validation of the benchmark workloads on small
// random instances, plus convergence/approximation properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>

#include "algo/algorithms.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace gorder::algo {
namespace {

class SmallGraphSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph MakeGraph() {
    Rng rng(GetParam());
    NodeId n = 10 + static_cast<NodeId>(rng.Uniform(6));
    EdgeId m = n * (1 + rng.Uniform(3));
    return gen::ErdosRenyi(n, m, rng);
  }
};

TEST_P(SmallGraphSweep, DiameterFromAllSourcesIsExactMaxEccentricity) {
  Graph g = MakeGraph();
  std::vector<NodeId> all = IdentityPermutation(g.NumNodes());
  auto diam = Diameter(g, all);
  std::uint32_t brute = 0;
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    auto bfs = Bfs(g, s);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (bfs.level[v] != kInfDistance) brute = std::max(brute, bfs.level[v]);
    }
  }
  EXPECT_EQ(diam.diameter_estimate, brute);
}

TEST_P(SmallGraphSweep, GreedyDominatingSetWithinLogFactorOfOptimal) {
  Graph g = MakeGraph();
  const NodeId n = g.NumNodes();
  ASSERT_LE(n, 20u);
  auto greedy = DominatingSet(g);
  // Brute force the minimum dominating set via bitmask enumeration.
  std::vector<std::uint32_t> closed(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    closed[v] = 1u << v;
    for (NodeId w : g.OutNeighbors(v)) closed[v] |= 1u << w;
    for (NodeId w : g.InNeighbors(v)) closed[v] |= 1u << w;
  }
  const std::uint32_t full = (n == 32 ? ~0u : (1u << n) - 1);
  NodeId best = n;
  for (std::uint32_t set = 0; set <= full; ++set) {
    if (static_cast<NodeId>(std::popcount(set)) >= best) continue;
    std::uint32_t covered = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (set & (1u << v)) covered |= closed[v];
    }
    if (covered == full) best = static_cast<NodeId>(std::popcount(set));
  }
  EXPECT_GE(greedy.set_size, best);
  // Greedy guarantee: within H(Delta+1) <= ln(n)+1 of optimal.
  double bound = best * (std::log(static_cast<double>(n)) + 1.0);
  EXPECT_LE(static_cast<double>(greedy.set_size), bound + 1e-9);
}

TEST_P(SmallGraphSweep, KcoreMatchesIterativePeelingReference) {
  Graph g = MakeGraph();
  const NodeId n = g.NumNodes();
  auto fast = KCore(g);
  // Reference: for each k, repeatedly strip nodes with degree < k; a
  // node's core number is the largest k at which it survives.
  std::vector<NodeId> ref_core(n, 0);
  for (NodeId k = 1; k <= n; ++k) {
    std::vector<bool> alive(n, true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        NodeId deg = 0;
        for (NodeId w : g.OutNeighbors(v)) deg += alive[w];
        for (NodeId w : g.InNeighbors(v)) deg += alive[w];
        if (deg < k) {
          alive[v] = false;
          changed = true;
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v]) ref_core[v] = k;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(fast.core[v], ref_core[v]) << "node " << v;
  }
}

TEST_P(SmallGraphSweep, SpEqualsBfsEverywhere) {
  Graph g = MakeGraph();
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    EXPECT_EQ(Sp(g, s).dist, Bfs(g, s).level) << "source " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallGraphSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(PageRankConvergenceTest, RanksStabiliseWithIterations) {
  Rng rng(31);
  Graph g = gen::BarabasiAlbert(800, 4, rng);
  auto pr50 = PageRank(g, 50);
  auto pr100 = PageRank(g, 100);
  double max_delta = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_delta = std::max(max_delta, std::abs(pr50.rank[v] - pr100.rank[v]));
  }
  EXPECT_LT(max_delta, 1e-6);
  // Top node agrees between the two.
  auto argmax = [&](const std::vector<double>& r) {
    return std::max_element(r.begin(), r.end()) - r.begin();
  };
  EXPECT_EQ(argmax(pr50.rank), argmax(pr100.rank));
}

TEST(PageRankConvergenceTest, DampingZeroIsUniform) {
  Rng rng(32);
  Graph g = gen::ErdosRenyi(100, 400, rng);
  auto pr = PageRank(g, 10, /*damping=*/0.0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(pr.rank[v], 1.0 / g.NumNodes(), 1e-12);
  }
}

TEST(BfsForestTest, LevelsAreParentPlusOne) {
  Rng rng(33);
  Graph g = gen::CopyingModel(300, 4, 0.5, rng);
  auto r = algo::BfsForest(g);
  // Forest coverage: every node is reached exactly once across the
  // restarts (per-tree level invariants are covered by the single-source
  // BFS tests; they do not hold globally across restarted roots).
  EXPECT_EQ(r.num_reached, g.NumNodes());
}

TEST(SccCondensationTest, ComponentDagIsAcyclic) {
  Rng rng(34);
  Graph g = gen::ErdosRenyi(120, 400, rng);
  auto scc = Scc(g);
  // Build condensation edges and check there is no cycle (Kahn).
  std::vector<Edge> cedges;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (scc.component[v] != scc.component[w]) {
        cedges.push_back({scc.component[v], scc.component[w]});
      }
    }
  }
  Graph dag = Graph::FromEdges(scc.num_components, std::move(cedges));
  std::vector<NodeId> indeg(dag.NumNodes(), 0);
  for (NodeId v = 0; v < dag.NumNodes(); ++v) {
    for (NodeId w : dag.OutNeighbors(v)) ++indeg[w];
  }
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < dag.NumNodes(); ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  NodeId processed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    ++processed;
    for (NodeId w : dag.OutNeighbors(queue[head])) {
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  EXPECT_EQ(processed, dag.NumNodes());  // acyclic iff all processed
}

}  // namespace
}  // namespace gorder::algo
