// Cross-cutting generator/locality checks: the dataset stand-ins must
// actually exhibit the structural properties the reproduction's claims
// rest on (degree skew, sibling richness, crawl-order baseline
// locality) — this is the test-level defence of DESIGN.md §4.

#include <gtest/gtest.h>

#include "gen/crawl_order.h"
#include "gen/datasets.h"
#include "graph/locality_profile.h"
#include "graph/stats.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder {
namespace {

class DatasetShapeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetShapeTest, SkewAndBaselineLocality) {
  const std::string name = GetParam();
  const auto& spec = gen::GetDatasetSpec(name);
  Graph g = gen::MakeDataset(name, 0.15);
  GraphStats s = ComputeStats(g);

  // Degree skew: the hub collects at least 8x the average degree.
  double avg = s.avg_degree;
  EXPECT_GT(std::max(s.max_in_degree, s.max_out_degree), 8 * avg) << name;

  // Baseline ("Original") locality: the crawl numbering clusters
  // related nodes (a crawl emits the children of one node
  // consecutively, so siblings sit together), which the windowed
  // Gorder score F captures directly — plain edge-gap metrics miss it
  // because a BFS level of an expander already spans the whole window.
  // This is exactly the structure behind the paper's observation that
  // Original already beats Random on cache misses.
  Rng rng(5);
  order::OrderingParams p;
  auto random = order::ComputeOrdering(g, order::Method::kRandom, p);
  std::uint64_t f_original = GorderScore(g, 5);
  std::uint64_t f_random = GorderScoreUnderPermutation(g, random, 5);
  EXPECT_GT(f_original * 10, f_random * 13) << name;  // >= 1.3x
  if (spec.category == "web") {
    EXPECT_GT(f_original, 2 * f_random) << name;  // copying: siblings
  }
}

INSTANTIATE_TEST_SUITE_P(AllNine, DatasetShapeTest,
                         ::testing::Values("epinion", "pokec", "flickr",
                                           "livejournal", "wiki", "gplus",
                                           "pldarc", "twitter", "sdarc"));

TEST(CrawlJumpProbTest, MoreJumpsMeanLessLocality) {
  Graph g = gen::MakeDataset("wiki", 0.1);
  auto f_of = [&](double jump) {
    Rng crawl_rng(7);
    auto perm = gen::MakeCrawlOrderPermutation(g, jump, crawl_rng);
    return GorderScoreUnderPermutation(g, perm, 5);
  };
  // A faithful crawl keeps siblings adjacent (high F); a mostly
  // teleporting one approaches a random arrangement (low F).
  // Measured ratio ~1.9x on the wiki stand-in; require a safe 1.5x.
  EXPECT_GT(f_of(0.0) * 2, 3 * f_of(0.9));
}

}  // namespace
}  // namespace gorder
