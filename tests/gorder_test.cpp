#include "order/gorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

Graph WebGraph(NodeId n = 1200, std::uint64_t seed = 21) {
  Rng rng(seed);
  return gen::CopyingModel(n, 6, 0.6, rng);
}

TEST(GorderTest, ValidPermutationOnVariousGraphs) {
  for (std::uint64_t seed : {1, 2, 3}) {
    Graph g = WebGraph(800, seed);
    auto perm = GorderOrder(g);
    CheckPermutation(perm, g.NumNodes());
  }
}

TEST(GorderTest, DeterministicAcrossRuns) {
  Graph g = WebGraph();
  EXPECT_EQ(GorderOrder(g), GorderOrder(g));
}

TEST(GorderTest, SeedIsMaxInDegreeNode) {
  Graph g = WebGraph();
  NodeId hub = 0;
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    if (g.InDegree(v) > g.InDegree(hub)) hub = v;
  }
  auto perm = GorderOrder(g);
  EXPECT_EQ(perm[hub], 0u);
}

TEST(GorderTest, WindowOneStillValid) {
  Graph g = WebGraph(500);
  OrderingParams p;
  p.window = 1;
  auto perm = GorderOrder(g, p);
  CheckPermutation(perm, g.NumNodes());
}

TEST(GorderTest, HugeWindowStillValid) {
  Graph g = WebGraph(300);
  OrderingParams p;
  p.window = 10000;  // larger than n
  auto perm = GorderOrder(g, p);
  CheckPermutation(perm, g.NumNodes());
}

TEST(GorderTest, ImprovesObjectiveOverBaselines) {
  Graph g = WebGraph(1500);
  OrderingParams p;
  p.window = 5;
  auto gorder = GorderOrder(g, p);
  Rng rng(4);
  auto random = RandomOrder(g, rng);
  std::uint64_t f_gorder = GorderScoreUnderPermutation(g, gorder, p.window);
  std::uint64_t f_orig = GorderScore(g, p.window);
  std::uint64_t f_random = GorderScoreUnderPermutation(g, random, p.window);
  EXPECT_GT(f_gorder, f_orig);
  EXPECT_GT(f_gorder, 2 * f_random);
}

TEST(GorderTest, GreedyIsNearUpperBoundOnTinyGraph) {
  // On a tiny graph, compare the greedy F against brute force over all
  // permutations (6! = 720). The paper guarantees 1/(2w); on graphs this
  // small the greedy should be well above that bound.
  Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {0, 3}, {2, 5}, {1, 4}});
  const NodeId w = 2;
  std::vector<NodeId> perm = {0, 1, 2, 3, 4, 5};
  std::uint64_t best = 0;
  std::vector<NodeId> p = perm;
  std::sort(p.begin(), p.end());
  do {
    best = std::max(best, GorderScoreUnderPermutation(g, p, w));
  } while (std::next_permutation(p.begin(), p.end()));
  std::uint64_t greedy =
      GorderScoreUnderPermutation(g, GorderOrder(g, {.window = w}), w);
  EXPECT_GE(greedy * 2 * w, best);  // paper's 1/(2w) guarantee
  EXPECT_GE(greedy * 2, best);      // and empirically much closer
}

TEST(GorderTest, LargerWindowNeverHurtsObjectiveMuch) {
  // F(w) is monotone in w for a fixed permutation; the greedy optimises
  // its own window, so its score at window w, *evaluated at w*, should
  // weakly improve as w grows on sibling-rich graphs.
  Graph g = WebGraph(700);
  OrderingParams p3{.window = 3};
  OrderingParams p8{.window = 8};
  auto f3 = GorderScoreUnderPermutation(g, GorderOrder(g, p3), 3);
  auto f3_with8 = GorderScoreUnderPermutation(g, GorderOrder(g, p8), 3);
  // The w=8 ordering evaluated at window 3 can be slightly worse, but
  // not drastically: both chase the same locality.
  EXPECT_GT(f3_with8 * 2, f3);
}

TEST(GorderTest, AblationSiblingScoreMatters) {
  // On a copying-model web graph (sibling-rich), disabling the Ss term
  // must reduce the achieved F.
  Graph g = WebGraph(1500);
  OrderingParams full;
  OrderingParams no_sibling;
  no_sibling.gorder_sibling_score = false;
  auto f_full =
      GorderScoreUnderPermutation(g, GorderOrder(g, full), full.window);
  auto f_nosib = GorderScoreUnderPermutation(g, GorderOrder(g, no_sibling),
                                             full.window);
  EXPECT_GT(f_full, f_nosib);
}

TEST(GorderTest, AblationNeighborScoreMatters) {
  // On a sibling-free graph (a long cycle with scrambled ids — under
  // identity ids even a blind pop order would be optimal), only the Sn
  // term can guide the greedy; disabling it must destroy the objective.
  const NodeId n = 400;
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  Graph cycle = Graph::FromEdges(n, std::move(edges));
  Rng rng(17);
  auto shuffle = IdentityPermutation(n);
  rng.Shuffle(shuffle);
  Graph g = cycle.Relabel(shuffle);
  OrderingParams full;
  OrderingParams no_nbr;
  no_nbr.gorder_neighbor_score = false;
  auto f_full =
      GorderScoreUnderPermutation(g, GorderOrder(g, full), full.window);
  auto f_nonbr =
      GorderScoreUnderPermutation(g, GorderOrder(g, no_nbr), full.window);
  EXPECT_GT(f_full, 2 * std::max<std::uint64_t>(f_nonbr, 1));
}

TEST(GorderTest, HubCapTradesQualityForSpeed) {
  Graph g = WebGraph(1500);
  OrderingParams capped;
  capped.gorder_hub_cap = 4;  // aggressive cap
  OrderingParams uncapped;
  uncapped.gorder_hub_cap = 0;  // exact
  auto f_capped =
      GorderScoreUnderPermutation(g, GorderOrder(g, capped), 5);
  auto f_exact =
      GorderScoreUnderPermutation(g, GorderOrder(g, uncapped), 5);
  // Exact updates can only help the objective (statistically); allow a
  // little slack since the greedy is not monotone in information.
  EXPECT_GT(f_exact * 11, f_capped * 10);
  CheckPermutation(GorderOrder(g, capped), g.NumNodes());
}

TEST(GorderTest, DisconnectedGraphCovered) {
  Graph::Builder b;
  for (NodeId v = 0; v < 10; ++v) b.AddEdge(v, (v + 1) % 10);
  for (NodeId v = 100; v < 110; ++v) b.AddEdge(v, v + 1);
  b.ReserveNodes(120);
  Graph g = b.Build();
  auto perm = GorderOrder(g);
  CheckPermutation(perm, g.NumNodes());
}

TEST(GorderTest, SingleNodeAndEmpty) {
  Graph one = Graph::FromEdges(1, {});
  EXPECT_EQ(GorderOrder(one), std::vector<NodeId>{0});
  Graph zero;
  EXPECT_TRUE(GorderOrder(zero).empty());
}

TEST(GorderTest, ClusteredGraphKeepsCommunitiesContiguous) {
  // Two dense 16-cliques joined by one edge: Gorder should place each
  // clique's nodes in a contiguous-ish run. Measure: average |rank gap|
  // between same-clique pairs should be much smaller than n/2.
  std::vector<Edge> edges;
  auto add_clique = [&](NodeId base) {
    for (NodeId u = 0; u < 16; ++u) {
      for (NodeId v = 0; v < 16; ++v) {
        if (u != v) edges.push_back({base + u, base + v});
      }
    }
  };
  add_clique(0);
  add_clique(16);
  edges.push_back({0, 16});
  Graph g = Graph::FromEdges(32, std::move(edges));
  auto perm = GorderOrder(g);
  double intra_gap = 0;
  int pairs = 0;
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = u + 1; v < 16; ++v) {
      intra_gap += std::abs(static_cast<double>(perm[u]) - perm[v]);
      intra_gap += std::abs(static_cast<double>(perm[16 + u]) -
                            perm[16 + v]);
      pairs += 2;
    }
  }
  EXPECT_LT(intra_gap / pairs, 8.0);  // clique diameter in rank space
}

}  // namespace
}  // namespace gorder::order
