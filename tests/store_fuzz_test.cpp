// Adversarial robustness tests for the gpack/gperm loaders: corrupt,
// truncated, or random input must always produce a clean error (or, for
// bytes the format does not cover, an identical graph) — never a crash,
// an abort, or an out-of-bounds read. CI runs this suite under
// AddressSanitizer, which turns any stray read into a hard failure.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/gorder_lib.h"

namespace gorder {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string("gorder_storefuzz_") +
                     info->test_suite_name() + "_" + info->name() + "_" + tag;
  return (fs::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// All load entry points must agree that the file either fails cleanly
/// or yields a fully valid graph. Returns true if the pack loaded.
bool ProbeAllLoaders(const std::string& path) {
  Graph g1;
  IoResult mm = store::LoadPack(path, &g1, store::LoadMode::kMmap);
  Graph g2;
  IoResult cp = store::LoadPack(path, &g2, store::LoadMode::kCopy);
  EXPECT_EQ(mm.ok, cp.ok) << "mmap and copy loaders disagree";
  if (!mm.ok) {
    EXPECT_FALSE(mm.error.empty());
    EXPECT_FALSE(cp.error.empty());
  } else {
    // If it loads at all, the graph must be internally consistent enough
    // to traverse without faulting.
    std::uint64_t checksum = 0;
    for (NodeId v = 0; v < g1.NumNodes(); ++v) {
      for (NodeId u : g1.OutNeighbors(v)) checksum += u;
    }
    (void)checksum;
  }
  store::GpackInfo info;
  (void)store::ReadPackInfo(path, &info);
  (void)store::VerifyPack(path);
  return mm.ok;
}

Graph SmallGraph() { return gen::MakeDataset("epinion", 0.05, 13); }

// Flip every byte in the header + section-table region, one at a time.
// Each flip must either be caught (clean error) or — only for bytes the
// format genuinely does not interpret — load the identical graph.
TEST(GpackFuzz, HeaderAndTableBitFlips) {
  Graph g = SmallGraph();
  TempFile tmp(TempPath("hdrflip") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  const std::vector<char> orig = ReadAll(tmp.path);
  ASSERT_GT(orig.size(), 192u);

  // 64-byte header + 4 * 32-byte section entries.
  const std::size_t cover = 64 + 4 * 32;
  int caught = 0;
  for (std::size_t i = 0; i < cover; ++i) {
    std::vector<char> mut = orig;
    mut[i] = static_cast<char>(mut[i] ^ 0xFF);
    WriteAll(tmp.path, mut);
    Graph loaded;
    IoResult r = store::LoadPack(tmp.path, &loaded);
    if (r.ok) {
      // Unchecked byte: must be content-neutral.
      EXPECT_EQ(g.out_offsets(), loaded.out_offsets()) << "byte " << i;
      EXPECT_EQ(g.out_neighbors(), loaded.out_neighbors()) << "byte " << i;
    } else {
      EXPECT_FALSE(r.error.empty()) << "byte " << i;
      ++caught;
    }
  }
  // The header CRC covers the whole region, so essentially every flip
  // must be caught (the only benign flips would be in padding the CRC
  // also covers — i.e. none).
  EXPECT_EQ(caught, static_cast<int>(cover));
  WriteAll(tmp.path, orig);
  EXPECT_TRUE(store::VerifyPack(tmp.path).ok);
}

// Payload corruption is caught by the per-section CRCs: flip one byte in
// the middle of every section.
TEST(GpackFuzz, PayloadBitFlipsAreCaughtBySectionCrcs) {
  Graph g = SmallGraph();
  TempFile tmp(TempPath("payload") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  const std::vector<char> orig = ReadAll(tmp.path);
  store::GpackInfo info;
  ASSERT_TRUE(store::ReadPackInfo(tmp.path, &info).ok);
  for (const auto& sec : info.sections) {
    if (sec.bytes == 0) continue;
    SCOPED_TRACE(sec.name);
    std::vector<char> mut = orig;
    mut[sec.offset + sec.bytes / 2] ^= 0x01;
    WriteAll(tmp.path, mut);
    Graph loaded;
    IoResult r = store::LoadPack(tmp.path, &loaded);
    EXPECT_FALSE(r.ok);
    if (!r.ok) EXPECT_FALSE(r.error.empty());
  }
}

// Truncate at and around every section boundary, plus a byte-resolution
// sweep over the first 256 bytes.
TEST(GpackFuzz, TruncationNeverCrashes) {
  Graph g = SmallGraph();
  TempFile tmp(TempPath("trunc") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  const std::vector<char> orig = ReadAll(tmp.path);
  store::GpackInfo info;
  ASSERT_TRUE(store::ReadPackInfo(tmp.path, &info).ok);

  std::vector<std::size_t> cuts = {0, 1, 63, 64, 65, 191, 192, 193,
                                   orig.size() - 1};
  for (const auto& sec : info.sections) {
    cuts.push_back(sec.offset);
    cuts.push_back(sec.offset + 1);
    if (sec.bytes > 0) {
      cuts.push_back(sec.offset + sec.bytes - 1);
      cuts.push_back(sec.offset + sec.bytes);
    }
  }
  for (std::size_t cut : cuts) {
    if (cut >= orig.size()) continue;
    SCOPED_TRACE(cut);
    WriteAll(tmp.path,
             std::vector<char>(orig.begin(), orig.begin() + cut));
    EXPECT_FALSE(ProbeAllLoaders(tmp.path));
  }
}

TEST(GpackFuzz, WrongMagicAndVersionAreRejected) {
  Graph g = SmallGraph();
  TempFile tmp(TempPath("magic") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  std::vector<char> orig = ReadAll(tmp.path);

  {
    std::vector<char> mut = orig;
    mut[0] = 'X';  // magic
    WriteAll(tmp.path, mut);
    Graph loaded;
    IoResult r = store::LoadPack(tmp.path, &loaded);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
  }
  {
    std::vector<char> mut = orig;
    mut[8] = static_cast<char>(store::kGpackFormatVersion + 1);  // version
    WriteAll(tmp.path, mut);
    Graph loaded;
    IoResult r = store::LoadPack(tmp.path, &loaded);
    EXPECT_FALSE(r.ok);
    // A future format version must name the mismatch, not "corrupt".
    EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
  }
}

// A crafted pack whose num_edges makes `m * sizeof(NodeId)` wrap to 0
// (and whose neighbor sections are shrunk to zero bytes with the
// matching CRC of the empty string) must be rejected by the edge-count
// plausibility guard, *before* any payload is inspected. Without the
// guard the wrapped expected size matches the zero-length sections,
// every header-level check passes, and the CSR scan reads past the
// mapping — plain-mmap out-of-bounds that not even ASan reliably
// flags (adjacent mappings absorb the reads), hence the assertion on
// the specific rejection reason rather than on a crash.
TEST(GpackFuzz, HugeEdgeCountCannotWrapSectionSizeValidation) {
  Graph g = SmallGraph();
  TempFile tmp(TempPath("overflow") + ".gpack");
  ASSERT_TRUE(store::WritePack(tmp.path, g).ok);
  const std::vector<char> orig = ReadAll(tmp.path);
  ASSERT_GT(orig.size(), 192u);  // 64-byte header + 4 * 32-byte entries

  auto refresh_header_crc = [](std::vector<char>& bytes) {
    // header_crc (offset 52) covers the 64-byte header with the field
    // zeroed, then the section table.
    std::uint32_t zero = 0;
    std::memcpy(bytes.data() + 52, &zero, sizeof zero);
    std::uint32_t crc = Crc32(bytes.data(), 64);
    crc = Crc32(bytes.data() + 64, 4 * 32, crc);
    std::memcpy(bytes.data() + 52, &crc, sizeof crc);
  };

  store::GpackInfo info;
  ASSERT_TRUE(store::ReadPackInfo(tmp.path, &info).ok);

  for (std::uint64_t m :
       {std::uint64_t{1} << 62, std::uint64_t{1} << 63, ~std::uint64_t{0}}) {
    SCOPED_TRACE(m);
    std::vector<char> mut = orig;
    std::memcpy(mut.data() + 32, &m, sizeof m);  // header num_edges
    for (std::size_t i = 0; i < info.sections.size(); ++i) {
      const auto& sec = info.sections[i];
      char* entry = mut.data() + 64 + i * 32;
      const bool neighbors = sec.id == 2 || sec.id == 4;
      if (neighbors) {
        // Shrink the neighbor section to zero bytes *at end of file*;
        // CRC32 of the empty string is 0 and a zero-length extent at
        // `size` passes the bounds check, so with a wrapped expected
        // size these sections would pass every header-level check and
        // the CSR scan's very first neighbor reads would land past the
        // mapping.
        const std::uint64_t eof = orig.size();
        const std::uint64_t no_bytes = 0;
        const std::uint32_t empty_crc = 0;
        std::memcpy(entry + 8, &eof, sizeof eof);               // offset
        std::memcpy(entry + 16, &no_bytes, sizeof no_bytes);    // bytes
        std::memcpy(entry + 24, &empty_crc, sizeof empty_crc);  // crc32
      } else {
        // Rewrite the offsets payload to [0, m, m, ...] (with a fresh
        // section CRC) so the CSR scan, if reached, would walk neighbor
        // indices up to m — far past the mapping.
        auto* off = reinterpret_cast<std::uint64_t*>(mut.data() + sec.offset);
        for (std::size_t k = 1; k < sec.bytes / sizeof(std::uint64_t); ++k) {
          off[k] = m;
        }
        const std::uint32_t crc = Crc32(mut.data() + sec.offset,
                                        static_cast<std::size_t>(sec.bytes));
        std::memcpy(entry + 24, &crc, sizeof crc);
      }
    }
    refresh_header_crc(mut);
    WriteAll(tmp.path, mut);
    Graph loaded;
    IoResult r = store::LoadPack(tmp.path, &loaded);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("implausible"), std::string::npos) << r.error;
    EXPECT_FALSE(ProbeAllLoaders(tmp.path));
  }
}

TEST(GpackFuzz, RandomByteStreamsNeverCrash) {
  TempFile tmp(TempPath("random") + ".gpack");
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t len = 1 + static_cast<std::size_t>(rng.Uniform(4096));
    std::vector<char> bytes(len);
    for (auto& b : bytes) b = static_cast<char>(rng.NextU32() & 0xFF);
    // Seed some trials with the real magic so parsing gets past byte 8.
    if (trial % 3 == 0 && len >= 8) {
      std::memcpy(bytes.data(), "GPACKBIN", 8);
    }
    WriteAll(tmp.path, bytes);
    EXPECT_FALSE(ProbeAllLoaders(tmp.path));
  }
}

TEST(GpackFuzz, MissingFileIsACleanError) {
  Graph g;
  IoResult r = store::LoadPack(TempPath("nonexistent") + ".gpack", &g);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(store::VerifyPack(TempPath("nonexistent") + ".gpack").ok);
}

// .gperm artifacts: corruption in any byte must degrade to a cache miss,
// never a crash or a bogus permutation.
TEST(GpermFuzz, CorruptArtifactsAreMisses) {
  TempFile root(TempPath("store"));
  store::Store s(root.path);
  Graph g = SmallGraph();
  const auto fp = store::GraphFingerprint(g);
  order::OrderingParams params;
  auto perm = order::ComputeOrdering(g, order::Method::kRcm, params);
  ASSERT_TRUE(s.SaveOrdering(fp, order::Method::kRcm, params, perm, 0.1).ok);

  const std::string path = s.OrderingPath(fp, order::Method::kRcm, params);
  ASSERT_TRUE(fs::exists(path));
  const std::vector<char> orig = ReadAll(path);

  store::Store::CachedOrdering out;
  // Flip every byte of the header and a sample of the payload.
  for (std::size_t i = 0; i < orig.size(); i += (i < 56 ? 1 : 97)) {
    std::vector<char> mut = orig;
    mut[i] = static_cast<char>(mut[i] ^ 0xFF);
    WriteAll(path, mut);
    EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kRcm, params,
                                g.NumNodes(), &out))
        << "byte " << i;
  }
  // Truncations.
  for (std::size_t cut : {std::size_t{0}, std::size_t{10}, std::size_t{55},
                          orig.size() - 4}) {
    WriteAll(path, std::vector<char>(orig.begin(), orig.begin() + cut));
    EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kRcm, params,
                                g.NumNodes(), &out))
        << "cut " << cut;
  }
  // Restoring the original bytes restores the hit.
  WriteAll(path, orig);
  EXPECT_TRUE(
      s.LoadOrdering(fp, order::Method::kRcm, params, g.NumNodes(), &out));
  EXPECT_EQ(out.perm, perm);
}

// An artifact whose payload is a valid CRC-match but not a permutation
// (duplicate ids) must be rejected by the semantic check.
TEST(GpermFuzz, NonPermutationPayloadIsRejected) {
  TempFile root(TempPath("store"));
  store::Store s(root.path);
  Graph g = SmallGraph();
  const auto fp = store::GraphFingerprint(g);
  order::OrderingParams params;

  std::vector<NodeId> bogus(g.NumNodes(), 0);  // all map to node 0
  ASSERT_TRUE(s.SaveOrdering(fp, order::Method::kLdg, params, bogus, 0.1).ok);
  store::Store::CachedOrdering out;
  EXPECT_FALSE(s.LoadOrdering(fp, order::Method::kLdg, params, g.NumNodes(),
                              &out));
}

}  // namespace
}  // namespace gorder
