#include "gen/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/crawl_order.h"
#include "gen/datasets.h"
#include "graph/stats.h"

namespace gorder {
namespace {

using gen::AllDatasets;
using gen::MakeDataset;

TEST(ErdosRenyiTest, ExactEdgeCountNoSelfLoops) {
  Rng rng(1);
  Graph g = gen::ErdosRenyi(100, 500, rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  EXPECT_EQ(g.NumEdges(), 500u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  Rng a(42), b(42);
  Graph g = gen::ErdosRenyi(80, 300, a);
  Graph h = gen::ErdosRenyi(80, 300, b);
  EXPECT_EQ(g.ToEdges(), h.ToEdges());
}

TEST(BarabasiAlbertTest, SkewedInDegrees) {
  Rng rng(3);
  Graph g = gen::BarabasiAlbert(2000, 4, rng);
  EXPECT_EQ(g.NumNodes(), 2000u);
  GraphStats s = ComputeStats(g);
  // Preferential attachment: the max in-degree hub collects far more
  // than the average (which is ~4).
  EXPECT_GT(s.max_in_degree, 40u);
}

TEST(RmatTest, SizesAndSkew) {
  Rng rng(4);
  gen::RmatParams p;
  p.scale = 12;
  p.num_edges = 40000;
  Graph g = gen::Rmat(p, rng);
  EXPECT_EQ(g.NumNodes(), 4096u);
  // Dedup/self-loop removal eats some samples, but most survive.
  EXPECT_GT(g.NumEdges(), 25000u);
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_out_degree, 100u);  // heavy-tailed
}

TEST(CopyingModelTest, SiblingStructure) {
  Rng rng(5);
  Graph g = gen::CopyingModel(3000, 8, 0.6, rng);
  EXPECT_EQ(g.NumNodes(), 3000u);
  EXPECT_GT(g.NumEdges(), 3000u * 4u);
  // Copying creates shared out-neighbours: the identity-window Gorder
  // score of a copying graph should comfortably exceed an ER graph of
  // the same size (which has essentially no sibling pairs).
  Rng rng2(5);
  Graph er = gen::ErdosRenyi(3000, g.NumEdges(), rng2);
  EXPECT_GT(GorderScore(g, 5) * 1.0, GorderScore(er, 5) * 1.0);
}

TEST(WattsStrogatzTest, DegreeAndRewire) {
  Rng rng(6);
  Graph g = gen::WattsStrogatz(500, 3, 0.1, rng);
  EXPECT_EQ(g.NumNodes(), 500u);
  // Each node emits 2k directed edges (both directions), minus dedup.
  EXPECT_GT(g.NumEdges(), 500u * 4u);
}

TEST(PlantedPartitionTest, IntraCommunityDominance) {
  Rng rng(7);
  gen::PlantedPartitionParams p;
  p.num_nodes = 2000;
  p.num_communities = 20;
  p.avg_degree = 10;
  p.mixing = 0.1;
  Graph g = gen::PlantedPartition(p, rng);
  EXPECT_EQ(g.NumNodes(), 2000u);
  EXPECT_GT(g.NumEdges(), 15000u);
}

TEST(CrawlOrderTest, ValidPermutationCoveringAllNodes) {
  Rng rng(8);
  Graph g = gen::ErdosRenyi(300, 900, rng);
  auto perm = gen::MakeCrawlOrderPermutation(g, 0.1, rng);
  CheckPermutation(perm, g.NumNodes());
}

TEST(CrawlOrderTest, ZeroJumpImprovesLocalityOverRandom) {
  Rng rng(9);
  gen::PlantedPartitionParams p;
  p.num_nodes = 1500;
  p.num_communities = 30;
  Graph g = gen::PlantedPartition(p, rng);
  auto crawl = gen::MakeCrawlOrderPermutation(g, 0.0, rng);
  Graph crawled = g.Relabel(crawl);
  std::vector<NodeId> shuffled = IdentityPermutation(g.NumNodes());
  rng.Shuffle(shuffled);
  Graph random = g.Relabel(shuffled);
  EXPECT_LT(LinearArrangementCost(crawled), LinearArrangementCost(random));
}

TEST(CrawlOrderTest, HandlesDisconnectedGraph) {
  // Two components + isolated node.
  Graph g = Graph::FromEdges(5, {{0, 1}, {2, 3}});
  Rng rng(10);
  auto perm = gen::MakeCrawlOrderPermutation(g, 0.5, rng);
  CheckPermutation(perm, 5);
}

TEST(DatasetRegistryTest, HasNineDatasetsInPaperOrder) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all.front().name, "epinion");
  EXPECT_EQ(all.back().name, "sdarc");
  // Sizes must be ascending like the paper's Table 1 ordering.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].sim_edges, all[i].sim_edges) << all[i].name;
  }
}

TEST(DatasetRegistryTest, SpecLookup) {
  const auto& spec = gen::GetDatasetSpec("wiki");
  EXPECT_EQ(spec.category, "web");
  EXPECT_EQ(spec.generator, "copying");
}

TEST(DatasetRegistryTest, SmallScaleGenerationDeterministic) {
  Graph a = MakeDataset("epinion", 0.1, 42);
  Graph b = MakeDataset("epinion", 0.1, 42);
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
  Graph c = MakeDataset("epinion", 0.1, 43);
  EXPECT_NE(a.ToEdges(), c.ToEdges());
}

class DatasetParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetParamTest, GeneratesReasonableGraphAtTinyScale) {
  const std::string name = GetParam();
  Graph g = MakeDataset(name, 0.05);
  const auto& spec = gen::GetDatasetSpec(name);
  EXPECT_GT(g.NumNodes(), 50u);
  EXPECT_GT(g.NumEdges(), 100u);
  // Within a loose band of the requested size (generators dedup).
  EXPECT_LT(g.NumNodes(), static_cast<NodeId>(spec.sim_nodes * 0.05 * 3));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetParamTest,
                         ::testing::Values("epinion", "pokec", "flickr",
                                           "livejournal", "wiki", "gplus",
                                           "pldarc", "twitter", "sdarc"));

}  // namespace
}  // namespace gorder
