#include "order/degree_grouping.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "order/ordering.h"
#include "util/rng.h"

namespace gorder::order {
namespace {

Graph SkewedGraph() {
  Rng rng(11);
  return gen::Rmat({10, 8000, 0.6, 0.18, 0.18}, rng);
}

TEST(OutDegSortTest, RanksDescendByOutDegree) {
  Graph g = SkewedGraph();
  auto order = InvertPermutation(OutDegSortOrder(g));
  for (NodeId r = 1; r < g.NumNodes(); ++r) {
    EXPECT_GE(g.OutDegree(order[r - 1]), g.OutDegree(order[r]));
  }
}

TEST(HubSortTest, HubsFirstSortedRestOriginal) {
  Graph g = SkewedGraph();
  auto perm = HubSortOrder(g);
  CheckPermutation(perm, g.NumNodes());
  auto order = InvertPermutation(perm);
  const double avg =
      static_cast<double>(g.NumEdges()) / g.NumNodes();
  // Find the hub/rest boundary.
  NodeId boundary = 0;
  while (boundary < g.NumNodes() &&
         g.OutDegree(order[boundary]) > avg) {
    ++boundary;
  }
  EXPECT_GT(boundary, 0u);
  EXPECT_LT(boundary, g.NumNodes() / 2);  // hubs are a minority
  // Hubs sorted descending.
  for (NodeId r = 1; r < boundary; ++r) {
    EXPECT_GE(g.OutDegree(order[r - 1]), g.OutDegree(order[r]));
  }
  // Rest keeps original relative order (ids ascending).
  for (NodeId r = boundary + 1; r < g.NumNodes(); ++r) {
    EXPECT_LT(order[r - 1], order[r]);
    EXPECT_LE(g.OutDegree(order[r]), avg);
  }
}

TEST(HubClusterTest, PartitionPreservesOrderWithinSides) {
  Graph g = SkewedGraph();
  auto perm = HubClusterOrder(g);
  CheckPermutation(perm, g.NumNodes());
  auto order = InvertPermutation(perm);
  const double avg =
      static_cast<double>(g.NumEdges()) / g.NumNodes();
  NodeId boundary = 0;
  while (boundary < g.NumNodes() &&
         g.OutDegree(order[boundary]) > avg) {
    ++boundary;
  }
  // Within each side, original ids ascend (pure stable partition).
  for (NodeId r = 1; r < boundary; ++r) EXPECT_LT(order[r - 1], order[r]);
  for (NodeId r = boundary + 1; r < g.NumNodes(); ++r) {
    EXPECT_LT(order[r - 1], order[r]);
  }
}

TEST(DbgTest, GroupsDescendAndPreserveOrderInside) {
  Graph g = SkewedGraph();
  auto perm = DbgOrder(g, 8);
  CheckPermutation(perm, g.NumNodes());
  auto order = InvertPermutation(perm);
  const double avg = std::max(
      1.0, static_cast<double>(g.NumEdges()) / g.NumNodes());
  auto group_of = [&](NodeId v) {
    double d = g.OutDegree(v);
    int grp = 0;
    while (grp + 1 < 8 && d > avg * (1 << grp)) ++grp;
    return grp;
  };
  for (NodeId r = 1; r < g.NumNodes(); ++r) {
    int prev = group_of(order[r - 1]);
    int cur = group_of(order[r]);
    EXPECT_GE(prev, cur);  // groups descend
    if (prev == cur) {
      EXPECT_LT(order[r - 1], order[r]);  // stable inside a group
    }
  }
}

TEST(DbgTest, TwoGroupsDegenerateToHubCluster) {
  Graph g = SkewedGraph();
  // With 2 groups the split point is the average degree, like HubCluster.
  auto dbg = DbgOrder(g, 2);
  auto hc = HubClusterOrder(g);
  EXPECT_EQ(dbg, hc);
}

TEST(DegreeGroupingTest, UniformGraphIsNearIdentity) {
  // On a regular ring every node has the same degree: HubCluster and
  // DBG must keep the identity order (single group).
  const NodeId n = 100;
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  Graph g = Graph::FromEdges(n, std::move(edges));
  EXPECT_EQ(HubClusterOrder(g), IdentityPermutation(n));
  EXPECT_EQ(DbgOrder(g), IdentityPermutation(n));
}

TEST(DegreeGroupingTest, EmptyAndTinyGraphsSafe) {
  Graph empty;
  EXPECT_TRUE(OutDegSortOrder(empty).empty());
  EXPECT_TRUE(HubSortOrder(empty).empty());
  EXPECT_TRUE(HubClusterOrder(empty).empty());
  EXPECT_TRUE(DbgOrder(empty).empty());
  Graph two = Graph::FromEdges(2, {{0, 1}});
  CheckPermutation(OutDegSortOrder(two), 2);
  CheckPermutation(HubSortOrder(two), 2);
  CheckPermutation(HubClusterOrder(two), 2);
  CheckPermutation(DbgOrder(two), 2);
}

}  // namespace
}  // namespace gorder::order
